// Ablation: SEC-DED (what Astra shipped) vs a Chipkill-class code at equal
// redundancy (§2.2 motivates the choice: "cheaper and less power-hungry").
// Quantifies the cost of that choice: the fraction of multi-bit-in-one-
// device error patterns that SEC-DED must escalate to DUEs (or worse,
// silently miscorrect) while chipkill corrects them transparently.
#include <algorithm>
#include <vector>

#include "common/bench_common.hpp"
#include "ecc/adjudicate.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

struct OutcomeTally {
  std::uint64_t clean = 0, corrected = 0, due = 0, silent = 0;

  void Add(ecc::ErrorOutcome outcome) {
    switch (outcome) {
      case ecc::ErrorOutcome::kClean: ++clean; break;
      case ecc::ErrorOutcome::kCorrected: ++corrected; break;
      case ecc::ErrorOutcome::kUncorrectable: ++due; break;
      case ecc::ErrorOutcome::kSilent: ++silent; break;
    }
  }

  [[nodiscard]] std::string Row(std::uint64_t total) const {
    const auto pct = [total](std::uint64_t v) {
      return FormatDouble(100.0 * static_cast<double>(v) / static_cast<double>(total), 2) + "%";
    };
    return "corrected=" + pct(corrected) + " due=" + pct(due) +
           " silent=" + pct(silent) + " clean=" + pct(clean);
  }
};

}  // namespace

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Ablation - SEC-DED vs Chipkill-class ECC at equal 12.5% redundancy",
      "multi-bit single-device faults are DUEs under SEC-DED (§3.2) but CEs "
      "under chipkill; single-bit faults are CEs under both");

  Rng rng(options.seed);
  constexpr int kTrials = 20000;

  // Error-pattern classes, from the fault modes the fleet model injects.
  struct Pattern {
    const char* name;
    int bits;       // bits corrupted
    bool same_device;  // confined to one x4 device
  };
  const Pattern patterns[] = {
      {"1 bit (single-bit fault read)", 1, true},
      {"2 bits, same device (word fault burst)", 2, true},
      {"3 bits, same device (severe word fault)", 3, true},
      {"2 bits, different devices (independent upsets)", 2, false},
  };

  TextTable table({"Pattern", "SEC-DED outcome mix", "Chipkill outcome mix"});
  for (const Pattern& pattern : patterns) {
    OutcomeTally secded, chipkill;
    for (int trial = 0; trial < kTrials; ++trial) {
      // Choose bit positions per the pattern.
      std::vector<int> bits;
      if (pattern.same_device) {
        const int device = static_cast<int>(rng.UniformInt(std::uint64_t{18}));
        while (static_cast<int>(bits.size()) < pattern.bits) {
          const int bit = device * 4 + static_cast<int>(rng.UniformInt(std::uint64_t{4}));
          if (std::find(bits.begin(), bits.end(), bit) == bits.end()) bits.push_back(bit);
        }
      } else {
        while (static_cast<int>(bits.size()) < pattern.bits) {
          const int bit = static_cast<int>(rng.UniformInt(std::uint64_t{72}));
          const bool same = !bits.empty() && bits[0] / 4 == bit / 4;
          if (!same && std::find(bits.begin(), bits.end(), bit) == bits.end()) {
            bits.push_back(bit);
          }
        }
      }
      const std::uint64_t data_lo = rng();
      const std::uint64_t data_hi = rng();
      secded.Add(ecc::AdjudicateSecDed(data_lo, bits));
      std::vector<ecc::BeatBit> beat_bits;
      beat_bits.reserve(bits.size());
      for (const int bit : bits) beat_bits.push_back({0, bit});
      chipkill.Add(ecc::AdjudicateChipkill(data_lo, data_hi, beat_bits));
    }
    table.AddRow({pattern.name, secded.Row(kTrials), chipkill.Row(kTrials)});
  }
  table.Print(std::cout);

  bench::PrintComparison(
      "design takeaway",
      "chipkill converts same-device multi-bit DUEs into CEs; SEC-DED trades "
      "that robustness for power/cost",
      "\"Astra does not utilize Chipkill ... it uses the cheaper and less "
      "power-hungry SEC-DED\"");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
