// Fig. 8: counts per cache-line bit position (a) and per physical address
// (b).  Published: "the vast majority of locations see very few faults" and
// "these distributions appear to follow a power law".  Counts are
// error-weighted (a handful of locations reach ~10^5, far above the total
// fault count — see DESIGN.md).
#include "common/bench_common.hpp"
#include "stats/histogram.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

void PrintCountFrequency(const std::string& title,
                         const std::map<std::uint64_t, std::uint64_t>& frequency) {
  std::cout << title << " (count -> locations, log-binned):\n";
  // Log-bin the counts: [1,2), [2,4), [4,8) ...
  std::map<int, std::uint64_t> bins;
  for (const auto& [count, locations] : frequency) {
    int bin = 0;
    for (std::uint64_t c = count; c > 1; c >>= 1) ++bin;
    bins[bin] += locations;
  }
  for (const auto& [bin, locations] : bins) {
    std::cout << "  [" << (1ULL << bin) << "," << (1ULL << (bin + 1)) << ")\t"
              << locations << '\n';
  }
}

}  // namespace

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 8 - counts per bit position and per physical address",
      "most locations see few errors; both distributions power-law shaped");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const core::PositionalAnalysis analysis = core::AnalyzePositions(
      bundle.result.memory_errors, bundle.coalesced, options.nodes);

  // Invert: how many bit positions / addresses carry each count.
  std::map<std::uint64_t, std::uint64_t> bit_frequency, address_frequency;
  std::uint64_t max_bit_count = 0, max_addr_count = 0;
  for (const auto& [bit, count] : analysis.errors.per_bit_position) {
    ++bit_frequency[count];
    max_bit_count = std::max(max_bit_count, count);
  }
  for (const auto& [addr, count] : analysis.errors.per_address) {
    ++address_frequency[count];
    max_addr_count = std::max(max_addr_count, count);
  }

  PrintCountFrequency("(a) per recorded bit position", bit_frequency);
  bench::PrintComparison("distinct recorded bit positions",
                         std::to_string(analysis.errors.per_bit_position.size()),
                         "72 true positions x consistent vendor encoding");
  bench::PrintComparison("max errors at one bit position",
                         WithThousands(max_bit_count), "~10^5 (Fig. 8a x-range)");
  bench::PrintComparison(
      "bit-position count power-law fit",
      "alpha=" + FormatDouble(analysis.bit_position_fit.alpha, 2) +
          " KS=" + FormatDouble(analysis.bit_position_fit.ks_distance, 3),
      "\"appear to obey a power law\"");

  PrintCountFrequency("(b) per physical address", address_frequency);
  bench::PrintComparison("distinct failing addresses",
                         WithThousands(analysis.errors.per_address.size()),
                         "(not published)");
  bench::PrintComparison("max errors at one address", WithThousands(max_addr_count),
                         "~10^2+ (Fig. 8b x-range)");
  bench::PrintComparison(
      "address count power-law fit",
      "alpha=" + FormatDouble(analysis.address_fit.alpha, 2) +
          " KS=" + FormatDouble(analysis.address_fit.ks_distance, 3),
      "\"appear to obey a power law\"");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
