// Extension bench: spatial clustering of faults (after Patwari et al.,
// FTXS'17, the paper's reference [23]).  Quantifies how far the fleet is
// from fault independence: per-DIMM and per-node dispersion, recurrence
// lift ("given one fault, how much likelier is a second"), and the
// multi-faulty-DIMM lift per node.  These are the statistics behind the
// paper's exclude-list recommendation: clustering is what makes excluding
// a few nodes so effective.
#include "common/bench_common.hpp"
#include "core/spatial.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Extension - spatial clustering of faults (Patwari'17-style)",
      "faults cluster on devices and nodes far beyond Poisson: the "
      "statistical basis for exclude-lists and targeted replacement");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const core::SpatialAnalysis analysis =
      core::AnalyzeSpatialClustering(bundle.coalesced, options.nodes);

  TextTable table({"Container", "Population", "With faults", "With repeats",
                   "Dispersion (1=Poisson)", "P(>=2 | >=1)", "Poisson ref",
                   "Recurrence lift"});
  const auto row = [&](const char* name, const core::ContainerClustering& c) {
    table.AddRow({name, WithThousands(c.containers),
                  WithThousands(c.containers_with_fault),
                  WithThousands(c.containers_with_repeat),
                  FormatDouble(c.dispersion, 2), FormatDouble(c.repeat_probability, 3),
                  FormatDouble(c.poisson_repeat_probability, 3),
                  FormatDouble(c.RecurrenceLift(), 2)});
  };
  row("DIMM", analysis.per_dimm);
  row("node", analysis.per_node);
  table.Print(std::cout);

  bench::PrintComparison(
      "P(node has >= 2 faulty DIMMs | >= 1)",
      FormatDouble(analysis.multi_dimm_probability, 3) + " vs " +
          FormatDouble(analysis.independent_multi_dimm_probability, 3) +
          " under independence (lift " +
          FormatDouble(analysis.MultiDimmLift(), 1) + "x)",
      "clustering expected (Patwari'17; paper's exclude-list rationale)");
  bench::PrintComparison(
      "operational consequence",
      "a first fault on a node is a strong predictor of more — replacement "
      "and exclusion policies should act on containers, not single events",
      "§3.2: \"an exclude list for the small number of nodes experiencing "
      "large numbers of faults\"");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
