// Table 1: "Astra component replacements from Feb 17, 2019 to Sep 17, 2019."
//   Processors   836   16.1% of 5184
//   Motherboards  46    1.8% of 2592
//   DIMMs       1515    3.7% of 41472
// Replacements are detected the way the site detected them: diffing daily
// inventory snapshots.
#include "common/bench_common.hpp"
#include "core/replacement_analysis.hpp"
#include "replace/replacement_sim.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

struct PaperRow {
  logs::ComponentKind kind;
  std::uint64_t replaced;
  double percent;
  int population;
};

constexpr PaperRow kPaperRows[] = {
    {logs::ComponentKind::kProcessor, 836, 16.1, 5184},
    {logs::ComponentKind::kMotherboard, 46, 1.8, 2592},
    {logs::ComponentKind::kDimm, 1515, 3.7, 41472},
};

}  // namespace

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner("Table 1 - component replacements (stabilization period)",
                     "836/5184 processors, 46/2592 motherboards, 1515/41472 DIMMs");

  auto config = replace::ReplacementSimConfig::AstraDefaults();
  config.seed = options.seed;
  config.node_count = options.nodes;
  const replace::ReplacementSimulator simulator(config);
  const auto campaign = simulator.Run();

  // Detect replacements by inventory diffing over weekly snapshots (daily
  // diffing gives identical totals; weekly keeps the bench fast) and also
  // tally ground truth directly for cross-validation.
  const core::ReplacementAnalysis analysis =
      core::AnalyzeReplacements(campaign.events, config.tracking, options.nodes);

  TextTable table({"Component", "Number Replaced", "Percent of Total",
                   "Paper Replaced", "Paper Percent"});
  for (const PaperRow& row : kPaperRows) {
    const auto& measured = analysis.Of(row.kind);
    table.AddRow({std::string(logs::ComponentKindName(row.kind)),
                  WithThousands(measured.replaced) + " of " +
                      WithThousands(measured.population),
                  FormatDouble(measured.percent_of_total, 1) + "%",
                  WithThousands(row.replaced) + " of " + WithThousands(
                      static_cast<std::uint64_t>(row.population)),
                  FormatDouble(row.percent, 1) + "%"});
  }
  table.Print(std::cout);

  // Cross-validate: snapshot diffing recovers the same totals as ground
  // truth over a sampled slice of days.
  std::uint64_t diffed = 0, truth = 0;
  const SimTime probe0 = config.tracking.begin.AddDays(20);
  for (int d = 0; d < 3; ++d) {
    const auto earlier = simulator.SnapshotAt(campaign, probe0.AddDays(d - 1));
    const auto later = simulator.SnapshotAt(campaign, probe0.AddDays(d));
    diffed += replace::DiffSnapshots(earlier, later).size();
    for (const auto& event : campaign.events) {
      truth += event.day == probe0.AddDays(d);
    }
  }
  bench::PrintComparison("inventory-diff cross-check (3 sampled days)",
                         std::to_string(diffed) + " events recovered",
                         std::to_string(truth) + " ground-truth events");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
