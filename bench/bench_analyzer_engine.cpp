// Analyzer-engine throughput: what the single incremental core
// (core/engine.hpp) costs in each driver configuration, over the SAME
// simulated campaign:
//
//   serial      - one AnalysisEngineSet observes every record in order
//                 (the batch driver below kParallelAnalysisMinItems, and
//                 the streaming driver's per-record work)
//   merge_N     - N per-shard engine sets filled concurrently, reduced via
//                 MergeFrom in index order (the parallel batch driver at
//                 --threads=N), N in {2, 4, 8}
//   stream_replay - the full streaming driver (TailReader -> engine set)
//                 consuming the finished on-disk files in one Finish() pass;
//                 unlike the rows above this includes file read + parse, the
//                 price of the tail-follow entry point
//
// Every configuration finalizes the artifacts, so the numbers compare whole
// driver passes, not just Observe loops.  Engine-side records/sec land in
// BENCH_engine.json for CI tracking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/dataset.hpp"
#include "core/engine.hpp"
#include "faultsim/fleet.hpp"
#include "stream/monitor.hpp"
#include "util/parallel.hpp"

namespace astra {
namespace {

constexpr std::int64_t kStreamReplay = -2;   // sentinel rows in the sweep map
constexpr std::int64_t kObserveOnly = -3;    // batched Observe, no finalize

// Median-of-repetitions on hand-timed sweeps: each benchmark repetition
// appends one {seconds, records} sample, and the JSON reports the median
// per-rep rate — one descheduled rep on a noisy runner no longer moves the
// number the CI gate compares.
constexpr int kSweepRepetitions = 5;

const faultsim::CampaignResult& SharedCampaign() {
  static const faultsim::CampaignResult result = [] {
    faultsim::CampaignConfig config;
    config.SeedFrom(1);
    config.node_count = 400;
    return faultsim::FleetSimulator(config).Run();
  }();
  return result;
}

// The streaming-replay dataset, written once.
const core::DatasetPaths& SharedDataset() {
  static const core::DatasetPaths paths = [] {
    const auto dir =
        (std::filesystem::temp_directory_path() / "astra_bench_engine")
            .string();
    std::filesystem::create_directories(dir);
    auto p = core::DatasetPaths::InDirectory(dir);
    if (!core::WriteFailureData(p, SharedCampaign())) p.memory_errors.clear();
    return p;
  }();
  return paths;
}

// shard count (1 = serial, kStreamReplay = streaming, kObserveOnly =
// observe-only) -> one {seconds, records} sample per repetition.
using SweepSamples = std::vector<std::pair<double, std::int64_t>>;
std::map<std::int64_t, SweepSamples>& SweepResults() {
  static std::map<std::int64_t, SweepSamples> results;
  return results;
}

// Median per-rep records/sec of a sample set (0 when empty).
double MedianRate(const SweepSamples& samples) {
  std::vector<double> rates;
  rates.reserve(samples.size());
  for (const auto& [seconds, records] : samples) {
    if (seconds > 0.0 && records > 0) {
      rates.push_back(static_cast<double>(records) / seconds);
    }
  }
  if (rates.empty()) return 0.0;
  std::sort(rates.begin(), rates.end());
  return rates[rates.size() / 2];
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Serial and merge_N share one body: fill per-shard engine sets (one shard =
// plain serial replay), reduce in index order, finalize.
void BM_EngineReduce(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto& records = SharedCampaign().memory_errors;
  const auto& het = SharedCampaign().het_records;

  double seconds = 0.0;
  std::int64_t processed = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    core::AnalysisEngineSet reduced = ShardedReduce<core::AnalysisEngineSet>(
        records.size(), shards,
        [](std::size_t first) {
          return core::AnalysisEngineSet(core::EngineSetConfig{}, first);
        },
        [&records](core::AnalysisEngineSet& set, std::size_t begin,
                   std::size_t end) {
          set.ObserveMemoryBatch(
              std::span<const logs::MemoryErrorRecord>(records).subspan(
                  begin, end - begin));
        });
    for (const auto& record : het) reduced.ObserveHet(record);
    const auto artifacts = reduced.Finalize(reduced.InferredContext());
    seconds += SecondsSince(start);
    processed += static_cast<std::int64_t>(artifacts.record_count);
    benchmark::DoNotOptimize(artifacts.record_count);
  }
  state.SetItemsProcessed(processed);
  SweepResults()[state.range(0)].push_back({seconds, processed});
}
BENCHMARK(BM_EngineReduce)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5)
    ->Repetitions(kSweepRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseRealTime();

// Observe-only: the batched Observe path in isolation — no ingest, no
// finalize — so BENCH_engine.json separates "feeding the engines" from
// "projecting the artifacts".
void BM_EngineObserveOnly(benchmark::State& state) {
  const auto& records = SharedCampaign().memory_errors;
  double seconds = 0.0;
  std::int64_t processed = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    core::AnalysisEngineSet set{core::EngineSetConfig{}};
    set.ObserveMemoryBatch(records);
    seconds += SecondsSince(start);
    processed += static_cast<std::int64_t>(set.Delivered());
    benchmark::DoNotOptimize(set.Delivered());
  }
  state.SetItemsProcessed(processed);
  SweepResults()[kObserveOnly].push_back({seconds, processed});
}
BENCHMARK(BM_EngineObserveOnly)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5)
    ->Repetitions(kSweepRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseRealTime();

void BM_EngineStreamReplay(benchmark::State& state) {
  const auto& paths = SharedDataset();
  if (paths.memory_errors.empty()) {
    state.SkipWithError("failed writing the shared dataset");
    return;
  }
  double seconds = 0.0;
  std::int64_t processed = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    stream::StreamMonitor monitor(paths, stream::MonitorConfig{});
    benchmark::DoNotOptimize(monitor.Finish());
    const auto artifacts = monitor.Artifacts();
    seconds += SecondsSince(start);
    processed += static_cast<std::int64_t>(artifacts.record_count);
    benchmark::DoNotOptimize(artifacts.record_count);
  }
  state.SetItemsProcessed(processed);
  SweepResults()[kStreamReplay].push_back({seconds, processed});
}
BENCHMARK(BM_EngineStreamReplay)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5)
    ->Repetitions(kSweepRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseRealTime();

// BENCH_engine.json: records/sec per driver configuration plus the speedup
// over the serial engine replay.  Hand-rolled JSON — a handful of numeric
// fields don't justify a dependency.
void WriteEngineSweepJson(const std::string& path) {
  const auto& results = SweepResults();
  if (results.empty()) return;  // filtered out by --benchmark_filter
  const auto NameOf = [](std::int64_t key) -> std::string {
    if (key == kStreamReplay) return "stream_replay";
    if (key == kObserveOnly) return "observe_only";
    if (key == 1) return "serial";
    return "merge_" + std::to_string(key);
  };
  double serial_rate = 0.0;
  if (const auto it = results.find(1); it != results.end()) {
    serial_rate = MedianRate(it->second);
  }
  std::ofstream out(path);
  out << "{\n  \"campaign_records\": " << SharedCampaign().memory_errors.size()
      << ",\n  \"reps\": " << kSweepRepetitions << ",\n  \"sweep\": [\n";
  bool first = true;
  for (const auto& [key, samples] : results) {
    const double rate = MedianRate(samples);
    if (rate <= 0.0) continue;
    double seconds = 0.0;
    std::int64_t records = 0;
    for (const auto& [s, r] : samples) {
      seconds += s;
      records += r;
    }
    out << (first ? "" : ",\n") << "    {\"driver\": \"" << NameOf(key)
        << "\", \"records\": " << records << ", \"seconds\": " << seconds
        << ", \"records_per_s\": " << rate << ", \"speedup_vs_serial\": "
        << (serial_rate > 0.0 ? rate / serial_rate : 0.0) << "}";
    first = false;
  }
  out << "\n  ]\n}\n";
  std::fprintf(stderr, "wrote engine sweep to %s\n", path.c_str());
}

}  // namespace
}  // namespace astra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  astra::WriteEngineSweepJson("BENCH_engine.json");
  std::error_code ec;
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "astra_bench_engine", ec);
  return 0;
}
