// Ablation: CE log-buffer capacity and poll period (§2.3: bounded logging
// space, polled "every few seconds", overflow CEs dropped — while DUEs take
// the machine-check path and are "seldom lost").  Sweeps capacity and poll
// period to show how much of the true error volume a field study actually
// observes during bursts.
#include "common/bench_common.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

struct SweepPoint {
  std::uint32_t capacity;
  std::int64_t poll_seconds;
};

}  // namespace

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Ablation - CE log-buffer capacity / poll-period sweep",
      "§2.3: bounded CE logging drops burst errors; DUEs are never lost");

  constexpr SweepPoint kSweep[] = {
      {4, 10}, {8, 10}, {16, 5}, {32, 5}, {64, 5}, {256, 2}, {1024, 1},
  };

  TextTable table({"Capacity", "Poll (s)", "Offered CEs", "Logged CEs",
                   "Dropped", "Drop %"});
  for (const SweepPoint& point : kSweep) {
    faultsim::CampaignConfig config;
    config.SeedFrom(options.seed);
    config.node_count = std::min(options.nodes, 800);  // sweep runs 7 campaigns
    config.log_buffer.capacity = point.capacity;
    config.log_buffer.poll_seconds = point.poll_seconds;
    const auto result = faultsim::FleetSimulator(config).Run();
    table.AddRow({std::to_string(point.capacity), std::to_string(point.poll_seconds),
                  WithThousands(result.buffer_stats.offered_ces),
                  WithThousands(result.buffer_stats.logged_ces),
                  WithThousands(result.buffer_stats.dropped_ces),
                  FormatDouble(100.0 * result.buffer_stats.DropFraction(), 3) + "%"});
  }
  table.Print(std::cout);

  bench::PrintComparison(
      "observation",
      "small log buffers hide burst errors from the analysis; generous "
      "buffers approach the true CE count",
      "\"Once logging space is full, further CEs may be dropped\" (§2.3)");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
