// Campaign-lane throughput: the in-memory simulate -> analyze trial path the
// scenario runner uses, against the historical simulate -> write-to-disk ->
// ingest -> analyze round trip over the same trials.  The campaign engine
// exists to run hundreds of counterfactual trials, so the per-trial cost of
// the disk detour is the number that justifies core::AnalyzeCampaignResult.
//
// Both lanes run the identical trial set (the default grid's baseline cell,
// serial inside each trial, matching the runner's sharding contract).  The
// lanes are NOT byte-identical by design: the hardened ingest dedupes
// identical telemetry lines, and a stuck bit legitimately emits identical
// records, so the disk lane analyzes slightly fewer — the in-memory path is
// the ground-truth lane.  What IS asserted before any rate is reported:
// trial 0's serialization round trip parses every simulated record back
// with zero malformed lines.  Medians over repetitions land in
// BENCH_campaign.json; the CI gate tracks the in-memory lane (the disk lane
// measures the runner's filesystem more than the code).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "core/dataset.hpp"
#include "core/engine.hpp"
#include "faultsim/fleet.hpp"

namespace astra {
namespace {

struct BenchOptions {
  int nodes = 48;
  int trials = 8;
  int reps = 5;
};

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

// One in-memory trial: the exact path campaign::RunTrial takes.
core::AnalysisArtifacts InMemoryTrial(const faultsim::CampaignConfig& config) {
  const faultsim::CampaignResult result =
      faultsim::FleetSimulator(config).Run(1);
  return core::AnalyzeCampaignResult(result, config, 1);
}

// One disk trial: serialize the campaign the way `simulate` does, re-parse
// it the way `analyze` does, then run the same engine set.
core::AnalysisArtifacts DiskTrial(const faultsim::CampaignConfig& config,
                                  const core::DatasetPaths& paths) {
  const faultsim::CampaignResult result =
      faultsim::FleetSimulator(config).Run(1);
  if (!core::WriteFailureData(paths, result)) {
    std::fprintf(stderr, "bench_campaign: write failed: %s\n",
                 paths.memory_errors.c_str());
    std::exit(2);
  }
  const core::DatasetIngest ingest =
      core::IngestFailureData(paths, logs::IngestPolicy{}, 1);
  return core::BuildAnalysisArtifacts(ingest.memory_errors, ingest.het_events,
                                      config.node_count, config.window,
                                      config.het_firmware_start,
                                      &ingest.quality, 1);
}

}  // namespace
}  // namespace astra

int main(int argc, char** argv) {
  astra::BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.nodes = 24;
      options.trials = 4;
      options.reps = 3;
    } else if (arg.rfind("--nodes=", 0) == 0) {
      options.nodes = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--trials=", 0) == 0) {
      options.trials = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--reps=", 0) == 0) {
      options.reps = std::atoi(arg.c_str() + 7);
    } else {
      std::fprintf(stderr,
                   "usage: bench_campaign [--quick] [--nodes=N] [--trials=N] "
                   "[--reps=N]\n");
      return 1;
    }
  }
  if (options.nodes < 1 || options.trials < 1 || options.reps < 1) {
    std::fprintf(stderr, "bench_campaign: values must be positive\n");
    return 1;
  }

  using astra::campaign::CellCampaignConfig;
  astra::campaign::ScenarioGrid grid;
  grid.node_count = options.nodes;
  grid.trials = options.trials;
  const astra::campaign::ScenarioCell cell = grid.CellAt(grid.BaselineIndex());

  const auto dir =
      (std::filesystem::temp_directory_path() / "astra_bench_campaign")
          .string();
  std::filesystem::create_directories(dir);
  const auto paths = astra::core::DatasetPaths::InDirectory(dir);

  // Correctness first: the serialization round trip must be parse-lossless
  // before the disk lane's rate means anything.
  {
    const auto config = CellCampaignConfig(grid, cell, 0);
    const auto result = astra::faultsim::FleetSimulator(config).Run(1);
    if (!astra::core::WriteFailureData(paths, result)) {
      std::fprintf(stderr, "bench_campaign: write failed in %s\n", dir.c_str());
      return 2;
    }
    const auto ingest =
        astra::core::IngestFailureData(paths, astra::logs::IngestPolicy{}, 1);
    if (ingest.memory_report.stats.parsed != result.memory_errors.size() ||
        ingest.memory_report.stats.malformed != 0) {
      std::fprintf(stderr,
                   "bench_campaign: round trip lost records (%llu simulated, "
                   "%llu parsed, %llu malformed) — refusing to report a rate\n",
                   static_cast<unsigned long long>(result.memory_errors.size()),
                   static_cast<unsigned long long>(ingest.memory_report.stats.parsed),
                   static_cast<unsigned long long>(ingest.memory_report.stats.malformed));
      return 2;
    }
  }

  std::vector<double> in_memory_rates, disk_rates;
  for (int rep = 0; rep < options.reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int trial = 0; trial < options.trials; ++trial) {
      (void)astra::InMemoryTrial(CellCampaignConfig(grid, cell, trial));
    }
    const auto t1 = std::chrono::steady_clock::now();
    for (int trial = 0; trial < options.trials; ++trial) {
      (void)astra::DiskTrial(CellCampaignConfig(grid, cell, trial), paths);
    }
    const auto t2 = std::chrono::steady_clock::now();
    const double in_memory_s = std::chrono::duration<double>(t1 - t0).count();
    const double disk_s = std::chrono::duration<double>(t2 - t1).count();
    in_memory_rates.push_back(options.trials / in_memory_s);
    disk_rates.push_back(options.trials / disk_s);
    std::printf("rep %d: in_memory=%.2f trials/s disk_roundtrip=%.2f trials/s\n",
                rep, in_memory_rates.back(), disk_rates.back());
  }
  std::filesystem::remove_all(dir);

  const double in_memory = astra::Median(in_memory_rates);
  const double disk = astra::Median(disk_rates);
  std::printf("median: in_memory=%.2f trials/s disk_roundtrip=%.2f trials/s "
              "speedup=%.2fx\n",
              in_memory, disk, in_memory / disk);

  std::ofstream out("BENCH_campaign.json");
  out << "{\n  \"nodes\": " << options.nodes
      << ",\n  \"trials\": " << options.trials
      << ",\n  \"reps\": " << options.reps << ",\n  \"sweep\": [\n"
      << "    {\"lane\": \"in_memory\", \"trials_per_s\": "
      << std::to_string(in_memory) << "},\n"
      << "    {\"lane\": \"disk_roundtrip\", \"trials_per_s\": "
      << std::to_string(disk) << "}\n  ],\n  \"speedup\": "
      << std::to_string(in_memory / disk) << "\n}\n";
  std::fprintf(stderr, "wrote campaign sweep to BENCH_campaign.json\n");
  return 0;
}
