#include "common/bench_common.hpp"

#include "util/strings.hpp"

namespace astra::bench {

BenchOptions ParseArgs(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (StartsWith(arg, "--nodes=")) {
      if (const auto v = ParseInt64(arg.substr(8)); v && *v > 0 && *v <= kNumNodes) {
        options.nodes = static_cast<int>(*v);
      }
    } else if (StartsWith(arg, "--seed=")) {
      if (const auto v = ParseUint64(arg.substr(7))) options.seed = *v;
    } else if (arg == "--quick") {
      options.quick = true;
      if (options.nodes == kNumNodes) options.nodes = 400;
    } else if (arg == "--help") {
      std::cout << "usage: bench [--nodes=N] [--seed=S] [--quick]\n";
    }
  }
  return options;
}

CampaignBundle RunCampaign(const BenchOptions& options) {
  CampaignBundle bundle;
  bundle.config.SeedFrom(options.seed);
  bundle.config.node_count = options.nodes;
  bundle.result = faultsim::FleetSimulator(bundle.config).Run();

  core::CoalesceOptions coalesce_options;
  coalesce_options.month_count = bundle.MonthCount();
  coalesce_options.series_origin = bundle.config.window.begin;
  bundle.coalesced =
      core::FaultCoalescer::Coalesce(bundle.result.memory_errors, coalesce_options);
  return bundle;
}

void PrintBanner(const std::string& experiment, const std::string& paper_claim) {
  std::cout << Rule() << '\n'
            << "REPRODUCTION  " << experiment << '\n'
            << "paper claim   " << paper_claim << '\n'
            << Rule() << '\n';
}

void PrintComparison(const std::string& key, const std::string& measured,
                     const std::string& paper) {
  std::cout << "  " << key << ": measured=" << measured << "  paper=" << paper << '\n';
}

void PrintFooter() { std::cout << Rule() << "\n\n"; }

}  // namespace astra::bench
