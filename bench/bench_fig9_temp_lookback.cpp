// Fig. 9: "Linear fit of CE error counts per average DIMM temperature for
// the interval immediately preceding the error (one hour, one day, one week,
// and one month)."  Published conclusion: "higher temperatures are not
// strongly correlated with more frequent errors" — near-zero slopes.
#include "common/bench_common.hpp"
#include "core/temperature.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 9 - CE count vs mean DIMM temperature over look-back windows",
      "no strong temperature correlation at 1h / 1d / 1w / 1mo look-backs");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);

  core::TemperatureAnalysisConfig config;
  config.max_lookback_samples = options.quick ? 5'000 : 30'000;
  config.mean_samples = options.quick ? 32 : 96;
  const core::TemperatureAnalyzer analyzer(config, &bundle.environment);
  const core::TemperatureAnalysis analysis =
      analyzer.Analyze(bundle.result.memory_errors, options.nodes);

  const char* names[] = {"one hour", "one day", "one week", "one month"};
  TextTable table({"Look-back", "Bins", "Slope (CE/degC)", "r^2", "p-value",
                   "Strong positive?"});
  for (std::size_t i = 0; i < analysis.lookback_fits.size(); ++i) {
    const auto& lookback = analysis.lookback_fits[i];
    const bool strong =
        lookback.fit.slope > 0.0 && lookback.fit.IsStrongCorrelation();
    table.AddRow({i < 4 ? names[i] : std::to_string(lookback.lookback_seconds) + "s",
                  std::to_string(lookback.temperature_bins.size()),
                  FormatDouble(lookback.fit.slope, 1),
                  FormatDouble(lookback.fit.r_squared, 3),
                  FormatDouble(lookback.fit.p_value, 4), strong ? "YES" : "no"});
  }
  table.Print(std::cout);

  bench::PrintComparison(
      "any strong positive temperature correlation",
      analysis.AnyStrongPositiveCorrelation() ? "YES" : "no",
      "no (\"increases in temperature is not strongly correlated\")");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
