// Reproducibility sweep: the headline metrics across independent campaign
// seeds at full scale.  Turns EXPERIMENTS.md's "seed-dependent" caveats into
// numbers: which reproduction targets are tight (total CEs, slot ordering,
// uniformity verdicts) and which are realization-dominated (per-mode error
// volumes, top-8 concentration, recorded-DUE FIT).
#include <algorithm>
#include <cmath>
#include <set>

#include "common/bench_common.hpp"
#include "core/positional.hpp"
#include "core/uncorrectable.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

struct SeedMetrics {
  double total_ces = 0.0;
  double faults = 0.0;
  double nodes_with_ces = 0.0;
  double top2pct_share = 0.0;
  double max_errors_per_fault = 0.0;
  double rank_ratio = 0.0;
  double fit = 0.0;
  bool slot_order_exact = false;
  bool fault_axes_uniform = false;
};

SeedMetrics RunSeed(std::uint64_t seed, int nodes) {
  bench::BenchOptions options;
  options.seed = seed;
  options.nodes = nodes;
  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const core::PositionalAnalysis positions = core::AnalyzePositions(
      bundle.result.memory_errors, bundle.coalesced, nodes);

  SeedMetrics metrics;
  metrics.total_ces = static_cast<double>(bundle.result.total_ces);
  metrics.faults = static_cast<double>(bundle.coalesced.faults.size());
  metrics.nodes_with_ces = static_cast<double>(positions.nodes_with_errors);
  metrics.top2pct_share = positions.ce_concentration.ShareOfTop(
      static_cast<std::size_t>(0.02 * nodes));
  for (const auto& fault : bundle.coalesced.faults) {
    metrics.max_errors_per_fault =
        std::max(metrics.max_errors_per_fault, static_cast<double>(fault.error_count));
  }
  metrics.rank_ratio =
      static_cast<double>(positions.faults.per_rank[0]) /
      std::max<std::uint64_t>(1, positions.faults.per_rank[1]);

  const TimeWindow recording{bundle.config.het_firmware_start,
                             bundle.config.window.end};
  metrics.fit = core::AnalyzeUncorrectable(bundle.result.het_records, recording,
                                           nodes * kDimmSlotsPerNode)
                    .fit_per_dimm;

  // Slot ordering check: {E,I,J,P} top-4, {A,K,L,M,N} bottom-5.
  std::vector<int> order(kDimmSlotCount);
  for (int i = 0; i < kDimmSlotCount; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return positions.faults.per_slot[static_cast<std::size_t>(a)] >
           positions.faults.per_slot[static_cast<std::size_t>(b)];
  });
  std::set<int> top4(order.begin(), order.begin() + 4);
  metrics.slot_order_exact =
      top4 == std::set<int>{static_cast<int>(DimmSlot::E), static_cast<int>(DimmSlot::I),
                            static_cast<int>(DimmSlot::J), static_cast<int>(DimmSlot::P)};
  metrics.fault_axes_uniform =
      positions.fault_uniformity.socket.ConsistentWithUniform() &&
      positions.fault_uniformity.bank.ConsistentWithUniform() &&
      positions.fault_uniformity.column.ConsistentWithUniform();
  return metrics;
}

std::string MeanSd(const std::vector<double>& xs, int precision) {
  const stats::Summary s = stats::Summarize(xs);
  return FormatDouble(s.mean, precision) + " ± " + FormatDouble(s.stddev, precision);
}

}  // namespace

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Reproducibility - headline metrics across independent seeds",
      "identifies which published numbers are population properties vs "
      "single-realization luck");

  const int seeds = options.quick ? 3 : 6;
  const int nodes = options.quick ? options.nodes : kNumNodes;

  std::vector<double> ces, faults, nodes_hit, top2, max_epf, rank_ratio, fit;
  int slot_exact = 0, axes_uniform = 0;
  for (int s = 0; s < seeds; ++s) {
    const SeedMetrics metrics = RunSeed(options.seed + static_cast<std::uint64_t>(s),
                                        nodes);
    ces.push_back(metrics.total_ces);
    faults.push_back(metrics.faults);
    nodes_hit.push_back(metrics.nodes_with_ces);
    top2.push_back(metrics.top2pct_share);
    max_epf.push_back(metrics.max_errors_per_fault);
    rank_ratio.push_back(metrics.rank_ratio);
    fit.push_back(metrics.fit);
    slot_exact += metrics.slot_order_exact;
    axes_uniform += metrics.fault_axes_uniform;
    std::cout << "  seed " << options.seed + static_cast<std::uint64_t>(s)
              << ": CEs=" << WithThousands(static_cast<std::uint64_t>(metrics.total_ces))
              << " faults=" << static_cast<std::uint64_t>(metrics.faults)
              << " FIT=" << FormatDouble(metrics.fit, 0) << '\n';
  }

  TextTable table({"Metric", "Across seeds (mean ± sd)", "Paper"});
  table.AddRow({"total CEs", MeanSd(ces, 0), "4,369,731"});
  table.AddRow({"coalesced faults", MeanSd(faults, 0), "(implied ~7k)"});
  table.AddRow({"nodes with CEs", MeanSd(nodes_hit, 0), "1013"});
  table.AddRow({"top-2% CE share", MeanSd(top2, 3), "~0.90"});
  table.AddRow({"max errors/fault", MeanSd(max_epf, 0), "~91,000"});
  table.AddRow({"rank0/rank1 fault ratio", MeanSd(rank_ratio, 2), ">1"});
  table.AddRow({"FIT per DIMM", MeanSd(fit, 0), "~1081"});
  table.AddRow({"slot top-4 = {E,I,J,P}", std::to_string(slot_exact) + "/" +
                                              std::to_string(seeds) + " seeds",
                "exact set"});
  table.AddRow({"socket/bank/column uniform", std::to_string(axes_uniform) + "/" +
                                                  std::to_string(seeds) + " seeds",
                "all uniform"});
  table.Print(std::cout);
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
