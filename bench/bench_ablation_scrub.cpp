// Ablation: patrol-scrub interval vs transient-accumulation DUE exposure.
// Two regimes are reported:
//   (a) Astra scale at field upset rates (closed form): the honest headline
//       is that accumulation DUEs are negligible next to the hard multi-bit
//       fault DUEs of §3.5 — scrubbing is cheap insurance, not the story;
//   (b) an accelerated-rate Monte-Carlo regime where the accumulated
//       patterns are adjudicated with the REAL SEC-DED and chipkill codecs,
//       validating the closed form and showing chipkill's rescue of the
//       same-device fraction.
#include "common/bench_common.hpp"
#include "faultsim/scrubber.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Ablation - patrol scrub interval vs accumulation DUEs",
      "accumulation is negligible at Astra scale/rates; hard multi-bit "
      "faults dominate the DUE population (§3.5)");

  // (a) Astra scale, field rates, closed form.
  const double astra_capacity_gib = 332.0 * 1024.0;  // §2.2: 332 TB
  TextTable analytic({"Scrub interval", "Accumulation DUEs/day (fleet)",
                      "DUEs over the 237-day campaign"});
  for (const double hours : {1.0, 24.0, 168.0, 720.0}) {
    faultsim::ScrubConfig config;
    config.interval_hours = hours;
    const double per_day =
        faultsim::ExpectedAccumulationDuesPerDay(config, astra_capacity_gib, 237 * 24.0);
    analytic.AddRow({FormatDouble(hours, 0) + " h",
                     FormatDouble(per_day, 10),
                     FormatDouble(per_day * 237.0, 7)});
  }
  {
    faultsim::ScrubConfig no_scrub;
    no_scrub.enabled = false;
    const double per_day = faultsim::ExpectedAccumulationDuesPerDay(
        no_scrub, astra_capacity_gib, 237.0 * 24.0);
    analytic.AddRow({"never (237-day exposure)", FormatDouble(per_day, 10),
                     FormatDouble(per_day * 237.0, 7)});
  }
  std::cout << "(a) Astra scale, 50 FIT/Mbit transients (closed form):\n";
  analytic.Print(std::cout);
  bench::PrintComparison(
      "campaign accumulation DUEs vs observed hard-fault DUEs",
      "<< 1 vs ~250",
      "DUE population driven by multi-bit word faults, not transients");

  // (b) accelerated Monte-Carlo with real-codec adjudication.
  std::cout << "\n(b) accelerated validation (5e9 FIT/Mbit, 200k words, 30 days):\n";
  TextTable mc({"Scrub interval", "multi-upset words", "SEC-DED DUEs",
                "SEC-DED silent", "Chipkill DUEs", "Chipkill saved"});
  for (const double hours : {6.0, 24.0, 96.0}) {
    faultsim::ScrubConfig config;
    config.upsets_per_mbit_per_1e9_hours = 5e9;
    config.interval_hours = hours;
    Rng rng(options.seed);
    const auto result = faultsim::SimulateAccumulation(config, 200'000, 30.0, rng);
    mc.AddRow({FormatDouble(hours, 0) + " h",
               WithThousands(result.words_multi_upset),
               WithThousands(result.secded_dues), WithThousands(result.secded_silent),
               WithThousands(result.chipkill_dues),
               WithThousands(result.chipkill_corrected_multi)});
  }
  mc.Print(std::cout);
  bench::PrintComparison(
      "scrub scaling",
      "multi-upset words grow ~linearly with interval; chipkill corrects the "
      "same-device fraction SEC-DED cannot",
      "standard scrubbing theory; §2.2's ECC tradeoff");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
