// Fig. 4a: monthly CE volume and per-fault-mode error series.  Published:
// 4,369,731 total CEs (~6/node/day); errors by fault mode: 1,412,738
// single-bit, 31,055 single-word, 54,126 single-column, 7,658 single-bank;
// the remaining ~2.86M attributable only to row-local patterns Astra's
// records cannot classify (§3.2); slight downward monthly trend.
// Fig. 4b: violin of errors per fault — median 1, maximum just over 91,000.
#include "common/bench_common.hpp"
#include "core/temporal.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 4 - errors and fault modes; errors-per-fault violin",
      "4.37M CEs total; mode errors 1.41M bit / 31k word / 54k col / 7.7k bank; "
      "~2.86M unattributable (no row info); median errors/fault = 1, max ~91k");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const auto& co = bundle.coalesced;

  using faultsim::ObservedMode;
  bench::PrintComparison("total CEs", WithThousands(co.total_errors), "4,369,731");
  const double per_node_day =
      static_cast<double>(co.total_errors) /
      (static_cast<double>(options.nodes) * bundle.config.window.DurationDays());
  bench::PrintComparison("CEs per node per day", FormatDouble(per_node_day, 2),
                         "~6");

  struct ModeRef { ObservedMode mode; const char* paper; };
  const ModeRef refs[] = {
      {ObservedMode::kSingleBit, "1,412,738"},
      {ObservedMode::kSingleWord, "31,055"},
      {ObservedMode::kSingleColumn, "54,126"},
      {ObservedMode::kSingleBank, "7,658"},
      {ObservedMode::kUnattributedRowLike, "~2,864,154 (unattributed remainder)"},
  };
  TextTable table({"Observed mode", "Faults", "Errors", "Paper errors"});
  for (const ModeRef& ref : refs) {
    table.AddRow({std::string(faultsim::ObservedModeName(ref.mode)),
                  WithThousands(co.FaultsOfMode(ref.mode)),
                  WithThousands(co.ErrorsOfMode(ref.mode)), ref.paper});
  }
  table.Print(std::cout);

  // Monthly series with trend.
  const core::MonthlyErrorSeries series = core::BuildMonthlySeries(
      bundle.result.memory_errors, co, bundle.config.window.begin,
      bundle.MonthCount());
  std::cout << "monthly CE series:";
  for (const auto m : series.all_errors) std::cout << ' ' << m;
  std::cout << '\n';
  bench::PrintComparison("monthly trend slope",
                         FormatDouble(series.TrendSlopePerMonth(), 1) + " CE/month",
                         "slightly downward");

  // Fig. 4b violin.
  const auto counts = co.ErrorsPerFault();
  std::vector<double> as_double(counts.begin(), counts.end());
  const stats::ViolinSummary violin = stats::Violin(as_double);
  std::cout << "errors-per-fault violin: min=" << FormatDouble(violin.min, 0)
            << " p5=" << FormatDouble(violin.p5, 0)
            << " q1=" << FormatDouble(violin.q1, 0)
            << " median=" << FormatDouble(violin.median, 0)
            << " q3=" << FormatDouble(violin.q3, 0)
            << " p95=" << FormatDouble(violin.p95, 0)
            << " max=" << FormatDouble(violin.max, 0) << '\n';
  bench::PrintComparison("median errors per fault", FormatDouble(violin.median, 0), "1");
  bench::PrintComparison("max errors per fault", FormatDouble(violin.max, 0),
                         "just over 91,000");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
