// Fig. 12: errors (a) and faults (b) per rack.  Published: isolated error
// spikes exist (rack 31 logged >2x any other rack's errors) but the spikes
// vanish in the fault counts — "a small number of faults may lead to a large
// number of errors; the number of faults is not strongly correlated with
// rack position".
#include <algorithm>

#include "common/bench_common.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 12 - errors and faults per rack",
      "error spikes (rack 31 >2x others) absent from fault counts; fault "
      "counts show no positional trend");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const core::PositionalAnalysis analysis = core::AnalyzePositions(
      bundle.result.memory_errors, bundle.coalesced, options.nodes);

  const int racks_in_run = (options.nodes + kNodesPerRack - 1) / kNodesPerRack;
  std::uint64_t max_fault = 1;
  for (int rack = 0; rack < racks_in_run; ++rack) {
    max_fault = std::max(max_fault, analysis.faults.per_rack[static_cast<std::size_t>(rack)]);
  }
  for (int rack = 0; rack < racks_in_run; ++rack) {
    std::cout << "  rack " << rack << "\terrors="
              << WithThousands(analysis.errors.per_rack[static_cast<std::size_t>(rack)])
              << "\tfaults=" << analysis.faults.per_rack[static_cast<std::size_t>(rack)]
              << "  "
              << AsciiBar(static_cast<double>(
                              analysis.faults.per_rack[static_cast<std::size_t>(rack)]),
                          static_cast<double>(max_fault), 24)
              << '\n';
  }

  // Spike statistics: max rack vs the median rack, for errors and faults.
  auto spike_ratio = [racks_in_run](const auto& per_rack) {
    std::vector<double> counts;
    for (int rack = 0; rack < racks_in_run; ++rack) {
      counts.push_back(static_cast<double>(per_rack[static_cast<std::size_t>(rack)]));
    }
    std::vector<double> sorted = counts;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    const double max = sorted.back();
    return median > 0.0 ? max / median : 0.0;
  };
  bench::PrintComparison("max/median rack ratio (errors)",
                         FormatDouble(spike_ratio(analysis.errors.per_rack), 1),
                         ">2 (rack 31 spike)");
  bench::PrintComparison("max/median rack ratio (faults)",
                         FormatDouble(spike_ratio(analysis.faults.per_rack), 1),
                         "~2 (mild variation, no error-style spike)");
  bench::PrintComparison(
      "per-rack fault uniformity",
      "V=" + FormatDouble(analysis.fault_uniformity.rack.cramers_v, 3) +
          (analysis.fault_uniformity.rack.ConsistentWithUniform() ? " (uniform)"
                                                                  : " (skewed)"),
      "\"no significant trends in the number of faults experienced by each rack\"");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
