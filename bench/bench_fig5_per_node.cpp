// Fig. 5a: histogram of fault counts per node (power-law shaped; most nodes
// 0 or 1 faults).  Fig. 5b: empirical CDF of CEs by node — 1013 nodes with
// >= 1 CE (>60% with none), top-8 nodes hold >50% of CEs, top 2% ~90%.
#include "common/bench_common.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 5 - per-node fault distribution and CE concentration",
      "power-law fault counts; 1013/2592 nodes with CEs; top-8 nodes >50% of "
      "CEs; top 2% of nodes ~90% of CEs");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const core::PositionalAnalysis analysis = core::AnalyzePositions(
      bundle.result.memory_errors, bundle.coalesced, options.nodes);

  // (a) frequency of per-node fault counts.
  std::cout << "(a) nodes by fault count (count -> nodes):\n";
  int shown = 0;
  for (const auto& [count, nodes] : analysis.faults_per_node_frequency.Counts()) {
    if (shown++ < 20 || count > 30) {
      std::cout << "  " << count << " -> " << nodes << '\n';
    }
  }
  const auto& fit = analysis.faults_per_node_fit;
  bench::PrintComparison(
      "faults/node power-law fit",
      "alpha=" + FormatDouble(fit.alpha, 2) + " xmin=" + std::to_string(fit.xmin) +
          " KS=" + FormatDouble(fit.ks_distance, 3) +
          (fit.PlausiblePowerLaw() ? " (plausible)" : " (strained)"),
      "\"closely resembles a power law distribution\"");

  // (b) concentration.
  const auto& curve = analysis.ce_concentration;
  const double node_scale = static_cast<double>(options.nodes) / kNumNodes;
  bench::PrintComparison("nodes with >= 1 CE",
                         WithThousands(analysis.nodes_with_errors) + " of " +
                             std::to_string(options.nodes),
                         "1013 of 2592 (>60% with none)");
  bench::PrintComparison("share of CEs held by top 8 nodes",
                         FormatDouble(100.0 * curve.ShareOfTop(static_cast<std::size_t>(
                                          std::max(1.0, 8 * node_scale))), 1) + "%",
                         ">50%");
  bench::PrintComparison(
      "share held by top 2% of nodes",
      FormatDouble(100.0 * curve.ShareOfTop(
                       static_cast<std::size_t>(0.02 * options.nodes)), 1) + "%",
      "~90%");
  bench::PrintComparison(
      "nodes needed for 50% of CEs",
      std::to_string(curve.EntitiesForShare(0.5)),
      "8 (at full scale)");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
