// Fig. 6: correctable errors and faults per CPU socket (a/d), DRAM bank
// (b/e) and memory column (c/f).  Published: ERROR counts look skewed, but
// FAULT counts are "fairly uniformly distributed and ... variation can be
// explained by statistical noise" — consistent with Sridharan et al., and
// resolving the apparent contradiction with Hwang et al.'s error-only view.
#include <algorithm>

#include "common/bench_common.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

template <typename Array>
void PrintAxis(const std::string& title, const Array& errors, const Array& faults,
               const stats::ChiSquareResult& error_test,
               const stats::ChiSquareResult& fault_test) {
  std::cout << title << '\n';
  std::uint64_t max_fault = 1;
  for (const auto f : faults) max_fault = std::max<std::uint64_t>(max_fault, f);
  for (std::size_t i = 0; i < errors.size(); ++i) {
    std::cout << "  [" << i << "]\terrors=" << WithThousands(errors[i])
              << "\tfaults=" << faults[i] << "  "
              << AsciiBar(static_cast<double>(faults[i]),
                          static_cast<double>(max_fault), 28)
              << '\n';
  }
  bench::PrintComparison(
      title + " ERROR uniformity (Cramers V, p)",
      "V=" + FormatDouble(error_test.cramers_v, 3) +
          " p=" + FormatDouble(error_test.p_value, 4) +
          (error_test.ConsistentWithUniform() ? " (uniform)" : " (skewed)"),
      "skewed when counting errors");
  bench::PrintComparison(
      title + " FAULT uniformity (Cramers V, p)",
      "V=" + FormatDouble(fault_test.cramers_v, 3) +
          " p=" + FormatDouble(fault_test.p_value, 4) +
          (fault_test.ConsistentWithUniform() ? " (uniform)" : " (skewed)"),
      "uniform (noise-level variation)");
}

}  // namespace

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 6 - errors vs faults per socket / bank / column",
      "error counts skewed; fault counts uniform across all three structures");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const core::PositionalAnalysis analysis = core::AnalyzePositions(
      bundle.result.memory_errors, bundle.coalesced, options.nodes);

  PrintAxis("(a/d) CPU socket", analysis.errors.per_socket, analysis.faults.per_socket,
            analysis.error_uniformity.socket, analysis.fault_uniformity.socket);
  PrintAxis("(b/e) DRAM bank", analysis.errors.per_bank, analysis.faults.per_bank,
            analysis.error_uniformity.bank, analysis.fault_uniformity.bank);
  PrintAxis("(c/f) memory column (32 buckets)", analysis.errors.per_column_bucket,
            analysis.faults.per_column_bucket, analysis.error_uniformity.column,
            analysis.fault_uniformity.column);
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
