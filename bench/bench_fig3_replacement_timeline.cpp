// Fig. 3: "Distribution of hardware replacements by day" for (a) processors,
// (b) motherboards, (c) DRAM DIMMs.  Published shape: infant-mortality spike
// at bring-up for all three; a large mid-campaign processor wave (the
// memory-controller speed upgrade); DIMM cooling-issue wave plus a steady
// aging tail; end-of-period vendor-visit spikes.
#include "common/bench_common.hpp"
#include "core/replacement_analysis.hpp"
#include "replace/replacement_sim.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

void PrintWeeklySeries(const std::string& title,
                       const core::ReplacementAnalysis::KindSummary& summary,
                       TimeWindow tracking) {
  std::cout << title << "  total=" << summary.replaced << "  peak day index="
            << summary.peak_day << '\n';
  // Aggregate to weeks for a readable ASCII series.
  std::vector<double> weekly((summary.daily.size() + 6) / 7, 0.0);
  for (std::size_t d = 0; d < summary.daily.size(); ++d) {
    weekly[d / 7] += static_cast<double>(summary.daily[d]);
  }
  double peak = 0.0;
  for (const double w : weekly) peak = std::max(peak, w);
  for (std::size_t w = 0; w < weekly.size(); ++w) {
    const SimTime week_start = tracking.begin.AddDays(static_cast<std::int64_t>(w) * 7);
    std::cout << "  " << week_start.ToDateString() << "  "
              << FormatDouble(weekly[w], 0) << "\t"
              << AsciiBar(weekly[w], peak, 44) << '\n';
  }
}

}  // namespace

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 3 - daily hardware replacements (weekly aggregation shown)",
      "infant mortality at bring-up; CPU speed-upgrade wave mid-campaign; DIMM "
      "cooling wave + aging tail; vendor-visit end spike");

  auto config = replace::ReplacementSimConfig::AstraDefaults();
  config.seed = options.seed;
  config.node_count = options.nodes;
  const replace::ReplacementSimulator simulator(config);
  const auto campaign = simulator.Run();
  const core::ReplacementAnalysis analysis =
      core::AnalyzeReplacements(campaign.events, config.tracking, options.nodes);

  PrintWeeklySeries("(a) Processors", analysis.Of(logs::ComponentKind::kProcessor),
                    config.tracking);
  PrintWeeklySeries("(b) Motherboards", analysis.Of(logs::ComponentKind::kMotherboard),
                    config.tracking);
  PrintWeeklySeries("(c) DRAM DIMMs", analysis.Of(logs::ComponentKind::kDimm),
                    config.tracking);

  bench::PrintComparison("processor peak location",
                         "day " + std::to_string(analysis.Of(
                             logs::ComponentKind::kProcessor).peak_day),
                         "mid-campaign (speed-upgrade wave, ~Jun/Jul)");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
