// Streaming-vs-batch pipeline throughput.  The streaming subsystem buys
// incremental reports and checkpointing; this harness measures what that
// costs against the batch pipeline over the same campaign, at three
// delivery granularities:
//
//   replay  - the whole file exists up front; one Finish() pass (the
//             streaming path doing batch's job)
//   1k      - the producer appends 1000 records per poll (a realistic
//             follow cadence)
//   1       - one record per poll (the pathological worst case: every poll
//             pays a fresh mmap + analyzer step for a single line)
//
// The consumer-side seconds (Poll/Finish/Artifacts only — producer appends
// excluded) are written to BENCH_stream.json for CI tracking, alongside the
// batch baseline over the identical records.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/dataset.hpp"
#include "core/report.hpp"
#include "faultsim/fleet.hpp"
#include "logs/serialize.hpp"
#include "stream/monitor.hpp"

namespace astra {
namespace {

constexpr std::int64_t kReplay = 0;  // sentinel granularity: all-at-once

// Median-of-repetitions (see bench_analyzer_engine.cpp): one sample per
// benchmark repetition; BENCH_stream.json reports the median per-rep rate so
// a single noisy rep cannot move the number the CI gate compares.
constexpr int kSweepRepetitions = 5;

const faultsim::CampaignResult& SharedCampaign() {
  static const faultsim::CampaignResult result = [] {
    faultsim::CampaignConfig config;
    config.SeedFrom(1);
    config.node_count = 400;
    return faultsim::FleetSimulator(config).Run();
  }();
  return result;
}

const std::vector<std::string>& SharedMemoryLines() {
  static const std::vector<std::string> lines = [] {
    std::vector<std::string> formatted;
    formatted.reserve(SharedCampaign().memory_errors.size());
    for (const auto& r : SharedCampaign().memory_errors) {
      formatted.push_back(logs::FormatRecord(r));
    }
    return formatted;
  }();
  return lines;
}

// The batch baseline dataset, written once.
const core::DatasetPaths& SharedBatchDir() {
  static const core::DatasetPaths paths = [] {
    const auto dir =
        (std::filesystem::temp_directory_path() / "astra_bench_stream_batch")
            .string();
    std::filesystem::create_directories(dir);
    auto p = core::DatasetPaths::InDirectory(dir);
    if (!core::WriteFailureData(p, SharedCampaign())) p.memory_errors.clear();
    return p;
  }();
  return paths;
}

// granularity (kReplay / 1000 / 1 / -1 for batch) -> one {consumer seconds,
// records} sample per repetition.
using SweepSamples = std::vector<std::pair<double, std::int64_t>>;
std::map<std::int64_t, SweepSamples>& SweepResults() {
  static std::map<std::int64_t, SweepSamples> results;
  return results;
}

double MedianRate(const SweepSamples& samples) {
  std::vector<double> rates;
  rates.reserve(samples.size());
  for (const auto& [seconds, records] : samples) {
    if (seconds > 0.0 && records > 0) {
      rates.push_back(static_cast<double>(records) / seconds);
    }
  }
  if (rates.empty()) return 0.0;
  std::sort(rates.begin(), rates.end());
  return rates[rates.size() / 2];
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void BM_BatchPipeline(benchmark::State& state) {
  const auto& paths = SharedBatchDir();
  if (paths.memory_errors.empty()) {
    state.SkipWithError("failed writing the shared dataset");
    return;
  }
  double seconds = 0.0;
  std::int64_t records = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const auto ingest = core::IngestFailureData(paths, logs::IngestPolicy{});
    NodeId max_node = 0;
    SimTime lo = ingest.memory_errors.front().timestamp;
    SimTime hi = lo;
    for (const auto& r : ingest.memory_errors) {
      max_node = std::max(max_node, r.node);
      lo = std::min(lo, r.timestamp);
      hi = std::max(hi, r.timestamp);
    }
    SimTime het_start = hi;
    for (const auto& r : ingest.het_events) {
      het_start = std::min(het_start, r.timestamp);
    }
    const auto artifacts = core::BuildAnalysisArtifacts(
        ingest.memory_errors, ingest.het_events, max_node + 1,
        {lo, hi.AddSeconds(1)}, het_start, &ingest.quality);
    seconds += SecondsSince(start);
    records += static_cast<std::int64_t>(artifacts.record_count);
    benchmark::DoNotOptimize(artifacts.record_count);
  }
  state.SetItemsProcessed(records);
  SweepResults()[-1].push_back({seconds, records});
}
BENCHMARK(BM_BatchPipeline)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5)
    ->Repetitions(kSweepRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseRealTime();

void BM_StreamingPipeline(benchmark::State& state) {
  const std::int64_t granularity = state.range(0);
  const auto& lines = SharedMemoryLines();
  // Per-record polling pays a full mmap per line; cap the slice so a single
  // iteration stays in benchmark territory rather than minutes.
  const std::size_t limit = granularity == 1
                                ? std::min<std::size_t>(5000, lines.size())
                                : lines.size();
  const std::size_t step =
      granularity == kReplay ? limit : static_cast<std::size_t>(granularity);

  double seconds = 0.0;
  std::int64_t records = 0;
  int pass = 0;
  for (auto _ : state) {
    const auto dir = std::filesystem::temp_directory_path() /
                     ("astra_bench_stream_g" + std::to_string(granularity) +
                      "_" + std::to_string(pass++));
    std::filesystem::create_directories(dir);
    const auto paths = core::DatasetPaths::InDirectory(dir.string());
    stream::StreamMonitor monitor(paths, stream::MonitorConfig{});

    std::ofstream out(paths.memory_errors, std::ios::binary);
    out << logs::MemoryErrorHeader() << '\n';
    for (std::size_t at = 0; at < limit; at += step) {
      const std::size_t end = std::min(limit, at + step);
      for (std::size_t i = at; i < end; ++i) out << lines[i] << '\n';
      out.flush();
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(monitor.Poll());
      seconds += SecondsSince(start);
    }
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(monitor.Finish());
    const auto artifacts = monitor.Artifacts();
    seconds += SecondsSince(start);
    benchmark::DoNotOptimize(artifacts.record_count);
    records += static_cast<std::int64_t>(monitor.Delivered());

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  state.SetItemsProcessed(records);
  state.counters["polls"] =
      static_cast<double>((limit + step - 1) / step) ;
  SweepResults()[granularity].push_back({seconds, records});
}
BENCHMARK(BM_StreamingPipeline)
    ->Arg(kReplay)->Arg(1000)->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.5)
    ->Repetitions(kSweepRepetitions)
    ->ReportAggregatesOnly(true)
    ->UseRealTime();

// BENCH_stream.json: consumer-side records/s per granularity plus the batch
// baseline and the streaming/batch throughput ratio.  Hand-rolled JSON — a
// handful of numeric fields don't justify a dependency.
void WriteStreamSweepJson(const std::string& path) {
  const auto& results = SweepResults();
  if (results.empty()) return;  // filtered out by --benchmark_filter
  const auto NameOf = [](std::int64_t granularity) -> std::string {
    if (granularity == -1) return "batch";
    if (granularity == kReplay) return "stream_replay";
    return "stream_per_" + std::to_string(granularity);
  };
  double batch_rate = 0.0;
  if (const auto it = results.find(-1); it != results.end()) {
    batch_rate = MedianRate(it->second);
  }
  std::ofstream out(path);
  out << "{\n  \"campaign_records\": " << SharedCampaign().memory_errors.size()
      << ",\n  \"reps\": " << kSweepRepetitions << ",\n  \"sweep\": [\n";
  bool first = true;
  for (const auto& [granularity, samples] : results) {
    const double rate = MedianRate(samples);
    if (rate <= 0.0) continue;
    double seconds = 0.0;
    std::int64_t records = 0;
    for (const auto& [s, r] : samples) {
      seconds += s;
      records += r;
    }
    out << (first ? "" : ",\n") << "    {\"pipeline\": \"" << NameOf(granularity)
        << "\", \"records\": " << records << ", \"consumer_seconds\": " << seconds
        << ", \"records_per_s\": " << rate << ", \"throughput_vs_batch\": "
        << (batch_rate > 0.0 ? rate / batch_rate : 0.0) << "}";
    first = false;
  }
  out << "\n  ]\n}\n";
  std::fprintf(stderr, "wrote streaming sweep to %s\n", path.c_str());
}

}  // namespace
}  // namespace astra

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  astra::WriteStreamSweepJson("BENCH_stream.json");
  std::error_code ec;
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "astra_bench_stream_batch", ec);
  return 0;
}
