// astra_serve load test: N producer threads replay a campaign into N node
// streams while query clients hammer the daemon's HTTP API, for N in
// {1, 4, 36}.  Two throughput numbers per stream count, medians over
// repetitions, written to BENCH_serve.json for the CI bench gate:
//
//   serve_ingest_records_per_s  - records delivered through the whole
//                                 tail -> engine -> merge pipeline per
//                                 wall-clock second, producers included
//   serve_query_qps             - /fleet/report + /stats queries answered
//                                 over loopback HTTP during that same
//                                 ingest window
//
// The sweep ends each run with Drain() and asserts the fleet saw every
// record, so a rate here is a rate over CORRECT output — dropping records
// can never look like a speedup.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "faultsim/fleet.hpp"
#include "logs/serialize.hpp"
#include "serve/daemon.hpp"
#include "serve/fleet_dataset.hpp"
#include "serve/http.hpp"

namespace astra {
namespace {

struct BenchOptions {
  int campaign_nodes = 400;
  int reps = 5;
  std::uint64_t seed = 1;
};

struct RunSample {
  std::int64_t records = 0;
  double ingest_seconds = 0.0;
  std::int64_t queries = 0;
  // Fixed-work query pass against the quiesced (drained, report-cached)
  // daemon: the steady-state serving rate, free of ingest contention.
  double quiesced_qps = 0.0;
};

// streams -> serving topology (racks x nodes_per_rack == streams).
const std::map<int, serve::ServeTopology>& StreamShapes() {
  static const std::map<int, serve::ServeTopology> shapes = {
      {1, {1, 1}}, {4, {2, 2}}, {36, {6, 6}}};
  return shapes;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One producer: append `lines` to `path` in batches, flushing each batch so
// the monitor's next poll can see it — a syslog forwarder's write pattern.
void ProduceStream(const std::string& path,
                   const std::vector<const std::string*>& lines) {
  constexpr std::size_t kBatch = 500;
  std::ofstream out(path, std::ios::binary | std::ios::app);
  for (std::size_t at = 0; at < lines.size(); at += kBatch) {
    const std::size_t end = std::min(lines.size(), at + kBatch);
    for (std::size_t i = at; i < end; ++i) out << *lines[i] << '\n';
    out.flush();
  }
}

// The daemon's delivered count after a drain, for any stream split, must
// equal the one-stream batch count (dedup happens per node, and the split
// keeps a node's records together).  Computed once per campaign.
std::uint64_t ExpectedDelivered(const faultsim::CampaignResult& campaign) {
  const auto dir =
      std::filesystem::temp_directory_path() / "astra_bench_serve_oracle";
  std::filesystem::remove_all(dir);
  if (!serve::WriteCombinedDataset(campaign, dir.string())) return 0;
  stream::StreamMonitor monitor(core::DatasetPaths::InDirectory(dir.string()),
                                stream::MonitorConfig{});
  (void)monitor.Finish();
  const std::uint64_t delivered = monitor.Delivered();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return delivered;
}

RunSample RunOnce(const faultsim::CampaignResult& campaign,
                  std::uint64_t expected_delivered,
                  const serve::ServeTopology& topology, int pass) {
  const int nodes = topology.NodeCount();
  const auto root = std::filesystem::temp_directory_path() /
                    ("astra_bench_serve_n" + std::to_string(nodes) + "_" +
                     std::to_string(pass));
  std::filesystem::remove_all(root);

  // Route records by node id modulo the stream count — the same split
  // WriteFleetDataset uses, so the daemon's merged view covers everything.
  std::vector<std::string> memory_lines;
  memory_lines.reserve(campaign.memory_errors.size());
  for (const auto& record : campaign.memory_errors) {
    memory_lines.push_back(logs::FormatRecord(record));
  }
  std::vector<std::vector<const std::string*>> per_node(
      static_cast<std::size_t>(nodes));
  for (std::size_t i = 0; i < campaign.memory_errors.size(); ++i) {
    const int node = static_cast<int>(campaign.memory_errors[i].node) % nodes;
    per_node[static_cast<std::size_t>(node)].push_back(&memory_lines[i]);
  }

  // Headers and the (static) het stream exist before the daemon starts; the
  // memory stream is what the producers replay live.
  for (int node = 0; node < nodes; ++node) {
    const std::string dir = serve::NodeDir(root.string(), node);
    std::filesystem::create_directories(dir);
    const auto paths = core::DatasetPaths::InDirectory(dir);
    std::ofstream memory(paths.memory_errors, std::ios::binary);
    memory << logs::MemoryErrorHeader() << '\n';
    std::ofstream het(paths.het_events, std::ios::binary);
    het << logs::HetHeader() << '\n';
    for (const auto& record : campaign.het_records) {
      if (static_cast<int>(record.node) % nodes == node) {
        het << logs::FormatRecord(record) << '\n';
      }
    }
  }

  serve::ServeOptions options;
  options.root = root.string();
  options.topology = topology;
  options.poll_ms = 1;
  options.merge_ms = 5;
  options.pollers = 4;
  RunSample sample;
  serve::ServeDaemon daemon(options);
  std::string error;
  if (!daemon.Init(&error) || !daemon.StartServing()) {
    std::fprintf(stderr, "bench_serve: daemon failed: %s\n", error.c_str());
    return sample;
  }
  serve::HttpServer server;
  if (!server.Start(serve::MakeDaemonHandler(daemon), 0, 2)) {
    std::fprintf(stderr, "bench_serve: http server failed to start\n");
    return sample;
  }

  // Query clients hammer the API for the whole ingest window.
  std::atomic<bool> stop_queries{false};
  std::atomic<std::int64_t> queries{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      const std::string path = c == 0 ? "/fleet/report" : "/stats";
      while (!stop_queries.load()) {
        const auto result =
            serve::HttpFetch("127.0.0.1", server.Port(), "GET", path);
        if (result && result->status == 200) queries.fetch_add(1);
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(nodes));
  for (int node = 0; node < nodes; ++node) {
    const auto paths =
        core::DatasetPaths::InDirectory(serve::NodeDir(root.string(), node));
    producers.emplace_back(ProduceStream, paths.memory_errors,
                           per_node[static_cast<std::size_t>(node)]);
  }
  for (auto& producer : producers) producer.join();
  daemon.StopServing();
  const std::size_t missing = daemon.Drain();  // deliver the reorder tails
  sample.ingest_seconds = SecondsSince(start);

  stop_queries = true;
  for (auto& client : clients) client.join();
  server.Stop();

  if (missing != 0) {
    std::fprintf(stderr, "bench_serve: %zu streams unreadable\n", missing);
    return RunSample{};
  }
  // A rate is only meaningful over correct output: the drained fleet must
  // deliver exactly what the one-stream batch pass delivers.
  const std::string stats = daemon.StatsJson();
  const std::string expected =
      "\"delivered\": " + std::to_string(expected_delivered);
  if (stats.find(expected) == std::string::npos) {
    std::fprintf(stderr, "bench_serve: delivery mismatch (want %llu): %s",
                 static_cast<unsigned long long>(expected_delivered),
                 stats.c_str());
    return RunSample{};
  }
  sample.records = static_cast<std::int64_t>(expected_delivered);
  sample.queries = queries.load();

  // Steady state: the fleet is final and the report cache is warm, so this
  // measures the HTTP + cache path alone.  Fixed work, not fixed time.
  constexpr int kQuiescedQueries = 250;
  serve::HttpServer quiet_server;
  if (quiet_server.Start(serve::MakeDaemonHandler(daemon), 0, 2)) {
    (void)serve::HttpFetch("127.0.0.1", quiet_server.Port(), "GET",
                           "/fleet/report");  // warm the cache
    const auto quiesced_start = std::chrono::steady_clock::now();
    std::vector<std::thread> quiet_clients;
    for (int c = 0; c < 2; ++c) {
      quiet_clients.emplace_back([&, c] {
        const std::string path = c == 0 ? "/fleet/report" : "/stats";
        for (int i = 0; i < kQuiescedQueries; ++i) {
          (void)serve::HttpFetch("127.0.0.1", quiet_server.Port(), "GET",
                                 path);
        }
      });
    }
    for (auto& client : quiet_clients) client.join();
    const double seconds = SecondsSince(quiesced_start);
    if (seconds > 0.0) sample.quiesced_qps = 2.0 * kQuiescedQueries / seconds;
    quiet_server.Stop();
  }

  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  return sample;
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

int Run(const BenchOptions& options) {
  faultsim::CampaignConfig config;
  config.SeedFrom(options.seed);
  config.node_count = options.campaign_nodes;
  const auto campaign = faultsim::FleetSimulator(config).Run();
  const std::uint64_t expected_delivered = ExpectedDelivered(campaign);
  if (expected_delivered == 0) {
    std::fprintf(stderr, "bench_serve: oracle pass failed\n");
    return 1;
  }
  std::fprintf(stderr,
               "bench_serve: campaign of %zu memory records (%llu delivered)\n",
               campaign.memory_errors.size(),
               static_cast<unsigned long long>(expected_delivered));

  std::string sweep_json;
  bool first = true;
  for (const auto& [streams, topology] : StreamShapes()) {
    std::vector<double> ingest_rates;
    std::vector<double> qps;
    std::vector<double> quiesced;
    std::int64_t records = 0;
    std::int64_t queries = 0;
    for (int rep = 0; rep < options.reps; ++rep) {
      const RunSample sample =
          RunOnce(campaign, expected_delivered, topology, rep);
      if (sample.records == 0 || sample.ingest_seconds <= 0.0) return 1;
      ingest_rates.push_back(static_cast<double>(sample.records) /
                             sample.ingest_seconds);
      qps.push_back(static_cast<double>(sample.queries) /
                    sample.ingest_seconds);
      quiesced.push_back(sample.quiesced_qps);
      records += sample.records;
      queries += sample.queries;
    }
    const double ingest = Median(ingest_rates);
    const double query_qps = Median(qps);
    const double quiesced_qps = Median(quiesced);
    std::fprintf(stderr,
                 "bench_serve: streams=%d ingest=%.0f records/s "
                 "live_qps=%.0f quiesced_qps=%.0f\n",
                 streams, ingest, query_qps, quiesced_qps);
    sweep_json += first ? "" : ",\n";
    sweep_json += "    {\"streams\": " + std::to_string(streams) +
                  ", \"records\": " + std::to_string(records) +
                  ", \"queries\": " + std::to_string(queries) +
                  ", \"ingest_records_per_s\": " + std::to_string(ingest) +
                  ", \"query_qps\": " + std::to_string(query_qps) +
                  ", \"quiesced_qps\": " + std::to_string(quiesced_qps) + "}";
    first = false;
  }

  std::ofstream out("BENCH_serve.json");
  out << "{\n  \"campaign_records\": " << campaign.memory_errors.size()
      << ",\n  \"reps\": " << options.reps << ",\n  \"sweep\": [\n"
      << sweep_json << "\n  ]\n}\n";
  std::fprintf(stderr, "wrote serve sweep to BENCH_serve.json\n");
  return 0;
}

}  // namespace
}  // namespace astra

int main(int argc, char** argv) {
  astra::BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.campaign_nodes = 100;
      options.reps = 3;
    } else if (arg.rfind("--nodes=", 0) == 0) {
      options.campaign_nodes = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--reps=", 0) == 0) {
      options.reps = std::atoi(arg.c_str() + 7);
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--quick] [--nodes=N] [--reps=N]\n");
      return 1;
    }
  }
  if (options.campaign_nodes < 1 || options.reps < 1) {
    std::fprintf(stderr, "bench_serve: --nodes and --reps must be >= 1\n");
    return 1;
  }
  return astra::Run(options);
}
