// Extension bench: availability impact of memory failures, and the chipkill
// counterfactual.  Converts the campaign's error log into lost node-hours
// (DUE crashes + CE-storm degradation, §3.2's "significant performance
// implications [18, 24]") and asks what fraction of the crash cost Astra's
// SEC-DED-instead-of-chipkill decision (§2.2) actually bought.
#include "common/bench_common.hpp"
#include "core/impact.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Extension - availability impact and the chipkill counterfactual",
      "memory failures cost node-hours through DUE crashes and CE storms; "
      "most DUE crashes were single-device patterns chipkill would absorb");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const core::ImpactConfig config;
  const core::ImpactAnalysis analysis = core::AnalyzeImpact(
      bundle.result.memory_errors, bundle.config.window, options.nodes, config);

  TextTable table({"Quantity", "Value"});
  table.AddRow({"campaign node-hours",
                WithThousands(static_cast<std::uint64_t>(analysis.total_node_hours))});
  table.AddRow({"DUE crashes", WithThousands(analysis.due_events)});
  table.AddRow({"node-hours lost to DUE crashes",
                FormatDouble(analysis.node_hours_lost_to_dues, 1)});
  table.AddRow({"CE-storm node-hours (>=" +
                    std::to_string(config.storm_ces_per_hour) + " CE/h)",
                WithThousands(analysis.storm_node_hours)});
  table.AddRow({"node-hours lost to storms",
                FormatDouble(analysis.node_hours_lost_to_storms, 1)});
  table.AddRow({"availability",
                FormatDouble(100.0 * analysis.availability, 5) + "%"});
  table.AddRow({"DUEs with prior multi-bit CE signature",
                WithThousands(analysis.dues_avoidable_with_chipkill)});
  table.AddRow({"node-hours chipkill would have saved",
                FormatDouble(analysis.node_hours_saved_by_chipkill, 1)});
  table.Print(std::cout);

  const double avoidable =
      analysis.due_events == 0
          ? 0.0
          : 100.0 * static_cast<double>(analysis.dues_avoidable_with_chipkill) /
                static_cast<double>(analysis.due_events);
  bench::PrintComparison(
      "crash fraction avoidable with chipkill",
      FormatDouble(avoidable, 1) + "%",
      "§3.2: multi-bit (single-device) faults are what SEC-DED escalates to "
      "DUEs; chipkill corrects them (§2.2 tradeoff)");
  bench::PrintComparison(
      "storm cost vs crash cost",
      FormatDouble(analysis.node_hours_lost_to_storms, 1) + " vs " +
          FormatDouble(analysis.node_hours_lost_to_dues, 1) + " node-hours",
      "§3.2: correctable errors also carry performance cost [18, 24]");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
