// Fig. 14: "Effect of Utilization on Correctable Error Rate" — monthly node
// DC power (the utilization proxy) deciles vs CE rate, split into hot/cold
// halves by each sensor's median temperature.  Published: power is not
// strongly correlated with CE rate; hot samples sit right of cold samples in
// power (temperature follows utilization); for equal power, hot samples
// often — but not universally — show higher rates.
#include "common/bench_common.hpp"
#include "core/temperature.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

void PrintSplit(const std::string& name, const core::SensorDecileSeries& series) {
  std::cout << name << " (median T=" << FormatDouble(series.median_temperature, 1)
            << " degC):\n";
  const auto print_one = [](const char* label, const stats::DecileSeries& s) {
    std::cout << "    " << label << " W:  ";
    for (const auto& bucket : s.buckets) std::cout << ' ' << FormatDouble(bucket.x_max, 0);
    std::cout << "\n    " << label << " CE: ";
    for (const auto& bucket : s.buckets) std::cout << ' ' << FormatDouble(bucket.y_mean, 2);
    std::cout << "  (slope=" << FormatDouble(s.TrendSlope(), 4) << ")\n";
  };
  print_one("hot ", series.by_power_hot);
  print_one("cold", series.by_power_cold);
}

double MeanPowerOf(const stats::DecileSeries& series) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& bucket : series.buckets) {
    sum += bucket.x_mean * static_cast<double>(bucket.count);
    n += bucket.count;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 14 - power (utilization proxy) deciles vs CE rate, hot/cold split",
      "no strong power-CE correlation; hot samples shifted right in power");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  core::TemperatureAnalysisConfig config;
  config.lookback_seconds = {};
  config.mean_samples = options.quick ? 32 : 128;
  const core::TemperatureAnalyzer analyzer(config, &bundle.environment);
  const core::TemperatureAnalysis analysis =
      analyzer.Analyze(bundle.result.memory_errors, options.nodes);

  int increasing = 0;
  double hot_minus_cold_power = 0.0;
  for (const auto& deciles : analysis.deciles) {
    PrintSplit(std::string(SensorKindName(deciles.sensor)), deciles);
    increasing += deciles.by_power_hot.MonotonicallyIncreasing();
    increasing += deciles.by_power_cold.MonotonicallyIncreasing();
    hot_minus_cold_power +=
        MeanPowerOf(deciles.by_power_hot) - MeanPowerOf(deciles.by_power_cold);
  }
  hot_minus_cold_power /= kTempSensorsPerNode;

  bench::PrintComparison("series with increasing CE-vs-power trend",
                         std::to_string(increasing) + " of 12",
                         "none systematic (\"not a strong relationship\")");
  bench::PrintComparison("mean power shift of hot vs cold samples",
                         FormatDouble(hot_minus_cold_power, 1) + " W",
                         "positive (hot samples shifted right)");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
