// Extension bench: temporal dispersion of the CE stream vs the fault-onset
// stream.  Quantifies the paper's §2.3 logging caveat from the demand side:
// CE arrivals are orders of magnitude more bursty than Poisson, which is
// exactly why a small fixed CE log buffer drops errors while a naive
// Poisson-sized buffer would look adequate on paper.
#include "common/bench_common.hpp"
#include "core/burstiness.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Extension - burstiness of errors vs faults",
      "error arrivals are super-Poisson (fault replay); fault onsets are "
      "near-Poisson — the errors/faults distinction in time");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);

  std::vector<SimTime> ce_times;
  ce_times.reserve(bundle.result.memory_errors.size());
  for (const auto& r : bundle.result.memory_errors) {
    if (r.type == logs::FailureType::kCorrectable) ce_times.push_back(r.timestamp);
  }
  std::vector<SimTime> fault_onsets;
  for (const auto& fault : bundle.result.faults) fault_onsets.push_back(fault.start);
  std::vector<SimTime> observed_fault_onsets;
  for (const auto& fault : bundle.coalesced.faults) {
    observed_fault_onsets.push_back(fault.first_seen);
  }

  struct Row {
    const char* name;
    core::BurstinessAnalysis analysis;
  };
  const Row rows[] = {
      {"CE records (hourly windows)",
       core::AnalyzeBurstiness(ce_times, bundle.config.window,
                               SimTime::kSecondsPerHour)},
      {"fault onsets, ground truth (daily)",
       core::AnalyzeBurstiness(fault_onsets, bundle.config.window,
                               SimTime::kSecondsPerDay)},
      {"fault first-seen, observed (daily)",
       core::AnalyzeBurstiness(observed_fault_onsets, bundle.config.window,
                               SimTime::kSecondsPerDay)},
  };

  TextTable table({"Stream", "Events", "Mean/window", "Max/window", "Fano factor",
                   "Interarrival CV^2", "Verdict"});
  for (const Row& row : rows) {
    const auto& a = row.analysis;
    table.AddRow({row.name, WithThousands(a.events),
                  FormatDouble(a.mean_per_window, 1),
                  FormatDouble(a.max_window_count, 0), FormatDouble(a.fano_factor, 1),
                  FormatDouble(a.interarrival_cv2, 1),
                  a.SuperPoisson() ? "super-Poisson" : "Poisson-like"});
  }
  table.Print(std::cout);

  bench::PrintComparison(
      "dispersion contrast",
      "CE Fano factor exceeds fault-onset Fano by orders of magnitude",
      "errors replay from few faults (Figs. 4b/5b); defects arrive "
      "independently (Fig. 5a power law over near-Poisson arrivals)");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
