// Fig. 7: errors and faults per memory rank (a/b) and per DIMM slot (c/d).
// Published: rank 0 experiences more faults (and errors) than rank 1; slots
// J, E, I, P lead while A, K, L, M, N trail — positional, not noise.
#include <algorithm>

#include "common/bench_common.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 7 - errors and faults per rank and per DIMM slot",
      "rank 0 > rank 1; slots J,E,I,P highest and A,K,L,M,N lowest fault counts");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const core::PositionalAnalysis analysis = core::AnalyzePositions(
      bundle.result.memory_errors, bundle.coalesced, options.nodes);

  std::cout << "(a/b) per rank:\n";
  for (int r = 0; r < kRanksPerDimm; ++r) {
    std::cout << "  rank " << r << "\terrors="
              << WithThousands(analysis.errors.per_rank[static_cast<std::size_t>(r)])
              << "\tfaults="
              << analysis.faults.per_rank[static_cast<std::size_t>(r)] << '\n';
  }
  const double rank_ratio =
      static_cast<double>(analysis.faults.per_rank[0]) /
      std::max<std::uint64_t>(1, analysis.faults.per_rank[1]);
  bench::PrintComparison("rank0/rank1 fault ratio", FormatDouble(rank_ratio, 2),
                         ">1 (rank zero seems to experience more faults)");

  std::cout << "(c/d) per DIMM slot:\n";
  std::uint64_t max_fault = 1;
  for (const auto f : analysis.faults.per_slot) {
    max_fault = std::max<std::uint64_t>(max_fault, f);
  }
  for (int s = 0; s < kDimmSlotCount; ++s) {
    const auto slot = static_cast<DimmSlot>(s);
    std::cout << "  slot " << DimmSlotLetter(slot) << "\terrors="
              << WithThousands(analysis.errors.per_slot[static_cast<std::size_t>(s)])
              << "\tfaults=" << analysis.faults.per_slot[static_cast<std::size_t>(s)]
              << "  "
              << AsciiBar(static_cast<double>(
                              analysis.faults.per_slot[static_cast<std::size_t>(s)]),
                          static_cast<double>(max_fault), 28)
              << '\n';
  }

  // Rank order of slots by fault count: top-4 and bottom-5 sets.
  std::vector<int> order(kDimmSlotCount);
  for (int i = 0; i < kDimmSlotCount; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return analysis.faults.per_slot[static_cast<std::size_t>(a)] >
           analysis.faults.per_slot[static_cast<std::size_t>(b)];
  });
  std::string top4, bottom5;
  for (int i = 0; i < 4; ++i) top4 += DimmSlotLetter(static_cast<DimmSlot>(order[static_cast<std::size_t>(i)]));
  for (int i = kDimmSlotCount - 5; i < kDimmSlotCount; ++i) {
    bottom5 += DimmSlotLetter(static_cast<DimmSlot>(order[static_cast<std::size_t>(i)]));
  }
  std::sort(top4.begin(), top4.end());
  std::sort(bottom5.begin(), bottom5.end());
  bench::PrintComparison("top-4 slots by faults", top4, "E,I,J,P");
  bench::PrintComparison("bottom-5 slots by faults", bottom5, "A,K,L,M,N");
  bench::PrintComparison(
      "slot uniformity (Cramers V)",
      FormatDouble(analysis.fault_uniformity.slot.cramers_v, 3),
      "clearly non-uniform (some slots experience more faults)");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
