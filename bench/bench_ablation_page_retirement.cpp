// Ablation: page retirement on/off (§3.2 credits page retirement for the
// low errors-per-fault median and the declining trend).  Runs the same
// campaign with the mitigation enabled and disabled and reports the logged
// CE volume, the errors-per-fault tail, and the retired-page footprint.
#include <algorithm>

#include "common/bench_common.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

struct RunSummary {
  std::uint64_t ces = 0;
  std::uint64_t faults = 0;
  double median_epf = 0.0;
  double p99_epf = 0.0;
  std::uint64_t max_epf = 0;
  std::uint64_t pages_retired = 0;
  std::uint64_t suppressed = 0;
};

RunSummary RunOne(const bench::BenchOptions& options, bool retirement_enabled) {
  faultsim::CampaignConfig config;
  config.SeedFrom(options.seed);
  config.node_count = options.nodes;
  config.mitigation.retirement.enabled = retirement_enabled;
  const auto result = faultsim::FleetSimulator(config).Run();
  const auto coalesced = core::FaultCoalescer::Coalesce(result.memory_errors);

  RunSummary summary;
  summary.ces = result.total_ces;
  summary.faults = coalesced.faults.size();
  const auto counts = coalesced.ErrorsPerFault();
  std::vector<double> as_double(counts.begin(), counts.end());
  summary.median_epf = stats::Median(as_double);
  summary.p99_epf = stats::Quantile(as_double, 0.99);
  summary.max_epf = *std::max_element(counts.begin(), counts.end());
  summary.pages_retired = result.retirement_stats.pages_retired;
  summary.suppressed = result.retirement_stats.suppressed_errors;
  return summary;
}

}  // namespace

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Ablation - page retirement enabled vs disabled",
      "§3.2: page retirement + good maintenance keep error volume down; "
      "small-footprint faults are cheap to map out");

  const RunSummary with = RunOne(options, /*retirement_enabled=*/true);
  const RunSummary without = RunOne(options, /*retirement_enabled=*/false);

  TextTable table({"Metric", "Retirement ON", "Retirement OFF"});
  table.AddRow({"logged CEs", WithThousands(with.ces), WithThousands(without.ces)});
  table.AddRow({"observed faults", WithThousands(with.faults),
                WithThousands(without.faults)});
  table.AddRow({"median errors/fault", FormatDouble(with.median_epf, 0),
                FormatDouble(without.median_epf, 0)});
  table.AddRow({"p99 errors/fault", FormatDouble(with.p99_epf, 0),
                FormatDouble(without.p99_epf, 0)});
  table.AddRow({"max errors/fault", WithThousands(with.max_epf),
                WithThousands(without.max_epf)});
  table.AddRow({"pages retired", WithThousands(with.pages_retired), "0"});
  table.AddRow({"errors suppressed", WithThousands(with.suppressed), "0"});
  table.Print(std::cout);

  const double saved = 100.0 *
                       (static_cast<double>(without.ces) - static_cast<double>(with.ces)) /
                       static_cast<double>(without.ces);
  bench::PrintComparison("CE volume removed by retirement",
                         FormatDouble(saved, 1) + "%",
                         "mitigation \"effective at helping to maintain system "
                         "reliability\" (§3.2)");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
