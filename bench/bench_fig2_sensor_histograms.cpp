// Fig. 2: "Histogram of sensor values from May 20 to September 19, 2019" —
// (a) CPU temperature, (b) DIMM temperature, (c) node DC power.
// Published shape: DIMM bulk ~30-60 degC, power bulk ~240-380 W, bad samples
// "significantly less than 1%".
#include <algorithm>

#include "common/bench_common.hpp"
#include "stats/histogram.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

void PrintHistogram(const std::string& title, const stats::Histogram& histogram) {
  std::cout << title << "  (" << WithThousands(histogram.TotalInRange())
            << " samples in range)\n";
  double max_fraction = 0.0;
  for (std::size_t b = 0; b < histogram.BinCount(); ++b) {
    max_fraction = std::max(max_fraction, histogram.Fraction(b));
  }
  for (std::size_t b = 0; b < histogram.BinCount(); ++b) {
    if (histogram.Count(b) == 0) continue;
    std::cout << "  " << FormatDouble(histogram.BinLow(b), 0) << "-"
              << FormatDouble(histogram.BinHigh(b), 0) << "  "
              << FormatDouble(histogram.Fraction(b), 3) << "  "
              << AsciiBar(histogram.Fraction(b), max_fraction, 40) << '\n';
  }
}

}  // namespace

int Run(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 2 - sensor-value histograms (May 20 - Sep 19 window)",
      "DIMM temps ~30-60C; DC power bulk 240-380W; <1% invalid samples excluded");

  const sensors::Environment environment;
  const TimeWindow window{SimTime::FromCivil(2019, 5, 20),
                          SimTime::FromCivil(2019, 9, 14)};

  stats::Histogram cpu_temps(30.0, 110.0, 40);
  stats::Histogram dimm_temps(25.0, 65.0, 40);
  stats::Histogram power(100.0, 500.0, 40);
  const sensors::SensorValidRanges ranges;
  std::uint64_t excluded = 0, total = 0;

  // Sample the minutely sensor stream at a deterministic stride sized to
  // ~2M samples regardless of fleet size.
  const int node_stride = std::max(1, options.nodes / 96);
  const std::int64_t minute_stride = options.quick ? 240 : 60;
  for (NodeId node = 0; node < options.nodes; node += node_stride) {
    for (std::int64_t s = window.begin.Seconds(); s < window.end.Seconds();
         s += minute_stride * SimTime::kSecondsPerMinute) {
      const SimTime t{s};
      for (int k = 0; k < kSensorsPerNode; ++k) {
        const auto kind = static_cast<SensorKind>(k);
        const auto reading = environment.Sensors().Sample(node, kind, t);
        ++total;
        if (reading.status != sensors::SampleStatus::kOk ||
            !ranges.IsPlausible(kind, reading.value)) {
          ++excluded;
          continue;
        }
        switch (kind) {
          case SensorKind::kCpu0Temp:
          case SensorKind::kCpu1Temp:
            cpu_temps.Add(reading.value);
            break;
          case SensorKind::kDcPower:
            power.Add(reading.value);
            break;
          default:
            dimm_temps.Add(reading.value);
            break;
        }
      }
    }
  }

  PrintHistogram("(a) CPU temperature distribution (degC)", cpu_temps);
  PrintHistogram("(b) DIMM temperature distribution (degC)", dimm_temps);
  PrintHistogram("(c) Node DC power distribution (W)", power);

  bench::PrintComparison(
      "excluded sample fraction",
      FormatDouble(100.0 * static_cast<double>(excluded) / static_cast<double>(total), 3) + "%",
      "significantly less than 1%");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
