// Fig. 10: errors (a) and faults (b) by rack region (top/middle/bottom
// thirds of each 18-chassis rack).  Fig. 11: per-rack fraction of faults in
// each region.  Published: error counts differ noticeably by region (bottom
// highest on Astra) while fault counts differ only modestly (top slightly
// ahead) — and unlike Cielo/Jaguar there is NO systematic top-of-rack
// excess, consistent with Astra's front-to-back cooling (§3.4).
#include <algorithm>

#include "common/bench_common.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 10/11 - errors and faults by rack region",
      "error skew is fault-luck; fault counts near-uniform across regions "
      "(difference far smaller than the error difference); no Cielo-style "
      "top-of-rack excess");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const core::PositionalAnalysis analysis = core::AnalyzePositions(
      bundle.result.memory_errors, bundle.coalesced, options.nodes);

  std::cout << "(Fig. 10) per region:\n";
  for (int r = 0; r < kRackRegionCount; ++r) {
    std::cout << "  " << RackRegionName(static_cast<RackRegion>(r)) << "\terrors="
              << WithThousands(analysis.errors.per_region[static_cast<std::size_t>(r)])
              << "\tfaults="
              << analysis.faults.per_region[static_cast<std::size_t>(r)] << '\n';
  }

  const auto relative_spread = [](const auto& counts) {
    const double hi = static_cast<double>(*std::max_element(counts.begin(), counts.end()));
    const double lo = static_cast<double>(*std::min_element(counts.begin(), counts.end()));
    return hi > 0.0 ? (hi - lo) / hi : 0.0;
  };
  bench::PrintComparison(
      "relative region spread (errors vs faults)",
      FormatDouble(100.0 * relative_spread(analysis.errors.per_region), 1) + "% vs " +
          FormatDouble(100.0 * relative_spread(analysis.faults.per_region), 1) + "%",
      "error spread much larger than fault spread");
  bench::PrintComparison(
      "top-region fault excess over bottom",
      FormatDouble(
          100.0 * (static_cast<double>(analysis.faults.per_region[2]) /
                       std::max<std::uint64_t>(1, analysis.faults.per_region[0]) -
                   1.0),
          1) + "%",
      "small positive (cf. Cielo's +20% SRAM excess)");

  // Fig. 11: per-rack region shares.
  std::cout << "(Fig. 11) per-rack fault share by region (rack: bottom/middle/top %):\n";
  const int racks_in_run = (options.nodes + kNodesPerRack - 1) / kNodesPerRack;
  int top_heavy_racks = 0, racks_with_faults = 0;
  for (int rack = 0; rack < racks_in_run; ++rack) {
    const auto& row = analysis.faults.per_rack_region[static_cast<std::size_t>(rack)];
    const std::uint64_t total = row[0] + row[1] + row[2];
    if (total == 0) continue;
    ++racks_with_faults;
    top_heavy_racks += row[2] > row[0];
    std::cout << "  rack " << rack << ": "
              << FormatDouble(100.0 * static_cast<double>(row[0]) / static_cast<double>(total), 0) << "/"
              << FormatDouble(100.0 * static_cast<double>(row[1]) / static_cast<double>(total), 0) << "/"
              << FormatDouble(100.0 * static_cast<double>(row[2]) / static_cast<double>(total), 0) << '\n';
  }
  bench::PrintComparison(
      "racks where top region out-faults bottom",
      std::to_string(top_heavy_racks) + " of " + std::to_string(racks_with_faults),
      "no systematic top-heavy trend (\"faults are not significantly more "
      "likely to occur near the top\")");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
