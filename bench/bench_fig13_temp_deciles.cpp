// Fig. 13: "Effect of Temperature on Correctable Error Rate" — Schroeder-
// style deciles of monthly-average temperature vs monthly CE rate, per
// sensor.  Published: CPU1's curve sits a few degC right of CPU2's;
// 1st..9th-decile spans ~7 degC (CPU) and ~4 degC (DIMM), far narrower than
// Schroeder et al.'s 20+ degC systems; and "no discernible trend as the
// temperature increases".
#include "common/bench_common.hpp"
#include "core/temperature.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

void PrintSeries(const std::string& name, const stats::DecileSeries& series) {
  std::cout << name << ":\n    T(degC):";
  for (const auto& bucket : series.buckets) {
    std::cout << ' ' << FormatDouble(bucket.x_max, 1);
  }
  std::cout << "\n    CE/mo:  ";
  for (const auto& bucket : series.buckets) {
    std::cout << ' ' << FormatDouble(bucket.y_mean, 2);
  }
  std::cout << "\n    trend slope=" << FormatDouble(series.TrendSlope(), 3)
            << " monotone-increasing=" << (series.MonotonicallyIncreasing() ? "YES" : "no")
            << '\n';
}

}  // namespace

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 13 - monthly temperature deciles vs CE rate",
      "CPU decile span ~7C, DIMM ~4C; CPU1 hotter than CPU2; no increasing trend");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  core::TemperatureAnalysisConfig config;
  config.lookback_seconds = {};  // deciles only; Fig. 9 covers look-backs
  config.mean_samples = options.quick ? 32 : 128;
  const core::TemperatureAnalyzer analyzer(config, &bundle.environment);
  const core::TemperatureAnalysis analysis =
      analyzer.Analyze(bundle.result.memory_errors, options.nodes);

  int increasing = 0;
  for (const auto& deciles : analysis.deciles) {
    PrintSeries(std::string(SensorKindName(deciles.sensor)), deciles.by_temperature);
    increasing += deciles.by_temperature.MonotonicallyIncreasing();
  }

  const auto span_of = [&](SensorKind kind) {
    const auto& buckets =
        analysis.deciles[static_cast<std::size_t>(kind)].by_temperature.buckets;
    return buckets.size() >= 9 ? buckets[8].x_max - buckets[0].x_max : 0.0;
  };
  bench::PrintComparison("CPU1 1st..9th decile span",
                         FormatDouble(span_of(SensorKind::kCpu0Temp), 1) + " degC",
                         "~7 degC");
  bench::PrintComparison("DIMM (ACEG) 1st..9th decile span",
                         FormatDouble(span_of(SensorKind::kDimmsACEG), 1) + " degC",
                         "~4 degC");
  bench::PrintComparison(
      "CPU1 vs CPU2 median temperature",
      FormatDouble(analysis.deciles[0].median_temperature, 1) + " vs " +
          FormatDouble(analysis.deciles[1].median_temperature, 1) + " degC",
      "CPU1 consistently hotter (downstream in airflow)");
  bench::PrintComparison("sensors with increasing CE-vs-T trend",
                         std::to_string(increasing) + " of 6",
                         "0 (\"no discernible trend\")");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
