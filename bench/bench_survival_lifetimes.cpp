// Extension bench: survival analysis over campaign telemetry.
//   (a) time-to-first-CE per DIMM (Kaplan-Meier + censored Weibull fit);
//   (b) replacement lifetimes: fitting a Weibull to the §3.1 inventory-diff
//       events recovers the infant-mortality signature (shape < 1) the
//       paper narrates qualitatively in Fig. 3.
#include "common/bench_common.hpp"
#include "core/lifetime.hpp"
#include "core/replacement_analysis.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Extension - survival analysis (time-to-first-CE, replacement lifetimes)",
      "infant mortality (decreasing hazard) during stabilization; most DIMMs "
      "never log an error");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const int dimm_count = options.nodes * kDimmSlotsPerNode;
  const core::LifetimeAnalysis lifetimes = core::AnalyzeLifetimes(
      bundle.result.memory_errors, bundle.coalesced, bundle.config.window, dimm_count);

  std::cout << "(a) time to first CE per DIMM (" << dimm_count << " DIMMs, "
            << lifetimes.time_to_first_ce.total_events << " with CEs):\n";
  for (const double day : {7.0, 30.0, 90.0, 180.0, 236.0}) {
    std::cout << "  S(" << FormatDouble(day, 0) << "d) = "
              << FormatDouble(lifetimes.time_to_first_ce.SurvivalAt(day), 4) << '\n';
  }
  bench::PrintComparison(
      "DIMM first-CE incidence",
      FormatDouble(lifetimes.first_ce_afr, 4) + " per DIMM-year",
      "(implied by 1013/2592 nodes with CEs over ~8 months)");
  if (lifetimes.first_ce_weibull.Valid()) {
    bench::PrintComparison(
        "first-CE Weibull shape",
        FormatDouble(lifetimes.first_ce_weibull.shape, 2) +
            (lifetimes.first_ce_weibull.InfantMortality() ? " (decreasing hazard)"
                                                          : ""),
        "<1 expected: the §3.2 'slightly downward' CE trend");
  }
  std::cout << "median observed fault activity: "
            << FormatDouble(lifetimes.median_fault_activity_days, 2) << " days\n";

  std::cout << "\n(b) replacement lifetimes (inventory-diff events):\n";
  auto replacement_config = replace::ReplacementSimConfig::AstraDefaults();
  replacement_config.seed = options.seed;
  replacement_config.node_count = options.nodes;
  const replace::ReplacementSimulator simulator(replacement_config);
  const auto campaign = simulator.Run();

  struct KindRef { logs::ComponentKind kind; int population; };
  const KindRef kinds[] = {
      {logs::ComponentKind::kProcessor, options.nodes * kSocketsPerNode},
      {logs::ComponentKind::kMotherboard, options.nodes},
      {logs::ComponentKind::kDimm, options.nodes * kDimmSlotsPerNode},
  };
  TextTable table({"Component", "Replacements", "Weibull shape", "Hazard verdict",
                   "AFR (/site-yr)"});
  for (const KindRef& ref : kinds) {
    const auto analysis = core::AnalyzeReplacementLifetimes(
        campaign.events, ref.kind, replacement_config.tracking, ref.population);
    std::string verdict = "n/a";
    if (analysis.lifetime_fit.Valid()) {
      verdict = analysis.lifetime_fit.InfantMortality() ? "infant mortality"
                : analysis.lifetime_fit.WearOut()       ? "wear-out"
                                                        : "memoryless";
    }
    table.AddRow({std::string(logs::ComponentKindName(ref.kind)),
                  WithThousands(analysis.replacements),
                  analysis.lifetime_fit.Valid()
                      ? FormatDouble(analysis.lifetime_fit.shape, 2)
                      : std::string("-"),
                  verdict, FormatDouble(analysis.afr, 4)});
  }
  table.Print(std::cout);
  bench::PrintComparison(
      "stabilization-period hazard direction",
      "motherboards/DIMMs: decreasing (infant mortality); processors: ~flat "
      "-- the mid-life speed-upgrade recall masks the infant signal",
      "Fig. 3: infant mortality at bring-up for all three, with the "
      "processor wave caused by the speed upgrade, not aging");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
