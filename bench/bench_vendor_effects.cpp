// Extension bench: per-manufacturer fault rates recovered from the error
// log.  The paper's limitations section (§1) warns that "the reliability of
// low-level system components can vary significantly by manufacturer [34]",
// and Sridharan et al. (SC'13) ultimately attributed their per-rack error
// trends to vendor mix.  On Astra the DIMM vendor leaks into the CE record
// through the consistent bit-position encoding — this bench closes that
// loop: recover each vendor's fault rate (with bootstrap CIs) purely from
// the log, and compare against the simulator's injected multipliers.
#include "common/bench_common.hpp"
#include "core/vendor_analysis.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Extension - per-vendor DIMM fault rates from the error log",
      "manufacturer variability is first-order (paper §1 limitations; "
      "Sridharan'13 found multi-x spreads between vendors)");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  core::VendorAnalysisOptions vendor_options;
  vendor_options.campaign_days = bundle.config.window.DurationDays();
  vendor_options.dimm_population = options.nodes * kDimmSlotsPerNode;
  const core::VendorAnalysis analysis =
      core::AnalyzeVendors(bundle.coalesced, vendor_options);

  const auto& injected = bundle.config.fault_model.vendor_multiplier;
  TextTable table({"Vendor", "DIMMs seen", "Faults", "Errors",
                   "Faults/DIMM-yr [95% CI]", "Injected multiplier"});
  for (const auto& vendor : analysis.vendors) {
    table.AddRow({"vendor-" + std::to_string(vendor.vendor),
                  WithThousands(vendor.dimms_observed),
                  WithThousands(vendor.faults), WithThousands(vendor.errors),
                  FormatDouble(vendor.faults_per_dimm_year, 4) + " [" +
                      FormatDouble(vendor.rate_ci.lo, 4) + ", " +
                      FormatDouble(vendor.rate_ci.hi, 4) + "]",
                  FormatDouble(injected[static_cast<std::size_t>(vendor.vendor)], 2)});
  }
  table.Print(std::cout);

  bench::PrintComparison("max/min vendor rate ratio",
                         FormatDouble(analysis.MaxToMinRateRatio(), 2),
                         "injected 1.30/0.70 = 1.86; Sridharan'13 saw up to ~4x");
  bench::PrintComparison(
      "methodology note",
      "vendor identity recovered from the §3.2 'consistent' bit-position "
      "encoding; denominators assume a uniform 4-vendor mix",
      "the paper could not decipher the encoding and treated it as opaque");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
