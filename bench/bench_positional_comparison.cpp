// §3.4 cross-study comparison: the paper closes by contrasting Astra's
// positional effects with Cielo/Jaguar (Sridharan et al., SC'13), Blue
// Waters (Gupta et al., DSN'15) and the Google fleet (Schroeder et al.,
// SIGMETRICS'09).  This bench evaluates each prior study's claim against
// the simulated Astra campaign and prints the verdict table — the §3.4
// narrative as executable checks.
#include <algorithm>

#include "common/bench_common.hpp"
#include "core/temperature.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "§3.4 - positional effects vs prior large-scale studies",
      "Astra reproduces NONE of the prior positional/environmental effects: "
      "no top-of-rack excess, no low-rack-number trend, no temperature "
      "coupling");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const core::PositionalAnalysis analysis = core::AnalyzePositions(
      bundle.result.memory_errors, bundle.coalesced, options.nodes);

  TextTable table({"Prior study", "Claimed effect (their system)",
                   "Astra measurement (this run)", "Holds on Astra?"});

  // 1. Sridharan et al. (Cielo/Jaguar): top chassis ~+20% SRAM faults.
  {
    const double top = static_cast<double>(analysis.faults.per_region[2]);
    const double bottom = std::max(1.0, static_cast<double>(analysis.faults.per_region[0]));
    const double excess = 100.0 * (top / bottom - 1.0);
    table.AddRow({"Sridharan'13 (Cielo/Jaguar)",
                  "top-of-rack chassis +20% faults",
                  "top-vs-bottom region: " + FormatDouble(excess, 1) + "%",
                  excess > 15.0 ? "weakly" : "no"});
  }

  // 2. Sridharan et al.: lower-numbered racks more errors.
  {
    const int racks = (options.nodes + kNodesPerRack - 1) / kNodesPerRack;
    std::vector<double> rack_index, rack_faults;
    for (int r = 0; r < racks; ++r) {
      rack_index.push_back(static_cast<double>(r));
      rack_faults.push_back(
          static_cast<double>(analysis.faults.per_rack[static_cast<std::size_t>(r)]));
    }
    const stats::LinearFit fit = stats::FitLine(rack_index, rack_faults);
    table.AddRow({"Sridharan'13", "lower rack numbers fault more",
                  "faults-vs-rack-number slope " + FormatDouble(fit.slope, 2) +
                      " (p=" + FormatDouble(fit.p_value, 3) + ")",
                  fit.slope < 0.0 && fit.IsStrongCorrelation() ? "yes" : "no"});
  }

  // 3. Gupta et al. (Blue Waters): failures likelier near the top cages.
  {
    int top_heavy = 0, racks_counted = 0;
    const int racks = (options.nodes + kNodesPerRack - 1) / kNodesPerRack;
    for (int r = 0; r < racks; ++r) {
      const auto& row = analysis.faults.per_rack_region[static_cast<std::size_t>(r)];
      if (row[0] + row[2] == 0) continue;
      ++racks_counted;
      top_heavy += row[2] > row[0];
    }
    table.AddRow({"Gupta'15 (Blue Waters)", "top cages fail more",
                  std::to_string(top_heavy) + "/" + std::to_string(racks_counted) +
                      " racks top-heavy (coin-flip = " +
                      std::to_string(racks_counted / 2) + ")",
                  top_heavy > racks_counted * 3 / 4 ? "yes" : "no"});
  }

  // 4. Schroeder et al. (Google): +20 degC ~ 2x CE rate.
  {
    core::TemperatureAnalysisConfig config;
    config.lookback_seconds = {};
    config.mean_samples = options.quick ? 24 : 64;
    const core::TemperatureAnalyzer analyzer(config, &bundle.environment);
    const auto temp = analyzer.Analyze(bundle.result.memory_errors, options.nodes);
    int increasing = 0;
    for (const auto& deciles : temp.deciles) {
      increasing += deciles.by_temperature.MonotonicallyIncreasing();
    }
    table.AddRow({"Schroeder'09 (Google fleet)", "+20C ~ 2x CE rate",
                  std::to_string(increasing) + "/6 sensors show increasing trend",
                  increasing >= 4 ? "yes" : "no"});
  }

  // 5. Hsu et al.: node failures double per +10 degC (Arrhenius).
  {
    // Astra's whole thermal envelope spans less than the 10 degC step the
    // Arrhenius claim needs, so the effect is unobservable by construction.
    table.AddRow({"Hsu'05 (Arrhenius)", "failure rate doubles per +10C",
                  "fleet decile span ~7C: effect unobservable in-envelope",
                  "untestable (tight climate)"});
  }

  table.Print(std::cout);
  bench::PrintComparison(
      "summary",
      "prior positional/thermal effects largely absent on Astra",
      "§3.4/§5: 'we observed no strong correlation ... between a node's "
      "vertical position ... and the rate at which it experiences memory "
      "errors'");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
