// Fig. 15: Hardware Event Tracker record counts over time — (a) all HET
// event types, (b) the NON-RECOVERABLE subset.  Published: no HET records
// before the August 23, 2019 firmware update; over the recording window the
// DUE rate is 0.00948 per DIMM per year, i.e. FIT ~ 1081 per DIMM.
#include "common/bench_common.hpp"
#include "core/uncorrectable.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Fig. 15 / §3.5 - HET uncorrectable-error analysis",
      "HET records only post-firmware-update; 0.00948 DUEs/DIMM/yr -> FIT ~1081");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);
  const TimeWindow recording{bundle.config.het_firmware_start,
                             bundle.config.window.end};
  const int dimm_count = options.nodes * kDimmSlotsPerNode;
  const core::UncorrectableAnalysis analysis =
      core::AnalyzeUncorrectable(bundle.result.het_records, recording, dimm_count);

  std::cout << "(a) HET events by type over " << recording.begin.ToDateString()
            << " .. " << recording.end.ToDateString() << ":\n";
  for (int e = 0; e < logs::kHetEventTypeCount; ++e) {
    std::uint64_t total = 0;
    for (const auto c : analysis.daily_by_type[static_cast<std::size_t>(e)]) total += c;
    if (total == 0) continue;
    std::cout << "  " << logs::HetEventTypeName(static_cast<logs::HetEventType>(e))
              << ": " << total << '\n';
  }
  std::uint64_t non_recoverable = 0;
  for (const auto c : analysis.daily_non_recoverable) non_recoverable += c;
  std::cout << "(b) NON-RECOVERABLE memory events: " << non_recoverable << '\n';

  bench::PrintComparison("HET events before firmware update",
                         std::to_string(analysis.events_before_recording),
                         "0 (\"No HET errors were recorded between May 20 and "
                         "August 23\")");
  bench::PrintComparison("memory DUEs recorded by HET",
                         std::to_string(analysis.memory_due_events),
                         "(basis of the published rate)");
  bench::PrintComparison("DUEs per DIMM per year",
                         FormatDouble(analysis.dues_per_dimm_per_year, 5), "0.00948");
  bench::PrintComparison("FIT per DIMM",
                         FormatDouble(analysis.fit_per_dimm, 0) + "  [95% CI " +
                             FormatDouble(analysis.fit_ci_lo, 0) + ", " +
                             FormatDouble(analysis.fit_ci_hi, 0) + "]",
                         "~1081 (point estimate, no CI published)");
  bench::PrintComparison("total DUEs over full window (ground truth)",
                         std::to_string(bundle.result.total_dues),
                         "(unpublished; HET only saw the post-update tail)");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
