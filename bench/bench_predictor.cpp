// Extension bench: CE-history DUE prediction.  Compares the three warning
// rules (raw CE volume, footprint growth, multi-bit word signature) on the
// simulated campaign, scoring each by precision / recall / lead time with a
// strictly-causal evaluator.  The punchline mirrors the paper's
// errors-vs-faults theme: the PATTERN of CEs (a multi-bit word) predicts
// DUEs; raw CE volume mostly flags benign prolific faults.
#include "common/bench_common.hpp"
#include "core/predictor.hpp"
#include "util/strings.hpp"

namespace astra {

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Extension - DUE early warning from CE history",
      "multi-bit word CE signatures precede SEC-DED DUEs (§3.2 mechanism); "
      "raw CE volume is a poor predictor");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);

  struct RuleSpec {
    const char* name;
    core::PredictorConfig config;
  };
  std::vector<RuleSpec> rules;
  {
    core::PredictorConfig volume;
    volume.flag_multibit_word_signature = false;
    volume.ce_count_threshold = 1000;
    rules.push_back({"CE volume >= 1000", volume});

    core::PredictorConfig footprint;
    footprint.flag_multibit_word_signature = false;
    footprint.distinct_address_threshold = 64;
    rules.push_back({"footprint >= 64 addresses", footprint});

    core::PredictorConfig signature;  // defaults: signature only
    rules.push_back({"multi-bit word signature", signature});

    core::PredictorConfig combined;
    combined.ce_count_threshold = 1000;
    combined.distinct_address_threshold = 64;
    rules.push_back({"combined (any rule)", combined});
  }

  TextTable table({"Rule", "Flagged DIMMs", "DUE DIMMs", "Precision", "Recall",
                   "Median lead (days)"});
  for (const RuleSpec& rule : rules) {
    const core::PredictionEvaluation eval =
        core::EvaluatePredictor(bundle.result.memory_errors, rule.config);
    table.AddRow({rule.name, std::to_string(eval.dimms_flagged),
                  std::to_string(eval.dimms_with_due),
                  FormatDouble(eval.Precision(), 3), FormatDouble(eval.Recall(), 3),
                  eval.true_positives > 0
                      ? FormatDouble(eval.median_lead_time_days, 1)
                      : std::string("-")});
  }
  table.Print(std::cout);

  bench::PrintComparison(
      "actionable signal",
      "the multi-bit signature dominates both volume- and footprint-based "
      "rules on precision at comparable recall",
      "fault-aware analysis beats raw error counting — the paper's thesis, "
      "applied forward");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
