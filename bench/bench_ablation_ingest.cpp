// Ablation: corruption-severity sweep over the hardened ingest path.
//
// Writes one clean simulated dataset, then for every corruption mode and a
// severity ladder: copy, damage with the telemetry corruption injector,
// re-ingest leniently (quarantine-and-continue), and measure how far two
// headline results drift from the clean baseline:
//   - Fig. 5 node concentration (share of CEs on the top 2% of nodes),
//   - Fig. 7 slot-position skew (Cramér's V over DIMM slots, rank split).
// The point of the robustness layer is that the qualitative conclusions
// survive dirty field data; this bench quantifies exactly when they stop.
#include <cmath>
#include <filesystem>
#include <iostream>

#include "common/bench_common.hpp"
#include "core/dataset.hpp"
#include "logs/corruption.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

struct IngestMetrics {
  std::size_t delivered = 0;
  double quarantined_fraction = 0.0;
  double top2_share = 0.0;  // Fig. 5 concentration
  double slot_v = 0.0;      // Fig. 7 slot skew
  std::uint64_t rank0 = 0;
  std::uint64_t rank1 = 0;
};

IngestMetrics Measure(const core::DatasetIngest& ingest, int nodes) {
  IngestMetrics metrics;
  metrics.delivered = ingest.memory_errors.size();
  metrics.quarantined_fraction = ingest.memory_report.stats.MalformedFraction();
  if (ingest.memory_errors.empty()) return metrics;
  const auto faults =
      core::FaultCoalescer::Coalesce(ingest.memory_errors, {}, &ingest.quality);
  const auto positions =
      core::AnalyzePositions(ingest.memory_errors, faults, nodes, &ingest.quality);
  metrics.top2_share = positions.ce_concentration.ShareOfTop(
      static_cast<std::size_t>(std::max(1, nodes / 50)));
  metrics.slot_v = positions.fault_uniformity.slot.cramers_v;
  metrics.rank0 = positions.faults.per_rank[0];
  metrics.rank1 = positions.faults.per_rank[1];
  return metrics;
}

}  // namespace

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Ablation - telemetry corruption severity sweep through hardened ingest",
      "Figs. 5/7 conclusions should survive quarantine-level damage; "
      "§2.2 excludes malformed records rather than crashing on them");

  // 32 corrupt+ingest rounds: keep the campaign small.
  const int nodes = std::min(options.nodes, options.quick ? 72 : 288);
  faultsim::CampaignConfig config;
  config.SeedFrom(options.seed);
  config.node_count = nodes;
  std::cerr << "simulating " << nodes << " nodes ...\n";
  const auto campaign = faultsim::FleetSimulator(config).Run();

  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() /
      ("astra_bench_ingest_" + std::to_string(options.seed));
  const fs::path clean_dir = root / "clean";
  const fs::path work_dir = root / "work";
  fs::remove_all(root);
  fs::create_directories(clean_dir);
  if (!core::WriteFailureData(
          core::DatasetPaths::InDirectory(clean_dir.string()), campaign)) {
    std::cerr << "failed writing baseline dataset to " << clean_dir << '\n';
    return 2;
  }

  const logs::IngestPolicy lenient;  // default: quarantine-and-continue
  const auto baseline = Measure(
      core::IngestFailureData(core::DatasetPaths::InDirectory(clean_dir.string()),
                              lenient),
      nodes);
  std::cout << "clean baseline: " << WithThousands(baseline.delivered)
            << " records, top2% share "
            << FormatDouble(100.0 * baseline.top2_share, 1) << "%, slot V "
            << FormatDouble(baseline.slot_v, 3) << ", rank0/rank1 "
            << baseline.rank0 << "/" << baseline.rank1 << "\n\n";

  constexpr double kSeverities[] = {0.1, 0.3, 0.5, 0.8};
  TextTable table({"Mode", "Sev", "Delivered", "Quar %", "Top2% CE", "d(pp)",
                   "Slot V", "dV", "Verdict"});
  for (int m = 0; m < logs::kCorruptionModeCount; ++m) {
    const auto mode = static_cast<logs::CorruptionMode>(m);
    for (const double severity : kSeverities) {
      fs::remove_all(work_dir);
      fs::copy(clean_dir, work_dir, fs::copy_options::recursive);

      logs::CorruptionConfig corruption;
      corruption.seed = options.seed;
      corruption.Set(mode, severity);
      const auto damage = logs::CorruptionInjector(corruption)
                              .CorruptDirectory(work_dir.string());
      if (!damage) {
        std::cerr << "corrupt failed for " << logs::CorruptionModeName(mode)
                  << " sev " << severity << '\n';
        return 2;
      }

      const auto metrics = Measure(
          core::IngestFailureData(
              core::DatasetPaths::InDirectory(work_dir.string()), lenient),
          nodes);
      const double d_top_pp = 100.0 * (metrics.top2_share - baseline.top2_share);
      const double d_slot_v = metrics.slot_v - baseline.slot_v;
      const bool empty = metrics.delivered == 0;
      const bool stable =
          !empty && std::abs(d_top_pp) < 2.0 && std::abs(d_slot_v) < 0.05;
      table.AddRow({std::string(logs::CorruptionModeName(mode)),
                    FormatDouble(severity, 1), WithThousands(metrics.delivered),
                    FormatDouble(100.0 * metrics.quarantined_fraction, 2),
                    empty ? "-" : FormatDouble(100.0 * metrics.top2_share, 1),
                    empty ? "-" : FormatDouble(d_top_pp, 2),
                    empty ? "-" : FormatDouble(metrics.slot_v, 3),
                    empty ? "-" : FormatDouble(d_slot_v, 3),
                    empty ? "EMPTY" : (stable ? "stable" : "DRIFTED")});
    }
  }
  table.Print(std::cout);
  fs::remove_all(root);

  bench::PrintComparison(
      "observation",
      "lenient ingest keeps Fig. 5 concentration and Fig. 7 slot skew within "
      "tolerance for most damage classes; unrepaired duplicate storms and "
      "large missing windows are where conclusions start to drift",
      "\"we exclude malformed records\" (§2.2) — quarantine, don't crash");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
