// google-benchmark microbenchmarks for the toolkit's hot paths: record
// formatting/parsing, sharded mmap ingest, fault coalescing, positional
// analysis, the SEC-DED and chipkill codecs, and sensor-field evaluation.
// These guard the throughput that makes full-fleet (4M+ record) reproduction
// runs take seconds.
//
// The main() at the bottom replaces BENCHMARK_MAIN so the ingest scaling
// sweep can also be written to BENCH_ingest.json for CI tracking.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "core/coalesce.hpp"
#include "core/positional.hpp"
#include "ecc/adjudicate.hpp"
#include "faultsim/fleet.hpp"
#include "logs/log_file.hpp"
#include "logs/parallel_ingest.hpp"
#include "logs/serialize.hpp"
#include "sensors/environment.hpp"
#include "util/rng.hpp"

namespace astra {
namespace {

const faultsim::CampaignResult& SharedCampaign() {
  static const faultsim::CampaignResult result = [] {
    faultsim::CampaignConfig config;
    config.SeedFrom(1);
    config.node_count = 400;
    return faultsim::FleetSimulator(config).Run();
  }();
  return result;
}

void BM_FleetSimulation(benchmark::State& state) {
  faultsim::CampaignConfig config;
  config.SeedFrom(2);
  config.node_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto result = faultsim::FleetSimulator(config).Run();
    benchmark::DoNotOptimize(result.memory_errors.data());
    state.counters["records"] = static_cast<double>(result.memory_errors.size());
  }
}
BENCHMARK(BM_FleetSimulation)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_RecordFormat(benchmark::State& state) {
  const auto& records = SharedCampaign().memory_errors;
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string line = logs::FormatRecord(records[i++ % records.size()]);
    benchmark::DoNotOptimize(line.data());
  }
}
BENCHMARK(BM_RecordFormat);

void BM_RecordParse(benchmark::State& state) {
  const auto& records = SharedCampaign().memory_errors;
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < 4096 && i < records.size(); ++i) {
    lines.push_back(logs::FormatRecord(records[i]));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto parsed = logs::ParseMemoryError(lines[i++ % lines.size()]);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_RecordParse);

// --- sharded ingest scaling sweep -------------------------------------------
//
// One TSV written once, ingested end-to-end (mmap, shard parse, ordered
// replay) at 1/2/4/8 threads.  Replicated campaigns are offset in time so
// every line is unique and the stream stays sorted — the dedup and re-sort
// stages see the same work a clean fleet log would give them.

struct IngestFixture {
  std::string path;
  std::size_t bytes = 0;
  std::size_t records = 0;
};

const IngestFixture& SharedIngestFile() {
  static const IngestFixture fixture = [] {
    IngestFixture f;
    f.path = (std::filesystem::temp_directory_path() / "astra_bench_ingest.tsv")
                 .string();
    const auto& errors = SharedCampaign().memory_errors;
    SimTime lo = errors.front().timestamp, hi = lo;
    for (const auto& r : errors) {
      lo = std::min(lo, r.timestamp);
      hi = std::max(hi, r.timestamp);
    }
    const std::int64_t stride = SecondsBetween(lo, hi) + 1;
    constexpr std::size_t kTargetBytes = 24 * 1024 * 1024;
    logs::LogFileWriter<logs::MemoryErrorRecord> writer(f.path);
    for (std::int64_t rep = 0; f.bytes < kTargetBytes; ++rep) {
      for (auto r : errors) {
        r.timestamp = r.timestamp.AddSeconds(rep * stride);
        writer.Append(r);
        ++f.records;
      }
      f.bytes = static_cast<std::size_t>(std::filesystem::file_size(f.path));
    }
    if (!writer.Finish()) f.records = 0;  // mismatch -> SkipWithError below
    f.bytes = static_cast<std::size_t>(std::filesystem::file_size(f.path));
    return f;
  }();
  return fixture;
}

// threads -> {total seconds, total files ingested}: the custom main below
// turns this into BENCH_ingest.json after the run.
std::map<int, std::pair<double, std::int64_t>>& IngestSweepResults() {
  static std::map<int, std::pair<double, std::int64_t>> results;
  return results;
}

// parse-only seconds accumulated for BENCH_ingest.json: isolates the SWAR
// field scanner + numeric parse from dedup hashing, the re-sort window, and
// sink delivery, so a parse regression is visible even when the end-to-end
// rate moves for other reasons.
std::pair<double, std::int64_t>& ParseOnlyResult() {
  static std::pair<double, std::int64_t> result{0.0, 0};
  return result;
}

void BM_ParseFileLines(benchmark::State& state) {
  const auto& fixture = SharedIngestFile();
  const auto file = io::Current().MapFile(fixture.path);
  if (!file) {
    state.SkipWithError("failed mapping the ingest fixture");
    return;
  }
  const std::string_view bytes = file->Bytes();
  const std::string_view header = logs::MemoryErrorHeader();
  double seconds = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    std::size_t parsed = 0;
    ForEachLineInView(bytes, [&](std::string_view line) {
      if (line.empty() || line == header) return true;
      if (logs::ParseMemoryError(line)) ++parsed;
      return true;
    });
    seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count();
    benchmark::DoNotOptimize(parsed);
    if (parsed != fixture.records) {
      state.SkipWithError("parse-only lane dropped records");
      return;
    }
  }
  const auto iters = static_cast<std::int64_t>(state.iterations());
  state.SetBytesProcessed(iters * static_cast<std::int64_t>(fixture.bytes));
  state.SetItemsProcessed(iters * static_cast<std::int64_t>(fixture.records));
  auto& slot = ParseOnlyResult();
  slot.first += seconds;
  slot.second += iters;
}
BENCHMARK(BM_ParseFileLines)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ParallelIngest(benchmark::State& state) {
  const auto& fixture = SharedIngestFile();
  const auto threads = static_cast<unsigned>(state.range(0));
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores != 0 && threads > cores) {
    // Oversubscribed rows measure contention, not scaling; say so once per
    // width instead of letting a flat curve masquerade as a scaling bug.
    std::fprintf(stderr,
                 "warning: BM_ParallelIngest threads=%u exceeds detected "
                 "hardware concurrency %u — this row measures "
                 "oversubscription\n",
                 threads, cores);
  }
  const logs::IngestPolicy policy;
  double seconds = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    logs::IngestReport report;
    const auto records = logs::ParallelIngestAllRecords<logs::MemoryErrorRecord>(
        fixture.path, policy, threads, &report);
    seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    benchmark::DoNotOptimize(records);
    // Exact duplicates inside the source campaign are deduped on ingest, so
    // compare parsed lines (which must all survive parsing) instead of the
    // surviving record count.
    if (!records || report.stats.parsed != fixture.records ||
        report.stats.malformed != 0) {
      state.SkipWithError("ingest quarantined records");
      return;
    }
  }
  const auto iters = static_cast<std::int64_t>(state.iterations());
  state.SetBytesProcessed(iters * static_cast<std::int64_t>(fixture.bytes));
  state.SetItemsProcessed(iters * static_cast<std::int64_t>(fixture.records));
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(iters) * static_cast<double>(fixture.bytes) / 1e6,
      benchmark::Counter::kIsRate);
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(iters) * static_cast<double>(fixture.records),
      benchmark::Counter::kIsRate);
  auto& slot = IngestSweepResults()[static_cast<int>(threads)];
  slot.first += seconds;
  slot.second += iters;
}
BENCHMARK(BM_ParallelIngest)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Coalesce(benchmark::State& state) {
  const auto& records = SharedCampaign().memory_errors;
  for (auto _ : state) {
    const auto result = core::FaultCoalescer::Coalesce(records);
    benchmark::DoNotOptimize(result.faults.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Coalesce)->Unit(benchmark::kMillisecond);

void BM_PositionalAnalysis(benchmark::State& state) {
  const auto& records = SharedCampaign().memory_errors;
  const auto coalesced = core::FaultCoalescer::Coalesce(records);
  for (auto _ : state) {
    const auto analysis = core::AnalyzePositions(records, coalesced, 400);
    benchmark::DoNotOptimize(analysis.nodes_with_errors);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_PositionalAnalysis)->Unit(benchmark::kMillisecond);

void BM_SecDedEncodeDecode(benchmark::State& state) {
  Rng rng(3);
  std::uint64_t data = rng();
  for (auto _ : state) {
    ecc::CodeWord word = ecc::Encode(data);
    word.FlipBit(static_cast<int>(data % 72));
    const auto decoded = ecc::Decode(word);
    benchmark::DoNotOptimize(decoded.data);
    data = data * 6364136223846793005ULL + 1;
  }
}
BENCHMARK(BM_SecDedEncodeDecode);

void BM_ChipkillEncodeDecode(benchmark::State& state) {
  Rng rng(4);
  std::uint64_t lo = rng(), hi = rng();
  for (auto _ : state) {
    ecc::ChipkillWord word = ecc::ChipkillEncode(lo, hi);
    word.FlipBit(0, static_cast<int>(lo % 72));
    const auto decoded = ecc::ChipkillDecode(word);
    benchmark::DoNotOptimize(decoded.data[0]);
    lo = lo * 6364136223846793005ULL + 1;
  }
}
BENCHMARK(BM_ChipkillEncodeDecode);

void BM_SensorSample(benchmark::State& state) {
  const sensors::Environment env;
  const SimTime base = SimTime::FromCivil(2019, 6, 1);
  std::int64_t minute = 0;
  for (auto _ : state) {
    const auto reading = env.Sensors().Sample(
        static_cast<NodeId>(minute % 2592), SensorKind::kDimmsACEG,
        base.AddMinutes(minute));
    benchmark::DoNotOptimize(reading.value);
    ++minute;
  }
}
BENCHMARK(BM_SensorSample);

void BM_SensorWindowMean(benchmark::State& state) {
  const sensors::Environment env;
  const SimTime base = SimTime::FromCivil(2019, 6, 1);
  std::int64_t day = 0;
  for (auto _ : state) {
    const TimeWindow window{base.AddDays(day % 60), base.AddDays(day % 60 + 7)};
    const double mean =
        env.Sensors().MeanOverWindow(static_cast<NodeId>(day % 2592),
                                     SensorKind::kCpu0Temp, window, 128);
    benchmark::DoNotOptimize(mean);
    ++day;
  }
}
BENCHMARK(BM_SensorWindowMean);

// Serialize the ingest scaling sweep.  The JSON is hand-rolled on purpose —
// four numeric fields per thread count don't justify a dependency.
void WriteIngestSweepJson(const std::string& path) {
  const auto& results = IngestSweepResults();
  if (results.empty()) return;  // sweep filtered out by --benchmark_filter
  const auto& fixture = SharedIngestFile();
  const unsigned cores = std::thread::hardware_concurrency();
  double serial_rate = 0.0;
  std::ofstream out(path);
  out << "{\n  \"file_bytes\": " << fixture.bytes
      << ",\n  \"file_records\": " << fixture.records
      << ",\n  \"host_hardware_concurrency\": " << cores;
  if (const auto& [seconds, iters] = ParseOnlyResult(); seconds > 0.0 && iters > 0) {
    const double per_iter = seconds / static_cast<double>(iters);
    out << ",\n  \"parse_only_mb_per_s\": "
        << static_cast<double>(fixture.bytes) / 1e6 / per_iter
        << ",\n  \"parse_only_records_per_s\": "
        << static_cast<double>(fixture.records) / per_iter;
  }
  out << ",\n  \"sweep\": [\n";
  bool first = true;
  for (const auto& [threads, totals] : results) {
    const auto& [seconds, iters] = totals;
    if (seconds <= 0.0 || iters <= 0) continue;
    const double per_iter = seconds / static_cast<double>(iters);
    const double mb_per_s = static_cast<double>(fixture.bytes) / 1e6 / per_iter;
    const double records_per_s =
        static_cast<double>(fixture.records) / per_iter;
    if (threads == 1) serial_rate = mb_per_s;
    // threads_requested is what the sweep asked for; the detected core count
    // above is what the host can actually run.  A row with "oversubscribed":
    // true measures contention, not scaling — readers (and the CI gate)
    // must not interpret its speedup as the parallel ingest's ceiling.
    const bool oversubscribed =
        cores != 0 && static_cast<unsigned>(threads) > cores;
    out << (first ? "" : ",\n") << "    {\"threads\": " << threads
        << ", \"threads_requested\": " << threads
        << ", \"oversubscribed\": " << (oversubscribed ? "true" : "false")
        << ", \"mb_per_s\": " << mb_per_s
        << ", \"records_per_s\": " << records_per_s << ", \"speedup_vs_1\": "
        << (serial_rate > 0.0 ? mb_per_s / serial_rate : 0.0) << "}";
    first = false;
  }
  out << "\n  ]\n}\n";
  std::fprintf(stderr, "wrote ingest scaling sweep to %s\n", path.c_str());
}

}  // namespace
}  // namespace astra

// BENCHMARK_MAIN, plus the BENCH_ingest.json side artifact.  Note that on a
// host with fewer cores than the sweep's widest point the >1-thread rows
// measure oversubscription, not scaling — CI runs this on multicore runners.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  astra::WriteIngestSweepJson("BENCH_ingest.json");
  std::error_code ec;
  std::filesystem::remove(
      std::filesystem::temp_directory_path() / "astra_bench_ingest.tsv", ec);
  return 0;
}
