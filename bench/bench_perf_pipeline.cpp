// google-benchmark microbenchmarks for the toolkit's hot paths: record
// formatting/parsing, fault coalescing, positional analysis, the SEC-DED and
// chipkill codecs, and sensor-field evaluation.  These guard the throughput
// that makes full-fleet (4M+ record) reproduction runs take seconds.
#include <benchmark/benchmark.h>

#include "core/coalesce.hpp"
#include "core/positional.hpp"
#include "ecc/adjudicate.hpp"
#include "faultsim/fleet.hpp"
#include "logs/serialize.hpp"
#include "sensors/environment.hpp"
#include "util/rng.hpp"

namespace astra {
namespace {

const faultsim::CampaignResult& SharedCampaign() {
  static const faultsim::CampaignResult result = [] {
    faultsim::CampaignConfig config;
    config.SeedFrom(1);
    config.node_count = 400;
    return faultsim::FleetSimulator(config).Run();
  }();
  return result;
}

void BM_FleetSimulation(benchmark::State& state) {
  faultsim::CampaignConfig config;
  config.SeedFrom(2);
  config.node_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto result = faultsim::FleetSimulator(config).Run();
    benchmark::DoNotOptimize(result.memory_errors.data());
    state.counters["records"] = static_cast<double>(result.memory_errors.size());
  }
}
BENCHMARK(BM_FleetSimulation)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_RecordFormat(benchmark::State& state) {
  const auto& records = SharedCampaign().memory_errors;
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string line = logs::FormatRecord(records[i++ % records.size()]);
    benchmark::DoNotOptimize(line.data());
  }
}
BENCHMARK(BM_RecordFormat);

void BM_RecordParse(benchmark::State& state) {
  const auto& records = SharedCampaign().memory_errors;
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < 4096 && i < records.size(); ++i) {
    lines.push_back(logs::FormatRecord(records[i]));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto parsed = logs::ParseMemoryError(lines[i++ % lines.size()]);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_RecordParse);

void BM_Coalesce(benchmark::State& state) {
  const auto& records = SharedCampaign().memory_errors;
  for (auto _ : state) {
    const auto result = core::FaultCoalescer::Coalesce(records);
    benchmark::DoNotOptimize(result.faults.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_Coalesce)->Unit(benchmark::kMillisecond);

void BM_PositionalAnalysis(benchmark::State& state) {
  const auto& records = SharedCampaign().memory_errors;
  const auto coalesced = core::FaultCoalescer::Coalesce(records);
  for (auto _ : state) {
    const auto analysis = core::AnalyzePositions(records, coalesced, 400);
    benchmark::DoNotOptimize(analysis.nodes_with_errors);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_PositionalAnalysis)->Unit(benchmark::kMillisecond);

void BM_SecDedEncodeDecode(benchmark::State& state) {
  Rng rng(3);
  std::uint64_t data = rng();
  for (auto _ : state) {
    ecc::CodeWord word = ecc::Encode(data);
    word.FlipBit(static_cast<int>(data % 72));
    const auto decoded = ecc::Decode(word);
    benchmark::DoNotOptimize(decoded.data);
    data = data * 6364136223846793005ULL + 1;
  }
}
BENCHMARK(BM_SecDedEncodeDecode);

void BM_ChipkillEncodeDecode(benchmark::State& state) {
  Rng rng(4);
  std::uint64_t lo = rng(), hi = rng();
  for (auto _ : state) {
    ecc::ChipkillWord word = ecc::ChipkillEncode(lo, hi);
    word.FlipBit(0, static_cast<int>(lo % 72));
    const auto decoded = ecc::ChipkillDecode(word);
    benchmark::DoNotOptimize(decoded.data[0]);
    lo = lo * 6364136223846793005ULL + 1;
  }
}
BENCHMARK(BM_ChipkillEncodeDecode);

void BM_SensorSample(benchmark::State& state) {
  const sensors::Environment env;
  const SimTime base = SimTime::FromCivil(2019, 6, 1);
  std::int64_t minute = 0;
  for (auto _ : state) {
    const auto reading = env.Sensors().Sample(
        static_cast<NodeId>(minute % 2592), SensorKind::kDimmsACEG,
        base.AddMinutes(minute));
    benchmark::DoNotOptimize(reading.value);
    ++minute;
  }
}
BENCHMARK(BM_SensorSample);

void BM_SensorWindowMean(benchmark::State& state) {
  const sensors::Environment env;
  const SimTime base = SimTime::FromCivil(2019, 6, 1);
  std::int64_t day = 0;
  for (auto _ : state) {
    const TimeWindow window{base.AddDays(day % 60), base.AddDays(day % 60 + 7)};
    const double mean =
        env.Sensors().MeanOverWindow(static_cast<NodeId>(day % 2592),
                                     SensorKind::kCpu0Temp, window, 128);
    benchmark::DoNotOptimize(mean);
    ++day;
  }
}
BENCHMARK(BM_SensorWindowMean);

}  // namespace
}  // namespace astra

BENCHMARK_MAIN();
