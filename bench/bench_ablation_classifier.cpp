// Ablation: fault-classifier design.  The toolkit's classifier uses
// dominant-pattern shares plus collision decomposition (core/coalesce.hpp);
// the naive alternative — classify each bank group strictly by its distinct
// address/column/bit sets — is what a straightforward reading of the
// methodology would implement.  This bench runs both against ground truth
// and shows why the refinements matter at fleet scale: fault-prone DIMMs
// make same-bank collisions common, and the naive classifier misreads every
// collision as a bank-level defect.
#include <map>
#include <tuple>

#include "common/bench_common.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

struct ClassifierScore {
  core::CoalesceResult result;
  std::size_t comparable = 0;
  std::size_t matched = 0;

  [[nodiscard]] double Accuracy() const {
    return comparable == 0
               ? 0.0
               : static_cast<double>(matched) / static_cast<double>(comparable);
  }
};

ClassifierScore Evaluate(const bench::CampaignBundle& bundle,
                         const core::CoalesceOptions& options) {
  ClassifierScore score;
  score.result = core::FaultCoalescer::Coalesce(bundle.result.memory_errors, options);

  // Ground-truth comparison on collision-free bank groups with >= 2 errors
  // (same protocol as the coalescer's ground-truth test).
  std::map<std::tuple<NodeId, int, int, int>, std::vector<const faultsim::Fault*>>
      truth;
  for (const auto& fault : bundle.result.faults) {
    truth[{fault.anchor.node, static_cast<int>(fault.anchor.slot), fault.anchor.rank,
           fault.anchor.bank}]
        .push_back(&fault);
  }
  for (const auto& fault : score.result.faults) {
    const auto it = truth.find(
        {fault.node, static_cast<int>(fault.slot), fault.rank, fault.bank});
    if (it == truth.end() || it->second.size() != 1 || fault.error_count < 2) continue;
    ++score.comparable;
    const auto expected = faultsim::ExpectedObservation(
        it->second.front()->mode, fault.distinct_addresses > 1);
    const bool degenerate_ok = fault.distinct_addresses == 1 &&
                               (fault.mode == faultsim::ObservedMode::kSingleBit ||
                                fault.mode == faultsim::ObservedMode::kSingleWord);
    if (fault.mode == expected || degenerate_ok) ++score.matched;
  }
  return score;
}

}  // namespace

int Run(int argc, char** argv) {
  const bench::BenchOptions options = bench::ParseArgs(argc, argv);
  bench::PrintBanner(
      "Ablation - fault classifier design (dominance + decomposition)",
      "naive set-based classification misreads same-bank collisions as bank "
      "faults, inflating the rare single-bank class");

  const bench::CampaignBundle bundle = bench::RunCampaign(options);

  core::CoalesceOptions full;          // toolkit defaults
  core::CoalesceOptions no_decompose = full;
  no_decompose.decompose_address_limit = 0;
  core::CoalesceOptions naive = full;  // strict sets: nothing ever "dominates"
  naive.dominance_fraction = 1.01;
  naive.decompose_address_limit = 0;

  struct Variant {
    const char* name;
    ClassifierScore score;
  };
  const Variant variants[] = {
      {"dominance + decomposition (default)", Evaluate(bundle, full)},
      {"dominance only", Evaluate(bundle, no_decompose)},
      {"naive strict sets", Evaluate(bundle, naive)},
  };

  TextTable table({"Classifier", "Faults", "single-bank faults",
                   "single-bank errors", "row-like errors",
                   "ground-truth accuracy"});
  for (const Variant& variant : variants) {
    using faultsim::ObservedMode;
    table.AddRow(
        {variant.name, WithThousands(variant.score.result.faults.size()),
         WithThousands(variant.score.result.FaultsOfMode(ObservedMode::kSingleBank)),
         WithThousands(variant.score.result.ErrorsOfMode(ObservedMode::kSingleBank)),
         WithThousands(
             variant.score.result.ErrorsOfMode(ObservedMode::kUnattributedRowLike)),
         FormatDouble(100.0 * variant.score.Accuracy(), 1) + "%"});
  }
  table.Print(std::cout);

  bench::PrintComparison(
      "design takeaway",
      "strict-set classification dumps collision groups into single-bank; "
      "dominance shares recover the paper's small bank class (7,658 errors)",
      "§3.2: single-bank is the RARE mode; misclassifying it matters because "
      "bank faults are the expensive ones to mitigate");
  bench::PrintFooter();
  return 0;
}

}  // namespace astra

int main(int argc, char** argv) { return astra::Run(argc, argv); }
