// Ingest an on-disk dataset in the §2.4 release layout and run the
// positional analyses — the workflow an external analyst follows with the
// public Astra data (or any machine's logs exported to the same schema).
//
// Usage:
//   parse_real_dataset <dataset_dir>
// If no directory is given (or files are missing), a small demonstration
// dataset is generated under ./demo_dataset first, then parsed — so the
// example is runnable standalone.
#include <filesystem>
#include <iostream>

#include "core/coalesce.hpp"
#include "core/dataset.hpp"
#include "core/positional.hpp"
#include "faultsim/fleet.hpp"
#include "util/strings.hpp"
#include "util/text_table.hpp"

int main(int argc, char** argv) {
  using namespace astra;

  std::string dir = argc > 1 ? argv[1] : "demo_dataset";
  core::DatasetPaths paths = core::DatasetPaths::InDirectory(dir);

  if (!std::filesystem::exists(paths.memory_errors)) {
    std::cout << "no dataset at " << dir << "; generating a demo dataset ...\n";
    std::filesystem::create_directories(dir);
    faultsim::CampaignConfig config;
    config.SeedFrom(4242);
    config.node_count = 2 * kNodesPerRack;
    const auto campaign = faultsim::FleetSimulator(config).Run();
    if (!core::WriteFailureData(paths, campaign)) {
      std::cerr << "could not write demo dataset\n";
      return 1;
    }
  }

  std::cout << "ingesting " << paths.memory_errors << " ...\n";
  const auto loaded = core::ReadFailureData(paths);
  if (!loaded) {
    std::cerr << "failed to open dataset files in " << dir << '\n';
    return 1;
  }
  std::cout << "  memory errors: " << WithThousands(loaded->memory_errors.size())
            << " parsed, " << loaded->memory_stats.malformed << " malformed ("
            << FormatDouble(100.0 * loaded->memory_stats.MalformedFraction(), 3)
            << "%)\n";
  std::cout << "  HET events:    " << WithThousands(loaded->het_events.size())
            << " parsed\n\n";

  // Infer the node span from the data itself (real datasets may be partial).
  NodeId max_node = 0;
  for (const auto& r : loaded->memory_errors) max_node = std::max(max_node, r.node);
  const int node_span = max_node + 1;

  const auto faults = core::FaultCoalescer::Coalesce(loaded->memory_errors);
  const auto positions =
      core::AnalyzePositions(loaded->memory_errors, faults, node_span);

  TextTable summary({"Metric", "Value"});
  summary.AddRow({"total CE records", WithThousands(faults.total_errors)});
  summary.AddRow({"coalesced faults", WithThousands(faults.faults.size())});
  summary.AddRow({"nodes with CEs", std::to_string(positions.nodes_with_errors) +
                                        " of " + std::to_string(node_span)});
  summary.AddRow(
      {"top 2% node CE share",
       FormatDouble(100.0 * positions.ce_concentration.ShareOfTop(
                        static_cast<std::size_t>(std::max(1, node_span / 50))),
                    1) + "%"});
  summary.AddRow({"rank0 / rank1 faults",
                  std::to_string(positions.faults.per_rank[0]) + " / " +
                      std::to_string(positions.faults.per_rank[1])});
  const auto verdict = [](const stats::ChiSquareResult& r) {
    return std::string(r.ConsistentWithUniform() ? "uniform" : "skewed") +
           " (V=" + FormatDouble(r.cramers_v, 3) + ")";
  };
  summary.AddRow({"fault uniformity: socket",
                  verdict(positions.fault_uniformity.socket)});
  summary.AddRow({"fault uniformity: bank", verdict(positions.fault_uniformity.bank)});
  summary.AddRow({"fault uniformity: slot", verdict(positions.fault_uniformity.slot)});
  summary.Print(std::cout);

  std::cout << "\nfault mode breakdown:\n";
  for (int m = 0; m < faultsim::kObservedModeCount; ++m) {
    const auto mode = static_cast<faultsim::ObservedMode>(m);
    if (faults.FaultsOfMode(mode) == 0) continue;
    std::cout << "  " << faultsim::ObservedModeName(mode) << ": "
              << faults.FaultsOfMode(mode) << " faults, "
              << WithThousands(faults.ErrorsOfMode(mode)) << " errors\n";
  }
  return 0;
}
