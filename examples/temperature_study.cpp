// Temperature study: when does Schroeder et al.'s temperature correlation
// appear, and why doesn't Astra show it?
//
// The paper (§3.3) reports NO strong temperature/CE correlation on Astra and
// conjectures the machine's tightly-controlled climate (deciles spanning
// ~4-7 degC instead of Schroeder's 20+ degC) is part of the explanation.
// This example tests that conjecture in simulation by running the same
// decile analysis over three synthetic fleets:
//
//   1. "astra"      — tight climate, temperature-BLIND fault process
//                     (the toolkit's calibrated default);
//   2. "wide-blind" — a 25 degC-wide climate, still temperature-blind;
//   3. "wide-coupled" — the same wide climate with an Arrhenius-style fault
//                     process (rate doubles per 10 degC, the Hsu et al.
//                     model adopted by Sarood et al.).
//
// Expected outcome: only fleet 3 shows the Schroeder trend, demonstrating
// that the analysis recovers a real coupling when one exists — and that
// Astra's null result is not an artifact of the method.
#include <cmath>
#include <iostream>

#include "sensors/environment.hpp"
#include "stats/deciles.hpp"
#include "stats/linear_fit.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/text_table.hpp"

namespace {

using namespace astra;

struct StudyResult {
  double decile_span_c = 0.0;
  double trend_ratio = 1.0;  // CE rate in the hottest decile / coldest decile
  bool increasing = false;
  double spearman = 0.0;
};

// Build (monthly mean DIMM temperature, monthly CE count) observations for a
// fleet under the given climate, with optional Arrhenius coupling.
StudyResult RunStudy(const sensors::EnvironmentConfig& env_config, bool coupled,
                     std::uint64_t seed) {
  const sensors::Environment env(env_config);
  const TimeWindow window{SimTime::FromCivil(2019, 5, 20),
                          SimTime::FromCivil(2019, 9, 14)};
  constexpr int kNodes = 700;
  constexpr int kMonths = 4;
  constexpr double kBaseRatePerMonth = 18.0;  // CE arrivals per node-month

  Rng rng(MixSeed(seed, 0xCE));
  std::vector<double> temps, ces;
  for (NodeId node = 0; node < kNodes; ++node) {
    for (int m = 0; m < kMonths; ++m) {
      const TimeWindow month{window.begin.AddDays(30 * m),
                             window.begin.AddDays(30 * (m + 1))};
      const double temp =
          env.Sensors().MeanOverWindow(node, SensorKind::kDimmsACEG, month, 64);
      // Temperature-blind: constant rate.  Coupled: Arrhenius-style rate
      // doubling per 10 degC above the fleet baseline (Hsu et al.).
      const double rate =
          coupled ? kBaseRatePerMonth * std::exp2((temp - 40.0) / 10.0)
                  : kBaseRatePerMonth;
      temps.push_back(temp);
      ces.push_back(static_cast<double>(rng.Poisson(rate)));
    }
  }

  const stats::DecileSeries deciles = stats::ComputeDecileSeries(temps, ces);
  StudyResult result;
  result.decile_span_c = deciles.XSpan();
  if (!deciles.buckets.empty() && deciles.buckets.front().y_mean > 0.0) {
    result.trend_ratio =
        deciles.buckets.back().y_mean / deciles.buckets.front().y_mean;
  }
  result.increasing = deciles.MonotonicallyIncreasing();
  result.spearman = stats::SpearmanCorrelation(temps, ces);
  return result;
}

}  // namespace

int main() {
  // Fleet 1: Astra's tight climate (toolkit defaults).
  sensors::EnvironmentConfig astra_climate;
  astra_climate.SeedFrom(101);

  // Fleets 2-3: a poorly-controlled machine room — big rack-to-rack spread,
  // strong seasonal swing, deeper preheat.
  sensors::EnvironmentConfig wide_climate;
  wide_climate.SeedFrom(102);
  wide_climate.climate.rack_offset_sigma_c = 5.0;
  wide_climate.climate.inlet_seasonal_amplitude_c = 6.0;
  wide_climate.climate.node_offset_sigma_c = 2.0;
  wide_climate.climate.preheat_full_load_c = 26.0;

  const StudyResult astra_result = RunStudy(astra_climate, /*coupled=*/false, 7);
  const StudyResult wide_blind = RunStudy(wide_climate, /*coupled=*/false, 8);
  const StudyResult wide_coupled = RunStudy(wide_climate, /*coupled=*/true, 9);

  astra::TextTable table({"Fleet", "Decile span (degC)", "Hot/cold CE ratio",
                          "Monotone trend?", "Spearman rho"});
  const auto row = [&](const char* name, const StudyResult& r) {
    table.AddRow({name, astra::FormatDouble(r.decile_span_c, 1),
                  astra::FormatDouble(r.trend_ratio, 2),
                  r.increasing ? "YES" : "no", astra::FormatDouble(r.spearman, 3)});
  };
  row("astra (tight climate, blind faults)", astra_result);
  row("wide climate, blind faults", wide_blind);
  row("wide climate, Arrhenius faults", wide_coupled);
  table.Print(std::cout);

  std::cout <<
      "\nReading: the decile analysis only reports a Schroeder-style trend when\n"
      "the fault process is genuinely temperature-coupled AND the climate is\n"
      "wide enough to expose it.  Astra's tight thermal envelope (paper: <7 degC\n"
      "across CPU deciles) plus an apparently temperature-blind fault process\n"
      "yields the null result of Figs. 9/13 without any contradiction with\n"
      "Schroeder et al.'s 20+ degC datacenters.\n";
  return 0;
}
