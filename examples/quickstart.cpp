// Quickstart: simulate a small Astra-like fleet for the full campaign,
// coalesce the error log into faults, and print the headline reliability
// summary.  This is the 60-second tour of the toolkit's core loop:
//
//   CampaignConfig -> FleetSimulator -> MemoryErrorRecord stream
//                  -> FaultCoalescer -> faults + modes
//                  -> AnalyzePositions -> distribution verdicts
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/coalesce.hpp"
#include "core/positional.hpp"
#include "faultsim/fleet.hpp"
#include "util/strings.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace astra;

  // 1. Configure a campaign: 288 nodes (4 racks) over the paper's window.
  faultsim::CampaignConfig config;
  config.SeedFrom(/*campaign seed=*/2019);
  config.node_count = 4 * kNodesPerRack;

  // 2. Run the fleet simulator: produces the syslog CE/DUE record stream,
  //    the HET stream, and (for validation) the ground-truth fault list.
  const faultsim::CampaignResult campaign = faultsim::FleetSimulator(config).Run();
  std::cout << "simulated " << config.node_count << " nodes over "
            << FormatDouble(config.window.DurationDays(), 0) << " days: "
            << WithThousands(campaign.memory_errors.size()) << " memory error records ("
            << WithThousands(campaign.total_ces) << " CEs, "
            << campaign.total_dues << " DUEs)\n\n";

  // 3. Coalesce errors into faults — the paper's central methodology.
  const core::CoalesceResult faults =
      core::FaultCoalescer::Coalesce(campaign.memory_errors);
  TextTable mode_table({"Observed fault mode", "Faults", "Errors"});
  for (int m = 0; m < faultsim::kObservedModeCount; ++m) {
    const auto mode = static_cast<faultsim::ObservedMode>(m);
    if (faults.FaultsOfMode(mode) == 0) continue;
    mode_table.AddRow({std::string(faultsim::ObservedModeName(mode)),
                       WithThousands(faults.FaultsOfMode(mode)),
                       WithThousands(faults.ErrorsOfMode(mode))});
  }
  mode_table.Print(std::cout);

  // 4. Positional analysis: where do errors vs faults land?
  const core::PositionalAnalysis positions =
      core::AnalyzePositions(campaign.memory_errors, faults, config.node_count);
  std::cout << "\nnodes with at least one CE: " << positions.nodes_with_errors
            << " of " << config.node_count << '\n';
  std::cout << "top 2% of nodes hold "
            << FormatDouble(100.0 * positions.ce_concentration.ShareOfTop(
                                static_cast<std::size_t>(0.02 * config.node_count)),
                            1)
            << "% of all CEs\n";
  std::cout << "fault uniformity verdicts (chi-square + Cramers V):\n";
  const auto verdict = [](const stats::ChiSquareResult& r) {
    return r.ConsistentWithUniform() ? "uniform" : "skewed";
  };
  std::cout << "  socket: " << verdict(positions.fault_uniformity.socket)
            << "  bank: " << verdict(positions.fault_uniformity.bank)
            << "  column: " << verdict(positions.fault_uniformity.column)
            << "  slot: " << verdict(positions.fault_uniformity.slot)
            << "  rank0/rank1: " << positions.faults.per_rank[0] << "/"
            << positions.faults.per_rank[1] << '\n';
  return 0;
}
