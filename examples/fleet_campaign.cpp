// Full campaign pipeline: simulate a fleet, WRITE the §2.4-format dataset to
// disk (memory errors, HET events, sensor telemetry, inventory scans), read
// it back like an external analyst would, and run the complete analysis
// suite against the files.
//
// Usage:
//   fleet_campaign [output_dir] [--nodes=N] [--seed=S]
// Defaults: ./astra_dataset, 432 nodes (6 racks), seed 20190120.
// Run with --nodes=2592 for a full-scale dataset (~500 MB of TSV).
#include <filesystem>
#include <iostream>

#include "core/coalesce.hpp"
#include "core/dataset.hpp"
#include "core/positional.hpp"
#include "core/temporal.hpp"
#include "core/uncorrectable.hpp"
#include "replace/replacement_sim.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace astra;

  std::string out_dir = "astra_dataset";
  int nodes = 6 * kNodesPerRack;
  std::uint64_t seed = 20190120;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (StartsWith(arg, "--nodes=")) {
      if (const auto v = ParseInt64(arg.substr(8)); v && *v > 0 && *v <= kNumNodes) {
        nodes = static_cast<int>(*v);
      }
    } else if (StartsWith(arg, "--seed=")) {
      if (const auto v = ParseUint64(arg.substr(7))) seed = *v;
    } else if (!StartsWith(arg, "--")) {
      out_dir = std::string(arg);
    }
  }
  std::filesystem::create_directories(out_dir);
  const core::DatasetPaths paths = core::DatasetPaths::InDirectory(out_dir);

  // --- Simulate ---------------------------------------------------------
  faultsim::CampaignConfig config;
  config.SeedFrom(seed);
  config.node_count = nodes;
  std::cout << "simulating " << nodes << " nodes, seed " << seed << " ...\n";
  const faultsim::CampaignResult campaign = faultsim::FleetSimulator(config).Run();

  const sensors::Environment environment;

  auto replacement_config = replace::ReplacementSimConfig::AstraDefaults();
  replacement_config.seed = seed;
  replacement_config.node_count = nodes;
  const replace::ReplacementSimulator replacements(replacement_config);
  const auto replacement_campaign = replacements.Run();

  // --- Write the dataset --------------------------------------------------
  std::cout << "writing dataset to " << out_dir << "/ ...\n";
  if (!core::WriteFailureData(paths, campaign)) {
    std::cerr << "failed to write failure data\n";
    return 1;
  }
  core::SensorDumpOptions sensor_options;
  sensor_options.stride_minutes = 60;         // hourly keeps files manageable
  sensor_options.node_limit = std::min(nodes, 64);
  if (!core::WriteSensorData(paths, environment, config.window, nodes,
                             sensor_options)) {
    std::cerr << "failed to write sensor data\n";
    return 1;
  }
  if (!core::WriteInventoryData(paths, replacements, replacement_campaign,
                                /*stride_days=*/7)) {
    std::cerr << "failed to write inventory data\n";
    return 1;
  }

  // --- Read back and analyse (file-driven, like a real study) -------------
  std::cout << "re-ingesting files and analysing ...\n\n";
  const auto loaded = core::ReadFailureData(paths);
  if (!loaded) {
    std::cerr << "failed to read dataset back\n";
    return 1;
  }
  std::cout << "parsed " << WithThousands(loaded->memory_errors.size())
            << " memory error records ("
            << loaded->memory_stats.malformed << " malformed lines)\n";

  core::CoalesceOptions coalesce_options;
  coalesce_options.month_count = 9;
  coalesce_options.series_origin = config.window.begin;
  const auto faults =
      core::FaultCoalescer::Coalesce(loaded->memory_errors, coalesce_options);
  const auto positions =
      core::AnalyzePositions(loaded->memory_errors, faults, nodes);

  std::cout << "coalesced into " << WithThousands(faults.faults.size())
            << " faults; " << positions.nodes_with_errors << "/" << nodes
            << " nodes saw CEs\n";

  const auto series = core::BuildMonthlySeries(loaded->memory_errors, faults,
                                               config.window.begin, 9);
  std::cout << "monthly CE counts:";
  for (const auto m : series.all_errors) std::cout << ' ' << m;
  std::cout << "  (trend " << FormatDouble(series.TrendSlopePerMonth(), 1)
            << "/month)\n";

  const TimeWindow recording{config.het_firmware_start, config.window.end};
  const auto uncorrectable = core::AnalyzeUncorrectable(
      loaded->het_events, recording, nodes * kDimmSlotsPerNode);
  std::cout << "HET-recorded DUEs: " << uncorrectable.memory_due_events
            << "  -> FIT/DIMM = " << FormatDouble(uncorrectable.fit_per_dimm, 0)
            << '\n';

  std::cout << "\ndataset files:\n  " << paths.memory_errors << "\n  "
            << paths.het_events << "\n  " << paths.sensors << "\n  "
            << paths.inventory << '\n';
  return 0;
}
