// Mitigation what-if study (§3.2's operational takeaway): how much CE volume
// do (a) page retirement and (b) an exclude list for the handful of
// fault-prone nodes actually remove?
//
// The paper argues both are cheap and effective because faults have small
// memory footprints and CE volume concentrates on very few nodes.  This
// example quantifies that on a simulated campaign:
//   - retirement sweep: CE volume vs retirement aggressiveness;
//   - exclude-list sweep: CE volume removed by excluding the top-k
//     error-logging nodes (the "small number of nodes experiencing large
//     numbers of faults" the paper suggests excluding).
#include <algorithm>
#include <iostream>

#include "core/coalesce.hpp"
#include "core/positional.hpp"
#include "faultsim/fleet.hpp"
#include "util/strings.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace astra;
  constexpr int kNodes = 800;
  constexpr std::uint64_t kSeed = 31337;

  // --- Retirement aggressiveness sweep ------------------------------------
  struct RetirementPoint {
    const char* label;
    bool enabled;
    std::uint32_t threshold;
    std::int64_t reaction_hours;
    double success;
  };
  const RetirementPoint kSweep[] = {
      {"disabled", false, 0, 0, 0.0},
      {"conservative (1024 CEs, 48h, 25%)", true, 1024, 48, 0.25},
      {"Astra-like (768 CEs, 24h, 25%)", true, 768, 24, 0.25},
      {"aggressive (64 CEs, 2h, 90%)", true, 64, 2, 0.90},
  };

  TextTable retirement_table(
      {"Retirement policy", "Logged CEs", "Suppressed", "Pages retired",
       "Memory mapped out (MiB)"});
  for (const RetirementPoint& point : kSweep) {
    faultsim::CampaignConfig config;
    config.SeedFrom(kSeed);
    config.node_count = kNodes;
    config.mitigation.retirement.enabled = point.enabled;
    if (point.enabled) {
      config.mitigation.retirement.ce_threshold = point.threshold;
      config.mitigation.retirement.reaction_seconds = point.reaction_hours * 3600;
      config.mitigation.retirement.success_probability = point.success;
    }
    const auto result = faultsim::FleetSimulator(config).Run();
    retirement_table.AddRow(
        {point.label, WithThousands(result.total_ces),
         WithThousands(result.retirement_stats.suppressed_errors),
         WithThousands(result.retirement_stats.pages_retired),
         FormatDouble(static_cast<double>(result.retirement_stats.pages_retired) *
                          4096.0 / (1 << 20),
                      2)});
  }
  std::cout << "Page-retirement aggressiveness sweep (" << kNodes << " nodes):\n";
  retirement_table.Print(std::cout);
  std::cout << "Even aggressive retirement maps out only MiBs of the fleet's "
               "memory -- the paper's point that small-footprint faults are "
               "cheap to mitigate.\n\n";

  // --- Exclude-list sweep ---------------------------------------------------
  faultsim::CampaignConfig config;
  config.SeedFrom(kSeed);
  config.node_count = kNodes;
  const auto result = faultsim::FleetSimulator(config).Run();
  const auto faults = core::FaultCoalescer::Coalesce(result.memory_errors);
  const auto positions = core::AnalyzePositions(result.memory_errors, faults, kNodes);

  // Rank nodes by CE count (descending).
  std::vector<std::size_t> order(positions.errors.per_node.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return positions.errors.per_node[a] > positions.errors.per_node[b];
  });

  TextTable exclude_table({"Nodes excluded", "% of fleet", "CE volume removed",
                           "Capacity lost"});
  for (const int k : {1, 2, 4, 8, 16, 32}) {
    std::uint64_t removed = 0;
    for (int i = 0; i < k; ++i) {
      removed += positions.errors.per_node[order[static_cast<std::size_t>(i)]];
    }
    exclude_table.AddRow(
        {std::to_string(k),
         FormatDouble(100.0 * k / kNodes, 2) + "%",
         FormatDouble(100.0 * static_cast<double>(removed) /
                          static_cast<double>(result.total_ces),
                      1) + "%",
         FormatDouble(100.0 * k / kNodes, 2) + "% of nodes"});
  }
  std::cout << "Exclude-list what-if (drop the top-k CE-logging nodes):\n";
  exclude_table.Print(std::cout);
  std::cout << "A fraction of a percent of nodes absorbs the majority of the CE "
               "volume (Fig. 5b), so a tiny exclude list buys a large logging "
               "and interruption reduction.\n";
  return 0;
}
