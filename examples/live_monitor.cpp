// Live monitor: an in-process producer/consumer pair over a growing dataset.
// A writer thread appends a simulated campaign's failure logs in timestamp
// order, batch by batch, while the main thread tail-follows them with a
// StreamMonitor — firing burst alerts as the errors arrive and finishing
// with the full reliability report (byte-identical to what `astra-mrt
// analyze` would print over the final files).
//
//   FleetSimulator -> writer thread (LogFileWriter append+flush)
//                  -> StreamMonitor::Poll (tail ingest + incremental analyzers)
//                  -> alerts on the way, RenderAnalysisReport at the end
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/live_monitor
#include <atomic>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <thread>

#include "core/dataset.hpp"
#include "core/report.hpp"
#include "faultsim/fleet.hpp"
#include "logs/log_file.hpp"
#include "stream/monitor.hpp"
#include "util/strings.hpp"

int main() {
  using namespace astra;

  // 1. Simulate a small fleet and pick a directory for the growing logs.
  faultsim::CampaignConfig config;
  config.SeedFrom(2019);
  config.node_count = kNodesPerRack;
  const faultsim::CampaignResult campaign = faultsim::FleetSimulator(config).Run();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "astra_live_monitor_example")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto paths = core::DatasetPaths::InDirectory(dir);
  std::cout << "streaming " << WithThousands(campaign.memory_errors.size())
            << " memory error records through " << dir << "\n\n";

  // 2. Producer: append both failure logs in timestamp order, a batch at a
  //    time, flushing so the monitor sees complete lines appear.
  std::atomic<bool> done{false};
  std::thread producer([&campaign, &paths, &done] {
    logs::LogFileWriter<logs::MemoryErrorRecord> errors(paths.memory_errors);
    logs::LogFileWriter<logs::HetRecord> het(paths.het_events);
    const auto& memory = campaign.memory_errors;
    const auto& hets = campaign.het_records;
    std::size_t mi = 0, hi = 0;
    int in_batch = 0;
    while (mi < memory.size() || hi < hets.size()) {
      const bool take_memory =
          hi >= hets.size() ||
          (mi < memory.size() && memory[mi].timestamp <= hets[hi].timestamp);
      if (take_memory) {
        errors.Append(memory[mi++]);
      } else {
        het.Append(hets[hi++]);
      }
      if (++in_batch >= 512) {
        in_batch = 0;
        errors.Flush();
        het.Flush();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    if (!errors.Finish() || !het.Finish()) {
      std::cerr << "producer: write failure\n";
    }
    done.store(true);
  });

  // 3. Consumer: tail-follow with a CE-burst alert rule.  Alerts go to
  //    stderr as they fire; the report below stays clean on stdout.
  stream::MonitorConfig monitor_config;
  monitor_config.alerts.window_seconds = 7 * 24 * 3600;
  monitor_config.alerts.fleet_ce_threshold = 500;
  stream::StreamMonitor monitor(paths, monitor_config);
  std::uint64_t alerts_fired = 0;
  while (!done.load()) {
    (void)monitor.Poll();
    for (const auto& alert : monitor.DrainAlerts()) {
      ++alerts_fired;
      std::cerr << alert.Message() << '\n';
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  producer.join();
  (void)monitor.Finish();
  for (const auto& alert : monitor.DrainAlerts()) {
    ++alerts_fired;
    std::cerr << alert.Message() << '\n';
  }

  // 4. The final report comes from the incremental analyzers — no re-read of
  //    the files — yet matches the batch pipeline byte for byte.
  std::cout << "delivered " << WithThousands(monitor.Delivered())
            << " records, fired " << alerts_fired << " alert(s)\n\n";
  core::RenderAnalysisReport(std::cout, monitor.Artifacts());

  std::filesystem::remove_all(dir);
  return 0;
}
