// Fleet dataset generator + multi-producer driver for `astra_serve`.
//
// Simulates one campaign and writes it twice: once as per-node dataset
// directories under ROOT (node-0000/, node-0001/, ... — what the daemon
// tails) and once concatenated under ROOT/combined/ (what `astra-mrt
// analyze` reads — the byte-parity oracle for /fleet/report).
//
// With --live the per-node failure logs are instead appended by several
// concurrent producer threads, each batch-flushing its own node range with a
// delay between batches — a deterministic stand-in for a fleet's telemetry
// daemons, for exercising the serve daemon against growing files.
//
// Usage:
//   serve_fleet ROOT [--racks=R] [--nodes-per-rack=P] [--seed=S]
//               [--live] [--live-batch=N] [--live-delay-ms=MS] [--producers=T]
// Defaults: 2 racks x 18 nodes, seed 20190120, 4 producers.
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/dataset.hpp"
#include "logs/log_file.hpp"
#include "serve/fleet_dataset.hpp"
#include "serve/topology.hpp"
#include "util/strings.hpp"

namespace {

using namespace astra;

// One node's records in campaign (timestamp) order, as indices into the
// campaign vectors merged across both streams.
struct NodeFeed {
  std::vector<std::size_t> memory;
  std::vector<std::size_t> het;
};

// Append one node range's logs in batches: for each node, `batch` records
// per round (memory and het interleaved by timestamp), flush, then sleep.
void ProduceRange(const faultsim::CampaignResult& campaign,
                  const std::vector<NodeFeed>& feeds, const std::string& root,
                  int begin, int end, int batch, int delay_ms) {
  struct NodeWriter {
    logs::LogFileWriter<logs::MemoryErrorRecord> memory;
    logs::LogFileWriter<logs::HetRecord> het;
    std::size_t mi = 0;
    std::size_t hi = 0;
    NodeWriter(const core::DatasetPaths& paths)
        : memory(paths.memory_errors), het(paths.het_events) {}
  };
  std::vector<std::unique_ptr<NodeWriter>> writers;
  for (int node = begin; node < end; ++node) {
    const auto paths = core::DatasetPaths::InDirectory(
        serve::NodeDir(root, node));
    writers.push_back(std::make_unique<NodeWriter>(paths));
  }

  bool pending = true;
  while (pending) {
    pending = false;
    for (int node = begin; node < end; ++node) {
      const NodeFeed& feed = feeds[static_cast<std::size_t>(node)];
      NodeWriter& w = *writers[static_cast<std::size_t>(node - begin)];
      int in_batch = 0;
      while (in_batch < batch && (w.mi < feed.memory.size() ||
                                  w.hi < feed.het.size())) {
        const bool take_memory =
            w.hi >= feed.het.size() ||
            (w.mi < feed.memory.size() &&
             campaign.memory_errors[feed.memory[w.mi]].timestamp <=
                 campaign.het_records[feed.het[w.hi]].timestamp);
        if (take_memory) {
          w.memory.Append(campaign.memory_errors[feed.memory[w.mi++]]);
        } else {
          w.het.Append(campaign.het_records[feed.het[w.hi++]]);
        }
        ++in_batch;
      }
      w.memory.Flush();
      w.het.Flush();
      pending = pending || w.mi < feed.memory.size() || w.hi < feed.het.size();
    }
    if (pending && delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
  }
  for (auto& w : writers) {
    if (!w->memory.Finish() || !w->het.Finish()) {
      std::cerr << "producer: failed finishing a node log\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = "astra_fleet";
  serve::ServeTopology topology;
  topology.racks = 2;
  topology.nodes_per_rack = 18;
  std::uint64_t seed = 20190120;
  bool live = false;
  int live_batch = 200;
  int live_delay_ms = 20;
  int producers = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (StartsWith(arg, "--racks=")) {
      if (const auto v = ParseInt64(arg.substr(8)); v && *v > 0) {
        topology.racks = static_cast<int>(*v);
      }
    } else if (StartsWith(arg, "--nodes-per-rack=")) {
      if (const auto v = ParseInt64(arg.substr(17)); v && *v > 0) {
        topology.nodes_per_rack = static_cast<int>(*v);
      }
    } else if (StartsWith(arg, "--seed=")) {
      if (const auto v = ParseUint64(arg.substr(7))) seed = *v;
    } else if (arg == "--live") {
      live = true;
    } else if (StartsWith(arg, "--live-batch=")) {
      if (const auto v = ParseInt64(arg.substr(13)); v && *v > 0) {
        live_batch = static_cast<int>(*v);
      }
    } else if (StartsWith(arg, "--live-delay-ms=")) {
      if (const auto v = ParseInt64(arg.substr(16)); v && *v >= 0) {
        live_delay_ms = static_cast<int>(*v);
      }
    } else if (StartsWith(arg, "--producers=")) {
      if (const auto v = ParseInt64(arg.substr(12)); v && *v > 0 && *v <= 64) {
        producers = static_cast<int>(*v);
      }
    } else if (!StartsWith(arg, "--")) {
      root = std::string(arg);
    }
  }
  if (!topology.Valid()) {
    std::cerr << "invalid topology\n";
    return 1;
  }

  const int nodes = topology.NodeCount();
  faultsim::CampaignConfig config;
  config.SeedFrom(seed);
  config.node_count = nodes;
  std::cout << "simulating " << nodes << " nodes (" << topology.racks
            << " racks x " << topology.nodes_per_rack << "), seed " << seed
            << " ...\n";
  const faultsim::CampaignResult campaign =
      faultsim::FleetSimulator(config).Run();

  // The combined (analyze-oracle) copy is always written whole up front —
  // only the per-node copies grow live.
  if (!serve::WriteCombinedDataset(campaign, root + "/combined")) {
    std::cerr << "failed to write " << root << "/combined\n";
    return 2;
  }

  if (!live) {
    if (!serve::WriteFleetDataset(campaign, root, topology)) {
      std::cerr << "failed to write per-node datasets under " << root << "\n";
      return 2;
    }
    std::cout << "wrote " << WithThousands(campaign.memory_errors.size())
              << " memory error records across " << nodes
              << " node directories under " << root << "/\n";
    return 0;
  }

  // Live mode: create the node directories (with headers via the writers in
  // ProduceRange), split the campaign per node, and let `producers` threads
  // each drive a contiguous node range.
  std::error_code ec;
  for (int node = 0; node < nodes; ++node) {
    std::filesystem::create_directories(serve::NodeDir(root, node), ec);
    if (ec) {
      std::cerr << "failed to create node directories under " << root << "\n";
      return 2;
    }
  }
  std::vector<NodeFeed> feeds(static_cast<std::size_t>(nodes));
  for (std::size_t i = 0; i < campaign.memory_errors.size(); ++i) {
    const int node = static_cast<int>(campaign.memory_errors[i].node) % nodes;
    feeds[static_cast<std::size_t>(node)].memory.push_back(i);
  }
  for (std::size_t i = 0; i < campaign.het_records.size(); ++i) {
    const int node = static_cast<int>(campaign.het_records[i].node) % nodes;
    feeds[static_cast<std::size_t>(node)].het.push_back(i);
  }

  const int threads = std::min(producers, nodes);
  const int per_thread = (nodes + threads - 1) / threads;
  std::cout << "appending live with " << threads << " producers (batch "
            << live_batch << ", delay " << live_delay_ms << "ms) ...\n";
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    const int begin = t * per_thread;
    const int end = std::min(nodes, begin + per_thread);
    if (begin >= end) break;
    pool.emplace_back([&, begin, end] {
      ProduceRange(campaign, feeds, root, begin, end, live_batch,
                   live_delay_ms);
    });
  }
  for (auto& thread : pool) thread.join();
  std::cout << "done: " << WithThousands(campaign.memory_errors.size())
            << " memory error records across " << nodes
            << " node directories under " << root << "/\n";
  return 0;
}
