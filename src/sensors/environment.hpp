// Environment: owns the wired-together workload, thermal, power and sensor
// models so higher layers (fleet simulator, dataset writer, analyses) can
// hold one object with stable internal addresses.
#pragma once

#include <memory>

#include "sensors/sensor_field.hpp"
#include "sensors/thermal.hpp"
#include "sensors/workload.hpp"

namespace astra::sensors {

struct EnvironmentConfig {
  WorkloadConfig workload;
  ClimateConfig climate;
  PowerConfig power;
  SensorFieldConfig field;

  // Re-seed every sub-model from one campaign seed while keeping their
  // streams independent.
  void SeedFrom(std::uint64_t campaign_seed) noexcept;
};

class Environment {
 public:
  explicit Environment(const EnvironmentConfig& config = {});

  [[nodiscard]] const WorkloadModel& Workload() const noexcept { return *workload_; }
  [[nodiscard]] const ThermalModel& Thermal() const noexcept { return *thermal_; }
  [[nodiscard]] const PowerModel& Power() const noexcept { return *power_; }
  [[nodiscard]] const SensorField& Sensors() const noexcept { return *field_; }
  [[nodiscard]] const EnvironmentConfig& Config() const noexcept { return config_; }

 private:
  EnvironmentConfig config_;
  std::unique_ptr<WorkloadModel> workload_;
  std::unique_ptr<ThermalModel> thermal_;
  std::unique_ptr<PowerModel> power_;
  std::unique_ptr<SensorField> field_;
};

}  // namespace astra::sensors
