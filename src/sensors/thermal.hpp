// Thermal and power models for an Astra node.
//
// Airflow (paper Fig. 1): cool machine-room air enters at the FRONT of the
// node, passes over socket 1 ("CPU2") and its DIMMs, is pre-heated by their
// dissipation, then passes over socket 0 ("CPU1") and its DIMMs, and leaves
// at the rear.  Consequently CPU1's sensors read systematically hotter than
// CPU2's (visible in the paper's Fig. 13), while — unlike the bottom-to-top
// cooled Cielo — there is NO vertical temperature gradient within a rack:
// the paper measures < 1 degC mean difference between rack regions and
// < ~4.2 degC spread across racks (§3.4).  The model reproduces exactly
// those magnitudes: a small static per-rack offset, a tiny per-region term,
// and a front-to-back preheat term that scales with node power.
//
// Component temperature = local air temperature + a dissipation-driven rise:
//   air(depth)   = inlet + preheat_full * depth * utilization
//   cpu_temp     = air(cpu_depth)  + cpu_rise(u)
//   dimm_temp    = air(slot_depth) + dimm_rise(u)
// Calibration targets (paper Figs. 2 and 13): DIMM sensor bulk 30-60 degC
// with monthly means 35-52; CPU monthly means 55-75 with CPU1 > CPU2 by a
// few degC; decile spans ~7 degC (CPU) and ~4 degC (DIMM).
#pragma once

#include <cstdint>

#include "geometry/topology.hpp"
#include "sensors/workload.hpp"
#include "util/sim_time.hpp"

namespace astra::sensors {

struct ClimateConfig {
  std::uint64_t seed = 0xc11a7e5eedULL;

  double inlet_base_c = 16.0;
  double inlet_seasonal_amplitude_c = 1.2;  // annual machine-room drift
  double inlet_diurnal_amplitude_c = 0.4;

  // Static placement offsets.  Defaults reproduce the paper's observations:
  // rack-to-rack mean spread < 4.2 degC, per-region differences < 1 degC.
  double rack_offset_sigma_c = 0.85;
  double region_gradient_c = 0.25;   // total bottom->top systematic increase
  double node_offset_sigma_c = 0.35;

  // Front-to-back air preheat at full node utilization.
  double preheat_full_load_c = 14.0;

  // Die/DIMM rise above local air as a function of utilization (linear
  // interpolation between the idle and full-load values).
  double cpu_rise_idle_c = 30.0;
  double cpu_rise_full_c = 50.0;
  double dimm_rise_idle_c = 15.0;
  double dimm_rise_full_c = 26.0;

  // Per-slot static spread (thermal paste, airflow shadows): applied on top
  // of the group's depth, differentiates slots inside one sensor group.
  double slot_offset_sigma_c = 0.5;
};

struct PowerConfig {
  double idle_w = 238.0;
  double full_w = 385.0;
  double noise_sigma_w = 5.0;
};

// Deterministic thermal model: all randomness is static placement noise
// derived from the seed; time-varying behaviour comes from the workload
// model and smooth seasonal/diurnal terms.
class ThermalModel {
 public:
  ThermalModel(const ClimateConfig& climate, const WorkloadModel* workload) noexcept
      : climate_(climate), workload_(workload) {}

  [[nodiscard]] const ClimateConfig& Config() const noexcept { return climate_; }

  // Machine-room air temperature entering `node` at time `t` (before any
  // component preheat).  Includes the static rack/region/node offsets.
  [[nodiscard]] double InletTemperature(NodeId node, SimTime t) const noexcept;

  // Air temperature at normalized depth `depth` within the node.
  [[nodiscard]] double AirTemperature(NodeId node, double depth, SimTime t) const noexcept;

  // Noise-free temperature at a sensor location (the sensor adds its own
  // read noise in SensorField).  `kind` must be one of the six temperature
  // sensors, not kDcPower.
  [[nodiscard]] double TrueTemperature(NodeId node, SensorKind kind,
                                       SimTime t) const noexcept;

  // Noise-free temperature at an individual DIMM slot (used by the fault
  // model for what-if studies; slots add a static slot offset to their
  // group's reading).
  [[nodiscard]] double TrueSlotTemperature(NodeId node, DimmSlot slot,
                                           SimTime t) const noexcept;

  // Static placement offsets (exposed for tests).
  [[nodiscard]] double RackOffset(int rack) const noexcept;
  [[nodiscard]] double NodeOffset(NodeId node) const noexcept;

 private:
  [[nodiscard]] double RiseAt(double idle_rise, double full_rise, double u) const noexcept {
    return idle_rise + (full_rise - idle_rise) * u;
  }

  ClimateConfig climate_;
  const WorkloadModel* workload_;  // not owned
};

// DC node power model: affine in utilization plus sensor noise added later.
class PowerModel {
 public:
  PowerModel(const PowerConfig& config, const WorkloadModel* workload) noexcept
      : config_(config), workload_(workload) {}

  [[nodiscard]] const PowerConfig& Config() const noexcept { return config_; }

  [[nodiscard]] double TruePower(NodeId node, SimTime t) const noexcept;
  [[nodiscard]] double MeanPower(NodeId node, TimeWindow window) const noexcept;

 private:
  PowerConfig config_;
  const WorkloadModel* workload_;  // not owned
};

}  // namespace astra::sensors
