// Per-node utilization model.  Astra's telemetry has no direct CPU
// utilization signal — the paper uses DC node power as a proxy (§3.3).  The
// simulator needs the underlying quantity anyway: utilization drives both
// the power model and component heat dissipation.
//
// Model: time is divided into fixed-length "job segments" (default 4 h).  In
// each segment a node is either idle (waiting in the scheduler) or running a
// job at a sustained utilization drawn once per segment.  A fleet-wide
// diurnal factor modulates activity (production machines quiesce slightly
// overnight).  Everything is a pure function of (seed, node, time): O(1)
// memory, no stored traces, deterministic across platforms and threads.
#pragma once

#include <cstdint>

#include "geometry/topology.hpp"
#include "util/sim_time.hpp"

namespace astra::sensors {

struct WorkloadConfig {
  std::uint64_t seed = 0x57a77eedULL;
  std::int64_t segment_seconds = 4 * SimTime::kSecondsPerHour;
  double idle_probability = 0.25;   // fleet-average idle share per segment
  // Per-node duty-cycle heterogeneity: each node's idle probability is a
  // static Gaussian perturbation of the fleet average (clamped).  Production
  // fleets have hot nodes pinned by long campaigns and cold spares; this is
  // what spreads the MONTHLY-average temperature/power distributions the
  // paper's Figs. 13-14 bucket into deciles.
  double idle_probability_node_sigma = 0.12;
  double idle_util_lo = 0.02;       // OS housekeeping floor
  double idle_util_hi = 0.10;
  double busy_util_lo = 0.45;
  double busy_util_hi = 0.98;
  double diurnal_amplitude = 0.08;  // relative day/night swing
};

class WorkloadModel {
 public:
  explicit WorkloadModel(const WorkloadConfig& config = {}) noexcept
      : config_(config) {}

  [[nodiscard]] const WorkloadConfig& Config() const noexcept { return config_; }

  // Instantaneous utilization in [0, 1].
  [[nodiscard]] double Utilization(NodeId node, SimTime t) const noexcept;

  // Mean utilization over [window.begin, window.end), computed exactly over
  // the piecewise-constant segment structure (diurnal factor integrated at
  // segment-midpoint resolution).
  [[nodiscard]] double MeanUtilization(NodeId node, TimeWindow window) const noexcept;

  // Static per-node idle probability (fleet average +/- heterogeneity).
  [[nodiscard]] double NodeIdleProbability(NodeId node) const noexcept;

 private:
  // Sustained utilization of the segment containing `t` (pre-diurnal).
  [[nodiscard]] double SegmentUtilization(NodeId node, std::int64_t segment) const noexcept;
  [[nodiscard]] double DiurnalFactor(SimTime t) const noexcept;

  WorkloadConfig config_;
};

}  // namespace astra::sensors
