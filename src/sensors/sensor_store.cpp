#include "sensors/sensor_store.hpp"

#include <cmath>

namespace astra::sensors {
namespace {

std::int64_t SlotCount(TimeWindow window, int stride_minutes) {
  const std::int64_t stride_s =
      static_cast<std::int64_t>(stride_minutes) * SimTime::kSecondsPerMinute;
  return (window.DurationSeconds() + stride_s - 1) / stride_s;
}

}  // namespace

std::size_t SensorStore::IndexOf(NodeId node, SensorKind kind,
                                 std::int64_t slot) const noexcept {
  return (static_cast<std::size_t>(node) * kSensorsPerNode +
          static_cast<std::size_t>(kind)) *
             static_cast<std::size_t>(slots_per_sensor_) +
         static_cast<std::size_t>(slot);
}

bool SensorStore::InRange(NodeId node, std::int64_t slot) const noexcept {
  return node >= 0 && node < node_count_ && slot >= 0 && slot < slots_per_sensor_;
}

SensorStore SensorStore::Materialize(const SensorField& field, TimeWindow window,
                                     int node_count, int stride_minutes) {
  SensorStore store;
  store.window_ = window;
  store.node_count_ = node_count;
  store.stride_minutes_ = stride_minutes;
  store.slots_per_sensor_ = SlotCount(window, stride_minutes);
  store.values_.assign(static_cast<std::size_t>(node_count) * kSensorsPerNode *
                           static_cast<std::size_t>(store.slots_per_sensor_),
                       kGap);

  const std::int64_t stride_s =
      static_cast<std::int64_t>(stride_minutes) * SimTime::kSecondsPerMinute;
  const SensorValidRanges ranges;
  for (NodeId node = 0; node < node_count; ++node) {
    for (int s = 0; s < kSensorsPerNode; ++s) {
      const auto kind = static_cast<SensorKind>(s);
      for (std::int64_t slot = 0; slot < store.slots_per_sensor_; ++slot) {
        const SimTime t = window.begin.AddSeconds(slot * stride_s);
        const SensorReading reading = field.Sample(node, kind, t);
        if (reading.status == SampleStatus::kOk &&
            ranges.IsPlausible(kind, reading.value)) {
          store.values_[store.IndexOf(node, kind, slot)] =
              static_cast<float>(reading.value);
          ++store.valid_count_;
        }
      }
    }
  }
  return store;
}

SensorStore SensorStore::FromRecords(std::span<const logs::SensorRecord> records,
                                     TimeWindow window, int node_count,
                                     int stride_minutes,
                                     const SensorValidRanges& ranges) {
  SensorStore store;
  store.window_ = window;
  store.node_count_ = node_count;
  store.stride_minutes_ = stride_minutes;
  store.slots_per_sensor_ = SlotCount(window, stride_minutes);
  store.values_.assign(static_cast<std::size_t>(node_count) * kSensorsPerNode *
                           static_cast<std::size_t>(store.slots_per_sensor_),
                       kGap);

  const std::int64_t stride_s =
      static_cast<std::int64_t>(stride_minutes) * SimTime::kSecondsPerMinute;
  for (const logs::SensorRecord& record : records) {
    if (!record.valid || !window.Contains(record.timestamp)) continue;
    if (!ranges.IsPlausible(record.sensor, record.value)) continue;
    const std::int64_t slot =
        SecondsBetween(window.begin, record.timestamp) / stride_s;
    if (!store.InRange(record.node, slot)) continue;
    float& cell = store.values_[store.IndexOf(record.node, record.sensor, slot)];
    if (std::isnan(cell)) ++store.valid_count_;
    cell = static_cast<float>(record.value);
  }
  return store;
}

std::optional<double> SensorStore::At(NodeId node, SensorKind kind, SimTime t) const {
  const std::int64_t stride_s =
      static_cast<std::int64_t>(stride_minutes_) * SimTime::kSecondsPerMinute;
  const std::int64_t offset = SecondsBetween(window_.begin, t);
  const std::int64_t slot = (offset + stride_s / 2) / stride_s;
  if (!InRange(node, slot)) return std::nullopt;
  const float value = values_[IndexOf(node, kind, slot)];
  if (std::isnan(value)) return std::nullopt;
  return static_cast<double>(value);
}

std::optional<double> SensorStore::MeanOver(NodeId node, SensorKind kind,
                                            TimeWindow query) const {
  if (node < 0 || node >= node_count_ || query.DurationSeconds() <= 0) {
    return std::nullopt;
  }
  const std::int64_t stride_s =
      static_cast<std::int64_t>(stride_minutes_) * SimTime::kSecondsPerMinute;
  std::int64_t first = SecondsBetween(window_.begin, query.begin) / stride_s;
  std::int64_t last = (SecondsBetween(window_.begin, query.end) - 1) / stride_s;
  first = std::max<std::int64_t>(first, 0);
  last = std::min(last, slots_per_sensor_ - 1);

  double sum = 0.0;
  std::size_t count = 0;
  for (std::int64_t slot = first; slot <= last; ++slot) {
    const float value = values_[IndexOf(node, kind, slot)];
    if (std::isnan(value)) continue;
    sum += static_cast<double>(value);
    ++count;
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

}  // namespace astra::sensors
