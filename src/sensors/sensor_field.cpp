#include "sensors/sensor_field.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace astra::sensors {

double SensorField::TrueValue(NodeId node, SensorKind kind, SimTime t) const noexcept {
  if (kind == SensorKind::kDcPower) return power_->TruePower(node, t);
  return thermal_->TrueTemperature(node, kind, t);
}

SensorReading SensorField::Sample(NodeId node, SensorKind kind, SimTime t) const noexcept {
  const std::int64_t minute = t.Minutes();
  Rng rng(MixSeed(config_.seed, static_cast<std::uint64_t>(node),
                  static_cast<std::uint64_t>(kind), static_cast<std::uint64_t>(minute)));

  SensorReading reading;
  const double roll = rng.UniformDouble();
  if (roll < config_.missing_probability) {
    reading.status = SampleStatus::kMissing;
    return reading;
  }
  if (roll < config_.missing_probability + config_.invalid_probability) {
    reading.status = SampleStatus::kInvalid;
    // Glitch values seen in practice: zeroed registers or all-ones ADC reads.
    reading.value = rng.Bernoulli(0.5) ? 0.0
                    : (kind == SensorKind::kDcPower ? 6553.5 : 205.0);
    return reading;
  }

  const double sigma = kind == SensorKind::kDcPower ? config_.power_noise_sigma_w
                                                    : config_.temp_noise_sigma_c;
  reading.status = SampleStatus::kOk;
  reading.value = TrueValue(node, kind, SimTime(minute * SimTime::kSecondsPerMinute)) +
                  rng.Normal(0.0, sigma);
  return reading;
}

double SensorField::MeanOverWindow(NodeId node, SensorKind kind, TimeWindow window,
                                   int max_samples) const noexcept {
  const std::int64_t span = window.DurationSeconds();
  if (span <= 0) return TrueValue(node, kind, window.begin);

  // Stratified midpoint sampling: divide the window into k equal strata and
  // evaluate the model at each stratum midpoint.  For the smooth + piecewise
  // constant model this converges quickly; cap strata at one per minute.
  const auto minutes = std::max<std::int64_t>(1, span / SimTime::kSecondsPerMinute);
  const int k = static_cast<int>(std::min<std::int64_t>(max_samples, minutes));
  double sum = 0.0;
  for (int i = 0; i < k; ++i) {
    const std::int64_t offset = span * (2 * i + 1) / (2 * k);
    sum += TrueValue(node, kind, window.begin.AddSeconds(offset));
  }
  return sum / static_cast<double>(k);
}

}  // namespace astra::sensors
