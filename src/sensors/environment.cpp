#include "sensors/environment.hpp"

#include "util/rng.hpp"

namespace astra::sensors {

void EnvironmentConfig::SeedFrom(std::uint64_t campaign_seed) noexcept {
  workload.seed = MixSeed(campaign_seed, 0x01);
  climate.seed = MixSeed(campaign_seed, 0x02);
  field.seed = MixSeed(campaign_seed, 0x03);
}

Environment::Environment(const EnvironmentConfig& config)
    : config_(config),
      workload_(std::make_unique<WorkloadModel>(config_.workload)),
      thermal_(std::make_unique<ThermalModel>(config_.climate, workload_.get())),
      power_(std::make_unique<PowerModel>(config_.power, workload_.get())),
      field_(std::make_unique<SensorField>(config_.field, thermal_.get(), power_.get())) {}

}  // namespace astra::sensors
