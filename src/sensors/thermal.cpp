#include "sensors/thermal.hpp"

#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace astra::sensors {
namespace {

// Static standard-normal draw keyed by (seed, tags...): placement noise that
// never changes over a campaign.
double StaticNormal(std::uint64_t seed, std::uint64_t tag_a, std::uint64_t tag_b) noexcept {
  Rng rng(MixSeed(seed, tag_a, tag_b));
  return rng.Normal();
}

// Arbitrary distinct stream tags for the static placement draws.
constexpr std::uint64_t kRackTag = 1;
constexpr std::uint64_t kNodeTag = 2;
constexpr std::uint64_t kSlotTag = 3;

}  // namespace

double ThermalModel::RackOffset(int rack) const noexcept {
  return climate_.rack_offset_sigma_c *
         StaticNormal(climate_.seed, kRackTag, static_cast<std::uint64_t>(rack));
}

double ThermalModel::NodeOffset(NodeId node) const noexcept {
  return climate_.node_offset_sigma_c *
         StaticNormal(climate_.seed, kNodeTag, static_cast<std::uint64_t>(node));
}

double ThermalModel::InletTemperature(NodeId node, SimTime t) const noexcept {
  const NodeLocation loc = LocateNode(node);
  const double day_of_year =
      static_cast<double>(t.Seconds() % (365 * SimTime::kSecondsPerDay)) /
      static_cast<double>(SimTime::kSecondsPerDay);
  const double seasonal =
      climate_.inlet_seasonal_amplitude_c *
      std::cos(2.0 * std::numbers::pi * (day_of_year - 200.0) / 365.0);
  const double hour_of_day =
      static_cast<double>(t.Seconds() % SimTime::kSecondsPerDay) /
      static_cast<double>(SimTime::kSecondsPerHour);
  const double diurnal =
      climate_.inlet_diurnal_amplitude_c *
      std::cos(2.0 * std::numbers::pi * (hour_of_day - 16.0) / 24.0);
  // Vertical gradient: tiny on Astra (< 1 degC total, §3.4), linear in the
  // chassis position within the rack.
  const double vertical = climate_.region_gradient_c *
                          static_cast<double>(loc.chassis) /
                          static_cast<double>(kChassisPerRack - 1);
  return climate_.inlet_base_c + seasonal + diurnal + vertical +
         RackOffset(loc.rack) + NodeOffset(node);
}

double ThermalModel::AirTemperature(NodeId node, double depth, SimTime t) const noexcept {
  const double u = workload_->Utilization(node, t);
  return InletTemperature(node, t) + climate_.preheat_full_load_c * depth * u;
}

double ThermalModel::TrueTemperature(NodeId node, SensorKind kind, SimTime t) const noexcept {
  const double u = workload_->Utilization(node, t);
  const double air = AirTemperature(node, AirflowDepthOfSensor(kind), t);
  switch (kind) {
    case SensorKind::kCpu0Temp:
    case SensorKind::kCpu1Temp:
      return air + RiseAt(climate_.cpu_rise_idle_c, climate_.cpu_rise_full_c, u);
    case SensorKind::kDimmsACEG:
    case SensorKind::kDimmsHFDB:
    case SensorKind::kDimmsIKMO:
    case SensorKind::kDimmsJLNP:
      return air + RiseAt(climate_.dimm_rise_idle_c, climate_.dimm_rise_full_c, u);
    case SensorKind::kDcPower:
      break;  // not a thermal sensor
  }
  return air;
}

double ThermalModel::TrueSlotTemperature(NodeId node, DimmSlot slot, SimTime t) const noexcept {
  const double u = workload_->Utilization(node, t);
  const double air = AirTemperature(node, AirflowDepthOfSlot(slot), t);
  const double slot_offset =
      climate_.slot_offset_sigma_c *
      StaticNormal(climate_.seed, kSlotTag,
                   static_cast<std::uint64_t>(GlobalDimmIndex(node, slot)));
  return air + RiseAt(climate_.dimm_rise_idle_c, climate_.dimm_rise_full_c, u) +
         slot_offset;
}

double PowerModel::TruePower(NodeId node, SimTime t) const noexcept {
  const double u = workload_->Utilization(node, t);
  return config_.idle_w + (config_.full_w - config_.idle_w) * u;
}

double PowerModel::MeanPower(NodeId node, TimeWindow window) const noexcept {
  const double u = workload_->MeanUtilization(node, window);
  return config_.idle_w + (config_.full_w - config_.idle_w) * u;
}

}  // namespace astra::sensors
