// SensorField: the node telemetry surface the BMC exposes — six temperature
// sensors plus one DC power sensor per node, sampled once per minute (§2.2).
//
// The field is PROCEDURAL: a reading is a pure function of (seed, node,
// sensor, minute).  The full Astra campaign would materialize ~3.9 billion
// samples (2592 nodes x 7 sensors x 8 months x 1/min); computing values on
// demand gives O(1) memory, identical results on every query, and exact
// window means without storing anything.
//
// Fidelity quirks from §2.2 are modelled here:
//  - occasional samples where the sensor "was not functioning or not
//    properly read" (returned as kMissing);
//  - DC power samples with "values that were clearly identified as invalid"
//    (returned as an implausible reading, flagged kInvalid by validation);
//  - everything else carries Gaussian read noise on top of the true value.
// In aggregate these bad samples stay well under 1% of the total, matching
// the paper's exclusion statistics.
#pragma once

#include <cstdint>
#include <optional>

#include "geometry/topology.hpp"
#include "sensors/thermal.hpp"
#include "sensors/workload.hpp"
#include "util/sim_time.hpp"

namespace astra::sensors {

enum class SampleStatus : std::uint8_t {
  kOk = 0,
  kMissing,  // sensor not functioning / not read this minute
  kInvalid,  // value recorded but out of any physical range
};

struct SensorReading {
  SampleStatus status = SampleStatus::kOk;
  double value = 0.0;  // meaningful only when status == kOk or kInvalid

  [[nodiscard]] bool Usable() const noexcept { return status == SampleStatus::kOk; }
};

struct SensorFieldConfig {
  std::uint64_t seed = 0xb3c5e25ULL;
  double temp_noise_sigma_c = 0.8;
  double power_noise_sigma_w = 5.0;
  double missing_probability = 0.002;  // per sample
  double invalid_probability = 0.001;  // per sample (power sensor glitches)
};

// Validation thresholds used by the analysis side to drop invalid samples
// (mirrors the paper's exclusion of "clearly invalid" readings).
struct SensorValidRanges {
  double temp_min_c = 5.0;
  double temp_max_c = 120.0;
  double power_min_w = 50.0;
  double power_max_w = 700.0;

  [[nodiscard]] bool IsPlausible(SensorKind kind, double value) const noexcept {
    if (kind == SensorKind::kDcPower) return value >= power_min_w && value <= power_max_w;
    return value >= temp_min_c && value <= temp_max_c;
  }
};

class SensorField {
 public:
  SensorField(const SensorFieldConfig& config, const ThermalModel* thermal,
              const PowerModel* power) noexcept
      : config_(config), thermal_(thermal), power_(power) {}

  [[nodiscard]] const SensorFieldConfig& Config() const noexcept { return config_; }

  // The reading the BMC would log for this (node, sensor, minute).  `t` is
  // truncated to minute resolution (samples are minutely).
  [[nodiscard]] SensorReading Sample(NodeId node, SensorKind kind, SimTime t) const noexcept;

  // Noise-free model value (no missing/invalid injection).
  [[nodiscard]] double TrueValue(NodeId node, SensorKind kind, SimTime t) const noexcept;

  // Mean of the TRUE value over [window.begin, window.end).  The exact
  // per-minute average is approximated by stratified sampling at a stride of
  // at most `max_samples` points — deterministic and accurate to well under
  // the sensor noise floor for the smooth underlying model.
  [[nodiscard]] double MeanOverWindow(NodeId node, SensorKind kind, TimeWindow window,
                                      int max_samples = 256) const noexcept;

 private:
  SensorFieldConfig config_;
  const ThermalModel* thermal_;  // not owned
  const PowerModel* power_;      // not owned
};

}  // namespace astra::sensors
