// Materialized sensor storage: a dense in-memory table of sampled readings
// for a node range and time window.  The production path is the procedural
// SensorField (O(1) memory); the store exists for
//   - cross-validating procedural window means against literally-averaged
//     stored samples (tests),
//   - replaying REAL sensor files (logs::SensorRecord streams) through the
//     same query interface the analyses use.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "logs/records.hpp"
#include "sensors/sensor_field.hpp"

namespace astra::sensors {

class SensorStore {
 public:
  // Sample the procedural field at `stride_minutes` cadence for nodes
  // [0, node_count) over [window).  Missing/invalid samples are stored as
  // gaps (queries skip them, as the paper's analysis excluded them).
  [[nodiscard]] static SensorStore Materialize(const SensorField& field,
                                               TimeWindow window, int node_count,
                                               int stride_minutes = 1);

  // Build from parsed sensor records (e.g. a real dataset file).  Records
  // outside [window) or for nodes >= node_count are ignored; invalid-valued
  // records become gaps.  `stride_minutes` must match the file's cadence.
  [[nodiscard]] static SensorStore FromRecords(std::span<const logs::SensorRecord> records,
                                               TimeWindow window, int node_count,
                                               int stride_minutes,
                                               const SensorValidRanges& ranges = {});

  // Stored reading nearest to `t` (within half a stride); nullopt on gaps
  // or out-of-range queries.
  [[nodiscard]] std::optional<double> At(NodeId node, SensorKind kind, SimTime t) const;

  // Mean over stored valid samples in [query). 0 samples -> nullopt.
  [[nodiscard]] std::optional<double> MeanOver(NodeId node, SensorKind kind,
                                               TimeWindow query) const;

  [[nodiscard]] std::size_t SampleSlots() const noexcept { return values_.size(); }
  [[nodiscard]] std::size_t ValidSamples() const noexcept { return valid_count_; }
  [[nodiscard]] std::size_t GapCount() const noexcept {
    return values_.size() - valid_count_;
  }
  [[nodiscard]] TimeWindow Window() const noexcept { return window_; }
  [[nodiscard]] int StrideMinutes() const noexcept { return stride_minutes_; }

 private:
  SensorStore() = default;

  [[nodiscard]] std::size_t IndexOf(NodeId node, SensorKind kind,
                                    std::int64_t slot) const noexcept;
  [[nodiscard]] bool InRange(NodeId node, std::int64_t slot) const noexcept;

  static constexpr float kGap = std::numeric_limits<float>::quiet_NaN();

  TimeWindow window_{};
  int node_count_ = 0;
  int stride_minutes_ = 1;
  std::int64_t slots_per_sensor_ = 0;
  std::vector<float> values_;  // [node][sensor][slot], NaN = gap
  std::size_t valid_count_ = 0;
};

}  // namespace astra::sensors
