#include "sensors/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace astra::sensors {

double WorkloadModel::NodeIdleProbability(NodeId node) const noexcept {
  Rng rng(MixSeed(config_.seed, 0xD0, static_cast<std::uint64_t>(node)));
  return std::clamp(
      config_.idle_probability + config_.idle_probability_node_sigma * rng.Normal(),
      0.03, 0.85);
}

double WorkloadModel::SegmentUtilization(NodeId node, std::int64_t segment) const noexcept {
  // One hash per (node, segment): cheap enough to recompute on demand.
  std::uint64_t s = MixSeed(config_.seed, static_cast<std::uint64_t>(node),
                            static_cast<std::uint64_t>(segment));
  const double pick = static_cast<double>(SplitMix64(s) >> 11) * 0x1.0p-53;
  const double level = static_cast<double>(SplitMix64(s) >> 11) * 0x1.0p-53;
  if (pick < NodeIdleProbability(node)) {
    return config_.idle_util_lo + level * (config_.idle_util_hi - config_.idle_util_lo);
  }
  return config_.busy_util_lo + level * (config_.busy_util_hi - config_.busy_util_lo);
}

double WorkloadModel::DiurnalFactor(SimTime t) const noexcept {
  // Peak mid-afternoon, trough pre-dawn.
  const double hour_of_day = static_cast<double>(t.Seconds() % SimTime::kSecondsPerDay) /
                             static_cast<double>(SimTime::kSecondsPerHour);
  const double phase = 2.0 * std::numbers::pi * (hour_of_day - 15.0) / 24.0;
  return 1.0 + config_.diurnal_amplitude * std::cos(phase);
}

double WorkloadModel::Utilization(NodeId node, SimTime t) const noexcept {
  const std::int64_t segment = t.Seconds() / config_.segment_seconds;
  const double u = SegmentUtilization(node, segment) * DiurnalFactor(t);
  return std::clamp(u, 0.0, 1.0);
}

double WorkloadModel::MeanUtilization(NodeId node, TimeWindow window) const noexcept {
  const std::int64_t span = window.DurationSeconds();
  if (span <= 0) return Utilization(node, window.begin);

  const std::int64_t seg_len = config_.segment_seconds;
  const std::int64_t first = window.begin.Seconds() / seg_len;
  const std::int64_t last = (window.end.Seconds() - 1) / seg_len;

  double weighted = 0.0;
  for (std::int64_t seg = first; seg <= last; ++seg) {
    const std::int64_t seg_begin = seg * seg_len;
    const std::int64_t seg_end = seg_begin + seg_len;
    const std::int64_t lo = std::max(seg_begin, window.begin.Seconds());
    const std::int64_t hi = std::min(seg_end, window.end.Seconds());
    if (hi <= lo) continue;
    const SimTime midpoint((lo + hi) / 2);
    const double u = std::clamp(
        SegmentUtilization(node, seg) * DiurnalFactor(midpoint), 0.0, 1.0);
    weighted += u * static_cast<double>(hi - lo);
  }
  return weighted / static_cast<double>(span);
}

}  // namespace astra::sensors
