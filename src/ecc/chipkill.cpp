#include "ecc/chipkill.hpp"

#include "ecc/gf256.hpp"

namespace astra::ecc {
namespace {

struct Syndromes {
  Gf256::Symbol s0 = 0;
  Gf256::Symbol s1 = 0;
};

Syndromes ComputeSyndromes(const ChipkillWord& word) noexcept {
  Syndromes s;
  for (int j = 0; j < kChipkillDevices; ++j) {
    const Gf256::Symbol m = word.symbols[j];
    s.s0 = Gf256::Add(s.s0, m);
    s.s1 = Gf256::Add(s.s1, Gf256::Mul(Gf256::Pow(j), m));
  }
  return s;
}

}  // namespace

std::array<std::uint64_t, 2> ChipkillExtractData(const ChipkillWord& word) noexcept {
  std::array<std::uint64_t, 2> data{};
  for (int j = 0; j < kChipkillDataDevices; ++j) {
    const std::uint8_t sym = word.symbols[j];
    data[0] |= static_cast<std::uint64_t>(sym & 0xF) << (j * 4);
    data[1] |= static_cast<std::uint64_t>((sym >> 4) & 0xF) << (j * 4);
  }
  return data;
}

ChipkillWord ChipkillEncode(std::uint64_t data_lo, std::uint64_t data_hi) noexcept {
  ChipkillWord word;
  for (int j = 0; j < kChipkillDataDevices; ++j) {
    const auto beat0 = static_cast<std::uint8_t>((data_lo >> (j * 4)) & 0xF);
    const auto beat1 = static_cast<std::uint8_t>((data_hi >> (j * 4)) & 0xF);
    word.symbols[j] = static_cast<std::uint8_t>(beat0 | (beat1 << 4));
  }
  // Solve for the check symbols m16, m17 so that S0 = S1 = 0:
  //   m16 +     m17     = d0        (d0 = sum of data symbols)
  //   a^16 m16 + a^17 m17 = d1      (d1 = alpha-weighted sum)
  Gf256::Symbol d0 = 0;
  Gf256::Symbol d1 = 0;
  for (int j = 0; j < kChipkillDataDevices; ++j) {
    const Gf256::Symbol m = word.symbols[j];
    d0 = Gf256::Add(d0, m);
    d1 = Gf256::Add(d1, Gf256::Mul(Gf256::Pow(j), m));
  }
  const Gf256::Symbol a16 = Gf256::Pow(16);
  const Gf256::Symbol a17 = Gf256::Pow(17);
  const Gf256::Symbol det = Gf256::Add(a17, a16);  // nonzero: a16 != a17
  const Gf256::Symbol m16 = Gf256::Div(Gf256::Add(Gf256::Mul(a17, d0), d1), det);
  const Gf256::Symbol m17 = Gf256::Div(Gf256::Add(Gf256::Mul(a16, d0), d1), det);
  word.symbols[16] = m16;
  word.symbols[17] = m17;
  return word;
}

ChipkillResult ChipkillDecode(const ChipkillWord& received) noexcept {
  ChipkillResult result;
  const Syndromes s = ComputeSyndromes(received);

  if (s.s0 == 0 && s.s1 == 0) {
    result.status = ChipkillStatus::kClean;
    result.data = ChipkillExtractData(received);
    return result;
  }

  if (s.s0 != 0 && s.s1 != 0) {
    const int j = Gf256::Log(Gf256::Div(s.s1, s.s0));
    if (j >= 0 && j < kChipkillDevices) {
      ChipkillWord fixed = received;
      fixed.symbols[j] = Gf256::Add(fixed.symbols[j], s.s0);
      result.status = ChipkillStatus::kCorrectedSymbol;
      result.corrected_device = j;
      result.data = ChipkillExtractData(fixed);
      return result;
    }
  }

  // Signatures unreachable by any single-device error: S0 == 0 xor S1 == 0,
  // or a locator outside the 18 physical devices.
  result.status = ChipkillStatus::kDetectedUncorrectable;
  result.data = ChipkillExtractData(received);
  return result;
}

}  // namespace astra::ecc
