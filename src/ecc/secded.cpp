#include "ecc/secded.hpp"

#include <array>

namespace astra::ecc {
namespace {

// data_position_table[d] = layout position (1..71) of logical data bit d:
// the (d+1)-th non-power-of-two position.
constexpr std::array<int, kDataBits> BuildDataPositions() {
  std::array<int, kDataBits> table{};
  int d = 0;
  for (int pos = 1; pos <= 71 && d < kDataBits; ++pos) {
    if ((pos & (pos - 1)) != 0) {  // not a power of two -> data position
      table[d++] = pos;
    }
  }
  return table;
}

constexpr std::array<int, kDataBits> kDataPositions = BuildDataPositions();

constexpr std::array<int, 7> kParityPositions = {1, 2, 4, 8, 16, 32, 64};
constexpr int kOverallParityPosition = 72;

}  // namespace

bool CodeWord::GetPosition(int position) const noexcept {
  if (position <= 64) return (lo >> (position - 1)) & 1;
  return (hi >> (position - 65)) & 1;
}

void CodeWord::SetPosition(int position, bool value) noexcept {
  if (position <= 64) {
    const std::uint64_t mask = std::uint64_t{1} << (position - 1);
    lo = value ? (lo | mask) : (lo & ~mask);
  } else {
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (position - 65));
    hi = value ? static_cast<std::uint8_t>(hi | mask)
               : static_cast<std::uint8_t>(hi & ~mask);
  }
}

void CodeWord::FlipPosition(int position) noexcept {
  SetPosition(position, !GetPosition(position));
}

std::uint64_t ExtractData(const CodeWord& word) noexcept {
  std::uint64_t data = 0;
  for (int d = 0; d < kDataBits; ++d) {
    if (word.GetPosition(kDataPositions[d])) data |= std::uint64_t{1} << d;
  }
  return data;
}

int DataBitPosition(int data_bit) noexcept { return kDataPositions[data_bit]; }

CodeWord Encode(std::uint64_t data) noexcept {
  CodeWord word;
  for (int d = 0; d < kDataBits; ++d) {
    word.SetPosition(kDataPositions[d], (data >> d) & 1);
  }
  // Each Hamming parity bit makes the XOR over its covered positions zero.
  for (const int p : kParityPositions) {
    bool parity = false;
    for (int pos = 1; pos <= 71; ++pos) {
      if (pos != p && (pos & p) != 0 && word.GetPosition(pos)) parity = !parity;
    }
    word.SetPosition(p, parity);
  }
  // Overall parity over positions 1..71.
  bool overall = false;
  for (int pos = 1; pos <= 71; ++pos) {
    if (word.GetPosition(pos)) overall = !overall;
  }
  word.SetPosition(kOverallParityPosition, overall);
  return word;
}

DecodeResult Decode(const CodeWord& received) noexcept {
  DecodeResult result;

  // Hamming syndrome: XOR of the positions of bits violating each parity.
  int syndrome = 0;
  for (const int p : kParityPositions) {
    bool parity = false;
    for (int pos = 1; pos <= 71; ++pos) {
      if ((pos & p) != 0 && received.GetPosition(pos)) parity = !parity;
    }
    if (parity) syndrome |= p;
  }

  // Overall parity across all 72 positions; zero means an even number of
  // flipped bits (including zero).
  bool overall = false;
  for (int pos = 1; pos <= kCodeBits; ++pos) {
    if (received.GetPosition(pos)) overall = !overall;
  }

  result.syndrome = static_cast<std::uint8_t>((syndrome & 0x7F) |
                                              (overall ? 0x80 : 0));

  if (syndrome == 0 && !overall) {
    result.status = DecodeStatus::kClean;
    result.data = ExtractData(received);
    return result;
  }

  if (overall) {
    // Odd number of errors: assume single and correct.  syndrome == 0 with
    // odd parity means the flipped bit is the overall parity bit itself.
    CodeWord fixed = received;
    const int position = syndrome == 0 ? kOverallParityPosition : syndrome;
    if (position <= kCodeBits) {
      fixed.FlipPosition(position);
      result.status = DecodeStatus::kCorrectedSingle;
      result.corrected_bit = position - 1;
      result.data = ExtractData(fixed);
      return result;
    }
  }

  // Even number (>= 2) of errors: syndrome nonzero but parity consistent.
  result.status = DecodeStatus::kDetectedUncorrectable;
  result.data = ExtractData(received);
  return result;
}

}  // namespace astra::ecc
