// Chipkill baseline code, modelled the way commercial chipkill actually
// works (§2.2 notes Astra deliberately chose SEC-DED instead of Chipkill;
// the ablation bench quantifies what that choice cost in DUE exposure).
//
// Geometry: a rank is 18 x4 DRAM devices.  A two-beat burst delivers a
// 144-bit word: each device contributes 4 bits per beat, 8 bits per word.
// Treating each device's 8 bits as ONE symbol of GF(256) gives an RS[18,16]
// code: 16 data symbols (128 data bits) + 2 check symbols (16 check bits) --
// the same 12.5% redundancy as two SEC-DED words, but now ANY error pattern
// confined to a single device (up to all 8 bits) is corrected.  That is the
// defining Chipkill property.
//
// Why a 4-bit-symbol code over one 72-bit beat is impossible: distance-3
// codes over GF(16) have at most (16^2-1)/15 = 17 pairwise-independent
// parity-check columns, one short of the 18 devices -- which is precisely
// why real chipkill widens the word to 144 bits, and why a 72-bit-interface
// machine like Astra ends up with SEC-DED.
//
// Code definition over symbols m_0..m_17 (m_16, m_17 checks):
//   S0 = sum_j m_j = 0,   S1 = sum_j alpha^j m_j = 0.
// Single-symbol error e at device j: S0 = e, S1 = alpha^j e, so the locator
// is j = log(S1/S0).  Minimum distance 3: all single-device errors correct;
// two-device errors are detected unless the locator happens to land on a
// valid third device (miscorrection), which the decoder cannot rule out --
// reported honestly as kCorrectedSymbol (hardware has the same exposure).
#pragma once

#include <array>
#include <cstdint>

namespace astra::ecc {

inline constexpr int kChipkillDevices = 18;       // x4 devices per rank
inline constexpr int kChipkillDataDevices = 16;
inline constexpr int kChipkillBeats = 2;          // beats per code word
inline constexpr int kBitsPerBeatPerDevice = 4;   // x4 device width
inline constexpr int kBitsPerSymbol = kChipkillBeats * kBitsPerBeatPerDevice;  // 8

// One 144-bit chipkill word as 18 device symbols of 8 bits.  Symbol j packs
// device j's nibbles: bits [0,4) = beat 0, bits [4,8) = beat 1.
struct ChipkillWord {
  std::array<std::uint8_t, kChipkillDevices> symbols{};

  // Flip one wire bit: `beat` in [0, 2), `bit` in [0, 72) within the beat.
  // Bit b of a beat belongs to device b/4, nibble lane b%4.
  void FlipBit(int beat, int bit) noexcept {
    symbols[bit / kBitsPerBeatPerDevice] ^= static_cast<std::uint8_t>(
        1u << (beat * kBitsPerBeatPerDevice + bit % kBitsPerBeatPerDevice));
  }

  friend constexpr bool operator==(const ChipkillWord&, const ChipkillWord&) = default;
};

enum class ChipkillStatus : std::uint8_t {
  kClean = 0,
  kCorrectedSymbol,        // error confined to one device, corrected (CE)
  kDetectedUncorrectable,  // multi-device signature (DUE)
};

struct ChipkillResult {
  ChipkillStatus status = ChipkillStatus::kClean;
  std::array<std::uint64_t, 2> data{};  // 128 corrected data bits
  int corrected_device = -1;            // device index that was repaired
};

// Encode 128 data bits (two 64-bit words, one per beat's data half).
[[nodiscard]] ChipkillWord ChipkillEncode(std::uint64_t data_lo,
                                          std::uint64_t data_hi) noexcept;

[[nodiscard]] ChipkillResult ChipkillDecode(const ChipkillWord& received) noexcept;

// Raw data extraction without checking (tests).
[[nodiscard]] std::array<std::uint64_t, 2> ChipkillExtractData(
    const ChipkillWord& word) noexcept;

}  // namespace astra::ecc
