#include "ecc/gf16.hpp"

namespace astra::ecc {

const Gf16::Tables& Gf16::GetTables() noexcept {
  static const Tables tables = [] {
    Tables t{};
    // Generate powers of alpha = x (0b0010) modulo x^4 + x + 1 (0b10011).
    Symbol value = 1;
    for (int e = 0; e < kMultiplicativeOrder; ++e) {
      t.exp[e] = value;
      t.log[value] = e;
      value = static_cast<Symbol>(value << 1);
      if (value & 0x10) value = static_cast<Symbol>((value ^ 0x13) & 0xF);
    }
    for (int e = kMultiplicativeOrder; e < 32; ++e) {
      t.exp[e] = t.exp[e - kMultiplicativeOrder];
    }
    t.log[0] = -1;  // undefined; guarded by callers
    return t;
  }();
  return tables;
}

Gf16::Symbol Gf16::Mul(Symbol a, Symbol b) noexcept {
  if (a == 0 || b == 0) return 0;
  const Tables& t = GetTables();
  return t.exp[t.log[a] + t.log[b]];
}

Gf16::Symbol Gf16::Inverse(Symbol a) noexcept {
  const Tables& t = GetTables();
  return t.exp[kMultiplicativeOrder - t.log[a]];
}

Gf16::Symbol Gf16::Div(Symbol a, Symbol b) noexcept {
  if (a == 0) return 0;
  return Mul(a, Inverse(b));
}

Gf16::Symbol Gf16::Pow(int exponent) noexcept {
  const Tables& t = GetTables();
  exponent %= kMultiplicativeOrder;
  if (exponent < 0) exponent += kMultiplicativeOrder;
  return t.exp[exponent];
}

int Gf16::Log(Symbol a) noexcept { return GetTables().log[a]; }

}  // namespace astra::ecc
