// Arithmetic over GF(2^4) with the primitive polynomial x^4 + x + 1 — the
// symbol field of the Chipkill-class baseline code (one symbol per x4 DRAM
// device nibble).
#pragma once

#include <array>
#include <cstdint>

namespace astra::ecc {

class Gf16 {
 public:
  using Symbol = std::uint8_t;  // values 0..15

  static constexpr int kFieldSize = 16;
  static constexpr int kMultiplicativeOrder = 15;

  [[nodiscard]] static Symbol Add(Symbol a, Symbol b) noexcept {
    return static_cast<Symbol>((a ^ b) & 0xF);
  }

  [[nodiscard]] static Symbol Mul(Symbol a, Symbol b) noexcept;
  [[nodiscard]] static Symbol Inverse(Symbol a) noexcept;  // a != 0
  [[nodiscard]] static Symbol Div(Symbol a, Symbol b) noexcept;  // b != 0

  // alpha^e for the generator alpha = 0b0010 (the element "x").
  [[nodiscard]] static Symbol Pow(int exponent) noexcept;

  // Discrete log base alpha; a must be nonzero.  Returns value in [0, 15).
  [[nodiscard]] static int Log(Symbol a) noexcept;

 private:
  struct Tables {
    std::array<Symbol, 32> exp{};  // doubled to avoid modular reduction
    std::array<int, 16> log{};
  };
  static const Tables& GetTables() noexcept;
};

}  // namespace astra::ecc
