// Arithmetic over GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D, the field used by most storage RS codes).  Symbol field of the
// Chipkill baseline: one symbol per x4 DRAM device across a 2-beat burst.
#pragma once

#include <array>
#include <cstdint>

namespace astra::ecc {

class Gf256 {
 public:
  using Symbol = std::uint8_t;

  static constexpr int kFieldSize = 256;
  static constexpr int kMultiplicativeOrder = 255;

  [[nodiscard]] static Symbol Add(Symbol a, Symbol b) noexcept {
    return static_cast<Symbol>(a ^ b);
  }

  [[nodiscard]] static Symbol Mul(Symbol a, Symbol b) noexcept;
  [[nodiscard]] static Symbol Inverse(Symbol a) noexcept;      // a != 0
  [[nodiscard]] static Symbol Div(Symbol a, Symbol b) noexcept;  // b != 0

  // alpha^e for the generator alpha = 0x02.
  [[nodiscard]] static Symbol Pow(int exponent) noexcept;

  // Discrete log base alpha; a must be nonzero.  Returns value in [0, 255).
  [[nodiscard]] static int Log(Symbol a) noexcept;

 private:
  struct Tables {
    std::array<Symbol, 512> exp{};
    std::array<int, 256> log{};
  };
  static const Tables& GetTables() noexcept;
};

}  // namespace astra::ecc
