#include "ecc/scheme.hpp"

#include <array>
#include <bit>

#include "util/rng.hpp"

namespace astra::ecc {

const char* EccSchemeName(EccScheme scheme) noexcept {
  switch (scheme) {
    case EccScheme::kSecDed:
      return "secded";
    case EccScheme::kChipkill:
      return "chipkill";
    case EccScheme::kOnDieSecDed:
      return "ondie";
  }
  return "secded";
}

std::optional<EccScheme> EccSchemeFromName(std::string_view name) noexcept {
  if (name == "secded") return EccScheme::kSecDed;
  if (name == "chipkill") return EccScheme::kChipkill;
  if (name == "ondie") return EccScheme::kOnDieSecDed;
  return std::nullopt;
}

ErrorOutcome AdjudicateOnDieEcc(std::uint64_t data,
                                std::span<const int> flipped_bits) noexcept {
  // Group the flips by x4 device; XOR cancels duplicate positions exactly
  // like the codecs themselves do.
  std::array<std::uint8_t, kChipkillDevices> lane_mask{};
  for (const int bit : flipped_bits) {
    if (bit >= 0 && bit < kCodeBits) {
      lane_mask[bit / kBitsPerBeatPerDevice] ^= static_cast<std::uint8_t>(
          1u << (bit % kBitsPerBeatPerDevice));
    }
  }

  // Worst case every device forwards all four lanes plus a miscorrection.
  std::array<int, kCodeBits + kChipkillDevices> survivors{};
  int count = 0;
  for (int device = 0; device < kChipkillDevices; ++device) {
    const std::uint8_t mask = lane_mask[device];
    const int flips_in_device = std::popcount(mask);
    if (flips_in_device <= 1) continue;  // lone flip: corrected in-device
    int lanes[kBitsPerBeatPerDevice];
    int n = 0;
    for (int lane = 0; lane < kBitsPerBeatPerDevice; ++lane) {
      if (mask & (1u << lane)) lanes[n++] = lane;
    }
    for (int k = 0; k < n; ++k) {
      survivors[count++] = device * kBitsPerBeatPerDevice + lanes[k];
    }
    if (flips_in_device == 2) {
      // A double error defeats the in-device SEC code; when its syndrome
      // lands on a third lane the device "corrects" that lane too, forwarding
      // a THREE-lane pattern — the on-die miscorrection hazard.  The lane
      // choice is a fixed function of the pair so adjudication stays a pure
      // function of the flip set.
      const int third = (lanes[0] + lanes[1]) % kBitsPerBeatPerDevice;
      if (third != lanes[0] && third != lanes[1]) {
        survivors[count++] = device * kBitsPerBeatPerDevice + third;
      }
    }
  }

  if (count == 0) return ErrorOutcome::kClean;  // host never saw it
  return AdjudicateSecDed(data, std::span<const int>(survivors.data(),
                                                     static_cast<std::size_t>(count)));
}

ErrorOutcome AdjudicateWordFault(EccScheme scheme, std::uint64_t data,
                                 std::span<const int> flipped_bits) noexcept {
  switch (scheme) {
    case EccScheme::kSecDed:
      return AdjudicateSecDed(data, flipped_bits);
    case EccScheme::kChipkill: {
      // The fault's word rides beat 0 of the 144-bit chipkill word; the
      // companion beat's data half is a deterministic mix of `data` so the
      // full code word is defined.  More than kCodeBits distinct positions
      // cannot exist in [0, 72); duplicates beyond the cap would only cancel.
      std::array<BeatBit, kCodeBits> flips{};
      std::size_t count = 0;
      for (const int bit : flipped_bits) {
        if (count == flips.size()) break;
        flips[count++] = BeatBit{0, bit};
      }
      std::uint64_t companion = data;
      const std::uint64_t data_hi = SplitMix64(companion);
      return AdjudicateChipkill(data, data_hi,
                                std::span<const BeatBit>(flips.data(), count));
    }
    case EccScheme::kOnDieSecDed:
      return AdjudicateOnDieEcc(data, flipped_bits);
  }
  return AdjudicateSecDed(data, flipped_bits);
}

}  // namespace astra::ecc
