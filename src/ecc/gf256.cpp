#include "ecc/gf256.hpp"

namespace astra::ecc {

const Gf256::Tables& Gf256::GetTables() noexcept {
  static const Tables tables = [] {
    Tables t{};
    unsigned value = 1;
    for (int e = 0; e < kMultiplicativeOrder; ++e) {
      t.exp[e] = static_cast<Symbol>(value);
      t.log[value] = e;
      value <<= 1;
      if (value & 0x100) value ^= 0x11D;
    }
    for (int e = kMultiplicativeOrder; e < 512; ++e) {
      t.exp[e] = t.exp[e - kMultiplicativeOrder];
    }
    t.log[0] = -1;  // undefined; guarded by callers
    return t;
  }();
  return tables;
}

Gf256::Symbol Gf256::Mul(Symbol a, Symbol b) noexcept {
  if (a == 0 || b == 0) return 0;
  const Tables& t = GetTables();
  return t.exp[t.log[a] + t.log[b]];
}

Gf256::Symbol Gf256::Inverse(Symbol a) noexcept {
  const Tables& t = GetTables();
  return t.exp[kMultiplicativeOrder - t.log[a]];
}

Gf256::Symbol Gf256::Div(Symbol a, Symbol b) noexcept {
  if (a == 0) return 0;
  return Mul(a, Inverse(b));
}

Gf256::Symbol Gf256::Pow(int exponent) noexcept {
  const Tables& t = GetTables();
  exponent %= kMultiplicativeOrder;
  if (exponent < 0) exponent += kMultiplicativeOrder;
  return t.exp[exponent];
}

int Gf256::Log(Symbol a) noexcept { return GetTables().log[a]; }

}  // namespace astra::ecc
