// The pluggable ECC seam for the what-if campaign engine: one enum naming
// every codec the simulator can stand behind the memory controller, plus a
// single adjudication entry point that routes a word-fault flip pattern to
// the right codec.  The fault injector calls AdjudicateWordFault instead of
// a hard-wired AdjudicateSecDed, which is what turns the paper's one-off
// §3.5 arithmetic ("what if Astra had Chipkill?") into a config axis.
//
// Schemes:
//   kSecDed      — Astra's production code: Hamming(72,64) SEC-DED per beat.
//   kChipkill    — RS[18,16] over GF(256): any error confined to one x4
//                  device corrects (ecc/chipkill.hpp).
//   kOnDieSecDed — DDR5-style on-die ECC in front of the rank-level SEC-DED:
//                  each x4 device corrects a lone flip in its own lanes
//                  BEFORE the transfer (invisible to the host), passes
//                  multi-flip patterns through — sometimes miscorrected with
//                  an extra wrong lane, the classic on-die SDC hazard — and
//                  the survivors meet the host-side SEC-DED.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "ecc/adjudicate.hpp"

namespace astra::ecc {

enum class EccScheme : std::uint8_t {
  kSecDed = 0,
  kChipkill,
  kOnDieSecDed,
};

inline constexpr int kEccSchemeCount = 3;

[[nodiscard]] const char* EccSchemeName(EccScheme scheme) noexcept;

// Parse a scheme name ("secded", "chipkill", "ondie"); nullopt on anything
// else.  The inverse of EccSchemeName, pinned by the scheme tests.
[[nodiscard]] std::optional<EccScheme> EccSchemeFromName(
    std::string_view name) noexcept;

// On-die-ECC adjudication of a 72-bit word pattern.  Flips are grouped by
// x4 device (bit b belongs to device b/4, matching the chipkill geometry):
// a device with exactly one flipped lane corrects it internally, a device
// with more passes its flips through — with a deterministic single-error
// miscorrection (one extra wrong lane) when the defeated SEC code's
// syndrome lands on a third lane.  Whatever reaches the bus is then
// adjudicated by the rank-level SEC-DED codec.  An empty survivor set is
// kClean: the host never saw the error at all.
[[nodiscard]] ErrorOutcome AdjudicateOnDieEcc(
    std::uint64_t data, std::span<const int> flipped_bits) noexcept;

// Route a word-fault flip pattern (external bit positions in [0, 72)) to
// `scheme`'s codec.  For kSecDed this is exactly AdjudicateSecDed — the
// injector's historical behavior, bit-for-bit.  For kChipkill the 72-bit
// pattern lands in beat 0 of a 144-bit chipkill word whose second data half
// is derived deterministically from `data`.
[[nodiscard]] ErrorOutcome AdjudicateWordFault(
    EccScheme scheme, std::uint64_t data,
    std::span<const int> flipped_bits) noexcept;

}  // namespace astra::ecc
