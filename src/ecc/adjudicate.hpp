// Fault-to-outcome adjudication: given the set of wire bits a fault corrupts
// in one protected word, run the REAL codec and classify what the memory
// controller would report.  This is the bridge between the fault injector
// (which knows which cells are bad) and the error log (which only sees what
// ECC reports): on Astra "multiple-rank and multiple-bank errors ... would
// manifest as uncorrectable memory errors because of the number of corrupted
// bits" (§3.2) — that manifestation is exactly what this module computes.
#pragma once

#include <cstdint>
#include <span>

#include "ecc/chipkill.hpp"
#include "ecc/secded.hpp"

namespace astra::ecc {

enum class ErrorOutcome : std::uint8_t {
  kClean = 0,      // codec saw nothing (flips cancelled or empty set)
  kCorrected,      // reported and corrected (a CE)
  kUncorrectable,  // detected but uncorrectable (a DUE)
  kSilent,         // codec reported clean/corrected but data is WRONG (SDC)
};

// SEC-DED adjudication: encode `data`, flip the external bit positions in
// [0, 72), decode, compare.  Duplicate positions cancel (a flip of a flip).
[[nodiscard]] ErrorOutcome AdjudicateSecDed(std::uint64_t data,
                                            std::span<const int> flipped_bits) noexcept;

// Chipkill adjudication over a 144-bit word.  Each flip is (beat, bit) with
// beat in [0,2), bit in [0,72); flips confined to one x4 device are the
// chipkill-correctable class.
struct BeatBit {
  int beat = 0;
  int bit = 0;
};

[[nodiscard]] ErrorOutcome AdjudicateChipkill(std::uint64_t data_lo,
                                              std::uint64_t data_hi,
                                              std::span<const BeatBit> flips) noexcept;

}  // namespace astra::ecc
