// Hamming(72,64) SEC-DED — the ECC Astra actually uses (§2.2: "Astra does
// not utilize Chipkill ... it uses the cheaper and less power-hungry
// single-error-correction, double-error-detection (SEC-DED) ECC").
//
// Construction: classic extended Hamming code.  Code bits occupy positions
// 1..71 of the standard Hamming layout (parity bits at the powers of two
// 1,2,4,8,16,32,64; the 64 data bits fill the remaining positions in
// ascending order), plus an overall parity bit at position 72.  Externally,
// bit positions are 0-based: BitPosition b corresponds to layout position
// b + 1, so valid positions span [0, 72).
//
// Decode semantics (s = Hamming syndrome, p = overall parity of the word):
//   s == 0, p == 0  ->  no error
//   s != 0, p == 1  ->  single-bit error at position s, corrected
//   s == 0, p == 1  ->  single-bit error in the overall parity bit, corrected
//   s != 0, p == 0  ->  double-bit error, detected but uncorrectable (DUE)
// Triple and higher errors may alias onto any of the above (including silent
// miscorrection) — exactly the failure mode that motivates Chipkill, and the
// reason multi-bit DRAM faults on Astra surface as uncorrectable errors.
#pragma once

#include <cstdint>

namespace astra::ecc {

inline constexpr int kDataBits = 64;
inline constexpr int kCheckBits = 8;
inline constexpr int kCodeBits = 72;

// A 72-bit code word: 64 logical data bits plus 8 check bits, stored in the
// positional layout described above.  `bits[0]` holds layout positions 1..64
// (bit i <-> position i+1), `bits[1]` holds positions 65..72 in its low byte.
struct CodeWord {
  std::uint64_t lo = 0;
  std::uint8_t hi = 0;

  [[nodiscard]] bool GetPosition(int position) const noexcept;  // position in [1,72]
  void SetPosition(int position, bool value) noexcept;
  void FlipPosition(int position) noexcept;

  // External 0-based bit position [0, 72) -- the coordinate recorded in CE
  // records -- maps to layout position bit+1.
  void FlipBit(int bit) noexcept { FlipPosition(bit + 1); }

  friend constexpr bool operator==(const CodeWord&, const CodeWord&) = default;
};

enum class DecodeStatus : std::uint8_t {
  kClean = 0,            // no error detected
  kCorrectedSingle,      // single-bit error corrected (CE)
  kDetectedUncorrectable // inconsistent syndrome: >=2 bit errors (DUE)
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  std::uint64_t data = 0;        // corrected data (valid unless DUE)
  int corrected_bit = -1;        // external 0-based position of the fixed bit
  std::uint8_t syndrome = 0;     // raw 7-bit Hamming syndrome + parity in bit 7
};

[[nodiscard]] CodeWord Encode(std::uint64_t data) noexcept;

[[nodiscard]] DecodeResult Decode(const CodeWord& received) noexcept;

// Extract the data bits of a code word without any checking (used by tests).
[[nodiscard]] std::uint64_t ExtractData(const CodeWord& word) noexcept;

// Layout position [1,72] of logical data bit d in [0,64) — where injection
// by "data bit index" lands in the code word.
[[nodiscard]] int DataBitPosition(int data_bit) noexcept;

// True if layout position [1,72] holds a check (parity) bit.
[[nodiscard]] constexpr bool IsCheckPosition(int position) noexcept {
  return position == 72 || (position & (position - 1)) == 0;
}

}  // namespace astra::ecc
