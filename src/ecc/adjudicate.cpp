#include "ecc/adjudicate.hpp"

namespace astra::ecc {

ErrorOutcome AdjudicateSecDed(std::uint64_t data,
                              std::span<const int> flipped_bits) noexcept {
  const CodeWord clean = Encode(data);
  CodeWord received = clean;
  for (const int bit : flipped_bits) {
    if (bit >= 0 && bit < kCodeBits) received.FlipBit(bit);
  }
  if (received == clean) return ErrorOutcome::kClean;

  const DecodeResult decoded = Decode(received);
  switch (decoded.status) {
    case DecodeStatus::kClean:
      // Error pattern aliased to a valid code word: silent corruption.
      return decoded.data == data ? ErrorOutcome::kClean : ErrorOutcome::kSilent;
    case DecodeStatus::kCorrectedSingle:
      return decoded.data == data ? ErrorOutcome::kCorrected : ErrorOutcome::kSilent;
    case DecodeStatus::kDetectedUncorrectable:
      return ErrorOutcome::kUncorrectable;
  }
  return ErrorOutcome::kUncorrectable;
}

ErrorOutcome AdjudicateChipkill(std::uint64_t data_lo, std::uint64_t data_hi,
                                std::span<const BeatBit> flips) noexcept {
  const ChipkillWord clean = ChipkillEncode(data_lo, data_hi);
  ChipkillWord received = clean;
  for (const BeatBit& f : flips) {
    if (f.beat >= 0 && f.beat < kChipkillBeats && f.bit >= 0 && f.bit < 72) {
      received.FlipBit(f.beat, f.bit);
    }
  }
  if (received == clean) return ErrorOutcome::kClean;

  const ChipkillResult decoded = ChipkillDecode(received);
  const std::array<std::uint64_t, 2> expected{data_lo, data_hi};
  switch (decoded.status) {
    case ChipkillStatus::kClean:
      return decoded.data == expected ? ErrorOutcome::kClean : ErrorOutcome::kSilent;
    case ChipkillStatus::kCorrectedSymbol:
      return decoded.data == expected ? ErrorOutcome::kCorrected
                                      : ErrorOutcome::kSilent;
    case ChipkillStatus::kDetectedUncorrectable:
      return ErrorOutcome::kUncorrectable;
  }
  return ErrorOutcome::kUncorrectable;
}

}  // namespace astra::ecc
