#include "geometry/topology.hpp"

namespace astra {

std::string_view RackRegionName(RackRegion region) noexcept {
  switch (region) {
    case RackRegion::kBottom: return "bottom";
    case RackRegion::kMiddle: return "middle";
    case RackRegion::kTop: return "top";
  }
  return "invalid";
}

std::string_view SensorKindName(SensorKind kind) noexcept {
  switch (kind) {
    case SensorKind::kCpu0Temp: return "cpu1_temp";
    case SensorKind::kCpu1Temp: return "cpu2_temp";
    case SensorKind::kDimmsACEG: return "dimm_aceg_temp";
    case SensorKind::kDimmsHFDB: return "dimm_hfdb_temp";
    case SensorKind::kDimmsIKMO: return "dimm_ikmo_temp";
    case SensorKind::kDimmsJLNP: return "dimm_jlnp_temp";
    case SensorKind::kDcPower: return "dc_power";
  }
  return "invalid";
}

std::optional<SensorKind> SensorKindFromName(std::string_view name) noexcept {
  for (int i = 0; i < kSensorsPerNode; ++i) {
    const auto kind = static_cast<SensorKind>(i);
    if (SensorKindName(kind) == name) return kind;
  }
  return std::nullopt;
}

std::array<DimmSlot, 4> SlotsOfDimmSensor(SensorKind kind) noexcept {
  using S = DimmSlot;
  switch (kind) {
    case SensorKind::kDimmsACEG: return {S::A, S::C, S::E, S::G};
    case SensorKind::kDimmsHFDB: return {S::B, S::D, S::F, S::H};
    case SensorKind::kDimmsIKMO: return {S::I, S::K, S::M, S::O};
    case SensorKind::kDimmsJLNP: return {S::J, S::L, S::N, S::P};
    default: return {S::A, S::A, S::A, S::A};
  }
}

double AirflowDepthOfSensor(SensorKind kind) noexcept {
  // Socket 1 ("CPU2") and its DIMMs occupy the front half of the airflow
  // path; socket 0 ("CPU1") the rear half (paper Fig. 1).  Within a socket,
  // the DIMM banks flank the CPU, sitting at a slightly shallower depth than
  // the CPU heatsink itself.
  switch (kind) {
    case SensorKind::kDimmsIKMO: return 0.10;
    case SensorKind::kDimmsJLNP: return 0.15;
    case SensorKind::kCpu1Temp: return 0.25;   // socket 1 / "CPU2", front
    case SensorKind::kDimmsACEG: return 0.60;
    case SensorKind::kDimmsHFDB: return 0.65;
    case SensorKind::kCpu0Temp: return 0.75;   // socket 0 / "CPU1", rear
    case SensorKind::kDcPower: return 0.0;     // not a thermal location
  }
  return 0.0;
}

double AirflowDepthOfSlot(DimmSlot slot) noexcept {
  // Slots within a group are physically adjacent; stagger their depths a
  // little so per-slot thermal differences exist (the paper theorizes slot
  // temperature differences as one cause of per-slot fault skew, §3.2).
  const double group_depth = AirflowDepthOfSensor(DimmSensorOfSlot(slot));
  const int lane = ChannelOfSlot(slot) / 2;  // 0..3 position within the group
  return group_depth + 0.01 * lane;
}

}  // namespace astra
