// Astra machine topology (HPDC'22 paper, §2.2):
//
//   system = 36 racks x 18 chassis x 4 nodes          = 2592 nodes
//   node   = 2 sockets (28-core ThunderX2 each)
//   socket = 8 memory channels, 1 DIMM per channel    = 16 DIMMs/node
//   DIMM   = 8 GB DDR4-2666, dual-rank, registered
//
// DIMM slots are lettered A..P on the motherboard: A-H belong to socket 0
// (the "CPU1" of the paper's figures) and I-P to socket 1 ("CPU2").  Cooling
// flows FRONT -> BACK through the node; socket 1 / CPU2 sits at the front and
// receives cool inlet air, socket 0 / CPU1 sits behind it and receives
// pre-heated air (paper Fig. 1), which is why CPU1's sensors read hotter in
// Fig. 13.
//
// Each node carries six temperature sensors -- one per CPU and one per group
// of four DIMM slots ({A,C,E,G}, {H,F,D,B}, {I,K,M,O}, {J,L,N,P}) -- plus one
// DC power sensor (§2.2).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace astra {

// --- Machine constants ------------------------------------------------------

inline constexpr int kNumRacks = 36;
inline constexpr int kChassisPerRack = 18;
inline constexpr int kNodesPerChassis = 4;
inline constexpr int kNodesPerRack = kChassisPerRack * kNodesPerChassis;  // 72
inline constexpr int kNumNodes = kNumRacks * kNodesPerRack;               // 2592

inline constexpr int kSocketsPerNode = 2;
inline constexpr int kDimmsPerSocket = 8;
inline constexpr int kDimmSlotsPerNode = kSocketsPerNode * kDimmsPerSocket;  // 16
inline constexpr int kNumDimms = kNumNodes * kDimmSlotsPerNode;              // 41472
inline constexpr int kNumProcessors = kNumNodes * kSocketsPerNode;           // 5184

inline constexpr int kRanksPerDimm = 2;
inline constexpr int kBanksPerRank = 16;
inline constexpr int kRowsPerBank = 32768;     // 2^15
inline constexpr int kColumnsPerRow = 1024;    // 2^10 64-bit words per row
inline constexpr int kBytesPerWord = 8;

// ECC word geometry: SEC-DED protects each 64-bit word with 8 check bits.
// "Bit position" in CE records indexes the 72-bit code word (§3.2 analyses
// bit positions within a cache line).
inline constexpr int kDataBitsPerWord = 64;
inline constexpr int kCheckBitsPerWord = 8;
inline constexpr int kCodeBitsPerWord = kDataBitsPerWord + kCheckBitsPerWord;  // 72

// --- Identifiers ------------------------------------------------------------

// Node ids are dense [0, kNumNodes); rack-major, then chassis, then slot.
using NodeId = std::int32_t;
using SocketId = std::int8_t;  // 0 ("CPU1") or 1 ("CPU2")
using RankId = std::int8_t;    // 0 or 1 (side of the DIMM)
using BankId = std::int16_t;   // [0, kBanksPerRank)
using RowId = std::int32_t;    // [0, kRowsPerBank)
using ColumnId = std::int16_t; // [0, kColumnsPerRow)
using BitPosition = std::int16_t;  // [0, kCodeBitsPerWord)

// Motherboard DIMM slot letter.  Values are chosen so that
// static_cast<int>(slot) is the dense per-node slot index 0..15 in
// alphabetical order (A=0 .. P=15).
enum class DimmSlot : std::int8_t {
  A = 0, B, C, D, E, F, G, H,  // socket 0 ("CPU1")
  I, J, K, L, M, N, O, P,      // socket 1 ("CPU2")
};
inline constexpr int kDimmSlotCount = 16;

[[nodiscard]] constexpr char DimmSlotLetter(DimmSlot slot) noexcept {
  return static_cast<char>('A' + static_cast<int>(slot));
}

[[nodiscard]] constexpr std::optional<DimmSlot> DimmSlotFromLetter(char letter) noexcept {
  if (letter >= 'A' && letter <= 'P') {
    return static_cast<DimmSlot>(letter - 'A');
  }
  if (letter >= 'a' && letter <= 'p') {
    return static_cast<DimmSlot>(letter - 'a');
  }
  return std::nullopt;
}

[[nodiscard]] constexpr SocketId SocketOfSlot(DimmSlot slot) noexcept {
  return static_cast<SocketId>(static_cast<int>(slot) / kDimmsPerSocket);
}

// Per-socket channel index 0..7 of a slot (A..H -> 0..7, I..P -> 0..7).
[[nodiscard]] constexpr int ChannelOfSlot(DimmSlot slot) noexcept {
  return static_cast<int>(slot) % kDimmsPerSocket;
}

// --- Physical placement -----------------------------------------------------

struct NodeLocation {
  int rack = 0;              // [0, kNumRacks)
  int chassis = 0;           // [0, kChassisPerRack), 0 = bottom of rack
  int slot_in_chassis = 0;   // [0, kNodesPerChassis)

  friend constexpr bool operator==(const NodeLocation&, const NodeLocation&) = default;
};

[[nodiscard]] constexpr NodeLocation LocateNode(NodeId node) noexcept {
  const int rack = node / kNodesPerRack;
  const int within = node % kNodesPerRack;
  return NodeLocation{rack, within / kNodesPerChassis, within % kNodesPerChassis};
}

[[nodiscard]] constexpr NodeId NodeIdOf(const NodeLocation& loc) noexcept {
  return loc.rack * kNodesPerRack + loc.chassis * kNodesPerChassis +
         loc.slot_in_chassis;
}

// Vertical third of the rack, per the paper's §3.4 regional analysis that
// mirrors Sridharan et al.'s 3-chassis Cielo racks: Astra's 18 chassis are
// divided into bottom (0-5), middle (6-11) and top (12-17).
enum class RackRegion : std::int8_t { kBottom = 0, kMiddle = 1, kTop = 2 };
inline constexpr int kRackRegionCount = 3;

[[nodiscard]] constexpr RackRegion RegionOfChassis(int chassis) noexcept {
  return static_cast<RackRegion>(chassis / (kChassisPerRack / kRackRegionCount));
}

[[nodiscard]] constexpr RackRegion RegionOfNode(NodeId node) noexcept {
  return RegionOfChassis(LocateNode(node).chassis);
}

[[nodiscard]] std::string_view RackRegionName(RackRegion region) noexcept;

// --- Sensors ----------------------------------------------------------------

// The six temperature sensors plus the DC power sensor of a node.
enum class SensorKind : std::int8_t {
  kCpu0Temp = 0,       // socket 0 = "CPU1" (rear, runs hotter)
  kCpu1Temp = 1,       // socket 1 = "CPU2" (front, cool inlet air)
  kDimmsACEG = 2,      // socket 0 DIMMs 1-4
  kDimmsHFDB = 3,      // socket 0 DIMMs 5-8
  kDimmsIKMO = 4,      // socket 1 DIMMs 1-4
  kDimmsJLNP = 5,      // socket 1 DIMMs 5-8
  kDcPower = 6,
};
inline constexpr int kTempSensorsPerNode = 6;
inline constexpr int kSensorsPerNode = 7;

[[nodiscard]] std::string_view SensorKindName(SensorKind kind) noexcept;
[[nodiscard]] std::optional<SensorKind> SensorKindFromName(std::string_view name) noexcept;

// The DIMM-group sensor that covers a given slot (§2.2 grouping).
[[nodiscard]] constexpr SensorKind DimmSensorOfSlot(DimmSlot slot) noexcept {
  // Groups: {A,C,E,G} {H,F,D,B} {I,K,M,O} {J,L,N,P}.
  const int idx = static_cast<int>(slot);
  const bool socket1 = idx >= kDimmsPerSocket;
  const bool even_letter = (idx % 2) == 0;  // A,C,E,G / I,K,M,O are even offsets
  if (!socket1) return even_letter ? SensorKind::kDimmsACEG : SensorKind::kDimmsHFDB;
  return even_letter ? SensorKind::kDimmsIKMO : SensorKind::kDimmsJLNP;
}

// Slots covered by a DIMM-group sensor, in letter order.
[[nodiscard]] std::array<DimmSlot, 4> SlotsOfDimmSensor(SensorKind kind) noexcept;

// Normalized airflow depth in [0,1] of a component: 0 = front of node (cool
// inlet), 1 = rear (exhaust).  Socket 1 / CPU2 and its DIMMs sit at the
// front; socket 0 / CPU1 behind them.  Within a socket's DIMM farm the two
// letter groups sit side by side at slightly different depths.
[[nodiscard]] double AirflowDepthOfSensor(SensorKind kind) noexcept;
[[nodiscard]] double AirflowDepthOfSlot(DimmSlot slot) noexcept;

// --- DRAM coordinates and physical addressing --------------------------------

// Full coordinate of one 72-bit code word (plus the failing bit) on the
// machine.  This is the granularity of a correctable-error record.
struct DramCoord {
  NodeId node = 0;
  SocketId socket = 0;
  DimmSlot slot = DimmSlot::A;
  RankId rank = 0;
  BankId bank = 0;
  RowId row = 0;
  ColumnId column = 0;
  BitPosition bit = 0;

  friend constexpr bool operator==(const DramCoord&, const DramCoord&) = default;
};

[[nodiscard]] constexpr bool IsValid(const DramCoord& c) noexcept {
  return c.node >= 0 && c.node < kNumNodes && c.socket >= 0 &&
         c.socket < kSocketsPerNode &&
         SocketOfSlot(c.slot) == c.socket && c.rank >= 0 &&
         c.rank < kRanksPerDimm && c.bank >= 0 && c.bank < kBanksPerRank &&
         c.row >= 0 && c.row < kRowsPerBank && c.column >= 0 &&
         c.column < kColumnsPerRow && c.bit >= 0 && c.bit < kCodeBitsPerWord;
}

// Node-local physical address codec.  The node's 128 GB physical space is a
// bit-packed interleave of (socket, channel, rank, bank, row, column, byte):
//
//   [36]        socket
//   [35:33]     channel within socket
//   [32]        rank
//   [31:28]     bank
//   [27:13]     row
//   [12:3]      column
//   [2:0]       byte within the 64-bit word
//
// Real ThunderX2 address hashing is proprietary; this codec preserves what
// the analyses need -- a bijection between device coordinates and addresses
// so that per-address fault statistics (§3.2) are well-defined.
[[nodiscard]] constexpr std::uint64_t EncodePhysicalAddress(const DramCoord& c) noexcept {
  return (static_cast<std::uint64_t>(c.socket) << 36) |
         (static_cast<std::uint64_t>(ChannelOfSlot(c.slot)) << 33) |
         (static_cast<std::uint64_t>(c.rank) << 32) |
         (static_cast<std::uint64_t>(c.bank) << 28) |
         (static_cast<std::uint64_t>(c.row) << 13) |
         (static_cast<std::uint64_t>(c.column) << 3);
}

// Inverse of EncodePhysicalAddress; `node` must be supplied because the
// address space is node-local.  The bit position is not encoded in the
// address and is left at 0.
[[nodiscard]] constexpr DramCoord DecodePhysicalAddress(NodeId node,
                                                        std::uint64_t addr) noexcept {
  DramCoord c;
  c.node = node;
  c.socket = static_cast<SocketId>((addr >> 36) & 0x1);
  const int channel = static_cast<int>((addr >> 33) & 0x7);
  c.slot = static_cast<DimmSlot>(c.socket * kDimmsPerSocket + channel);
  c.rank = static_cast<RankId>((addr >> 32) & 0x1);
  c.bank = static_cast<BankId>((addr >> 28) & 0xF);
  c.row = static_cast<RowId>((addr >> 13) & 0x7FFF);
  c.column = static_cast<ColumnId>((addr >> 3) & 0x3FF);
  c.bit = 0;
  return c;
}

// Dense global DIMM index in [0, kNumDimms): node-major then slot.
[[nodiscard]] constexpr std::int64_t GlobalDimmIndex(NodeId node, DimmSlot slot) noexcept {
  return static_cast<std::int64_t>(node) * kDimmSlotsPerNode + static_cast<int>(slot);
}

}  // namespace astra
