// Chi-square goodness-of-fit against uniform (or arbitrary expected) counts.
// The paper's §3.2 claim that "memory faults in these structures are fairly
// uniformly distributed and that variation can be explained by statistical
// noise" is exactly a uniformity test over the per-socket / per-bank /
// per-column fault tallies.
#pragma once

#include <cstdint>
#include <span>

namespace astra::stats {

struct ChiSquareResult {
  double statistic = 0.0;
  double dof = 0.0;
  double p_value = 1.0;
  // Cramér's V effect size in [0,1]: practical deviation from uniformity
  // independent of sample size (large-N samples make tiny deviations
  // "significant"; V distinguishes statistical from practical non-uniformity).
  double cramers_v = 0.0;

  // The paper's working definition of "uniform enough": deviations are noise
  // if either the test does not reject or the effect size is negligible.
  [[nodiscard]] bool ConsistentWithUniform(double alpha = 0.01,
                                           double max_v = 0.1) const noexcept {
    return p_value >= alpha || cramers_v <= max_v;
  }
};

// Test observed category counts against the uniform distribution.
[[nodiscard]] ChiSquareResult ChiSquareUniform(std::span<const std::uint64_t> observed) noexcept;

// Test observed counts against caller-provided expected counts (same length;
// expected values must be positive and are rescaled to the observed total).
[[nodiscard]] ChiSquareResult ChiSquareExpected(std::span<const std::uint64_t> observed,
                                                std::span<const double> expected) noexcept;

}  // namespace astra::stats
