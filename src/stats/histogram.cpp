#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>

namespace astra::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), inv_width_(0.0), counts_(bins == 0 ? 1 : bins, 0) {
  assert(hi > lo);
  inv_width_ = static_cast<double>(counts_.size()) / (hi_ - lo_);
}

void Histogram::Add(double x) noexcept { AddN(x, 1); }

void Histogram::AddN(double x, std::uint64_t n) noexcept {
  if (x < lo_) {
    underflow_ += n;
    return;
  }
  if (x >= hi_) {
    overflow_ += n;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) * inv_width_);
  bin = std::min(bin, counts_.size() - 1);  // guard fp edge at hi_
  counts_[bin] += n;
  total_ += n;
}

double Histogram::BinLow(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::BinHigh(std::size_t bin) const noexcept { return BinLow(bin + 1); }

double Histogram::BinCenter(std::size_t bin) const noexcept {
  return 0.5 * (BinLow(bin) + BinHigh(bin));
}

double Histogram::Fraction(std::size_t bin) const noexcept {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double Histogram::CumulativeFraction(std::size_t bin) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b <= bin && b < counts_.size(); ++b) cum += counts_[b];
  return static_cast<double>(cum) / static_cast<double>(total_);
}

void FrequencyTable::Add(std::uint64_t value, std::uint64_t weight) {
  frequency_[value] += weight;
  total_ += weight;
}

std::size_t ConcentrationCurve::EntitiesForShare(double share) const noexcept {
  for (std::size_t k = 0; k < cumulative_share.size(); ++k) {
    if (cumulative_share[k] >= share) return k + 1;
  }
  return cumulative_share.size();
}

double ConcentrationCurve::ShareOfTop(std::size_t k) const noexcept {
  if (cumulative_share.empty() || k == 0) return 0.0;
  return cumulative_share[std::min(k, cumulative_share.size()) - 1];
}

ConcentrationCurve ComputeConcentration(std::span<const std::uint64_t> per_entity_counts) {
  ConcentrationCurve curve;
  std::vector<std::uint64_t> sorted(per_entity_counts.begin(), per_entity_counts.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  for (const std::uint64_t c : sorted) curve.grand_total += c;
  curve.cumulative_share.reserve(sorted.size());
  std::uint64_t cum = 0;
  for (const std::uint64_t c : sorted) {
    cum += c;
    curve.cumulative_share.push_back(
        curve.grand_total == 0
            ? 0.0
            : static_cast<double>(cum) / static_cast<double>(curve.grand_total));
  }
  return curve;
}

}  // namespace astra::stats
