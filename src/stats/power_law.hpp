// Discrete power-law fitting following Clauset, Shalizi & Newman (2009) —
// the paper's reference [3] for the claim that per-node fault counts,
// per-bit-position counts and per-address counts "appear to obey a power
// law" (Figs. 5a and 8).
//
// The pipeline is the standard one: for a candidate xmin, estimate the tail
// exponent by (approximate discrete) maximum likelihood, measure the
// Kolmogorov-Smirnov distance between the fitted model and the empirical
// tail, and pick the xmin minimizing KS.
#pragma once

#include <cstdint>
#include <span>

namespace astra::stats {

struct PowerLawFit {
  double alpha = 0.0;        // tail exponent, P(k) ∝ k^-alpha for k >= xmin
  std::uint64_t xmin = 1;
  double ks_distance = 1.0;  // KS distance of the fitted tail
  double alpha_stderr = 0.0; // asymptotic standard error (alpha-1)/sqrt(n_tail)
  std::size_t tail_count = 0;   // samples with value >= xmin
  std::size_t total_count = 0;  // all positive samples considered

  [[nodiscard]] bool Valid() const noexcept { return alpha > 1.0 && tail_count >= 2; }

  // Heuristic plausibility check used by the analyses: the fit is a
  // reasonable description when the tail retains a meaningful share of the
  // data and the KS distance is small for the tail size.  (A full
  // semi-parametric bootstrap p-value is overkill for report generation; the
  // tests exercise the estimator directly against synthetic data.)
  [[nodiscard]] bool PlausiblePowerLaw() const noexcept;
};

// Fit with a fixed xmin.  Zeros in `samples` are ignored (count data).
[[nodiscard]] PowerLawFit FitPowerLawAt(std::span<const std::uint64_t> samples,
                                        std::uint64_t xmin);

// Scan xmin over the distinct sample values (capped at `max_candidates`
// distinct candidates for large inputs) and return the KS-optimal fit.
[[nodiscard]] PowerLawFit FitPowerLaw(std::span<const std::uint64_t> samples,
                                      std::size_t max_candidates = 64);

// CDF of the fitted discrete power law: P(X <= k | X >= xmin).
[[nodiscard]] double PowerLawCdf(const PowerLawFit& fit, std::uint64_t k) noexcept;

}  // namespace astra::stats
