// Schroeder-style decile analysis (paper §3.3, Figs. 13-14; after Schroeder
// et al., SIGMETRICS'09 Fig. 3): bucket paired observations (x = monthly
// average sensor value, y = monthly CE rate) into deciles of x, then report
// for each decile the maximum x (the published plots' x-coordinate) and the
// mean y.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace astra::stats {

struct DecileBucket {
  double x_max = 0.0;   // maximum sample value within the decile
  double x_mean = 0.0;
  double y_mean = 0.0;  // average response over the decile
  std::size_t count = 0;
};

struct DecileSeries {
  std::vector<DecileBucket> buckets;  // ascending in x

  // Spread between the first and last bucket's x (the paper compares the
  // 1st..9th/10th decile temperature span: ~7 degC CPU, ~4 degC DIMM on Astra
  // vs 20+ degC in Schroeder's systems).
  [[nodiscard]] double XSpan() const noexcept;

  // OLS slope of y_mean against x_max across buckets; the "is there a trend
  // with temperature" question reduced to one number.
  [[nodiscard]] double TrendSlope() const noexcept;

  // True when the y means increase (weakly monotonically, within `tolerance`
  // relative slack) from the first to last decile — Schroeder et al.'s data
  // pattern, which Astra's does NOT show.
  [[nodiscard]] bool MonotonicallyIncreasing(double tolerance = 0.05) const noexcept;
};

// Pairs (x[i], y[i]) are partitioned into `buckets` equal-population groups
// by ascending x.  Fewer samples than buckets yields one bucket per sample.
[[nodiscard]] DecileSeries ComputeDecileSeries(std::span<const double> x,
                                               std::span<const double> y,
                                               std::size_t buckets = 10);

// Split paired observations into (low, high) halves by the median of `key`.
// Used for the hot/cold split of Fig. 14: utilization deciles computed
// separately for samples whose temperature is above vs below the median.
struct MedianSplit {
  std::vector<double> low_x, low_y;
  std::vector<double> high_x, high_y;
  double median_key = 0.0;
};

[[nodiscard]] MedianSplit SplitByMedian(std::span<const double> key,
                                        std::span<const double> x,
                                        std::span<const double> y);

}  // namespace astra::stats
