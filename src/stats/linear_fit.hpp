// Ordinary least squares y = a + b*x with inference on the slope — the tool
// the paper uses in §3.3 ("we fit a line to the data points and observe the
// slope") to argue temperature is not strongly correlated with CE rate.
#pragma once

#include <span>

namespace astra::stats {

struct LinearFit {
  std::size_t count = 0;
  double slope = 0.0;
  double intercept = 0.0;
  double r = 0.0;            // Pearson correlation of x and y
  double r_squared = 0.0;
  double slope_stderr = 0.0; // standard error of the slope estimate
  double t_statistic = 0.0;  // slope / slope_stderr
  double p_value = 1.0;      // two-sided p for H0: slope == 0

  // A fit is "strong" in the paper's informal sense when the slope is both
  // statistically significant and explains a meaningful share of variance.
  [[nodiscard]] bool IsStrongCorrelation(double alpha = 0.01,
                                         double min_r_squared = 0.25) const noexcept {
    return p_value < alpha && r_squared >= min_r_squared;
  }
};

// x and y must be the same length; fewer than 3 points yields a degenerate
// fit with p_value = 1.
[[nodiscard]] LinearFit FitLine(std::span<const double> x, std::span<const double> y) noexcept;

[[nodiscard]] double PearsonCorrelation(std::span<const double> x,
                                        std::span<const double> y) noexcept;

// Spearman rank correlation (mid-ranks for ties).
[[nodiscard]] double SpearmanCorrelation(std::span<const double> x,
                                         std::span<const double> y);

}  // namespace astra::stats
