// Nonparametric bootstrap confidence intervals for arbitrary statistics.
// Used by the analyses to attach uncertainty to ratios the paper reports
// qualitatively (e.g. "rank 0 experiences more faults than rank 1").
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace astra::stats {

struct BootstrapInterval {
  double point = 0.0;  // statistic on the original sample
  double lo = 0.0;     // lower percentile bound
  double hi = 0.0;     // upper percentile bound
  std::size_t replicates = 0;

  [[nodiscard]] bool Excludes(double value) const noexcept {
    return value < lo || value > hi;
  }
};

// Percentile bootstrap: resample with replacement `replicates` times, apply
// `statistic` to each resample, report [alpha/2, 1-alpha/2] percentiles.
[[nodiscard]] BootstrapInterval BootstrapCi(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    std::size_t replicates = 1000, double alpha = 0.05);

}  // namespace astra::stats
