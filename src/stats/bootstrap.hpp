// Nonparametric bootstrap confidence intervals for arbitrary statistics.
// Used by the analyses to attach uncertainty to ratios the paper reports
// qualitatively (e.g. "rank 0 experiences more faults than rank 1").
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace astra::stats {

struct BootstrapInterval {
  double point = 0.0;  // statistic on the original sample
  double lo = 0.0;     // lower percentile bound
  double hi = 0.0;     // upper percentile bound
  std::size_t replicates = 0;

  [[nodiscard]] bool Excludes(double value) const noexcept {
    return value < lo || value > hi;
  }
};

// Percentile bootstrap: resample with replacement `replicates` times, apply
// `statistic` to each resample, report [alpha/2, 1-alpha/2] percentiles.
[[nodiscard]] BootstrapInterval BootstrapCi(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    std::size_t replicates = 1000, double alpha = 0.05);

// Two-sample percentile bootstrap for the DIFFERENCE statistic(a) -
// statistic(b): each replicate resamples both samples independently (the
// samples come from independent trial sets), so the interval carries both
// sides' uncertainty.  The campaign runner uses it for per-cell CE/DUE/SDC
// deltas against the baseline cell; an interval excluding 0 is a
// scenario effect the trial noise cannot explain.
[[nodiscard]] BootstrapInterval BootstrapDeltaCi(
    std::span<const double> a, std::span<const double> b,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    std::size_t replicates = 1000, double alpha = 0.05);

}  // namespace astra::stats
