#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

namespace astra::stats {

Summary Summarize(std::span<const double> samples) noexcept {
  Summary s;
  RunningStats acc;
  for (const double x : samples) acc.Add(x);
  s.count = acc.Count();
  if (s.count == 0) return s;
  s.mean = acc.Mean();
  s.variance = acc.Variance();
  s.stddev = acc.StdDev();
  s.min = acc.Min();
  s.max = acc.Max();
  s.sum = acc.Sum();
  return s;
}

double Mean(std::span<const double> samples) noexcept {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : samples) sum += x;
  return sum / static_cast<double>(samples.size());
}

double QuantileSorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Quantile(std::span<const double> samples, double q) {
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  return QuantileSorted(copy, q);
}

double Median(std::span<const double> samples) { return Quantile(samples, 0.5); }

ViolinSummary Violin(std::span<const double> samples) {
  ViolinSummary v;
  v.count = samples.size();
  if (samples.empty()) return v;
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  v.min = copy.front();
  v.max = copy.back();
  v.p5 = QuantileSorted(copy, 0.05);
  v.q1 = QuantileSorted(copy, 0.25);
  v.median = QuantileSorted(copy, 0.50);
  v.q3 = QuantileSorted(copy, 0.75);
  v.p95 = QuantileSorted(copy, 0.95);
  v.mean = Mean(copy);
  return v;
}

void RunningStats::Add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::Variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::StdDev() const noexcept { return std::sqrt(Variance()); }

}  // namespace astra::stats
