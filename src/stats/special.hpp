// Special functions backing the significance tests: regularized incomplete
// gamma (for chi-square p-values) and regularized incomplete beta (for
// Student-t p-values).  Implementations follow the standard series /
// continued-fraction constructions (Abramowitz & Stegun §6.5, §26.5;
// Lentz's algorithm for the continued fractions).
#pragma once

#include <cstdint>

namespace astra::stats {

// Regularized lower incomplete gamma P(a, x) = γ(a,x) / Γ(a), a > 0, x >= 0.
[[nodiscard]] double RegularizedGammaP(double a, double x) noexcept;

// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double RegularizedGammaQ(double a, double x) noexcept;

// Regularized incomplete beta I_x(a, b), a,b > 0, x in [0,1].
[[nodiscard]] double RegularizedBeta(double a, double b, double x) noexcept;

// Survival function of the chi-square distribution with k dof at value x:
// P(X >= x).  This is the p-value of a chi-square test statistic.
[[nodiscard]] double ChiSquareSurvival(double x, double dof) noexcept;

// Two-sided p-value for a Student-t statistic with `dof` degrees of freedom.
[[nodiscard]] double StudentTTwoSidedP(double t, double dof) noexcept;

// Quantile of the chi-square distribution: smallest x with
// P(X <= x) >= p, found by bisection on the survival function.
[[nodiscard]] double ChiSquareQuantile(double p, double dof) noexcept;

// Exact (Garwood) two-sided confidence interval for a Poisson rate given
// `events` observed over `exposure` units.  Returns {lo, hi} in events per
// unit exposure.  events == 0 yields lo = 0.
struct PoissonRateInterval {
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] PoissonRateInterval PoissonRateCi(std::uint64_t events, double exposure,
                                                double alpha = 0.05) noexcept;

// Hurwitz zeta ζ(s, q) = Σ_{k>=0} (k+q)^-s for s > 1 — normalization constant
// of the discrete power-law distribution.  Euler-Maclaurin evaluation.
[[nodiscard]] double HurwitzZeta(double s, double q) noexcept;

}  // namespace astra::stats
