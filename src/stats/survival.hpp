// Survival analysis for component lifetimes: Kaplan-Meier estimation with
// right-censoring and parametric exponential/Weibull maximum-likelihood
// fits.  Field-reliability studies use exactly this machinery (Ostrouchov
// et al.'s GPU survival study [22] in the paper's related work; Levy et
// al.'s Cielo lifetime analysis [13]): most devices never fail during the
// observation window, so estimators must handle censored observations as
// first-class citizens.
//
// Applications in this toolkit: time-to-first-fault per DIMM, fault
// lifetime distributions, and recovering the §3.1 infant-mortality decay
// constant from replacement events (a Weibull shape < 1 is the statistical
// signature of infant mortality).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace astra::stats {

// One subject: observed for `time` units; `event` is true when the failure
// was observed at `time`, false when the subject was censored (still alive
// when observation stopped).
struct SurvivalObservation {
  double time = 0.0;
  bool event = false;
};

// --- Kaplan-Meier ------------------------------------------------------------

struct KaplanMeierPoint {
  double time = 0.0;       // event time
  std::size_t at_risk = 0; // subjects at risk just before `time`
  std::size_t events = 0;  // failures at `time`
  double survival = 1.0;   // S(t) just after `time`
};

struct KaplanMeierCurve {
  std::vector<KaplanMeierPoint> points;  // ascending in time
  std::size_t subjects = 0;
  std::size_t total_events = 0;

  // S(t): step-function lookup (1.0 before the first event).
  [[nodiscard]] double SurvivalAt(double time) const noexcept;

  // Median survival time; returns +inf (as max double) when S never
  // crosses 0.5 within the observation window.
  [[nodiscard]] double MedianSurvival() const noexcept;
};

[[nodiscard]] KaplanMeierCurve KaplanMeier(std::span<const SurvivalObservation> data);

// --- Parametric fits ----------------------------------------------------------

// Exponential MLE with censoring: rate = events / total exposure.
struct ExponentialFit {
  double rate = 0.0;           // lambda (per time unit)
  double mean_lifetime = 0.0;  // 1 / lambda
  std::size_t events = 0;
  double total_exposure = 0.0;

  [[nodiscard]] bool Valid() const noexcept { return rate > 0.0; }
};

[[nodiscard]] ExponentialFit FitExponential(std::span<const SurvivalObservation> data);

// Weibull MLE with censoring (shape k, scale lambda):
//   h(t) = (k/lambda) (t/lambda)^(k-1).
// k < 1 -> decreasing hazard (infant mortality); k = 1 -> exponential;
// k > 1 -> wear-out.  Solved by Newton iteration on the profiled shape
// equation; scale follows in closed form.
struct WeibullFit {
  double shape = 0.0;   // k
  double scale = 0.0;   // lambda
  std::size_t events = 0;
  int iterations = 0;
  bool converged = false;

  [[nodiscard]] bool Valid() const noexcept { return converged && shape > 0.0; }
  [[nodiscard]] bool InfantMortality() const noexcept { return Valid() && shape < 0.95; }
  [[nodiscard]] bool WearOut() const noexcept { return Valid() && shape > 1.05; }
};

[[nodiscard]] WeibullFit FitWeibull(std::span<const SurvivalObservation> data);

// Annualized failure rate from event count and device-time exposure (in the
// exposure's own time unit; pass per-day exposure with days_per_year=365.25).
[[nodiscard]] double AnnualizedFailureRate(std::size_t events, double device_time_units,
                                           double units_per_year) noexcept;

}  // namespace astra::stats
