#include "stats/deciles.hpp"

#include <algorithm>
#include <numeric>

#include "stats/descriptive.hpp"
#include "stats/linear_fit.hpp"

namespace astra::stats {

double DecileSeries::XSpan() const noexcept {
  if (buckets.size() < 2) return 0.0;
  return buckets.back().x_max - buckets.front().x_max;
}

double DecileSeries::TrendSlope() const noexcept {
  std::vector<double> xs, ys;
  xs.reserve(buckets.size());
  ys.reserve(buckets.size());
  for (const auto& b : buckets) {
    xs.push_back(b.x_max);
    ys.push_back(b.y_mean);
  }
  return FitLine(xs, ys).slope;
}

bool DecileSeries::MonotonicallyIncreasing(double tolerance) const noexcept {
  if (buckets.size() < 2) return false;
  double peak = buckets.front().y_mean;
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    const double y = buckets[i].y_mean;
    if (y + tolerance * std::max(1.0, std::abs(peak)) < peak) return false;
    peak = std::max(peak, y);
  }
  // Also require a MEANINGFUL end-to-end increase (Schroeder et al.'s data
  // shows ~2x across the decile span); a flat-within-noise series must not
  // register as a trend.
  const double front = buckets.front().y_mean;
  const double back = buckets.back().y_mean;
  return back > front + 0.2 * std::max(1.0, std::abs(front));
}

DecileSeries ComputeDecileSeries(std::span<const double> x, std::span<const double> y,
                                 std::size_t buckets) {
  DecileSeries series;
  const std::size_t n = std::min(x.size(), y.size());
  if (n == 0 || buckets == 0) return series;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });

  const std::size_t groups = std::min(buckets, n);
  series.buckets.reserve(groups);
  std::size_t begin = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    // Equal-population partition with remainder spread over the first groups.
    const std::size_t size = n / groups + (g < n % groups ? 1 : 0);
    const std::size_t end = begin + size;
    DecileBucket bucket;
    bucket.count = size;
    double sx = 0.0, sy = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      sx += x[order[i]];
      sy += y[order[i]];
    }
    bucket.x_max = x[order[end - 1]];
    bucket.x_mean = sx / static_cast<double>(size);
    bucket.y_mean = sy / static_cast<double>(size);
    series.buckets.push_back(bucket);
    begin = end;
  }
  return series;
}

MedianSplit SplitByMedian(std::span<const double> key, std::span<const double> x,
                          std::span<const double> y) {
  MedianSplit split;
  const std::size_t n = std::min({key.size(), x.size(), y.size()});
  if (n == 0) return split;
  split.median_key = Quantile(key.subspan(0, n), 0.5);
  for (std::size_t i = 0; i < n; ++i) {
    if (key[i] <= split.median_key) {
      split.low_x.push_back(x[i]);
      split.low_y.push_back(y[i]);
    } else {
      split.high_x.push_back(x[i]);
      split.high_y.push_back(y[i]);
    }
  }
  return split;
}

}  // namespace astra::stats
