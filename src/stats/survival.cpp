#include "stats/survival.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace astra::stats {

double KaplanMeierCurve::SurvivalAt(double time) const noexcept {
  double survival = 1.0;
  for (const KaplanMeierPoint& point : points) {
    if (point.time > time) break;
    survival = point.survival;
  }
  return survival;
}

double KaplanMeierCurve::MedianSurvival() const noexcept {
  for (const KaplanMeierPoint& point : points) {
    if (point.survival <= 0.5) return point.time;
  }
  return std::numeric_limits<double>::max();
}

KaplanMeierCurve KaplanMeier(std::span<const SurvivalObservation> data) {
  KaplanMeierCurve curve;
  curve.subjects = data.size();
  if (data.empty()) return curve;

  std::vector<SurvivalObservation> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const SurvivalObservation& a, const SurvivalObservation& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.event > b.event;  // events before censorings at ties
            });

  double survival = 1.0;
  std::size_t at_risk = sorted.size();
  std::size_t i = 0;
  while (i < sorted.size()) {
    const double t = sorted[i].time;
    std::size_t events = 0;
    std::size_t leaving = 0;
    while (i < sorted.size() && sorted[i].time == t) {
      events += sorted[i].event;
      ++leaving;
      ++i;
    }
    if (events > 0) {
      survival *= 1.0 - static_cast<double>(events) / static_cast<double>(at_risk);
      KaplanMeierPoint point;
      point.time = t;
      point.at_risk = at_risk;
      point.events = events;
      point.survival = survival;
      curve.points.push_back(point);
      curve.total_events += events;
    }
    at_risk -= leaving;
  }
  return curve;
}

ExponentialFit FitExponential(std::span<const SurvivalObservation> data) {
  ExponentialFit fit;
  for (const SurvivalObservation& obs : data) {
    fit.total_exposure += obs.time;
    fit.events += obs.event;
  }
  if (fit.events == 0 || fit.total_exposure <= 0.0) return fit;
  fit.rate = static_cast<double>(fit.events) / fit.total_exposure;
  fit.mean_lifetime = 1.0 / fit.rate;
  return fit;
}

WeibullFit FitWeibull(std::span<const SurvivalObservation> data) {
  WeibullFit fit;
  double sum_log_event_times = 0.0;
  std::size_t events = 0;
  for (const SurvivalObservation& obs : data) {
    if (obs.event && obs.time > 0.0) {
      sum_log_event_times += std::log(obs.time);
      ++events;
    }
  }
  fit.events = events;
  if (events < 2) return fit;
  const double mean_log_event = sum_log_event_times / static_cast<double>(events);

  // Profiled shape equation (censored Weibull MLE):
  //   g(k) = 1/k + mean(ln t | event) - sum(t^k ln t) / sum(t^k) = 0,
  // where the last two sums run over ALL observations (events + censored).
  const auto g = [&](double k) {
    double sum_tk = 0.0, sum_tk_logt = 0.0;
    for (const SurvivalObservation& obs : data) {
      if (obs.time <= 0.0) continue;
      const double tk = std::pow(obs.time, k);
      sum_tk += tk;
      sum_tk_logt += tk * std::log(obs.time);
    }
    if (sum_tk <= 0.0) return 0.0;
    return 1.0 / k + mean_log_event - sum_tk_logt / sum_tk;
  };

  // g is strictly decreasing in k; bisection on a generous bracket.
  double lo = 0.02, hi = 50.0;
  if (g(lo) < 0.0 || g(hi) > 0.0) return fit;  // no root in bracket
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (g(mid) > 0.0) lo = mid;
    else hi = mid;
    fit.iterations = iter + 1;
    if (hi - lo < 1e-9 * hi) break;
  }
  fit.shape = 0.5 * (lo + hi);

  double sum_tk = 0.0;
  for (const SurvivalObservation& obs : data) {
    if (obs.time > 0.0) sum_tk += std::pow(obs.time, fit.shape);
  }
  fit.scale = std::pow(sum_tk / static_cast<double>(events), 1.0 / fit.shape);
  fit.converged = true;
  return fit;
}

double AnnualizedFailureRate(std::size_t events, double device_time_units,
                             double units_per_year) noexcept {
  if (device_time_units <= 0.0) return 0.0;
  return static_cast<double>(events) / device_time_units * units_per_year;
}

}  // namespace astra::stats
