// Histograms: fixed-width binning for continuous sensor data (paper Fig. 2)
// and sparse frequency counting for integer count data (Figs. 5a, 8).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace astra::stats {

// Fixed-width histogram over [lo, hi) with `bins` equal bins.  Samples
// outside the range are tallied in underflow/overflow counters and excluded
// from densities.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x) noexcept;
  void AddN(double x, std::uint64_t n) noexcept;

  [[nodiscard]] std::size_t BinCount() const noexcept { return counts_.size(); }
  [[nodiscard]] double BinLow(std::size_t bin) const noexcept;
  [[nodiscard]] double BinHigh(std::size_t bin) const noexcept;
  [[nodiscard]] double BinCenter(std::size_t bin) const noexcept;
  [[nodiscard]] std::uint64_t Count(std::size_t bin) const noexcept {
    return counts_[bin];
  }
  [[nodiscard]] std::uint64_t TotalInRange() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t Underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t Overflow() const noexcept { return overflow_; }

  // Fraction of in-range samples in `bin` (the paper's Fig. 2 y-axis).
  [[nodiscard]] double Fraction(std::size_t bin) const noexcept;
  // Cumulative fraction of in-range samples at or below `bin`'s upper edge.
  [[nodiscard]] double CumulativeFraction(std::size_t bin) const noexcept;

 private:
  double lo_;
  double hi_;
  double inv_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

// Sparse frequency-of-values table: how many keys carried each observed
// count.  Feeding per-node fault counts produces the Fig. 5a scatter
// ("x faults -> y nodes").
class FrequencyTable {
 public:
  void Add(std::uint64_t value, std::uint64_t weight = 1);

  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& Counts() const noexcept {
    return frequency_;
  }
  [[nodiscard]] std::uint64_t Total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t Distinct() const noexcept {
    return frequency_.size();
  }

 private:
  std::map<std::uint64_t, std::uint64_t> frequency_;
  std::uint64_t total_ = 0;
};

// Concentration curve for "top-k entities hold what share of the total?"
// analyses (Fig. 5b: top-8 nodes hold >50% of CEs; top 2% hold ~90%).
struct ConcentrationCurve {
  // share[k] = fraction of the grand total held by the k+1 largest entities.
  std::vector<double> cumulative_share;
  std::uint64_t grand_total = 0;

  // Smallest k such that the top-k entities hold at least `share` of the
  // total; returns cumulative_share.size() if never reached.
  [[nodiscard]] std::size_t EntitiesForShare(double share) const noexcept;
  // Share held by the top `k` entities (k clamped to size).
  [[nodiscard]] double ShareOfTop(std::size_t k) const noexcept;
};

[[nodiscard]] ConcentrationCurve ComputeConcentration(
    std::span<const std::uint64_t> per_entity_counts);

}  // namespace astra::stats
