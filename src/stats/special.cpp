#include "stats/special.hpp"

#include <cmath>
#include <limits>

namespace astra::stats {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;
constexpr double kTiny = 1e-300;

// Lower incomplete gamma by series expansion (converges fast for x < a + 1).
double GammaPSeries(double a, double x) noexcept {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Upper incomplete gamma by continued fraction (Lentz), good for x >= a + 1.
double GammaQContinuedFraction(double a, double x) noexcept {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for the incomplete beta (Numerical Recipes `betacf`).
double BetaContinuedFraction(double a, double b, double x) noexcept {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedGammaP(double a, double x) noexcept {
  if (a <= 0.0 || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) noexcept {
  if (a <= 0.0 || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double RegularizedBeta(double a, double b, double x) noexcept {
  if (a <= 0.0 || b <= 0.0 || x < 0.0 || x > 1.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to stay in the rapidly-converging regime.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double ChiSquareSurvival(double x, double dof) noexcept {
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(dof / 2.0, x / 2.0);
}

double StudentTTwoSidedP(double t, double dof) noexcept {
  if (dof <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double x = dof / (dof + t * t);
  return RegularizedBeta(dof / 2.0, 0.5, x);
}

double ChiSquareQuantile(double p, double dof) noexcept {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0 || dof <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  // Bisection on the CDF 1 - Q(x); bracket grows until it covers p.
  double lo = 0.0, hi = std::max(dof, 1.0);
  while (1.0 - ChiSquareSurvival(hi, dof) < p && hi < 1e9) hi *= 2.0;
  for (int iter = 0; iter < 200 && hi - lo > 1e-10 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (1.0 - ChiSquareSurvival(mid, dof) < p) lo = mid;
    else hi = mid;
  }
  return 0.5 * (lo + hi);
}

PoissonRateInterval PoissonRateCi(std::uint64_t events, double exposure,
                                  double alpha) noexcept {
  PoissonRateInterval interval;
  if (exposure <= 0.0) return interval;
  // Garwood exact interval via the chi-square / Poisson duality:
  //   lo = chi2(alpha/2, 2k) / 2,  hi = chi2(1 - alpha/2, 2k + 2) / 2.
  const auto k = static_cast<double>(events);
  if (events > 0) {
    interval.lo = 0.5 * ChiSquareQuantile(alpha / 2.0, 2.0 * k) / exposure;
  }
  interval.hi = 0.5 * ChiSquareQuantile(1.0 - alpha / 2.0, 2.0 * k + 2.0) / exposure;
  return interval;
}

double HurwitzZeta(double s, double q) noexcept {
  if (s <= 1.0 || q <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  // Direct sum for the head, Euler-Maclaurin correction for the tail.
  constexpr int kHeadTerms = 64;
  double sum = 0.0;
  for (int k = 0; k < kHeadTerms; ++k) {
    sum += std::pow(q + k, -s);
  }
  const double a = q + kHeadTerms;
  // Tail: ∫_a^∞ x^-s dx + 0.5 a^-s + s/12 a^-(s+1) - s(s+1)(s+2)/720 a^-(s+3)
  sum += std::pow(a, 1.0 - s) / (s - 1.0);
  sum += 0.5 * std::pow(a, -s);
  sum += s / 12.0 * std::pow(a, -s - 1.0);
  sum -= s * (s + 1.0) * (s + 2.0) / 720.0 * std::pow(a, -s - 3.0);
  return sum;
}

}  // namespace astra::stats
