#include "stats/bootstrap.hpp"

#include "stats/descriptive.hpp"

namespace astra::stats {

BootstrapInterval BootstrapCi(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    std::size_t replicates, double alpha) {
  BootstrapInterval interval;
  if (samples.empty() || replicates == 0) return interval;
  interval.point = statistic(samples);
  interval.replicates = replicates;

  std::vector<double> resample(samples.size());
  std::vector<double> estimates;
  estimates.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& slot : resample) {
      slot = samples[rng.UniformInt(static_cast<std::uint64_t>(samples.size()))];
    }
    estimates.push_back(statistic(resample));
  }
  std::sort(estimates.begin(), estimates.end());
  interval.lo = QuantileSorted(estimates, alpha / 2.0);
  interval.hi = QuantileSorted(estimates, 1.0 - alpha / 2.0);
  return interval;
}

}  // namespace astra::stats
