#include "stats/bootstrap.hpp"

#include "stats/descriptive.hpp"

namespace astra::stats {

BootstrapInterval BootstrapCi(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    std::size_t replicates, double alpha) {
  BootstrapInterval interval;
  if (samples.empty() || replicates == 0) return interval;
  interval.point = statistic(samples);
  interval.replicates = replicates;

  std::vector<double> resample(samples.size());
  std::vector<double> estimates;
  estimates.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& slot : resample) {
      slot = samples[rng.UniformInt(static_cast<std::uint64_t>(samples.size()))];
    }
    estimates.push_back(statistic(resample));
  }
  std::sort(estimates.begin(), estimates.end());
  interval.lo = QuantileSorted(estimates, alpha / 2.0);
  interval.hi = QuantileSorted(estimates, 1.0 - alpha / 2.0);
  return interval;
}

BootstrapInterval BootstrapDeltaCi(
    std::span<const double> a, std::span<const double> b,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    std::size_t replicates, double alpha) {
  BootstrapInterval interval;
  if (a.empty() || b.empty() || replicates == 0) return interval;
  interval.point = statistic(a) - statistic(b);
  interval.replicates = replicates;

  std::vector<double> resample_a(a.size());
  std::vector<double> resample_b(b.size());
  std::vector<double> estimates;
  estimates.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& slot : resample_a) {
      slot = a[rng.UniformInt(static_cast<std::uint64_t>(a.size()))];
    }
    for (auto& slot : resample_b) {
      slot = b[rng.UniformInt(static_cast<std::uint64_t>(b.size()))];
    }
    estimates.push_back(statistic(resample_a) - statistic(resample_b));
  }
  std::sort(estimates.begin(), estimates.end());
  interval.lo = QuantileSorted(estimates, alpha / 2.0);
  interval.hi = QuantileSorted(estimates, 1.0 - alpha / 2.0);
  return interval;
}

}  // namespace astra::stats
