// Descriptive statistics over double samples.  All functions take spans and
// never modify their input; quantile-based functions sort an internal copy.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace astra::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // sample variance (n-1 denominator)
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

// Single-pass Welford summary; an empty span yields a zeroed Summary.
[[nodiscard]] Summary Summarize(std::span<const double> samples) noexcept;

[[nodiscard]] double Mean(std::span<const double> samples) noexcept;

// Quantile with linear interpolation between order statistics (type-7, the
// numpy/R default).  q must be in [0,1]; empty input returns 0.
[[nodiscard]] double Quantile(std::span<const double> samples, double q);

[[nodiscard]] double Median(std::span<const double> samples);

// Quantile over data the caller has ALREADY sorted ascending (no copy).
[[nodiscard]] double QuantileSorted(std::span<const double> sorted, double q) noexcept;

// Five-number+tails summary used to render the paper's violin plot (Fig 4b).
struct ViolinSummary {
  std::size_t count = 0;
  double min = 0.0;
  double p5 = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

[[nodiscard]] ViolinSummary Violin(std::span<const double> samples);

// Welford online accumulator for streaming passes.
class RunningStats {
 public:
  void Add(double x) noexcept;
  void Merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t Count() const noexcept { return count_; }
  [[nodiscard]] double Mean() const noexcept { return mean_; }
  [[nodiscard]] double Variance() const noexcept;  // sample variance
  [[nodiscard]] double StdDev() const noexcept;
  [[nodiscard]] double Min() const noexcept { return min_; }
  [[nodiscard]] double Max() const noexcept { return max_; }
  [[nodiscard]] double Sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace astra::stats
