#include "stats/power_law.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/special.hpp"

namespace astra::stats {
namespace {

// Sorted ascending tail (values >= xmin) extracted from samples.
std::vector<std::uint64_t> SortedTail(std::span<const std::uint64_t> samples,
                                      std::uint64_t xmin) {
  std::vector<std::uint64_t> tail;
  tail.reserve(samples.size());
  for (const std::uint64_t v : samples) {
    if (v >= xmin && v > 0) tail.push_back(v);
  }
  std::sort(tail.begin(), tail.end());
  return tail;
}

}  // namespace

bool PowerLawFit::PlausiblePowerLaw() const noexcept {
  if (!Valid()) return false;
  // Rule-of-thumb threshold: KS below ~1.5/sqrt(n_tail) is comfortably within
  // the sampling noise of a true power law at this tail size.
  const double threshold = 1.5 / std::sqrt(static_cast<double>(tail_count));
  return ks_distance <= std::max(threshold, 0.02);
}

PowerLawFit FitPowerLawAt(std::span<const std::uint64_t> samples, std::uint64_t xmin) {
  PowerLawFit fit;
  fit.xmin = std::max<std::uint64_t>(xmin, 1);

  std::size_t total = 0;
  for (const std::uint64_t v : samples) {
    if (v > 0) ++total;
  }
  fit.total_count = total;

  const std::vector<std::uint64_t> tail = SortedTail(samples, fit.xmin);
  fit.tail_count = tail.size();
  if (tail.size() < 2) return fit;

  // Exact discrete MLE: maximize
  //   l(alpha) = -alpha * sum(ln x_i) - n * ln zeta(alpha, xmin)
  // by ternary search (the zeta likelihood is unimodal in alpha).  The
  // popular closed-form approximation (CSN 2009, Eq. 3.7) is only accurate
  // for xmin >~ 6 and badly biased at xmin = 1, which is exactly where
  // count data like faults-per-node lives.
  const auto n = static_cast<double>(tail.size());
  double log_sum = 0.0;
  for (const std::uint64_t v : tail) log_sum += std::log(static_cast<double>(v));
  const double q = static_cast<double>(fit.xmin);
  const auto log_likelihood = [&](double alpha) {
    return -alpha * log_sum - n * std::log(HurwitzZeta(alpha, q));
  };
  double lo = 1.0001, hi = 24.0;
  for (int iter = 0; iter < 200 && hi - lo > 1e-7; ++iter) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (log_likelihood(m1) < log_likelihood(m2)) lo = m1;
    else hi = m2;
  }
  fit.alpha = 0.5 * (lo + hi);
  if (!(fit.alpha > 1.0) || fit.alpha > 23.5) {
    fit.alpha = 0.0;  // no interior optimum: not power-law-like data
    return fit;
  }
  fit.alpha_stderr = (fit.alpha - 1.0) / std::sqrt(n);

  // KS distance for DISCRETE data: compare the CDFs at each support point
  // (both CDFs are step functions that only move on integers, so comparing
  // "just below" a value, as in the continuous test, would be wrong).
  double ks = 0.0;
  std::size_t i = 0;
  while (i < tail.size()) {
    std::size_t j = i;
    while (j + 1 < tail.size() && tail[j + 1] == tail[i]) ++j;
    const double empirical = static_cast<double>(j + 1) / n;  // CDF at value
    const double model = PowerLawCdf(fit, tail[i]);
    ks = std::max(ks, std::abs(model - empirical));
    i = j + 1;
  }
  fit.ks_distance = ks;
  return fit;
}

PowerLawFit FitPowerLaw(std::span<const std::uint64_t> samples,
                        std::size_t max_candidates) {
  std::vector<std::uint64_t> distinct;
  distinct.reserve(256);
  for (const std::uint64_t v : samples) {
    if (v > 0) distinct.push_back(v);
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());

  PowerLawFit best;
  if (distinct.empty()) return best;

  // Candidate xmins: all distinct values if few, otherwise an even stride
  // through the lower 90% of distinct values (the top decile of distinct
  // values leaves too little tail to fit).
  std::vector<std::uint64_t> candidates;
  const std::size_t usable = std::max<std::size_t>(1, distinct.size() * 9 / 10);
  if (usable <= max_candidates) {
    candidates.assign(distinct.begin(), distinct.begin() + static_cast<std::ptrdiff_t>(usable));
  } else {
    candidates.reserve(max_candidates);
    for (std::size_t c = 0; c < max_candidates; ++c) {
      candidates.push_back(distinct[c * usable / max_candidates]);
    }
  }

  bool have_best = false;
  for (const std::uint64_t xmin : candidates) {
    const PowerLawFit fit = FitPowerLawAt(samples, xmin);
    if (!fit.Valid()) continue;
    if (!have_best || fit.ks_distance < best.ks_distance) {
      best = fit;
      have_best = true;
    }
  }
  if (!have_best) best = FitPowerLawAt(samples, distinct.front());
  return best;
}

double PowerLawCdf(const PowerLawFit& fit, std::uint64_t k) noexcept {
  if (k < fit.xmin || fit.alpha <= 1.0) return 0.0;
  const double z_all = HurwitzZeta(fit.alpha, static_cast<double>(fit.xmin));
  const double z_tail = HurwitzZeta(fit.alpha, static_cast<double>(k) + 1.0);
  if (!(z_all > 0.0)) return 0.0;
  return 1.0 - z_tail / z_all;
}

}  // namespace astra::stats
