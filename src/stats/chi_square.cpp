#include "stats/chi_square.hpp"

#include <cmath>

#include "stats/special.hpp"

namespace astra::stats {

ChiSquareResult ChiSquareExpected(std::span<const std::uint64_t> observed,
                                  std::span<const double> expected) noexcept {
  ChiSquareResult result;
  const std::size_t k = observed.size();
  if (k < 2 || expected.size() != k) return result;

  std::uint64_t total_u = 0;
  double expected_total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    total_u += observed[i];
    expected_total += expected[i];
  }
  if (total_u == 0 || expected_total <= 0.0) return result;
  const auto total = static_cast<double>(total_u);

  double stat = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double e = expected[i] / expected_total * total;
    if (e <= 0.0) continue;
    const double d = static_cast<double>(observed[i]) - e;
    stat += d * d / e;
  }
  result.statistic = stat;
  result.dof = static_cast<double>(k - 1);
  result.p_value = ChiSquareSurvival(stat, result.dof);
  result.cramers_v = std::sqrt(stat / (total * result.dof));
  return result;
}

ChiSquareResult ChiSquareUniform(std::span<const std::uint64_t> observed) noexcept {
  ChiSquareResult result;
  const std::size_t k = observed.size();
  if (k < 2) return result;
  std::uint64_t total_u = 0;
  for (const std::uint64_t o : observed) total_u += o;
  if (total_u == 0) return result;
  const auto total = static_cast<double>(total_u);
  const double e = total / static_cast<double>(k);
  double stat = 0.0;
  for (const std::uint64_t o : observed) {
    const double d = static_cast<double>(o) - e;
    stat += d * d / e;
  }
  result.statistic = stat;
  result.dof = static_cast<double>(k - 1);
  result.p_value = ChiSquareSurvival(stat, result.dof);
  result.cramers_v = std::sqrt(stat / (total * result.dof));
  return result;
}

}  // namespace astra::stats
