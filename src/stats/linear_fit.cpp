#include "stats/linear_fit.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "stats/special.hpp"

namespace astra::stats {
namespace {

// Mid-rank assignment for Spearman.
std::vector<double> Ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double mid_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mid_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

LinearFit FitLine(std::span<const double> x, std::span<const double> y) noexcept {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  fit.count = n;
  if (n < 3) return fit;

  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;  // vertical data: slope undefined

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    fit.r = sxy / std::sqrt(sxx * syy);
    fit.r_squared = fit.r * fit.r;
  }

  // Residual variance and slope standard error.
  double sse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double resid = y[i] - (fit.intercept + fit.slope * x[i]);
    sse += resid * resid;
  }
  const double dof = static_cast<double>(n - 2);
  const double sigma2 = sse / dof;
  fit.slope_stderr = std::sqrt(sigma2 / sxx);
  if (fit.slope_stderr > 0.0) {
    fit.t_statistic = fit.slope / fit.slope_stderr;
    fit.p_value = StudentTTwoSidedP(fit.t_statistic, dof);
  } else {
    // Perfect fit: a nonzero slope is then trivially significant.
    fit.t_statistic = fit.slope == 0.0 ? 0.0 : 1e30;
    fit.p_value = fit.slope == 0.0 ? 1.0 : 0.0;
  }
  return fit;
}

double PearsonCorrelation(std::span<const double> x, std::span<const double> y) noexcept {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double SpearmanCorrelation(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const std::vector<double> rx = Ranks(x.subspan(0, n));
  const std::vector<double> ry = Ranks(y.subspan(0, n));
  return PearsonCorrelation(rx, ry);
}

}  // namespace astra::stats
