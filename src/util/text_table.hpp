// Fixed-width text table renderer used by the bench harnesses and report
// generator to print paper-vs-measured rows.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace astra {

class TextTable {
 public:
  // `headers` defines the column count; rows with fewer cells are padded.
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Renders with a header rule, two-space column gutters, and right-aligned
  // numeric-looking cells.
  void Print(std::ostream& os) const;

  [[nodiscard]] std::string ToString() const;

  [[nodiscard]] std::size_t RowCount() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// One line of '-' characters sized to `width`, for section separators.
[[nodiscard]] std::string Rule(std::size_t width = 72);

// Simple horizontal bar for ASCII sparkline-style figures in bench output:
// value scaled against `max_value` into at most `max_width` '#' characters.
[[nodiscard]] std::string AsciiBar(double value, double max_value,
                                   std::size_t max_width = 48);

}  // namespace astra
