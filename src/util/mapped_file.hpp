// Zero-copy file access for the ingest hot path.
//
// MappedFile exposes a whole file as one contiguous string_view, via mmap(2)
// where available and a read-whole-file fallback otherwise, so the line
// readers can hand out string_view slices instead of materializing a
// std::string per line.  SplitAtLineBoundaries then cuts that view into one
// shard per worker, never splitting a line, which is what makes the parallel
// sharded ingest (logs/parallel_ingest.hpp) possible: each shard parses an
// exact, disjoint run of whole lines and the concatenation of shard outputs
// in index order equals the serial scan.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace astra {

// Read-only view of a file's bytes.  Movable, not copyable; the view stays
// valid for the lifetime of the object.
class MappedFile {
 public:
  // Returns nullopt when the file cannot be opened.  An empty file maps to
  // an empty (non-null) view.
  [[nodiscard]] static std::optional<MappedFile> Open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] std::string_view Bytes() const noexcept {
    return size_ == 0 ? std::string_view{} : std::string_view{data_, size_};
  }
  // True when backed by mmap; false when the fallback slurped the file into
  // an owned buffer (still zero-copy from the caller's point of view).
  [[nodiscard]] bool Mapped() const noexcept { return mapped_; }

 private:
  MappedFile() = default;

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;  // owns the bytes when !mapped_
};

// Split `bytes` into at most `max_shards` contiguous sub-views cut only at
// '\n' boundaries.  Invariants (the chunker contract the parallel ingest
// relies on):
//   - the concatenation of the returned views, in order, equals `bytes`;
//   - every view except possibly the last ends with '\n', so no line spans
//     two shards;
//   - a line longer than the nominal chunk size simply collapses would-be
//     boundaries (the result has fewer shards, never a torn line);
//   - empty input yields no shards.
[[nodiscard]] std::vector<std::string_view> SplitAtLineBoundaries(
    std::string_view bytes, std::size_t max_shards);

// Visit each line of `bytes` as a view with the '\n' terminator excluded and
// any trailing '\r' (CRLF data) stripped — the same line semantics as
// std::getline: a final unterminated line is visited, a trailing newline
// does not produce an empty extra line.  `fn` returning false stops the
// walk.  Returns the number of lines visited (including the stopping one).
template <typename Fn>
std::size_t ForEachLineInView(std::string_view bytes, Fn&& fn) {
  std::size_t count = 0;
  std::size_t start = 0;
  while (start < bytes.size()) {
    std::size_t nl = bytes.find('\n', start);
    std::size_t end = nl == std::string_view::npos ? bytes.size() : nl;
    if (end > start && bytes[end - 1] == '\r') --end;
    ++count;
    if (!fn(bytes.substr(start, end - start))) return count;
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return count;
}

// First line of `bytes` (getline semantics, '\r' stripped), or nullopt for
// empty input.  `rest_out`, when non-null, receives the remainder after the
// line's terminator — the byte range the chunker should shard.
[[nodiscard]] std::optional<std::string_view> FirstLineOf(
    std::string_view bytes, std::string_view* rest_out = nullptr) noexcept;

}  // namespace astra
