#include "util/mapped_file.hpp"

#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define ASTRA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace astra {

std::optional<MappedFile> MappedFile::Open(const std::string& path) {
  MappedFile file;
#if ASTRA_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st {};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      if (st.st_size == 0) {
        ::close(fd);
        return file;  // empty view, nothing to map
      }
      void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                          PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (addr != MAP_FAILED) {
        file.data_ = static_cast<const char*>(addr);
        file.size_ = static_cast<std::size_t>(st.st_size);
        file.mapped_ = true;
        return file;
      }
      // mmap refused (e.g. special filesystem): fall through to the reader.
    } else {
      ::close(fd);
      if (::access(path.c_str(), R_OK) != 0) return std::nullopt;
    }
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  file.fallback_.assign((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  return file;
}

MappedFile::MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
#if ASTRA_HAVE_MMAP
  if (mapped_) ::munmap(const_cast<char*>(data_), size_);
#endif
  fallback_ = std::move(other.fallback_);
  mapped_ = other.mapped_;
  size_ = other.size_;
  data_ = mapped_ ? other.data_ : fallback_.data();
  if (size_ == 0) data_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

MappedFile::~MappedFile() {
#if ASTRA_HAVE_MMAP
  if (mapped_) ::munmap(const_cast<char*>(data_), size_);
#endif
}

std::vector<std::string_view> SplitAtLineBoundaries(std::string_view bytes,
                                                    std::size_t max_shards) {
  std::vector<std::string_view> shards;
  if (bytes.empty()) return shards;
  if (max_shards <= 1) {
    shards.push_back(bytes);
    return shards;
  }
  shards.reserve(max_shards);
  const std::size_t nominal = (bytes.size() + max_shards - 1) / max_shards;
  std::size_t begin = 0;
  while (begin < bytes.size() && shards.size() + 1 < max_shards) {
    std::size_t target = begin + nominal;
    if (target >= bytes.size()) break;
    // Advance to the end of the line containing `target`; the shard ends
    // just past that '\n'.  No newline ahead means the rest is one line.
    const std::size_t nl = bytes.find('\n', target);
    if (nl == std::string_view::npos) break;
    shards.push_back(bytes.substr(begin, nl + 1 - begin));
    begin = nl + 1;
  }
  if (begin < bytes.size()) shards.push_back(bytes.substr(begin));
  return shards;
}

std::optional<std::string_view> FirstLineOf(std::string_view bytes,
                                            std::string_view* rest_out) noexcept {
  if (bytes.empty()) {
    if (rest_out != nullptr) *rest_out = {};
    return std::nullopt;
  }
  const std::size_t nl = bytes.find('\n');
  std::size_t end = nl == std::string_view::npos ? bytes.size() : nl;
  if (rest_out != nullptr) {
    *rest_out = nl == std::string_view::npos ? std::string_view{}
                                             : bytes.substr(nl + 1);
  }
  if (end > 0 && bytes[end - 1] == '\r') --end;
  return bytes.substr(0, end);
}

}  // namespace astra
