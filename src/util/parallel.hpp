// Minimal blocking thread pool + parallel_for used by the fleet simulator and
// the analysis passes.  Design points:
//
//  - Work is partitioned into contiguous index ranges (one chunk per worker by
//    default) so per-node simulation state stays cache-local and results can
//    be written into pre-sized output slots without synchronization.
//  - Determinism: parallelism never changes results because all random streams
//    are keyed by entity identity (see util/rng.hpp), and reductions are
//    performed in index order after the parallel region.
//  - The pool is created on demand and shared process-wide; pass
//    `max_threads = 1` to force serial execution (useful in tests).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace astra {

// Resolve a --threads style knob: 0 = hardware concurrency, else as given.
[[nodiscard]] inline unsigned ResolveThreadCount(unsigned threads) noexcept {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

class ThreadPool {
 public:
  explicit ThreadPool(unsigned thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned ThreadCount() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  // Enqueue a task; tasks must not throw (the pool is used for numeric
  // kernels that report failure through their captured state).
  void Submit(std::function<void()> task);

  // Block until all submitted tasks have completed.
  void Wait();

  // Process-wide shared pool sized to the hardware concurrency.
  [[nodiscard]] static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::queue<std::function<void()>> queue_ ASTRA_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
  std::size_t in_flight_ ASTRA_GUARDED_BY(mutex_) = 0;
  bool stopping_ ASTRA_GUARDED_BY(mutex_) = false;
};

// Invoke fn(begin, end) over disjoint chunks of [0, count) in parallel and
// wait for completion.  `fn` must be safe to call concurrently on disjoint
// ranges.  With count==0 this is a no-op; small ranges run inline.
void ParallelForRanges(std::size_t count,
                       const std::function<void(std::size_t, std::size_t)>& fn,
                       unsigned max_threads = 0);

// Element-wise convenience wrapper: fn(i) for each i in [0, count).
template <typename Fn>
void ParallelFor(std::size_t count, Fn&& fn, unsigned max_threads = 0) {
  ParallelForRanges(
      count,
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      max_threads);
}

// Run fn(shard, begin, end) over `shard_count` contiguous, balanced ranges
// of [0, count) and wait.  Unlike ParallelFor, the shard index is exposed so
// callers can fill per-shard accumulators without synchronization and then
// reduce them in index order (the determinism idiom used by the ingest and
// analysis pipelines).  shard_count is clamped to count; <= 1 runs inline.
// Shards run with genuine shard_count-way concurrency even when the shared
// pool is smaller (a dedicated pool is spun up), so `--threads=N` means N
// workers regardless of what hardware_concurrency reports.
void ParallelShards(std::size_t count, std::size_t shard_count,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& fn);

// The contiguous, balanced partition of [0, count) ParallelShards uses,
// exposed so callers can construct per-shard state (e.g. seed an engine with
// its shard's first global record index) before the parallel region runs.
// shard_count is clamped to count; count == 0 yields no ranges.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> SplitIndexRanges(
    std::size_t count, std::size_t shard_count);

// Below this many items the analysis passes run serially: shard setup and
// the MergeFrom reduction cost more than they save, and the serial path is
// byte-identical anyway.  Shared by every sharded analysis (coalesce,
// positional, temporal, the engine-set driver); the ingest-side analogue is
// logs/parallel_ingest.hpp's kParallelIngestMinBytes.
inline constexpr std::size_t kParallelAnalysisMinItems = std::size_t{1} << 15;

// The determinism-safe shard+reduce idiom in one helper: build one State per
// balanced contiguous range of [0, count) with make(range_begin), fill each
// concurrently with fill(state, begin, end), then reduce left-to-right in
// shard INDEX order via State::MergeFrom.  Because the reduction order is a
// pure function of (count, shard_count), the result is identical at any
// level of actual hardware concurrency.
//
// State must provide `[[nodiscard]] bool MergeFrom(const State&)` (the
// analyzer-engine contract, core/engine.hpp); MergeFrom must accept any
// state produced by the same make() — a false return here is a programmer
// error (mismatched configs), not a data condition.
template <typename State, typename MakeFn, typename FillFn>
[[nodiscard]] State ShardedReduce(std::size_t count, std::size_t shard_count,
                                  const MakeFn& make, const FillFn& fill) {
  const auto ranges = SplitIndexRanges(count, shard_count);
  if (ranges.empty()) return make(0);
  std::vector<State> partials;
  partials.reserve(ranges.size());
  for (const auto& range : ranges) partials.push_back(make(range.first));
  ParallelShards(ranges.size(), ranges.size(),
                 [&](std::size_t, std::size_t begin, std::size_t end) {
                   for (std::size_t s = begin; s < end; ++s) {
                     fill(partials[s], ranges[s].first, ranges[s].second);
                   }
                 });
  State merged = std::move(partials.front());
  for (std::size_t s = 1; s < partials.size(); ++s) {
    if (!merged.MergeFrom(partials[s])) break;  // unreachable for same-config states
  }
  return merged;
}

}  // namespace astra
