#include "util/rng.hpp"

#include <cmath>

namespace astra {

std::uint64_t Rng::UniformInt(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::Normal() noexcept {
  // Marsaglia polar method.
  for (;;) {
    const double u = 2.0 * UniformDouble() - 1.0;
    const double v = 2.0 * UniformDouble() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

std::uint64_t Rng::Poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth/inversion by multiplication of uniforms in log space.
    const double limit = std::exp(-mean);
    double product = UniformDouble();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= UniformDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the large
  // aggregate arrival counts used in fleet-level simulation.
  const double sample = Normal(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

double Rng::BoundedPareto(double alpha, double lo, double hi) noexcept {
  const double u = UniformDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the bounded Pareto distribution.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::uint64_t Rng::DiscretePowerLaw(double alpha, std::uint64_t kmax) noexcept {
  if (kmax <= 1) return 1;
  if (alpha <= 1.0) alpha = 1.000001;  // zeta law requires alpha > 1
  // Devroye's exact rejection sampler for the zeta (discrete power-law)
  // distribution P(k) ∝ k^-alpha (Non-Uniform Random Variate Generation,
  // ch. X.6), truncated at kmax by retrying tail draws.
  const double am1 = alpha - 1.0;
  const double b = std::pow(2.0, am1);
  for (;;) {
    const double u = 1.0 - UniformDouble();  // (0, 1]
    const double v = UniformDouble();
    const double x_real = std::floor(std::pow(u, -1.0 / am1));
    if (!(x_real >= 1.0) || x_real > static_cast<double>(kmax)) continue;
    const auto x = static_cast<std::uint64_t>(x_real);
    const double t = std::pow(1.0 + 1.0 / x_real, am1);
    if (v * x_real * (t - 1.0) / (b - 1.0) <= t / b) return x;
  }
}

std::size_t Rng::WeightedIndex(const double* weights, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i];
  if (total <= 0.0 || n == 0) return 0;
  double target = UniformDouble() * total;
  for (std::size_t i = 0; i < n; ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return n - 1;
}

}  // namespace astra
