#include "util/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.hpp"

namespace astra {

std::int64_t BackoffDelayMs(const RetryPolicy& policy, int attempt) noexcept {
  if (attempt < 1) attempt = 1;
  const std::int64_t base = std::max<std::int64_t>(policy.base_delay_ms, 0);
  std::int64_t nominal = base;
  // Double per attempt, saturating at the cap (shift-free to avoid overflow).
  for (int i = 1; i < attempt && nominal < policy.max_delay_ms; ++i) {
    nominal = std::min(policy.max_delay_ms, nominal * 2);
  }
  nominal = std::min(nominal, std::max<std::int64_t>(policy.max_delay_ms, 0));
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter == 0.0 || nominal == 0) return nominal;
  // Identity-keyed draw: the factor depends only on (seed, attempt), never on
  // how many other retries this process has performed.
  Rng rng(MixSeed(policy.seed, static_cast<std::uint64_t>(attempt)));
  const double factor = 1.0 - jitter + 2.0 * jitter * rng.UniformDouble();
  const auto scaled = static_cast<std::int64_t>(static_cast<double>(nominal) * factor);
  return std::max<std::int64_t>(scaled, 0);
}

SleepFn ThreadSleeper() {
  return [](std::int64_t delay_ms) {
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
  };
}

bool RetryWithBackoff(const RetryPolicy& policy, const std::function<bool()>& op,
                      const SleepFn& sleep) {
  const int attempts = std::max(policy.max_attempts, 1);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (op()) return true;
    if (attempt == attempts) break;
    if (sleep) sleep(BackoffDelayMs(policy, attempt));
  }
  return false;
}

}  // namespace astra
