#include "util/text_table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

namespace astra {
namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t digits = 0;
  for (const char ch : cell) {
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      ++digits;
    } else if (ch != '.' && ch != '-' && ch != '+' && ch != ',' && ch != '%' &&
               ch != 'e' && ch != 'E' && ch != 'x') {
      return false;
    }
  }
  return digits > 0;
}

}  // namespace

void TextTable::Print(std::ostream& os) const {
  const std::size_t cols = headers_.size();
  std::vector<std::size_t> widths(cols, 0);
  for (std::size_t c = 0; c < cols; ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < cols && c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string{};
      const std::size_t pad = widths[c] - std::min(widths[c], cell.size());
      const bool right = align_numeric && LooksNumeric(cell);
      if (c != 0) os << "  ";
      if (right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
    }
    os << '\n';
  };

  emit_row(headers_, /*align_numeric=*/false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < cols; ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row, /*align_numeric=*/true);
}

std::string TextTable::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

std::string Rule(std::size_t width) { return std::string(width, '-'); }

std::string AsciiBar(double value, double max_value, std::size_t max_width) {
  if (max_value <= 0.0 || value <= 0.0 || max_width == 0) return {};
  const double frac = std::min(1.0, value / max_value);
  const auto n = static_cast<std::size_t>(std::lround(frac * static_cast<double>(max_width)));
  return std::string(std::max<std::size_t>(n, 1), '#');
}

}  // namespace astra
