// Small string utilities shared by the log parsers and table writers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace astra {

// Split `text` on `delim` into views over the original buffer.  Empty fields
// are preserved ("a,,b" -> {"a","","b"}); an empty input yields {""}.
[[nodiscard]] std::vector<std::string_view> SplitView(std::string_view text,
                                                      char delim);

// Split on runs of whitespace; empty fields never produced.
[[nodiscard]] std::vector<std::string_view> SplitWhitespace(std::string_view text);

[[nodiscard]] std::string_view TrimView(std::string_view text) noexcept;

[[nodiscard]] bool StartsWith(std::string_view text, std::string_view prefix) noexcept;

// Strict numeric parsing: the entire field must be consumed.
[[nodiscard]] std::optional<std::int64_t> ParseInt64(std::string_view text) noexcept;
[[nodiscard]] std::optional<std::uint64_t> ParseUint64(std::string_view text,
                                                       int base = 10) noexcept;
[[nodiscard]] std::optional<double> ParseDouble(std::string_view text) noexcept;

// Fixed-precision double formatting ("%.*f") without locale dependence.
[[nodiscard]] std::string FormatDouble(double value, int precision);

// Thousands-separated integer rendering for human-facing report tables
// (e.g. 4369731 -> "4,369,731").
[[nodiscard]] std::string WithThousands(std::uint64_t value);

}  // namespace astra
