// Small string utilities shared by the log parsers and table writers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace astra {

// Split `text` on `delim` into views over the original buffer.  Empty fields
// are preserved ("a,,b" -> {"a","","b"}); an empty input yields {""}.
[[nodiscard]] std::vector<std::string_view> SplitView(std::string_view text,
                                                      char delim);

// Split on runs of whitespace; empty fields never produced.
[[nodiscard]] std::vector<std::string_view> SplitWhitespace(std::string_view text);

// Zero-allocation field scanner for the record parsers' hot path: split
// `text` on `delim` into the caller's fixed-capacity array `out[0..max)`.
// Field semantics are identical to SplitView (empty fields preserved, an
// empty input is one empty field).  Returns the field count, or `max + 1`
// the moment a field beyond `out[max - 1]` starts — callers comparing the
// return value against an exact expected count treat both "too few" and
// "too many" as a mismatch without scanning the rest of an oversized line.
//
// The scan is SWAR (SIMD-within-a-register): 8 bytes are loaded per step and
// the delimiter positions extracted with the classic zero-byte trick, so the
// common all-payload word costs one compare instead of eight.  Loads never
// touch bytes past text.data() + text.size() — safe on views into an mmap'd
// file whose last line ends flush against the mapping boundary.
std::size_t ScanFields(std::string_view text, char delim, std::string_view* out,
                       std::size_t max) noexcept;

[[nodiscard]] std::string_view TrimView(std::string_view text) noexcept;

[[nodiscard]] bool StartsWith(std::string_view text, std::string_view prefix) noexcept;

// Strict numeric parsing: the entire field must be consumed.
[[nodiscard]] std::optional<std::int64_t> ParseInt64(std::string_view text) noexcept;
[[nodiscard]] std::optional<std::uint64_t> ParseUint64(std::string_view text,
                                                       int base = 10) noexcept;
[[nodiscard]] std::optional<double> ParseDouble(std::string_view text) noexcept;

// Branch-light strict parses for the record scanners.  Accept/reject
// language is IDENTICAL to the from_chars-backed helpers above (empty
// rejected, whole field consumed, overflow rejected) — the fuzz parity
// suite in tests/logs pins that equivalence — but the tight digit loops
// inline where from_chars cannot.
//
// ParseDecimalI64 == ParseInt64: optional leading '-', no '+', INT64
// overflow rejected.
[[nodiscard]] inline std::optional<std::int64_t> ParseDecimalI64(
    std::string_view text) noexcept {
  const bool negative = !text.empty() && text.front() == '-';
  if (negative) text.remove_prefix(1);
  if (text.empty()) return std::nullopt;
  // One past INT64_MAX: the magnitude INT64_MIN needs when negative.
  const std::uint64_t limit =
      negative ? (std::uint64_t{1} << 63) : (std::uint64_t{1} << 63) - 1;
  std::uint64_t value = 0;
  for (const char c : text) {
    const unsigned digit = static_cast<unsigned char>(c) - static_cast<unsigned>('0');
    if (digit > 9) return std::nullopt;
    if (value > (limit - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  if (!negative) return static_cast<std::int64_t>(value);
  // Negate via the unsigned magnitude so INT64_MIN round-trips without UB.
  return static_cast<std::int64_t>(~value + 1);
}

// ParseHexU64 == ParseUint64(text, 16): optional lowercase "0x" prefix,
// upper/lowercase digits, overflow rejected (leading zeros never overflow).
[[nodiscard]] inline std::optional<std::uint64_t> ParseHexU64(
    std::string_view text) noexcept {
  if (text.size() >= 2 && text[0] == '0' && text[1] == 'x') text.remove_prefix(2);
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    // Map '0'-'9', 'a'-'f', 'A'-'F' to 0-15; everything else past 15.
    const unsigned raw = static_cast<unsigned char>(c);
    const unsigned digit = raw - '0' <= 9    ? raw - '0'
                           : (raw | 0x20u) >= 'a' && (raw | 0x20u) <= 'f'
                               ? (raw | 0x20u) - 'a' + 10
                               : 16u;
    if (digit > 15) return std::nullopt;
    if (value >> 60 != 0) return std::nullopt;  // a 17th significant nibble
    value = (value << 4) | digit;
  }
  return value;
}

// Fixed-precision double formatting ("%.*f") without locale dependence.
[[nodiscard]] std::string FormatDouble(double value, int precision);

// Thousands-separated integer rendering for human-facing report tables
// (e.g. 4369731 -> "4,369,731").
[[nodiscard]] std::string WithThousands(std::uint64_t value);

}  // namespace astra
