// Line-oriented file helpers for the dataset readers/writers.
//
// Every helper routes through the injectable io::Io seam (util/io_faults.hpp),
// so chaos tests can subject any consumer of these functions to seeded
// environmental failure without touching the call sites.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace astra {

// Read all lines of a text file.  Returns nullopt if the file cannot be
// opened.  Trailing '\r' (CRLF datasets) is stripped from each line.
[[nodiscard]] std::optional<std::vector<std::string>> ReadLines(
    const std::string& path);

// Stream lines through `fn` without materializing the whole file; returns the
// number of lines visited, or nullopt if the file cannot be opened.  `fn`
// returning false stops iteration early.
[[nodiscard]] std::optional<std::size_t> ForEachLine(
    const std::string& path, const std::function<bool(std::string_view)>& fn);

// Write lines (each suffixed with '\n'); returns false on I/O failure.
[[nodiscard]] bool WriteLines(const std::string& path,
                              const std::vector<std::string>& lines);

// Raw byte-level file access, for tools that must produce or inspect files
// that are NOT well-formed line-oriented text (e.g. the telemetry corruption
// injector's tail-chopped files, whose final line has no terminator).
[[nodiscard]] std::optional<std::string> ReadFileBytes(const std::string& path);
[[nodiscard]] bool WriteFileBytes(const std::string& path, std::string_view bytes);

}  // namespace astra
