#include "util/strings.hpp"

#include <bit>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>

namespace astra {
namespace {

constexpr std::uint64_t kLowBits = 0x0101010101010101ULL;
constexpr std::uint64_t kHighBits = 0x8080808080808080ULL;

// Classic SWAR zero-byte detector: the high bit of each byte of the result
// is set iff that byte of `word` is zero (Mycroft's trick).
constexpr std::uint64_t ZeroByteMask(std::uint64_t word) noexcept {
  return (word - kLowBits) & ~word & kHighBits;
}

// Byte index (0 = lowest address) of a set high bit in a detector mask.
inline unsigned MaskByteIndex(std::uint64_t mask) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    return static_cast<unsigned>(std::countr_zero(mask)) >> 3;
  } else {
    return static_cast<unsigned>(std::countl_zero(mask)) >> 3;
  }
}

}  // namespace

std::size_t ScanFields(std::string_view text, char delim, std::string_view* out,
                       std::size_t max) noexcept {
  const char* data = text.data();
  const std::size_t size = text.size();
  const std::uint64_t pattern = kLowBits * static_cast<unsigned char>(delim);

  std::size_t count = 0;
  std::size_t field_start = 0;
  const auto emit = [&](std::size_t delim_pos) noexcept {
    if (count >= max) return false;
    out[count++] = text.substr(field_start, delim_pos - field_start);
    field_start = delim_pos + 1;
    return true;
  };

  // Whole 8-byte words: one detector evaluation per word, then one bit-clear
  // iteration per delimiter the word contains.  The tail (and any view
  // shorter than a word) falls to the scalar loop below — loads stay inside
  // [data, data + size) so views flush against an mmap boundary are safe.
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, data + i, 8);
    std::uint64_t hits = ZeroByteMask(word ^ pattern);
    while (hits != 0) {
      if (!emit(i + MaskByteIndex(hits))) return max + 1;
      if constexpr (std::endian::native == std::endian::little) {
        hits &= hits - 1;  // clear lowest set bit = lowest-address hit
      } else {
        hits &= ~(std::uint64_t{1} << (63 - std::countl_zero(hits)));
      }
    }
  }
  for (; i < size; ++i) {
    if (data[i] == delim && !emit(i)) return max + 1;
  }

  if (count >= max) return max + 1;
  out[count++] = text.substr(field_start);
  return count;
}

std::vector<std::string_view> SplitView(std::string_view text, char delim) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> SplitWhitespace(std::string_view text) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) fields.push_back(text.substr(start, i - start));
  }
  return fields;
}

std::string_view TrimView(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> ParseInt64(std::string_view text) noexcept {
  std::int64_t value = 0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> ParseUint64(std::string_view text, int base) noexcept {
  if (base == 16 && StartsWith(text, "0x")) text.remove_prefix(2);
  std::uint64_t value = 0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, base);
  if (ec != std::errc{} || ptr != last || text.empty()) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view text) noexcept {
  double value = 0.0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) return std::nullopt;
  return value;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string WithThousands(std::uint64_t value) {
  const std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace astra
