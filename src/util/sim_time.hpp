// Simulation time: a thin, strongly-typed wrapper over "seconds since the
// Unix epoch" with proleptic-Gregorian calendar conversion.  The toolkit
// deals in wall-clock timestamps because the paper's datasets (syslog CE
// records, BMC sensor samples, inventory scans) are all timestamped series
// keyed to real calendar dates (e.g. "Jan 20 2019 .. Sep 14 2019").
//
// Calendar algorithms follow Howard Hinnant's public-domain civil-date
// derivations (http://howardhinnant.github.io/date_algorithms.html).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace astra {

struct CivilDate {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  friend constexpr bool operator==(const CivilDate&, const CivilDate&) = default;
};

struct CivilDateTime {
  CivilDate date;
  int hour = 0;    // 0..23
  int minute = 0;  // 0..59
  int second = 0;  // 0..59

  friend constexpr bool operator==(const CivilDateTime&, const CivilDateTime&) = default;
};

// Days since 1970-01-01 for a civil date (valid across the simulation era).
[[nodiscard]] constexpr std::int64_t DaysFromCivil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

[[nodiscard]] constexpr CivilDate CivilFromDays(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                       // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                            // [1, 12]
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d)};
}

// Seconds since the Unix epoch, value-typed with named constructors and
// calendar helpers.  Arithmetic stays explicit (AddSeconds/AddDays) to avoid
// unit confusion between seconds, minutes and days at call sites.
class SimTime {
 public:
  static constexpr std::int64_t kSecondsPerMinute = 60;
  static constexpr std::int64_t kSecondsPerHour = 3600;
  static constexpr std::int64_t kSecondsPerDay = 86400;
  static constexpr std::int64_t kSecondsPerWeek = 7 * kSecondsPerDay;

  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t seconds_since_epoch) noexcept
      : seconds_(seconds_since_epoch) {}

  [[nodiscard]] static constexpr SimTime FromCivil(int year, int month, int day,
                                                   int hour = 0, int minute = 0,
                                                   int second = 0) noexcept {
    return SimTime(DaysFromCivil(year, month, day) * kSecondsPerDay +
                   hour * kSecondsPerHour + minute * kSecondsPerMinute + second);
  }

  [[nodiscard]] constexpr std::int64_t Seconds() const noexcept { return seconds_; }
  [[nodiscard]] constexpr std::int64_t Minutes() const noexcept {
    return seconds_ / kSecondsPerMinute;
  }
  [[nodiscard]] constexpr std::int64_t Days() const noexcept {
    return seconds_ / kSecondsPerDay;
  }

  [[nodiscard]] constexpr SimTime AddSeconds(std::int64_t s) const noexcept {
    return SimTime(seconds_ + s);
  }
  [[nodiscard]] constexpr SimTime AddMinutes(std::int64_t m) const noexcept {
    return SimTime(seconds_ + m * kSecondsPerMinute);
  }
  [[nodiscard]] constexpr SimTime AddHours(std::int64_t h) const noexcept {
    return SimTime(seconds_ + h * kSecondsPerHour);
  }
  [[nodiscard]] constexpr SimTime AddDays(std::int64_t d) const noexcept {
    return SimTime(seconds_ + d * kSecondsPerDay);
  }

  [[nodiscard]] CivilDateTime ToCivil() const noexcept;

  // "YYYY-MM-DD HH:MM:SS" — the timestamp format used by the dataset files.
  [[nodiscard]] std::string ToString() const;
  // "YYYY-MM-DD"
  [[nodiscard]] std::string ToDateString() const;

  // Parse "YYYY-MM-DD[ HH:MM[:SS]]"; returns false on malformed input.
  [[nodiscard]] static bool Parse(std::string_view text, SimTime& out) noexcept;

  friend constexpr auto operator<=>(const SimTime&, const SimTime&) = default;

 private:
  std::int64_t seconds_ = 0;
};

// Difference in whole seconds (b - a).
[[nodiscard]] constexpr std::int64_t SecondsBetween(SimTime a, SimTime b) noexcept {
  return b.Seconds() - a.Seconds();
}

// A half-open time interval [begin, end).
struct TimeWindow {
  SimTime begin;
  SimTime end;

  [[nodiscard]] constexpr bool Contains(SimTime t) const noexcept {
    return t >= begin && t < end;
  }
  [[nodiscard]] constexpr std::int64_t DurationSeconds() const noexcept {
    return SecondsBetween(begin, end);
  }
  [[nodiscard]] constexpr double DurationDays() const noexcept {
    return static_cast<double>(DurationSeconds()) /
           static_cast<double>(SimTime::kSecondsPerDay);
  }
};

// Zero-based month index (months elapsed since window begin) — used to bucket
// events into the monthly series the paper plots.  A "month" here is the
// calendar month boundary, not a fixed 30-day period.
[[nodiscard]] int CalendarMonthIndex(SimTime origin, SimTime t) noexcept;

// Origin-free calendar month index (year * 12 + month - 1 of t's civil
// date).  CalendarMonthIndex(origin, t) is exactly the difference of the two
// absolute indices, so incremental analyzers can bin by absolute month while
// the campaign window is still unknown and remap to an origin-relative
// series at finalize time without loss.
[[nodiscard]] std::int64_t AbsoluteCalendarMonth(SimTime t) noexcept;

// Memoized AbsoluteCalendarMonth for hot per-record binning: telemetry
// arrives clustered in time, so almost every lookup lands in the month of
// the previous one and skips the civil-date conversion entirely.  Pure
// cache — MonthOf(t) == AbsoluteCalendarMonth(t) for every t — so engines
// may carry one without affecting determinism, merges, or snapshots.
class CalendarMonthCache {
 public:
  [[nodiscard]] std::int64_t MonthOf(SimTime t) noexcept {
    const std::int64_t s = t.Seconds();
    if (s < month_begin_ || s >= month_end_) Refill(s);
    return month_;
  }

 private:
  void Refill(std::int64_t seconds) noexcept;

  std::int64_t month_begin_ = 1;  // empty range: first lookup always refills
  std::int64_t month_end_ = 0;
  std::int64_t month_ = 0;
};

}  // namespace astra
