#include "util/io_faults.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ASTRA_HAVE_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace astra::io {

std::string_view FaultName(Fault fault) noexcept {
  switch (fault) {
    case Fault::kOpenFail: return "open-fail";
    case Fault::kReadFail: return "read-fail";
    case Fault::kShortRead: return "short-read";
    case Fault::kMapFail: return "map-fail";
    case Fault::kWriteFail: return "write-fail";
    case Fault::kTornWrite: return "torn-write";
    case Fault::kRenameFail: return "rename-fail";
    case Fault::kSyncFail: return "sync-fail";
    case Fault::kStatFail: return "stat-fail";
    case Fault::kRemoveFail: return "remove-fail";
  }
  return "unknown";
}

// --- passthrough base ---------------------------------------------------------

std::optional<std::string> Io::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

std::optional<MappedFile> Io::MapFile(const std::string& path) {
  return MappedFile::Open(path);
}

bool Io::WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return static_cast<bool>(out);
}

bool Io::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  return !ec;
}

bool Io::SyncFile(const std::string& path) {
#if ASTRA_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;  // no durability barrier available; best effort
#endif
}

bool Io::SyncDir(const std::string& path) {
#if ASTRA_HAVE_FSYNC
  const int fd = ::open(path.empty() ? "." : path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

std::optional<std::uint64_t> Io::FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;
  return static_cast<std::uint64_t>(size);
}

bool Io::Remove(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);  // false (no ec) when absent: still gone
  return !ec;
}

// --- current-instance plumbing ------------------------------------------------

namespace {
std::atomic<Io*> g_current{nullptr};
}  // namespace

Io& DefaultIo() noexcept {
  static Io real;
  return real;
}

Io& Current() noexcept {
  Io* io = g_current.load(std::memory_order_acquire);
  return io != nullptr ? *io : DefaultIo();
}

ScopedIo::ScopedIo(Io& io) noexcept
    : previous_(g_current.exchange(&io, std::memory_order_acq_rel)) {}

ScopedIo::~ScopedIo() { g_current.store(previous_, std::memory_order_release); }

// --- fault injection ----------------------------------------------------------

FaultyIo::FaultyIo(const FaultConfig& config, Io* base)
    : config_(config), base_(base != nullptr ? base : &DefaultIo()) {}

bool FaultyIo::Applies(const std::string& path) const noexcept {
  return config_.path_filter.empty() ||
         path.find(config_.path_filter) != std::string::npos;
}

bool FaultyIo::Inject(Fault fault, double probability) {
  if (probability <= 0.0) return false;
  const auto at = static_cast<std::size_t>(fault);
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t draw = draws_[at]++;
  // Identity-keyed decision: (seed, kind, draw index), independent of every
  // other fault kind's draw history.
  Rng rng(MixSeed(config_.seed, static_cast<std::uint64_t>(at), draw));
  bool fire = probability >= 1.0 || rng.UniformDouble() < probability;
  if (fire && config_.max_consecutive > 0 &&
      consecutive_[at] >= config_.max_consecutive) {
    fire = false;  // transience bound: force a success, clearing the streak
  }
  if (fire) {
    ++consecutive_[at];
    ++stats_.injected[at];
  } else {
    consecutive_[at] = 0;
  }
  return fire;
}

double FaultyIo::Fraction(Fault fault) {
  const auto at = static_cast<std::size_t>(fault);
  const std::lock_guard<std::mutex> lock(mutex_);
  Rng rng(MixSeed(config_.seed ^ 0xf7ac71005ULL, static_cast<std::uint64_t>(at),
                  draws_[at]));
  return rng.UniformDouble();
}

FaultStats FaultyIo::Stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::optional<std::string> FaultyIo::ReadFile(const std::string& path) {
  if (!Applies(path)) return base_->ReadFile(path);
  if (Inject(Fault::kOpenFail, config_.open_fail)) return std::nullopt;
  auto bytes = base_->ReadFile(path);
  if (!bytes) return bytes;
  if (Inject(Fault::kReadFail, config_.read_fail)) return std::nullopt;
  if (!bytes->empty() && Inject(Fault::kShortRead, config_.read_short)) {
    // Strict prefix: at least one byte is always lost.
    const auto keep = static_cast<std::size_t>(
        Fraction(Fault::kShortRead) * static_cast<double>(bytes->size()));
    bytes->resize(keep < bytes->size() ? keep : bytes->size() - 1);
  }
  return bytes;
}

std::optional<MappedFile> FaultyIo::MapFile(const std::string& path) {
  if (!Applies(path)) return base_->MapFile(path);
  if (Inject(Fault::kOpenFail, config_.open_fail)) return std::nullopt;
  if (Inject(Fault::kMapFail, config_.map_fail)) return std::nullopt;
  return base_->MapFile(path);
}

bool FaultyIo::WriteFile(const std::string& path, std::string_view bytes) {
  if (!Applies(path)) return base_->WriteFile(path, bytes);
  if (Inject(Fault::kWriteFail, config_.write_fail)) return false;
  if (Inject(Fault::kTornWrite, config_.write_torn)) {
    // ENOSPC mid-write: a strict prefix lands on disk and the call fails.
    // The torn file is deliberately left behind — crash-safe callers must
    // survive it (sidecar + rename), and chaos tests assert they do.
    auto keep = static_cast<std::size_t>(
        Fraction(Fault::kTornWrite) * static_cast<double>(bytes.size()));
    if (!bytes.empty() && keep >= bytes.size()) keep = bytes.size() - 1;
    (void)base_->WriteFile(path, bytes.substr(0, keep));
    return false;
  }
  return base_->WriteFile(path, bytes);
}

bool FaultyIo::Rename(const std::string& from, const std::string& to) {
  if (!Applies(from)) return base_->Rename(from, to);
  if (Inject(Fault::kRenameFail, config_.rename_fail)) return false;
  return base_->Rename(from, to);
}

bool FaultyIo::SyncFile(const std::string& path) {
  if (!Applies(path)) return base_->SyncFile(path);
  if (Inject(Fault::kSyncFail, config_.sync_fail)) return false;
  return base_->SyncFile(path);
}

bool FaultyIo::SyncDir(const std::string& path) {
  if (!Applies(path)) return base_->SyncDir(path);
  if (Inject(Fault::kSyncFail, config_.sync_fail)) return false;
  return base_->SyncDir(path);
}

std::optional<std::uint64_t> FaultyIo::FileSize(const std::string& path) {
  if (!Applies(path)) return base_->FileSize(path);
  if (Inject(Fault::kStatFail, config_.stat_fail)) return std::nullopt;
  return base_->FileSize(path);
}

bool FaultyIo::Remove(const std::string& path) {
  if (!Applies(path)) return base_->Remove(path);
  if (Inject(Fault::kRemoveFail, config_.remove_fail)) return false;
  return base_->Remove(path);
}

}  // namespace astra::io
