#include "util/binio.hpp"

#include <array>
#include <bit>

namespace astra::binio {

namespace {

template <typename T>
void PutLe(std::string& out, T v) {
  std::array<char, sizeof(T)> bytes;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out.append(bytes.data(), bytes.size());
}

template <typename T>
T GetLe(std::string_view data, std::size_t pos) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<unsigned char>(data[pos + i])) << (8 * i);
  }
  return v;
}

}  // namespace

void Writer::PutU8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
void Writer::PutU32(std::uint32_t v) { PutLe(out_, v); }
void Writer::PutU64(std::uint64_t v) { PutLe(out_, v); }
void Writer::PutI32(std::int32_t v) { PutLe(out_, static_cast<std::uint32_t>(v)); }
void Writer::PutI64(std::int64_t v) { PutLe(out_, static_cast<std::uint64_t>(v)); }

void Writer::PutDouble(double v) { PutU64(std::bit_cast<std::uint64_t>(v)); }

void Writer::PutString(std::string_view s) {
  PutU64(s.size());
  out_.append(s.data(), s.size());
}

bool Reader::Take(std::size_t n) noexcept {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::GetU8() {
  if (!Take(1)) return 0;
  return static_cast<std::uint8_t>(static_cast<unsigned char>(data_[pos_++]));
}

std::uint32_t Reader::GetU32() {
  if (!Take(4)) return 0;
  const auto v = GetLe<std::uint32_t>(data_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::GetU64() {
  if (!Take(8)) return 0;
  const auto v = GetLe<std::uint64_t>(data_, pos_);
  pos_ += 8;
  return v;
}

std::int32_t Reader::GetI32() { return static_cast<std::int32_t>(GetU32()); }
std::int64_t Reader::GetI64() { return static_cast<std::int64_t>(GetU64()); }

double Reader::GetDouble() { return std::bit_cast<double>(GetU64()); }

bool Reader::GetString(std::string& out) {
  const std::uint64_t len = GetU64();
  if (!ok_ || len > Remaining()) {
    ok_ = false;
    return false;
  }
  out.assign(data_.data() + pos_, static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return true;
}

bool Reader::CanReadItems(std::uint64_t count, std::size_t min_bytes_each) {
  // Division avoids count * min_bytes_each overflow on hostile counts.
  if (!ok_ || min_bytes_each == 0 || count > Remaining() / min_bytes_each) {
    ok_ = false;
    return false;
  }
  return true;
}

namespace {

constexpr std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = MakeCrcTable();

}  // namespace

std::uint32_t Crc32(std::string_view bytes) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = kCrcTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace astra::binio
