#include "util/sim_time.hpp"

#include <charconv>
#include <cstdio>

namespace astra {
namespace {

// Floor-division helpers so pre-1970 timestamps (not used in practice, but
// valid inputs) convert correctly.
constexpr std::int64_t FloorDiv(std::int64_t a, std::int64_t b) noexcept {
  return (a >= 0) ? a / b : -((-a + b - 1) / b);
}
constexpr std::int64_t FloorMod(std::int64_t a, std::int64_t b) noexcept {
  return a - FloorDiv(a, b) * b;
}

bool ParseInt(std::string_view text, int& out) noexcept {
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

// Two decimal digits at `p` -> value.  a|b <= 9 iff both digits are valid
// (either being > 9 forces the OR above 9), so the pair validates in one
// compare.
bool TwoDigits(const char* p, int& out) noexcept {
  const unsigned a = static_cast<unsigned char>(p[0]) - static_cast<unsigned>('0');
  const unsigned b = static_cast<unsigned char>(p[1]) - static_cast<unsigned>('0');
  if ((a | b) > 9) return false;
  out = static_cast<int>(a * 10 + b);
  return true;
}

}  // namespace

CivilDateTime SimTime::ToCivil() const noexcept {
  const std::int64_t days = FloorDiv(seconds_, kSecondsPerDay);
  const std::int64_t secs_of_day = FloorMod(seconds_, kSecondsPerDay);
  CivilDateTime out;
  out.date = CivilFromDays(days);
  out.hour = static_cast<int>(secs_of_day / kSecondsPerHour);
  out.minute = static_cast<int>((secs_of_day % kSecondsPerHour) / kSecondsPerMinute);
  out.second = static_cast<int>(secs_of_day % kSecondsPerMinute);
  return out;
}

std::string SimTime::ToString() const {
  const CivilDateTime c = ToCivil();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d", c.date.year,
                c.date.month, c.date.day, c.hour, c.minute, c.second);
  return buf;
}

std::string SimTime::ToDateString() const {
  const CivilDateTime c = ToCivil();
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", c.date.year, c.date.month,
                c.date.day);
  return buf;
}

bool SimTime::Parse(std::string_view text, SimTime& out) noexcept {
  // Accepted forms: "YYYY-MM-DD", "YYYY-MM-DD HH:MM", "YYYY-MM-DD HH:MM:SS".
  if (text.size() < 10) return false;
  // Fast path for the canonical full form every dataset timestamp uses:
  // strictly digits in every numeric position.  Oddly-shaped-but-accepted
  // inputs (from_chars quirks like a signed minutes field) fall through to
  // the general parser below so the accepted language is unchanged.
  if (text.size() == 19) {
    const char* p = text.data();
    const unsigned y0 = static_cast<unsigned char>(p[0]) - '0';
    const unsigned y1 = static_cast<unsigned char>(p[1]) - '0';
    const unsigned y2 = static_cast<unsigned char>(p[2]) - '0';
    const unsigned y3 = static_cast<unsigned char>(p[3]) - '0';
    int mo2 = 0, d2 = 0, h2 = 0, mi2 = 0, s2 = 0;
    if ((y0 | y1 | y2 | y3) <= 9 && p[4] == '-' && p[7] == '-' &&
        (p[10] == ' ' || p[10] == 'T') && p[13] == ':' && p[16] == ':' &&
        TwoDigits(p + 5, mo2) && TwoDigits(p + 8, d2) && TwoDigits(p + 11, h2) &&
        TwoDigits(p + 14, mi2) && TwoDigits(p + 17, s2)) {
      if (mo2 < 1 || mo2 > 12 || d2 < 1 || d2 > 31 || h2 > 23 || mi2 > 59 ||
          s2 > 59) {
        return false;
      }
      out = SimTime::FromCivil(static_cast<int>(y0 * 1000 + y1 * 100 + y2 * 10 + y3),
                               mo2, d2, h2, mi2, s2);
      return true;
    }
  }
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
  if (text[4] != '-' || text[7] != '-') return false;
  if (!ParseInt(text.substr(0, 4), y) || !ParseInt(text.substr(5, 2), mo) ||
      !ParseInt(text.substr(8, 2), d)) {
    return false;
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31) return false;
  if (text.size() > 10) {
    if (text.size() < 16 || (text[10] != ' ' && text[10] != 'T') || text[13] != ':') {
      return false;
    }
    if (!ParseInt(text.substr(11, 2), h) || !ParseInt(text.substr(14, 2), mi)) {
      return false;
    }
    if (text.size() > 16) {
      if (text.size() != 19 || text[16] != ':') return false;
      if (!ParseInt(text.substr(17, 2), s)) return false;
    }
    if (h > 23 || mi > 59 || s > 59) return false;
  }
  out = SimTime::FromCivil(y, mo, d, h, mi, s);
  return true;
}

int CalendarMonthIndex(SimTime origin, SimTime t) noexcept {
  return static_cast<int>(AbsoluteCalendarMonth(t) - AbsoluteCalendarMonth(origin));
}

std::int64_t AbsoluteCalendarMonth(SimTime t) noexcept {
  const CivilDateTime c = t.ToCivil();
  return static_cast<std::int64_t>(c.date.year) * 12 + (c.date.month - 1);
}

void CalendarMonthCache::Refill(std::int64_t seconds) noexcept {
  const SimTime t{seconds};
  const CivilDateTime c = t.ToCivil();
  month_ = static_cast<std::int64_t>(c.date.year) * 12 + (c.date.month - 1);
  month_begin_ =
      SimTime::FromCivil(c.date.year, c.date.month, 1).Seconds();
  const int next_year = c.date.month == 12 ? c.date.year + 1 : c.date.year;
  const int next_month = c.date.month == 12 ? 1 : c.date.month + 1;
  month_end_ = SimTime::FromCivil(next_year, next_month, 1).Seconds();
}

}  // namespace astra
