// Bounded binary (de)serialization primitives for the streaming subsystem's
// checkpoints.  Fixed-width little-endian encoding, length-prefixed strings,
// and a CRC32 over the payload bytes.
//
// The Reader is designed for hostile input (a checkpoint file that was
// truncated, bit-flipped, or hand-crafted): every accessor bounds-checks
// before touching the buffer and flips a sticky failure flag instead of
// reading past the end, and count fields must pass CanReadItems() before the
// caller allocates for them — a corrupt 64-bit count can never trigger a
// multi-gigabyte reserve.  Callers check Ok() once at the end of a decode.
//
// Checkpoints are same-machine resume artifacts, not an interchange format:
// the encoding is byte-order-stable but the surrounding state (e.g. dedup
// hashes computed with std::hash) is only meaningful within one build.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace astra::binio {

class Writer {
 public:
  explicit Writer(std::string& out) : out_(out) {}

  void PutU8(std::uint8_t v);
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutI32(std::int32_t v);
  void PutI64(std::int64_t v);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutDouble(double v);
  // 64-bit length prefix followed by the raw bytes.
  void PutString(std::string_view s);

 private:
  std::string& out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  // False once any accessor ran past the end of the buffer.  Accessors keep
  // returning zero values after a failure, so a decode can run to completion
  // and check once.
  [[nodiscard]] bool Ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t Remaining() const noexcept {
    return data_.size() - pos_;
  }
  // True when the whole buffer was consumed exactly (trailing garbage in a
  // checkpoint payload is as suspicious as a short read).
  [[nodiscard]] bool AtEnd() const noexcept { return ok_ && pos_ == data_.size(); }

  [[nodiscard]] std::uint8_t GetU8();
  [[nodiscard]] std::uint32_t GetU32();
  [[nodiscard]] std::uint64_t GetU64();
  [[nodiscard]] std::int32_t GetI32();
  [[nodiscard]] std::int64_t GetI64();
  [[nodiscard]] bool GetBool() { return GetU8() != 0; }
  [[nodiscard]] double GetDouble();
  // False (and failure flagged) when the prefixed length exceeds Remaining().
  [[nodiscard]] bool GetString(std::string& out);

  // Pre-allocation guard for a decoded element count: true only when `count`
  // items of at least `min_bytes_each` could still fit in the buffer.  Flags
  // failure when they cannot, so a corrupt count poisons the whole decode.
  [[nodiscard]] bool CanReadItems(std::uint64_t count, std::size_t min_bytes_each);

 private:
  [[nodiscard]] bool Take(std::size_t n) noexcept;

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// CRC-32 (IEEE 802.3 polynomial, reflected) — the checksum guarding
// checkpoint payloads against torn writes and bit rot.
[[nodiscard]] std::uint32_t Crc32(std::string_view bytes) noexcept;

}  // namespace astra::binio
