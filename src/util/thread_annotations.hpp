// Lock-discipline annotations, harvested by astra-lint (src/lint).
//
// Every macro expands to nothing: the annotations cost zero at compile time
// and runtime, and carry no compiler dependency (no -Wthread-safety, no
// clang attribute headers).  Their value is that `astra_lint` lexes the
// repo's sources and enforces them tree-wide:
//
//   ASTRA_GUARDED_BY(mu)  on a data member: every access must happen inside
//                         a lexical RAII region of `mu` (lock_guard /
//                         scoped_lock / unique_lock), or inside a function
//                         annotated ASTRA_REQUIRES(mu).
//                         -> rule `lock-guarded-field`
//   ASTRA_REQUIRES(mu)    on a function: callers hold `mu`; the body counts
//                         as a region of `mu`.  Write it on the definition —
//                         the linter reads the token stream, not the call
//                         graph (it is harmless on declarations too).
//   ASTRA_EXCLUDES(mu)    on a function: it must NOT be entered with `mu`
//                         held (it blocks, or re-locks `mu` itself).  A call
//                         inside an open region of `mu` is a diagnostic.
//                         -> rule `lock-blocking-call`
//   ASTRA_BLOCKING        on a function: it can block indefinitely (file
//                         I/O, HTTP, retry/backoff loops).  A call inside
//                         ANY open lock region is a diagnostic.
//                         -> rule `lock-blocking-call`
//
// Placement mirrors clang's thread-safety attributes: after the declarator,
// before the initializer or `;`/`{`:
//
//   std::deque<Entry> ring_ ASTRA_GUARDED_BY(mutex_);
//   std::uint64_t published_ ASTRA_GUARDED_BY(mutex_) = 0;
//   void DeliverWebhooks(const std::vector<Entry>&) ASTRA_EXCLUDES(mutex_);
//   [[nodiscard]] bool RetryWithBackoff(...) ASTRA_BLOCKING;
//
// Mutex arguments are matched by their final identifier (`slot.mutex` and
// `mutex` name the same lock), so annotations in a header line up with
// `std::lock_guard<std::mutex> lock(slot.mutex)` in the paired .cpp.
#pragma once

#define ASTRA_GUARDED_BY(mu)
#define ASTRA_REQUIRES(mu)
#define ASTRA_EXCLUDES(mu)
#define ASTRA_BLOCKING
