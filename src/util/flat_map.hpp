// FlatCountMap: open-addressing counter map for the analysis hot path.
//
// The coalescer and positional accumulators bump one counter per key per
// record (address -> errors, column -> errors, bit -> errors).  Node-based
// maps pay a heap allocation for every new key and a pointer chase per
// lookup; this table keeps its slots in one contiguous power-of-two array
// (linear probing, ~0.7 max load), so the per-record increment is a hash,
// a probe over adjacent slots, and an add.
//
// ITERATION ORDER IS UNSPECIFIED (it follows the probe layout).  Callers on
// the determinism-sensitive paths must traverse via sorted keys exactly as
// they would for std::unordered_map — SortedItems() packages that idiom.
// Equality is order-insensitive set equality, so accumulators built in
// different shard orders still compare equal.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace astra {

template <typename Key>
class FlatCountMap {
 public:
  using key_type = Key;  // enables the generic SortedKeys idiom
  using Item = std::pair<Key, std::uint64_t>;

  FlatCountMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() noexcept {
    slots_.clear();
    size_ = 0;
  }

  // Pre-size for `expected` distinct keys (Restore knows the count up front).
  void Reserve(std::size_t expected) {
    std::size_t capacity = kMinCapacity;
    while (capacity * kMaxLoadNum < expected * kMaxLoadDen) capacity <<= 1;
    if (capacity > slots_.size()) Rehash(capacity);
  }

  // Insert-or-find; the reference stays valid until the next insertion.
  [[nodiscard]] std::uint64_t& operator[](Key key) {
    if ((size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      Rehash(std::max<std::size_t>(slots_.size() * 2, kMinCapacity));
    }
    Slot& slot = *FindSlot(slots_, key);
    if (!slot.used) {
      slot.used = true;
      slot.item = Item{key, 0};
      ++size_;
    }
    return slot.item.second;
  }

  // Lookup; nullptr when absent.
  [[nodiscard]] const std::uint64_t* Find(Key key) const noexcept {
    if (slots_.empty()) return nullptr;
    const Slot& slot = *FindSlot(slots_, key);
    return slot.used ? &slot.item.second : nullptr;
  }

  // Count for a key that must be present (the Snapshot sorted-key walk).
  [[nodiscard]] std::uint64_t at(Key key) const noexcept {
    const std::uint64_t* count = Find(key);
    assert(count != nullptr);
    return count == nullptr ? 0 : *count;
  }

  // The determinism idiom in one call: every (key, count) pair in ascending
  // key order, for serialization and order-sensitive reductions.
  [[nodiscard]] std::vector<Item> SortedItems() const {
    std::vector<Item> items;
    items.reserve(size_);
    for (const Slot& slot : slots_) {
      if (slot.used) items.push_back(slot.item);
    }
    std::sort(items.begin(), items.end());
    return items;
  }

  // Unordered traversal (yields pair<Key, count>); see the header comment.
  class const_iterator {
   public:
    const_iterator(const FlatCountMap* map, std::size_t index) noexcept
        : map_(map), index_(index) {
      SkipFree();
    }
    [[nodiscard]] const Item& operator*() const noexcept {
      return map_->slots_[index_].item;
    }
    const_iterator& operator++() noexcept {
      ++index_;
      SkipFree();
      return *this;
    }
    [[nodiscard]] bool operator!=(const const_iterator& other) const noexcept {
      return index_ != other.index_;
    }

   private:
    void SkipFree() noexcept {
      while (index_ < map_->slots_.size() && !map_->slots_[index_].used) ++index_;
    }
    const FlatCountMap* map_;
    std::size_t index_;
  };

  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator{this, 0};
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator{this, slots_.size()};
  }

  // Order-insensitive set equality (same keys, same counts).
  [[nodiscard]] friend bool operator==(const FlatCountMap& a, const FlatCountMap& b) {
    if (a.size_ != b.size_) return false;
    for (const Slot& slot : a.slots_) {
      if (!slot.used) continue;
      const std::uint64_t* count = b.Find(slot.item.first);
      if (count == nullptr || *count != slot.item.second) return false;
    }
    return true;
  }

 private:
  struct Slot {
    Item item{};
    bool used = false;
  };

  static constexpr std::size_t kMinCapacity = 16;
  // Max load factor kMaxLoadNum / kMaxLoadDen (0.7).
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 10;

  // splitmix64 finalizer: sequential keys (physical addresses, columns)
  // spread over the table instead of clustering one probe run.
  [[nodiscard]] static std::uint64_t Mix(Key key) noexcept {
    auto x = static_cast<std::uint64_t>(key);
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  // First slot holding `key` or the first free slot of its probe run.
  // Templated on the slot vector so the const and mutating paths share it.
  template <typename Slots>
  [[nodiscard]] static auto* FindSlot(Slots& slots, Key key) noexcept {
    const std::size_t mask = slots.size() - 1;
    std::size_t index = static_cast<std::size_t>(Mix(key)) & mask;
    while (slots[index].used && slots[index].item.first != key) {
      index = (index + 1) & mask;
    }
    return &slots[index];
  }

  void Rehash(std::size_t capacity) {
    std::vector<Slot> next(capacity);
    for (Slot& slot : slots_) {
      if (slot.used) *FindSlot(next, slot.item.first) = std::move(slot);
    }
    slots_ = std::move(next);
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace astra
