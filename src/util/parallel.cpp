#include "util/parallel.hpp"

#include <algorithm>

namespace astra {

ThreadPool::ThreadPool(unsigned thread_count) {
  if (thread_count == 0) thread_count = 1;
  workers_.reserve(thread_count);
  for (unsigned i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

std::vector<std::pair<std::size_t, std::size_t>> SplitIndexRanges(
    std::size_t count, std::size_t shard_count) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  if (count == 0 || shard_count == 0) return ranges;
  shard_count = std::min(shard_count, count);
  const std::size_t base = count / shard_count;
  const std::size_t extra = count % shard_count;
  ranges.reserve(shard_count);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t end = begin + base + (s < extra ? 1 : 0);
    ranges.emplace_back(begin, end);
    begin = end;
  }
  return ranges;
}

void ParallelShards(std::size_t count, std::size_t shard_count,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& fn) {
  if (count == 0) return;
  shard_count = std::min(shard_count, count);
  if (shard_count <= 1) {
    fn(0, 0, count);
    return;
  }

  const std::size_t base = count / shard_count;
  const std::size_t extra = count % shard_count;
  const auto submit_all = [&](ThreadPool& pool) {
    std::size_t begin = 0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      const std::size_t end = begin + base + (s < extra ? 1 : 0);
      pool.Submit([&fn, s, begin, end] { fn(s, begin, end); });
      begin = end;
    }
    pool.Wait();
  };

  ThreadPool& shared = ThreadPool::Shared();
  if (shared.ThreadCount() >= shard_count) {
    submit_all(shared);
  } else {
    // The caller asked for more concurrency than the shared pool provides
    // (small machine, explicit --threads): honour it with a dedicated pool.
    ThreadPool dedicated(static_cast<unsigned>(shard_count));
    submit_all(dedicated);
  }
}

void ParallelForRanges(std::size_t count,
                       const std::function<void(std::size_t, std::size_t)>& fn,
                       unsigned max_threads) {
  if (count == 0) return;
  ThreadPool& pool = ThreadPool::Shared();
  unsigned threads = pool.ThreadCount();
  if (max_threads != 0) threads = std::min(threads, max_threads);

  // Below this size, chunking overhead dominates; run inline.
  constexpr std::size_t kSerialThreshold = 256;
  if (threads <= 1 || count <= kSerialThreshold) {
    fn(0, count);
    return;
  }

  const std::size_t chunks = std::min<std::size_t>(threads, count);
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t size = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + size;
    pool.Submit([&fn, begin, end] { fn(begin, end); });
    begin = end;
  }
  pool.Wait();
}

}  // namespace astra
