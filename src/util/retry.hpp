// Bounded exponential backoff with deterministic jitter.
//
// Every transient-fault recovery path in the toolkit (tail-reader re-maps,
// checkpoint writes, the watch CLI's missing-file probe) shares this one
// policy shape, so "how hard do we try before declaring an environment
// fault fatal" is a single tunable contract instead of N ad-hoc loops.
//
// Determinism: the jitter factor for attempt N is a pure function of
// (policy.seed, N) — no wall clock, no global RNG — so a chaos test that
// replays the same seed observes the same delay schedule, and two processes
// with different seeds do not retry in lockstep against the same sick disk.
// Sleeping itself is injected (SleepFn): production passes ThreadSleeper(),
// tests pass a collector and run the whole schedule in microseconds.
#pragma once

#include <cstdint>
#include <functional>

#include "util/thread_annotations.hpp"

namespace astra {

struct RetryPolicy {
  // Total attempts including the first one; 1 = no retry.
  int max_attempts = 5;
  std::int64_t base_delay_ms = 10;
  std::int64_t max_delay_ms = 2000;
  // Multiplicative jitter: the nominal delay is scaled by a deterministic
  // factor in [1 - jitter, 1 + jitter].
  double jitter = 0.5;
  std::uint64_t seed = 0x5eedba5eba11ULL;

  // Single-attempt policy: the call-it-once, fail-fast behaviour.
  [[nodiscard]] static RetryPolicy None() noexcept {
    RetryPolicy policy;
    policy.max_attempts = 1;
    return policy;
  }
};

// Delay to sleep after failed attempt `attempt` (1-based): base * 2^(attempt-1),
// clamped to max_delay_ms, scaled by the deterministic jitter factor.
[[nodiscard]] std::int64_t BackoffDelayMs(const RetryPolicy& policy,
                                          int attempt) noexcept;

// Sleeping is a side effect the retry loop injects, never performs directly.
using SleepFn = std::function<void(std::int64_t delay_ms)>;

// Real sleeper: std::this_thread::sleep_for.
[[nodiscard]] SleepFn ThreadSleeper();

// Run `op` until it returns true or the attempt budget is spent.  Returns
// whether `op` eventually succeeded.  A null `sleep` skips the delays
// (immediate retries) — right for in-process fault absorption where the
// caller's own poll loop provides pacing.  ASTRA_BLOCKING: the loop can
// sleep for the whole backoff schedule — never run it under a lock.
[[nodiscard]] bool RetryWithBackoff(const RetryPolicy& policy,
                                    const std::function<bool()>& op,
                                    const SleepFn& sleep = {}) ASTRA_BLOCKING;

}  // namespace astra
