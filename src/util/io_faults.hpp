// The I/O seam: every file operation the pipeline performs — open, read,
// mmap, write, rename, fsync, stat, remove — routes through the process-wide
// io::Io instance, so the operating system becomes an injectable dependency.
//
// Production runs on the passthrough RealIo singleton and pays one virtual
// call per *file operation* (not per record — the hot path still iterates a
// zero-copy MappedFile view).  Chaos tests install a FaultyIo decorator via
// ScopedIo and the whole pipeline — batch ingest, tail-follow, checkpoint
// save/restore — runs against seeded, deterministic environmental failure:
// transient EIO on open, refused mmap, short reads, ENOSPC-torn writes,
// failed renames and fsyncs.
//
// Fault taxonomy (DESIGN.md "Failure model & recovery"):
//   retryable  — transient by construction: FaultyIo bounds consecutive
//                injections per fault kind, so any retry loop with more
//                attempts than `max_consecutive` provably recovers and the
//                final report is byte-identical to the clean run;
//   degradable — a stream that stays unreadable is reported missing with
//                DataQuality caveats, exactly like an absent file;
//   fatal      — persistent faults (max_consecutive <= 0) exhaust the retry
//                budget and surface as a status the CLI maps to a documented
//                nonzero exit code.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "util/mapped_file.hpp"
#include "util/thread_annotations.hpp"

namespace astra::io {

// The operations the pipeline performs, as fault-injection sites.
enum class Fault : int {
  kOpenFail,    // open(2) fails: ENOENT/EACCES/transient EIO
  kReadFail,    // read started, then EIO
  kShortRead,   // read delivers a strict prefix (torn transfer)
  kMapFail,     // mmap(2) refused
  kWriteFail,   // open-for-write refused (EROFS, permissions)
  kTornWrite,   // ENOSPC mid-write: a prefix lands on disk, the call fails
  kRenameFail,  // rename(2) fails, source left in place
  kSyncFail,    // fsync(2) on a file or directory fails
  kStatFail,    // stat(2) fails
  kRemoveFail,  // unlink(2) fails
};
inline constexpr int kFaultKindCount = 10;
[[nodiscard]] std::string_view FaultName(Fault fault) noexcept;

// The seam.  The base class IS the passthrough implementation; decorators
// override and delegate.  All methods are [[nodiscard]]: every status is an
// error channel (astra-lint err-ignored-status enforces call sites).
class Io {
 public:
  virtual ~Io() = default;

  // Every seam method is ASTRA_BLOCKING: each one is a real syscall (and
  // under FaultyIo possibly a retried one) — never call them with a lock
  // held that a poll or query path contends on.

  // Whole file as bytes; nullopt when it cannot be opened or read.
  [[nodiscard]] virtual std::optional<std::string> ReadFile(
      const std::string& path) ASTRA_BLOCKING;
  // Zero-copy view of the file (mmap with owned-buffer fallback).  Note that
  // a real mmap never delivers a short view — the map covers the inode — so
  // short-read faults apply to ReadFile only.
  [[nodiscard]] virtual std::optional<MappedFile> MapFile(
      const std::string& path) ASTRA_BLOCKING;
  // Create/truncate and write all bytes; false on any failure.  A failure
  // may leave a torn prefix on disk — callers owning durability must write
  // to a sidecar and Rename (see stream/checkpoint.cpp).
  [[nodiscard]] virtual bool WriteFile(const std::string& path,
                                       std::string_view bytes) ASTRA_BLOCKING;
  [[nodiscard]] virtual bool Rename(const std::string& from,
                                    const std::string& to) ASTRA_BLOCKING;
  // fsync the file's bytes to stable storage.
  [[nodiscard]] virtual bool SyncFile(const std::string& path) ASTRA_BLOCKING;
  // fsync a directory, making completed renames inside it durable.
  [[nodiscard]] virtual bool SyncDir(const std::string& path) ASTRA_BLOCKING;
  [[nodiscard]] virtual std::optional<std::uint64_t> FileSize(
      const std::string& path) ASTRA_BLOCKING;
  // Remove the file; true when it is gone afterwards (including "never
  // existed"), false only when removal failed.
  [[nodiscard]] virtual bool Remove(const std::string& path) ASTRA_BLOCKING;
};

// The process-wide instance (RealIo unless a ScopedIo installed an override).
[[nodiscard]] Io& Current() noexcept;
// The passthrough singleton, for decorators that need an explicit base.
[[nodiscard]] Io& DefaultIo() noexcept;

// RAII install of an Io override; restores the previous one on destruction.
// Install before spawning worker threads — the pointer swap is atomic but
// the installed object's lifetime is the caller's problem.
class ScopedIo {
 public:
  explicit ScopedIo(Io& io) noexcept;
  ~ScopedIo();
  ScopedIo(const ScopedIo&) = delete;
  ScopedIo& operator=(const ScopedIo&) = delete;

 private:
  Io* previous_;
};

// Seeded fault plan.  Each knob is the per-operation injection probability
// for one fault kind; decisions are keyed by (seed, kind, draw index) so a
// run is reproducible regardless of interleaving with other fault kinds.
struct FaultConfig {
  std::uint64_t seed = 1;
  double open_fail = 0.0;
  double read_fail = 0.0;
  double read_short = 0.0;
  double map_fail = 0.0;
  double write_fail = 0.0;
  double write_torn = 0.0;
  double rename_fail = 0.0;
  double sync_fail = 0.0;
  double stat_fail = 0.0;
  double remove_fail = 0.0;

  // Transience bound: at most this many CONSECUTIVE injections per fault
  // kind; the next decision is a forced success.  <= 0 means persistent
  // (never forced to succeed) — the fatal-path configuration.
  int max_consecutive = 2;

  // When non-empty, faults apply only to paths containing this substring;
  // everything else passes through untouched.  This is how a test makes one
  // stream sick (degradable-path coverage) while the rest of the dataset
  // stays healthy.
  std::string path_filter;

  void SetAll(double p) noexcept {
    open_fail = read_fail = read_short = map_fail = write_fail = write_torn =
        rename_fail = sync_fail = stat_fail = remove_fail = p;
  }
};

struct FaultStats {
  std::array<std::uint64_t, kFaultKindCount> injected{};
  [[nodiscard]] std::uint64_t Count(Fault fault) const noexcept {
    return injected[static_cast<std::size_t>(fault)];
  }
  [[nodiscard]] std::uint64_t Total() const noexcept {
    std::uint64_t total = 0;
    for (const auto n : injected) total += n;
    return total;
  }
};

// Decorator injecting seeded failures in front of `base` (DefaultIo() when
// null).  Thread-safe: decision state is mutex-guarded.
class FaultyIo : public Io {
 public:
  explicit FaultyIo(const FaultConfig& config, Io* base = nullptr);

  [[nodiscard]] std::optional<std::string> ReadFile(
      const std::string& path) override;
  [[nodiscard]] std::optional<MappedFile> MapFile(
      const std::string& path) override;
  [[nodiscard]] bool WriteFile(const std::string& path,
                               std::string_view bytes) override;
  [[nodiscard]] bool Rename(const std::string& from,
                            const std::string& to) override;
  [[nodiscard]] bool SyncFile(const std::string& path) override;
  [[nodiscard]] bool SyncDir(const std::string& path) override;
  [[nodiscard]] std::optional<std::uint64_t> FileSize(
      const std::string& path) override;
  [[nodiscard]] bool Remove(const std::string& path) override;

  [[nodiscard]] FaultStats Stats() const;

 private:
  [[nodiscard]] bool Applies(const std::string& path) const noexcept;
  // One seeded decision for `fault`; bounded by max_consecutive.
  [[nodiscard]] bool Inject(Fault fault, double probability);
  // Deterministic fraction in [0, 1) for sizing short reads / torn writes.
  [[nodiscard]] double Fraction(Fault fault);

  FaultConfig config_;
  Io* base_;
  mutable std::mutex mutex_;
  FaultStats stats_ ASTRA_GUARDED_BY(mutex_);
  std::array<std::uint64_t, kFaultKindCount> draws_ ASTRA_GUARDED_BY(mutex_){};
  std::array<int, kFaultKindCount> consecutive_ ASTRA_GUARDED_BY(mutex_){};
};

}  // namespace astra::io
