#include "util/file_io.hpp"

#include <fstream>

namespace astra {
namespace {

void StripCarriageReturn(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

std::optional<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    StripCarriageReturn(line);
    lines.push_back(line);
  }
  return lines;
}

std::optional<std::size_t> ForEachLine(
    const std::string& path, const std::function<bool(std::string_view)>& fn) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::size_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    StripCarriageReturn(line);
    ++count;
    if (!fn(line)) break;
  }
  return count;
}

bool WriteLines(const std::string& path, const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return false;
  for (const auto& line : lines) out << line << '\n';
  return static_cast<bool>(out);
}

std::optional<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

bool WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace astra
