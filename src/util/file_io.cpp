#include "util/file_io.hpp"

#include "util/io_faults.hpp"
#include "util/mapped_file.hpp"

namespace astra {

std::optional<std::vector<std::string>> ReadLines(const std::string& path) {
  const auto file = io::Current().MapFile(path);
  if (!file) return std::nullopt;
  std::vector<std::string> lines;
  ForEachLineInView(file->Bytes(), [&lines](std::string_view line) {
    lines.emplace_back(line);
    return true;
  });
  return lines;
}

std::optional<std::size_t> ForEachLine(
    const std::string& path, const std::function<bool(std::string_view)>& fn) {
  // The lines are zero-copy views into the mapped file; getline semantics
  // (trailing '\r' stripped, unterminated final line visited) are preserved.
  const auto file = io::Current().MapFile(path);
  if (!file) return std::nullopt;
  return ForEachLineInView(file->Bytes(), fn);
}

bool WriteLines(const std::string& path, const std::vector<std::string>& lines) {
  std::string bytes;
  std::size_t total = 0;
  for (const auto& line : lines) total += line.size() + 1;
  bytes.reserve(total);
  for (const auto& line : lines) {
    bytes += line;
    bytes += '\n';
  }
  return io::Current().WriteFile(path, bytes);
}

std::optional<std::string> ReadFileBytes(const std::string& path) {
  return io::Current().ReadFile(path);
}

bool WriteFileBytes(const std::string& path, std::string_view bytes) {
  return io::Current().WriteFile(path, bytes);
}

}  // namespace astra
