#include "util/file_io.hpp"

#include <fstream>

#include "util/mapped_file.hpp"

namespace astra {

std::optional<std::vector<std::string>> ReadLines(const std::string& path) {
  const auto file = MappedFile::Open(path);
  if (!file) return std::nullopt;
  std::vector<std::string> lines;
  ForEachLineInView(file->Bytes(), [&lines](std::string_view line) {
    lines.emplace_back(line);
    return true;
  });
  return lines;
}

std::optional<std::size_t> ForEachLine(
    const std::string& path, const std::function<bool(std::string_view)>& fn) {
  // The lines are zero-copy views into the mapped file; getline semantics
  // (trailing '\r' stripped, unterminated final line visited) are preserved.
  const auto file = MappedFile::Open(path);
  if (!file) return std::nullopt;
  return ForEachLineInView(file->Bytes(), fn);
}

bool WriteLines(const std::string& path, const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return false;
  for (const auto& line : lines) out << line << '\n';
  return static_cast<bool>(out);
}

std::optional<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

bool WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace astra
