// Deterministic random number generation for reproducible fleet simulation.
//
// Every stochastic component in the toolkit draws from an Rng that is derived
// from a campaign-level seed plus a stable stream key (node id, component id,
// purpose tag).  This gives two properties the simulator relies on:
//
//  1. Reproducibility: the same campaign seed always produces byte-identical
//     logs, regardless of thread scheduling, because streams are keyed by
//     *identity*, not by draw order.
//  2. Independence: distinct stream keys yield statistically independent
//     sequences (splitmix64 is used as the key-mixing function, which is a
//     strong 64-bit finalizer).
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via splitmix64.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace astra {

// splitmix64 finalizer step; also usable as a standalone 64-bit hash/mixer.
[[nodiscard]] constexpr std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Mix an arbitrary list of 64-bit words into a single well-distributed seed.
// Used to derive per-entity stream seeds from (campaign_seed, keys...).
[[nodiscard]] constexpr std::uint64_t MixSeed(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  return SplitMix64(s);
}

template <typename... Rest>
[[nodiscard]] constexpr std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t key,
                                              Rest... rest) noexcept {
  std::uint64_t s = seed ^ (key + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
  std::uint64_t mixed = SplitMix64(s);
  if constexpr (sizeof...(rest) == 0) {
    return mixed;
  } else {
    return MixSeed(mixed, static_cast<std::uint64_t>(rest)...);
  }
}

// xoshiro256** 1.0 — fast, high-quality, 256-bit state general purpose PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the 256-bit state by iterating splitmix64, per the reference
  // implementation's recommendation.  A zero seed is remapped internally
  // (all-zero state is the one invalid state for xoshiro).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { Reseed(seed); }

  void Reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  // Derive an independent child generator keyed by `keys...`.  The child's
  // stream depends only on this generator's original seed lineage and the
  // keys, never on how many draws the parent has made since construction is
  // from a fresh mix of the current state snapshot -- so prefer deriving all
  // children up front from a pristine parent.
  template <typename... Keys>
  [[nodiscard]] Rng Fork(Keys... keys) const noexcept {
    return Rng(MixSeed(state_[0] ^ state_[3], static_cast<std::uint64_t>(keys)...));
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // --- Primitive distributions -------------------------------------------
  // All samplers are implemented locally (not via <random> distributions) so
  // that output is identical across standard library implementations.

  // Uniform double in [0, 1).  53-bit resolution.
  [[nodiscard]] double UniformDouble() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  [[nodiscard]] double Uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * UniformDouble();
  }

  // Uniform integer in [0, bound) with Lemire's rejection method (unbiased).
  [[nodiscard]] std::uint64_t UniformInt(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    UniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  [[nodiscard]] bool Bernoulli(double p) noexcept { return UniformDouble() < p; }

  // Standard normal via Marsaglia polar method (cached spare discarded for
  // determinism simplicity: we regenerate each call).
  [[nodiscard]] double Normal() noexcept;
  [[nodiscard]] double Normal(double mean, double stddev) noexcept {
    return mean + stddev * Normal();
  }

  // Exponential with rate lambda (mean 1/lambda).
  [[nodiscard]] double Exponential(double lambda) noexcept {
    // 1 - U in (0,1] avoids log(0).
    return -std::log(1.0 - UniformDouble()) / lambda;
  }

  // Poisson; inversion for small mean, PTRS-style normal approx fallback for
  // large means (exact enough for simulation workloads with mean > 64).
  [[nodiscard]] std::uint64_t Poisson(double mean) noexcept;

  // Log-normal with parameters of the underlying normal.
  [[nodiscard]] double LogNormal(double mu, double sigma) noexcept {
    return std::exp(Normal(mu, sigma));
  }

  // Weibull(shape k, scale lambda) via inversion.
  [[nodiscard]] double Weibull(double shape, double scale) noexcept {
    return scale * std::pow(-std::log(1.0 - UniformDouble()), 1.0 / shape);
  }

  // Continuous bounded Pareto on [lo, hi] with tail exponent alpha (> 0).
  [[nodiscard]] double BoundedPareto(double alpha, double lo, double hi) noexcept;

  // Discrete power law on {1, 2, ...}: P(k) ∝ k^-alpha, truncated at kmax.
  // Sampled by inverting the continuous approximation then rounding, which is
  // the standard approach from Clauset et al. (2009), App. D.
  [[nodiscard]] std::uint64_t DiscretePowerLaw(double alpha, std::uint64_t kmax) noexcept;

  // Pick an index in [0, weights.size()) proportionally to weights.
  [[nodiscard]] std::size_t WeightedIndex(const double* weights, std::size_t n) noexcept;

 private:
  [[nodiscard]] static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace astra
