#include "faultsim/mitigation.hpp"

#include <array>

namespace astra::faultsim {

MitigationPolicy MitigationPolicy::Astra() { return MitigationPolicy{}; }

MitigationPolicy MitigationPolicy::None() {
  MitigationPolicy policy;
  policy.name = "none";
  policy.retirement.enabled = false;
  policy.scrub.enabled = false;
  policy.replace_after_dues = 0;
  return policy;
}

MitigationPolicy MitigationPolicy::Aggressive() {
  MitigationPolicy policy;
  policy.name = "aggressive";
  policy.retirement.ce_threshold = 64;
  policy.retirement.reaction_seconds = 3600;
  policy.retirement.success_probability = 0.60;
  policy.scrub.interval_hours = 12.0;
  policy.replace_after_dues = 2;
  return policy;
}

std::optional<MitigationPolicy> MitigationPolicyFromName(std::string_view name) {
  if (name == "astra") return MitigationPolicy::Astra();
  if (name == "none") return MitigationPolicy::None();
  if (name == "aggressive") return MitigationPolicy::Aggressive();
  return std::nullopt;
}

std::vector<ErrorEvent> ApplyDimmReplacement(const MitigationPolicy& policy,
                                             std::vector<ErrorEvent> events,
                                             ReplacementActionStats& stats) {
  if (policy.replace_after_dues == 0 || events.empty()) return events;

  // Slot identifies the DIMM within a node (the socket is a function of the
  // slot), so per-slot counters cover the whole module.
  std::array<std::uint32_t, kDimmSlotCount> dues{};
  std::array<bool, kDimmSlotCount> replaced{};

  std::vector<ErrorEvent> survivors;
  survivors.reserve(events.size());
  for (const ErrorEvent& event : events) {
    const auto slot = static_cast<std::size_t>(event.coord.slot);
    if (replaced[slot]) {
      ++stats.suppressed_events;
      continue;
    }
    survivors.push_back(event);
    if (event.IsDue() && ++dues[slot] >= policy.replace_after_dues) {
      replaced[slot] = true;
      ++stats.dimms_replaced;
    }
  }
  return survivors;
}

}  // namespace astra::faultsim
