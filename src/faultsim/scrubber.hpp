// Patrol (background) scrubber model: transient-upset ACCUMULATION is the
// failure mode scrubbing exists to prevent.  A single transient bit flip is
// corrected by SEC-DED on the next read or scrub pass; but if a SECOND flip
// lands in the same 72-bit word before the first is scrubbed out, the word
// holds a double error — uncorrectable under SEC-DED (§2.2/§3.2), while a
// chipkill-class code still corrects it when both flips hit one device.
//
// This module provides the closed-form accumulation-DUE rate as a function
// of scrub interval plus a Monte-Carlo validator that adjudicates the
// accumulated patterns with the REAL codecs, powering the scrub-interval
// ablation bench.  It is deliberately independent of the fleet simulator's
// hard-fault machinery: accumulation DUEs are a separate, much rarer
// channel on a machine of Astra's size, which is why the paper's DUE counts
// are dominated by hard multi-bit faults.
#pragma once

#include <cstdint>

#include "geometry/topology.hpp"
#include "util/rng.hpp"

namespace astra::faultsim {

struct ScrubConfig {
  bool enabled = true;
  double interval_hours = 24.0;  // patrol period (full-memory sweep)
  // Transient single-bit upset rate.  ~25-75 FIT/Mbit is the classic field
  // range for DRAM transients at sea level; default is mid-range.
  double upsets_per_mbit_per_1e9_hours = 50.0;
};

// Per-word transient upset rate (events/hour) for a 72-bit code word.
[[nodiscard]] double WordUpsetRatePerHour(const ScrubConfig& config) noexcept;

// Closed-form expected accumulation-DUE rate for `capacity_gib` of protected
// memory (data capacity; the 12.5% ECC overhead is accounted internally):
// a word DUEs when >= 2 upsets land within one scrub interval.  With
// scrubbing disabled the exposure interval becomes `exposure_hours`.
[[nodiscard]] double ExpectedAccumulationDuesPerDay(const ScrubConfig& config,
                                                    double capacity_gib,
                                                    double exposure_hours) noexcept;

struct AccumulationResult {
  std::uint64_t words_upset = 0;        // words with >= 1 upset
  std::uint64_t words_multi_upset = 0;  // words with >= 2 upsets in one interval
  std::uint64_t secded_dues = 0;        // adjudicated by the SEC-DED codec
  std::uint64_t secded_silent = 0;      // >= 3 flips can miscorrect
  std::uint64_t chipkill_dues = 0;      // adjudicated by the chipkill codec
  std::uint64_t chipkill_corrected_multi = 0;  // multi-bit words chipkill fixed
};

// Monte-Carlo validation: simulate `words` words over `days`, dropping
// upsets at the configured rate, scrubbing on the configured interval, and
// adjudicating every accumulated pattern with the real codecs.  Determinism:
// driven entirely by `rng`.
[[nodiscard]] AccumulationResult SimulateAccumulation(const ScrubConfig& config,
                                                      std::uint64_t words, double days,
                                                      Rng& rng);

}  // namespace astra::faultsim
