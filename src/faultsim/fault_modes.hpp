// DRAM fault-mode taxonomy (§2.1): "single-bit, in which all errors map to a
// single bit; single-word ... single-column ... single-row ... single-bank".
//
// Two taxonomies live here deliberately:
//  - GroundTruthMode: what the injector actually created (the simulator
//    knows the physical defect).
//  - ObservedMode: what a log-driven classifier can conclude from CE
//    records.  On Astra, CE records carry no usable row information (§3.2),
//    so single-row faults are NOT observable as such: their error pattern
//    (one bank, many columns) is indistinguishable from a bank-level defect
//    footprint and lands in kUnattributedRowLike.  Keeping the two
//    taxonomies separate is what lets the tests verify the classifier
//    against ground truth, and is exactly the errors-vs-faults measurement
//    subtlety the paper is about.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace astra::faultsim {

enum class GroundTruthMode : std::uint8_t {
  kSingleBit = 0,   // one stuck/weak cell
  kSingleWord,      // several bits within one 72-bit word
  kSingleColumn,    // a bit line: one column, many rows
  kSingleRow,       // a word line: one row, many columns
  kSingleBank,      // bank-level logic/sense-amp defect: rows and columns vary
};
inline constexpr int kGroundTruthModeCount = 5;

enum class ObservedMode : std::uint8_t {
  kSingleBit = 0,
  kSingleWord,
  kSingleColumn,
  kSingleBank,
  // Pattern spans multiple rows of one bank in a way only row knowledge
  // could disambiguate; Astra's records cannot (§3.2), so the toolkit
  // reports it as its own bucket rather than guessing.
  kUnattributedRowLike,
  // Errors span multiple banks/ranks under one fault key — should not occur
  // for correctable streams on a SEC-DED machine (those manifest as DUEs,
  // §3.2) but the classifier handles hostile input.
  kUnclassified,
};
inline constexpr int kObservedModeCount = 6;

[[nodiscard]] std::string_view GroundTruthModeName(GroundTruthMode mode) noexcept;
[[nodiscard]] std::string_view ObservedModeName(ObservedMode mode) noexcept;
[[nodiscard]] std::optional<ObservedMode> ObservedModeFromName(std::string_view name) noexcept;

// The observation the classifier SHOULD produce for a ground-truth mode when
// row information is unavailable (the Astra condition).
[[nodiscard]] constexpr ObservedMode ExpectedObservation(GroundTruthMode mode,
                                                         bool multi_row_seen) noexcept {
  switch (mode) {
    case GroundTruthMode::kSingleBit: return ObservedMode::kSingleBit;
    case GroundTruthMode::kSingleWord: return ObservedMode::kSingleWord;
    case GroundTruthMode::kSingleColumn: return ObservedMode::kSingleColumn;
    case GroundTruthMode::kSingleRow:
      // With only one error observed the pattern degenerates to single-bit.
      return multi_row_seen ? ObservedMode::kUnattributedRowLike
                            : ObservedMode::kSingleBit;
    case GroundTruthMode::kSingleBank:
      return multi_row_seen ? ObservedMode::kSingleBank : ObservedMode::kSingleBit;
  }
  return ObservedMode::kUnclassified;
}

// Faults whose footprint fits inside one OS page (4 KiB): the cheap targets
// for page retirement (§3.2's "small memory footprint" discussion).
[[nodiscard]] constexpr bool IsSmallFootprint(GroundTruthMode mode) noexcept {
  return mode == GroundTruthMode::kSingleBit || mode == GroundTruthMode::kSingleWord;
}

}  // namespace astra::faultsim
