// Fault-process calibration.  Every constant here is tied to a published
// Astra observation; see DESIGN.md's experiment index for the mapping.
//
// Structure of the generative model (per campaign):
//   1. Each (DIMM, rank) draws a static susceptibility multiplier =
//      node_factor * dimm_factor (both lognormal, mean 1).  The heavy node
//      tail produces the power-law per-node fault counts of Fig. 5a and the
//      CE concentration of Fig. 5b.
//   2. Fault arrivals per (DIMM, rank) are Poisson with rate
//        base_rate * slot_mult * rank_mult * region_mult * susceptibility,
//      thinned by a mild linear decline over the campaign (Fig. 4a's
//      "slightly downward trend").
//   3. Each fault draws a ground-truth mode.  Row-mode probability grows
//      with susceptibility: degraded devices develop large-footprint faults,
//      which concentrates error volume onto few nodes (Fig. 5b top-2% ~90%).
//   4. Each fault draws a LOGGED error count: a point mass at 1 (the §3.2
//      observation that the vast majority of faults produce one error) mixed
//      with a truncated discrete power law whose maximum matches the paper's
//      ~91k errors-per-fault extreme.  Large-footprint (row) faults draw
//      from a heavier tail — a word-line defect touches up to 1024 words.
//   5. Error timestamps spread over a lognormal fault lifetime.
#pragma once

#include <array>
#include <cstdint>

#include "ecc/scheme.hpp"
#include "faultsim/fault_modes.hpp"
#include "geometry/topology.hpp"

namespace astra::faultsim {

// Per-axis what-if scaling for the campaign engine.  Each multiplier scales
// one calibrated rate WITHOUT touching the calibration constants, so a
// scenario cell reads as "Astra, but with this axis scaled".  The all-1.0
// default is bit-exact with the unscaled model: every multiplier is applied
// as `value * multiplier` and `x * 1.0 == x` in IEEE double arithmetic, so
// the default RNG draw sequence — and therefore every baseline artifact —
// is unchanged.
struct FaultRateMultipliers {
  // Scales the per-(DIMM, rank) fault arrival rate (base_rate_per_rank_day).
  double overall = 1.0;
  // Per-ground-truth-mode weight scaling, indexed by GroundTruthMode.
  std::array<double, kGroundTruthModeCount> mode{1.0, 1.0, 1.0, 1.0, 1.0};
  // Scales due_events_per_capable_fault (the aligned-double-misread rate).
  double due = 1.0;

  [[nodiscard]] bool IsUnity() const noexcept {
    if (overall != 1.0 || due != 1.0) return false;
    for (const double m : mode) {
      if (m != 1.0) return false;
    }
    return true;
  }

  friend bool operator==(const FaultRateMultipliers&,
                         const FaultRateMultipliers&) = default;
};

struct ErrorCountDistribution {
  double single_error_probability = 0.55;  // P(exactly one logged error)
  double alpha = 1.42;                     // discrete power-law exponent
  std::uint64_t max_errors = 50'000;       // truncation of the tail

  // Mean of the distribution (analytic up to the power-law approximation).
  [[nodiscard]] double ApproximateMean() const noexcept;
};

struct FaultModelConfig {
  std::uint64_t seed = 0xfa017ULL;

  // Base fault arrival rate per (DIMM, rank) per day before multipliers.
  // Calibrated so the fleet logs ~7k faults / ~4.4M CEs over the paper's
  // Jan 20 - Sep 14 2019 window (Figs. 4, 5, 10, 12).
  double base_rate_per_rank_day = 2.9e-4;

  // Linear activity decline across the campaign: rate at the end of the
  // window is (1 - decline_fraction) of the rate at the start (Fig. 4a).
  double decline_fraction = 0.18;

  // Static susceptibility spread (lognormal sigma; mean fixed at 1).
  double node_susceptibility_sigma = 2.0;
  double dimm_susceptibility_sigma = 0.8;

  // Positional multipliers.  Slots J,E,I,P lead and A,K,L,M,N trail in
  // Fig. 7d; rank 0 leads rank 1 in Fig. 7b; rack-region spread is small
  // with top slightly ahead (Fig. 10b).
  std::array<double, kDimmSlotCount> slot_multiplier = {
      //  A     B     C     D     E     F     G     H
      0.50, 1.00, 1.05, 0.95, 1.90, 1.00, 1.10, 0.90,
      //  I     J     K     L     M     N     O     P
      1.80, 2.00, 0.55, 0.50, 0.55, 0.50, 1.00, 1.75};
  double rank0_multiplier = 1.60;
  double rank1_multiplier = 1.00;
  std::array<double, kRackRegionCount> region_multiplier = {0.94, 0.98, 1.08};

  // Per-vendor fault-rate multipliers (mean 1 across the mix).  The paper's
  // limitations section stresses that "the reliability of low-level system
  // components can vary significantly by manufacturer [34]"; Sridharan et
  // al. resolved their per-rack error trends into exactly this effect.  The
  // DIMM population is a deterministic mix of four vendors (VendorCode),
  // and the vendor is recoverable on the ANALYSIS side from the consistent
  // bit-position encoding, so the toolkit can close the loop.
  std::array<double, 4> vendor_multiplier = {0.85, 1.30, 0.70, 1.15};

  // Ground-truth mode mix for a susceptibility-1 device.  Row probability is
  // additionally scaled by susceptibility^row_mode_susceptibility_power and
  // capped; see RowModeProbability().
  double mode_single_bit = 0.870;
  double mode_single_word = 0.025;
  double mode_single_column = 0.040;
  double mode_single_row = 0.085;
  double mode_single_bank = 0.010;
  double row_mode_susceptibility_power = 0.35;
  double row_mode_probability_cap = 0.40;

  // Logged-error-count distributions.  Means target the paper's per-mode
  // error volumes: ~225 errors/fault for small modes, ~2.9k for row faults
  // (the unattributed 65% of Fig. 4a's error volume).
  ErrorCountDistribution small_mode_errors{0.55, 1.38, 50'000};
  ErrorCountDistribution row_mode_errors{0.20, 1.14, 91'500};
  // Multibit-CAPABLE word faults: two bits that can misread simultaneously
  // are two bits that misread individually all the time, so these faults log
  // abundant CEs long before the rare aligned double misread (the DUE).
  // This is also what makes CE-history DUE prediction (core/predictor.hpp)
  // physically possible.
  ErrorCountDistribution capable_word_errors{0.05, 1.38, 50'000};
  // Floor on a capable fault's CE count: bits weak enough to align must each
  // be misreading regularly on their own.
  std::uint64_t capable_word_min_errors = 25;

  // Fault lifetime (lognormal over days), clipped to the campaign window.
  double lifetime_log_median_days = 1.0;  // median ~2.7 days
  double lifetime_log_sigma = 1.4;

  // Fraction of single-word faults whose weak bits can misread
  // SIMULTANEOUSLY, defeating SEC-DED and surfacing as DUEs (§3.2, §3.5).
  double word_fault_multibit_probability = 0.50;
  // Expected DUE events over the lifetime of one multibit-capable fault.
  // Calibrated with word_fault_multibit_probability so the fleet logs ~250
  // DUEs over the campaign, i.e. ~0.009 DUEs/DIMM/year — the §3.5 rate that
  // yields FIT ~ 1081.
  double due_events_per_capable_fault = 3.4;

  // Severity mix: how often a DUE escalates to a non-recoverable machine
  // check exception vs a recoverable uncorrectableECC report (Fig. 15b).
  double due_machine_check_probability = 0.35;

  // Which ECC scheme stands behind the memory controller — the §3.5 what-if
  // seam.  The injector adjudicates every multibit word pattern through this
  // scheme's real codec (ecc::AdjudicateWordFault); kSecDed reproduces the
  // historical hard-wired behavior bit-for-bit.
  ecc::EccScheme ecc_scheme = ecc::EccScheme::kSecDed;

  // Per-axis what-if rate scaling; all 1.0 (the default) is a no-op.
  FaultRateMultipliers rate_multipliers;

  [[nodiscard]] double ModeProbabilitySum() const noexcept {
    return mode_single_bit + mode_single_word + mode_single_column +
           mode_single_row + mode_single_bank;
  }

  // Row-mode probability for a device with combined susceptibility `s`.
  [[nodiscard]] double RowModeProbability(double susceptibility) const noexcept;
};

}  // namespace astra::faultsim
