#include "faultsim/fault_model.hpp"

#include <algorithm>
#include <cmath>

namespace astra::faultsim {

double ErrorCountDistribution::ApproximateMean() const noexcept {
  // Continuous bounded-Pareto approximation of the truncated discrete power
  // law on [1, max_errors] with exponent alpha:
  //   E[X] = C * (hi^(2-alpha) - lo^(2-alpha)) / (2 - alpha),
  //   C = (alpha-1) / (lo^(1-alpha) - hi^(1-alpha)).
  const double lo = 1.0;
  const double hi = static_cast<double>(max_errors);
  const double a = alpha;
  double tail_mean;
  if (std::abs(a - 2.0) < 1e-9) {
    tail_mean = std::log(hi / lo) * (a - 1.0) /
                (std::pow(lo, 1.0 - a) - std::pow(hi, 1.0 - a));
  } else {
    const double c = (a - 1.0) / (std::pow(lo, 1.0 - a) - std::pow(hi, 1.0 - a));
    tail_mean = c * (std::pow(hi, 2.0 - a) - std::pow(lo, 2.0 - a)) / (2.0 - a);
  }
  return single_error_probability + (1.0 - single_error_probability) * tail_mean;
}

double FaultModelConfig::RowModeProbability(double susceptibility) const noexcept {
  const double scaled =
      mode_single_row * std::pow(std::max(susceptibility, 1e-6),
                                 row_mode_susceptibility_power);
  return std::min(scaled, row_mode_probability_cap);
}

}  // namespace astra::faultsim
