// Page-retirement mitigation model (§3.2 credits "advanced system software
// features, like page retirement" for keeping error volume down and
// trending downward).
//
// Semantics: the OS tracks CE counts per 4 KiB physical page.  When a page
// reaches `ce_threshold` logged CEs, the retirement daemon attempts to
// offline it after `reaction_seconds` (daemons poll; pages are moved, not
// instantly dropped).  Offlining succeeds with `success_probability` — in
// real kernels retirement fails for pages that are pinned, kernel-owned or
// under continuous access, which is precisely why the field data still
// contains faults with ~91k logged errors despite retirement being active.
// After a successful retirement, further errors from that page are
// suppressed (the page is no longer mapped).
#pragma once

#include <cstdint>
#include <vector>

#include "faultsim/injector.hpp"

namespace astra::faultsim {

struct RetirementConfig {
  bool enabled = true;
  std::uint32_t ce_threshold = 768;      // CEs on a page before action
  std::int64_t reaction_seconds = 24 * 3600;
  double success_probability = 0.25;
  std::uint64_t seed = 0x9e71e5ULL;      // decides which pages are retirable
  int page_shift = 12;                   // 4 KiB pages
};

struct RetirementStats {
  std::uint64_t pages_retired = 0;
  std::uint64_t retirement_failures = 0;
  std::uint64_t suppressed_errors = 0;

  void Merge(const RetirementStats& other) noexcept {
    pages_retired += other.pages_retired;
    retirement_failures += other.retirement_failures;
    suppressed_errors += other.suppressed_errors;
  }
};

// Filter ONE NODE's error events (sorted by time ascending) through the
// retirement policy.  DUEs are never suppressed (they arrive via machine
// check regardless of page state).  Returns survivors in time order.
[[nodiscard]] std::vector<ErrorEvent> ApplyPageRetirement(const RetirementConfig& config,
                                                          std::vector<ErrorEvent> events,
                                                          RetirementStats& stats);

}  // namespace astra::faultsim
