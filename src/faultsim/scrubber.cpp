#include "faultsim/scrubber.hpp"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "ecc/adjudicate.hpp"

namespace astra::faultsim {

double WordUpsetRatePerHour(const ScrubConfig& config) noexcept {
  // FIT/Mbit -> per-bit-hour, times 72 bits per protected word.
  const double per_bit_hour =
      config.upsets_per_mbit_per_1e9_hours / 1e9 / (1024.0 * 1024.0);
  return per_bit_hour * kCodeBitsPerWord;
}

double ExpectedAccumulationDuesPerDay(const ScrubConfig& config, double capacity_gib,
                                      double exposure_hours) noexcept {
  const double interval_hours =
      config.enabled ? config.interval_hours : exposure_hours;
  if (interval_hours <= 0.0 || capacity_gib <= 0.0) return 0.0;
  const double words = capacity_gib * (1024.0 * 1024.0 * 1024.0) /
                       static_cast<double>(kBytesPerWord);
  const double lambda_t = WordUpsetRatePerHour(config) * interval_hours;
  // P(>= 2 upsets in one interval) for a Poisson count.  For the tiny
  // lambda*T of field rates, 1 - e^-x (1+x) cancels catastrophically in
  // doubles; use the series x^2/2 - x^3/3 + x^4/8 there.
  const double p_multi =
      lambda_t < 1e-4
          ? lambda_t * lambda_t * (0.5 - lambda_t / 3.0 + lambda_t * lambda_t / 8.0)
          : 1.0 - std::exp(-lambda_t) * (1.0 + lambda_t);
  const double intervals_per_day = 24.0 / interval_hours;
  return words * p_multi * intervals_per_day;
}

AccumulationResult SimulateAccumulation(const ScrubConfig& config, std::uint64_t words,
                                        double days, Rng& rng) {
  AccumulationResult result;
  const double hours = days * 24.0;
  const double interval_hours = config.enabled ? config.interval_hours : hours;
  const double rate = WordUpsetRatePerHour(config);

  // Total upset count across the population, then uniform placement.
  const double expected_upsets = rate * hours * static_cast<double>(words);
  const std::uint64_t upsets = rng.Poisson(expected_upsets);

  // word -> per-interval list of flipped bit positions.
  struct Upset {
    std::uint64_t interval;
    int bit;
  };
  std::unordered_map<std::uint64_t, std::vector<Upset>> by_word;
  for (std::uint64_t i = 0; i < upsets; ++i) {
    Upset upset;
    const double at_hour = rng.Uniform(0.0, hours);
    upset.interval = static_cast<std::uint64_t>(at_hour / interval_hours);
    upset.bit = static_cast<int>(rng.UniformInt(std::uint64_t{kCodeBitsPerWord}));
    by_word[rng.UniformInt(words)].push_back(upset);
  }

  result.words_upset = by_word.size();
  for (auto& [word, word_upsets] : by_word) {
    // Group by scrub interval; each interval's accumulated pattern is what
    // the next read (or scrub pass) sees.
    std::unordered_map<std::uint64_t, std::vector<int>> by_interval;
    for (const Upset& upset : word_upsets) {
      by_interval[upset.interval].push_back(upset.bit);
    }
    for (auto& [interval, bits] : by_interval) {
      if (bits.size() < 2) continue;
      ++result.words_multi_upset;
      const std::uint64_t data_lo = rng();
      switch (ecc::AdjudicateSecDed(data_lo, bits)) {
        case ecc::ErrorOutcome::kUncorrectable: ++result.secded_dues; break;
        case ecc::ErrorOutcome::kSilent: ++result.secded_silent; break;
        default: break;  // repeated flips on one bit can cancel
      }
      std::vector<ecc::BeatBit> beat_bits;
      beat_bits.reserve(bits.size());
      for (const int bit : bits) beat_bits.push_back({0, bit});
      switch (ecc::AdjudicateChipkill(data_lo, rng(), beat_bits)) {
        case ecc::ErrorOutcome::kUncorrectable: ++result.chipkill_dues; break;
        case ecc::ErrorOutcome::kCorrected: ++result.chipkill_corrected_multi; break;
        default: break;
      }
    }
  }
  return result;
}

}  // namespace astra::faultsim
