#include "faultsim/fault_modes.hpp"

namespace astra::faultsim {

std::string_view GroundTruthModeName(GroundTruthMode mode) noexcept {
  switch (mode) {
    case GroundTruthMode::kSingleBit: return "single-bit";
    case GroundTruthMode::kSingleWord: return "single-word";
    case GroundTruthMode::kSingleColumn: return "single-column";
    case GroundTruthMode::kSingleRow: return "single-row";
    case GroundTruthMode::kSingleBank: return "single-bank";
  }
  return "invalid";
}

std::string_view ObservedModeName(ObservedMode mode) noexcept {
  switch (mode) {
    case ObservedMode::kSingleBit: return "single-bit";
    case ObservedMode::kSingleWord: return "single-word";
    case ObservedMode::kSingleColumn: return "single-column";
    case ObservedMode::kSingleBank: return "single-bank";
    case ObservedMode::kUnattributedRowLike: return "row-like-unattributed";
    case ObservedMode::kUnclassified: return "unclassified";
  }
  return "invalid";
}

std::optional<ObservedMode> ObservedModeFromName(std::string_view name) noexcept {
  for (int i = 0; i < kObservedModeCount; ++i) {
    const auto mode = static_cast<ObservedMode>(i);
    if (ObservedModeName(mode) == name) return mode;
  }
  return std::nullopt;
}

}  // namespace astra::faultsim
