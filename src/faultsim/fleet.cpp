#include "faultsim/fleet.hpp"

#include <algorithm>

#include "ecc/adjudicate.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace astra::faultsim {
namespace {

enum : std::uint64_t {
  kTagSyndrome = 21,
  kTagHetNoise = 22,
};

logs::MemoryErrorRecord RenderRecord(const ErrorEvent& event, const Fault& fault,
                                     bool record_row_info, std::uint64_t seed) {
  logs::MemoryErrorRecord r;
  r.timestamp = event.time;
  r.node = event.coord.node;
  r.socket = event.coord.socket;
  r.type = event.IsDue() ? logs::FailureType::kUncorrectable
                         : logs::FailureType::kCorrectable;
  r.slot = event.coord.slot;
  r.row = record_row_info ? event.coord.row : logs::kNoRowInfo;
  r.rank = event.coord.rank;
  r.bank = event.coord.bank;
  r.bit_position = logs::EncodeRecordedBit(event.coord.bit, fault.vendor_code);
  r.physical_address = EncodePhysicalAddress(event.coord);
  r.syndrome = SyndromeOf(event.coord, seed);
  return r;
}

}  // namespace

std::uint32_t SyndromeOf(const DramCoord& coord, std::uint64_t seed) noexcept {
  const std::uint64_t mixed =
      MixSeed(seed, kTagSyndrome, EncodePhysicalAddress(coord),
              static_cast<std::uint64_t>(coord.node),
              static_cast<std::uint64_t>(coord.bit));
  return static_cast<std::uint32_t>(mixed & 0xFFFFFFFFu);
}

void CampaignConfig::SeedFrom(std::uint64_t campaign_seed) noexcept {
  seed = campaign_seed;
  fault_model.seed = MixSeed(campaign_seed, 0x11);
  mitigation.retirement.seed = MixSeed(campaign_seed, 0x12);
}

FleetSimulator::FleetSimulator(const CampaignConfig& config)
    : config_(config), injector_(config.fault_model, config.window) {}

FleetSimulator::NodeOutput FleetSimulator::SimulateNode(NodeId node) const {
  NodeOutput out;
  out.faults = injector_.GenerateNodeFaults(node);
  if (out.faults.empty()) return out;

  // Expand and merge the node's error streams.
  std::vector<ErrorEvent> events;
  std::unordered_map<std::uint64_t, const Fault*> fault_by_id;
  for (const Fault& fault : out.faults) {
    fault_by_id.emplace(fault.id, &fault);
    std::vector<ErrorEvent> fault_events = injector_.GenerateErrorEvents(fault);
    events.insert(events.end(), fault_events.begin(), fault_events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const ErrorEvent& a, const ErrorEvent& b) { return a.time < b.time; });

  // Operator replacement sees the raw adjudicated stream (DUEs arrive by
  // machine check whether or not the OS could log them) ...
  events = ApplyDimmReplacement(config_.mitigation, std::move(events),
                                out.replacement_stats);
  // ... then silent corruptions leave the visible stream: wrong data, no log
  // line, nothing for retirement or the log buffer to act on.
  {
    std::vector<ErrorEvent> visible;
    visible.reserve(events.size());
    for (const ErrorEvent& event : events) {
      if (event.outcome == ecc::ErrorOutcome::kClean) continue;
      if (event.IsSilent()) {
        ++out.sdc;
        continue;
      }
      visible.push_back(event);
    }
    events = std::move(visible);
  }
  events = ApplyPageRetirement(config_.mitigation.retirement, std::move(events),
                               out.retirement_stats);
  events = ApplyLogBuffer(config_.log_buffer, std::move(events), out.buffer_stats);

  std::unordered_map<std::uint64_t, std::uint64_t> logged;
  out.records.reserve(events.size());
  for (const ErrorEvent& event : events) {
    const Fault& fault = *fault_by_id.at(event.fault_id);
    out.records.push_back(
        RenderRecord(event, fault, config_.record_row_info, config_.seed));
    ++logged[event.fault_id];
    if (event.IsDue()) {
      ++out.dues;
      if (event.time >= config_.het_firmware_start) {
        ++out.dues_het;
        logs::HetRecord het;
        het.timestamp = event.time;
        het.node = node;
        Rng het_rng(MixSeed(config_.seed, kTagHetNoise, event.fault_id,
                            static_cast<std::uint64_t>(event.time.Seconds())));
        het.event =
            het_rng.Bernoulli(config_.fault_model.due_machine_check_probability)
                ? logs::HetEventType::kUncorrectableMachineCheck
                : logs::HetEventType::kUncorrectableEcc;
        het.severity = logs::HetSeverity::kNonRecoverable;
        het.socket = event.coord.socket;
        het.slot = static_cast<std::int8_t>(event.coord.slot);
        out.het.push_back(het);
      }
    } else {
      ++out.ces;
    }
  }
  out.logged_counts.assign(logged.begin(), logged.end());
  return out;
}

void FleetSimulator::AppendHetNoise(CampaignResult& result) const {
  // Background, non-memory HET events during the recording period.
  const TimeWindow recording{config_.het_firmware_start, config_.window.end};
  if (recording.DurationSeconds() <= 0) return;
  Rng rng(MixSeed(config_.seed, kTagHetNoise));
  const double mean = config_.het_noise_events_per_day * recording.DurationDays() *
                      static_cast<double>(config_.node_count) /
                      static_cast<double>(kNumNodes);
  const std::uint64_t count = rng.Poisson(mean);

  // Event mix loosely matching Fig. 15a's legend frequencies.
  constexpr logs::HetEventType kNoiseTypes[] = {
      logs::HetEventType::kRedundancyLost,
      logs::HetEventType::kUcGoingHigh,
      logs::HetEventType::kPowerSupplyFailureDeasserted,
      logs::HetEventType::kUnrGoingHigh,
      logs::HetEventType::kPowerSupplyFailure,
      logs::HetEventType::kRedundancyInsufficientResources,
  };
  constexpr double kNoiseWeights[] = {0.30, 0.20, 0.18, 0.15, 0.12, 0.05};

  for (std::uint64_t i = 0; i < count; ++i) {
    logs::HetRecord het;
    het.timestamp = recording.begin.AddSeconds(static_cast<std::int64_t>(
        rng.UniformInt(static_cast<std::uint64_t>(recording.DurationSeconds()))));
    het.node = static_cast<NodeId>(rng.UniformInt(
        static_cast<std::uint64_t>(config_.node_count)));
    het.event = kNoiseTypes[rng.WeightedIndex(kNoiseWeights, std::size(kNoiseWeights))];
    het.severity = rng.Bernoulli(0.2) ? logs::HetSeverity::kDegraded
                                      : logs::HetSeverity::kInformational;
    result.het_records.push_back(het);
  }
}

CampaignResult FleetSimulator::Run(unsigned max_threads) const {
  const auto node_count = static_cast<std::size_t>(config_.node_count);
  std::vector<NodeOutput> outputs(node_count);
  ParallelFor(
      node_count,
      [this, &outputs](std::size_t i) {
        outputs[i] = SimulateNode(static_cast<NodeId>(i));
      },
      max_threads);

  CampaignResult result;
  std::size_t total_records = 0;
  std::size_t total_faults = 0;
  for (const NodeOutput& out : outputs) {
    total_records += out.records.size();
    total_faults += out.faults.size();
  }
  result.memory_errors.reserve(total_records);
  result.faults.reserve(total_faults);

  // Merge in node order (deterministic), then sort by time.
  for (NodeOutput& out : outputs) {
    result.memory_errors.insert(result.memory_errors.end(), out.records.begin(),
                                out.records.end());
    result.het_records.insert(result.het_records.end(), out.het.begin(),
                              out.het.end());
    result.faults.insert(result.faults.end(), out.faults.begin(), out.faults.end());
    for (const auto& [id, logged] : out.logged_counts) {
      result.logged_count_by_fault[id] = logged;
    }
    result.buffer_stats.Merge(out.buffer_stats);
    result.retirement_stats.Merge(out.retirement_stats);
    result.replacement_stats.Merge(out.replacement_stats);
    result.total_ces += out.ces;
    result.total_dues += out.dues;
    result.dues_recorded_by_het += out.dues_het;
    result.total_sdc += out.sdc;
  }

  AppendHetNoise(result);

  std::sort(result.memory_errors.begin(), result.memory_errors.end(),
            [](const logs::MemoryErrorRecord& a, const logs::MemoryErrorRecord& b) {
              return a.timestamp < b.timestamp;
            });
  std::sort(result.het_records.begin(), result.het_records.end(),
            [](const logs::HetRecord& a, const logs::HetRecord& b) {
              return a.timestamp < b.timestamp;
            });
  return result;
}

}  // namespace astra::faultsim
