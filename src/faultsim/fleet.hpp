// FleetSimulator: runs a full measurement campaign over the machine and
// produces exactly the artifacts the paper's analyses consume — the syslog
// memory-error record stream, the HET record stream, and (for validation)
// the ground-truth fault population.
//
// Pipeline per node (deterministic, parallel across nodes):
//   faults <- FaultInjector                       (latent defects)
//   events <- expand faults, merge, sort by time  (true error stream,
//                                                  adjudicated by the
//                                                  configured ECC scheme)
//   events <- ApplyDimmReplacement                (operator swap policy)
//   events <- drop silent corruptions             (counted as SDC; no log)
//   events <- ApplyPageRetirement                 (OS mitigation, §3.2)
//   events <- ApplyLogBuffer                      (CE logging loss, §2.3)
//   records <- render MemoryErrorRecord / HetRecord
// HET records exist only from `het_firmware_start` onward (§3.5: "We believe
// that HET errors started being recorded following a firmware update in
// August 2019").
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "faultsim/fault_model.hpp"
#include "faultsim/injector.hpp"
#include "faultsim/log_buffer.hpp"
#include "faultsim/mitigation.hpp"
#include "logs/records.hpp"
#include "util/sim_time.hpp"

namespace astra::faultsim {

struct CampaignConfig {
  std::uint64_t seed = 20190120;

  // The paper's failure-analysis window (§2.3).
  TimeWindow window{SimTime::FromCivil(2019, 1, 20), SimTime::FromCivil(2019, 9, 14)};

  // HET recording begins at the August firmware update (§3.5).
  SimTime het_firmware_start = SimTime::FromCivil(2019, 8, 23);

  // Simulate only nodes [0, node_count): scale-down for tests/examples.
  int node_count = kNumNodes;

  // When false (the Astra condition), CE records carry no row field.
  bool record_row_info = false;

  FaultModelConfig fault_model;
  // CE logging loss is a telemetry artifact, not a mitigation — it stays a
  // direct member while the response knobs travel inside the policy.
  LogBufferConfig log_buffer;
  // Retirement / scrub / replacement as one value (the campaign seam).
  MitigationPolicy mitigation;

  // Background non-memory HET noise (power supply events etc., Fig. 15a),
  // fleet-wide rate during the HET recording period.
  double het_noise_events_per_day = 2.0;

  // Apply the campaign seed to every sub-model stream.
  void SeedFrom(std::uint64_t campaign_seed) noexcept;
};

struct CampaignResult {
  // Syslog memory-error stream (CEs and DUEs), time-ascending.
  std::vector<logs::MemoryErrorRecord> memory_errors;
  // HET stream (memory DUEs + background events), time-ascending.
  std::vector<logs::HetRecord> het_records;
  // Ground truth: every latent fault, whether or not it logged anything.
  std::vector<Fault> faults;
  // Logged (post-mitigation) error count per fault id; absent => zero.
  std::unordered_map<std::uint64_t, std::uint64_t> logged_count_by_fault;

  LogBufferStats buffer_stats;
  RetirementStats retirement_stats;
  ReplacementActionStats replacement_stats;

  std::uint64_t total_ces = 0;
  std::uint64_t total_dues = 0;           // DUEs over the whole window
  std::uint64_t dues_recorded_by_het = 0; // DUEs after the firmware update
  // Silent data corruptions: reads the codec mislabeled as corrected/clean.
  // Invisible to every log stream (that is the point), so they are counted
  // here and nowhere else; always 0 under plain SEC-DED, whose double-flip
  // candidates adjudicate detected-uncorrectable.
  std::uint64_t total_sdc = 0;
};

class FleetSimulator {
 public:
  explicit FleetSimulator(const CampaignConfig& config);

  [[nodiscard]] const CampaignConfig& Config() const noexcept { return config_; }
  [[nodiscard]] const FaultInjector& Injector() const noexcept { return injector_; }

  // Run the whole campaign.  Deterministic for a given config at any
  // max_threads (0 = hardware concurrency; pass 1 for a fully serial run —
  // required when the caller is itself inside a shared-pool parallel
  // region, e.g. the campaign runner's per-trial shards).
  [[nodiscard]] CampaignResult Run(unsigned max_threads = 0) const;

 private:
  // Per-node simulation; called in parallel.
  struct NodeOutput {
    std::vector<logs::MemoryErrorRecord> records;
    std::vector<logs::HetRecord> het;
    std::vector<Fault> faults;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> logged_counts;
    LogBufferStats buffer_stats;
    RetirementStats retirement_stats;
    ReplacementActionStats replacement_stats;
    std::uint64_t ces = 0;
    std::uint64_t dues = 0;
    std::uint64_t dues_het = 0;
    std::uint64_t sdc = 0;
  };
  [[nodiscard]] NodeOutput SimulateNode(NodeId node) const;

  void AppendHetNoise(CampaignResult& result) const;

  CampaignConfig config_;
  FaultInjector injector_;
};

// Vendor-specific syndrome word: an opaque but deterministic function of the
// failing coordinate, as in real controller dumps.
[[nodiscard]] std::uint32_t SyndromeOf(const DramCoord& coord, std::uint64_t seed) noexcept;

}  // namespace astra::faultsim
