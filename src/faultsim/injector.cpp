#include "faultsim/injector.hpp"

#include <algorithm>
#include <cmath>

#include "ecc/scheme.hpp"

namespace astra::faultsim {
namespace {

// Stream tags for the injector's derived RNGs.
enum : std::uint64_t {
  kTagNodeSusceptibility = 11,
  kTagDimmSusceptibility = 12,
  kTagVendorCode = 13,
  kTagNodeFaults = 14,
  kTagFaultErrors = 15,
};

// Lognormal with mean exactly 1: exp(sigma Z - sigma^2 / 2).
double MeanOneLogNormal(Rng& rng, double sigma) noexcept {
  return std::exp(sigma * rng.Normal() - 0.5 * sigma * sigma);
}

}  // namespace

FaultInjector::FaultInjector(const FaultModelConfig& config, TimeWindow campaign) noexcept
    : config_(config), campaign_(campaign), campaign_days_(campaign.DurationDays()) {}

double FaultInjector::NodeSusceptibility(NodeId node) const noexcept {
  Rng rng(MixSeed(config_.seed, kTagNodeSusceptibility,
                  static_cast<std::uint64_t>(node)));
  return MeanOneLogNormal(rng, config_.node_susceptibility_sigma);
}

double FaultInjector::DimmSusceptibility(NodeId node, DimmSlot slot) const noexcept {
  Rng rng(MixSeed(config_.seed, kTagDimmSusceptibility,
                  static_cast<std::uint64_t>(GlobalDimmIndex(node, slot))));
  return MeanOneLogNormal(rng, config_.dimm_susceptibility_sigma);
}

int FaultInjector::VendorCode(NodeId node, DimmSlot slot) const noexcept {
  std::uint64_t s = MixSeed(config_.seed, kTagVendorCode,
                            static_cast<std::uint64_t>(GlobalDimmIndex(node, slot)));
  return static_cast<int>(SplitMix64(s) & 0x3);
}

double FaultInjector::RateMultiplier(NodeId node, DimmSlot slot, RankId rank) const noexcept {
  const double positional =
      config_.slot_multiplier[static_cast<int>(slot)] *
      (rank == 0 ? config_.rank0_multiplier : config_.rank1_multiplier) *
      config_.region_multiplier[static_cast<int>(RegionOfNode(node))] *
      config_.vendor_multiplier[static_cast<std::size_t>(VendorCode(node, slot))];
  return positional * NodeSusceptibility(node) * DimmSusceptibility(node, slot);
}

SimTime FaultInjector::SampleStartTime(Rng& rng) const noexcept {
  // Inverse-CDF sample of the linearly declining arrival density
  // f(x) ∝ 1 - d*x on x in [0,1] (x = fraction of the campaign elapsed).
  const double d = config_.decline_fraction;
  const double u = rng.UniformDouble();
  double x;
  if (d < 1e-9) {
    x = u;
  } else {
    x = (1.0 - std::sqrt(1.0 - 2.0 * d * u * (1.0 - d / 2.0))) / d;
  }
  x = std::clamp(x, 0.0, 1.0);
  return campaign_.begin.AddSeconds(
      static_cast<std::int64_t>(x * static_cast<double>(campaign_.DurationSeconds())));
}

GroundTruthMode FaultInjector::SampleMode(Rng& rng, double susceptibility) const noexcept {
  // Row probability grows with susceptibility; the remaining mass keeps the
  // other modes' relative proportions.
  const double row_p = config_.RowModeProbability(susceptibility);
  const double others = config_.mode_single_bit + config_.mode_single_word +
                        config_.mode_single_column + config_.mode_single_bank;
  const double rescale = others > 0.0 ? (1.0 - row_p) / others : 0.0;
  // What-if mode multipliers scale the final weights; WeightedIndex
  // normalizes, so all-1.0 draws identically to the unscaled weights.
  const auto& mode_mult = config_.rate_multipliers.mode;
  const double weights[kGroundTruthModeCount] = {
      config_.mode_single_bit * rescale * mode_mult[0],
      config_.mode_single_word * rescale * mode_mult[1],
      config_.mode_single_column * rescale * mode_mult[2],
      row_p * mode_mult[3],
      config_.mode_single_bank * rescale * mode_mult[4]};
  // Order must match the GroundTruthMode enumerators.
  static_assert(static_cast<int>(GroundTruthMode::kSingleRow) == 3);
  return static_cast<GroundTruthMode>(
      rng.WeightedIndex(weights, kGroundTruthModeCount));
}

std::uint64_t FaultInjector::SampleErrorCount(Rng& rng, GroundTruthMode mode,
                                              bool multibit_capable) const noexcept {
  const ErrorCountDistribution& dist =
      mode == GroundTruthMode::kSingleRow ? config_.row_mode_errors
      : multibit_capable                  ? config_.capable_word_errors
                                          : config_.small_mode_errors;
  if (rng.Bernoulli(dist.single_error_probability)) return 1;
  return rng.DiscretePowerLaw(dist.alpha, dist.max_errors);
}

std::vector<Fault> FaultInjector::GenerateNodeFaults(NodeId node) const {
  std::vector<Fault> faults;
  Rng node_rng(MixSeed(config_.seed, kTagNodeFaults, static_cast<std::uint64_t>(node)));

  // Mean arrival count integrates the linear decline: factor (1 - d/2).
  const double decline_factor = 1.0 - config_.decline_fraction / 2.0;

  for (int slot_idx = 0; slot_idx < kDimmSlotCount; ++slot_idx) {
    const auto slot = static_cast<DimmSlot>(slot_idx);
    for (RankId rank = 0; rank < kRanksPerDimm; ++rank) {
      const double susceptibility =
          NodeSusceptibility(node) * DimmSusceptibility(node, slot);
      const double mean = config_.base_rate_per_rank_day * campaign_days_ *
                          decline_factor * RateMultiplier(node, slot, rank) *
                          config_.rate_multipliers.overall;
      const std::uint64_t count = node_rng.Poisson(mean);
      for (std::uint64_t i = 0; i < count; ++i) {
        Fault fault;
        // Stable id: position-derived so ids are deterministic and unique.
        fault.id = (static_cast<std::uint64_t>(node) << 24) |
                   (static_cast<std::uint64_t>(slot_idx) << 20) |
                   (static_cast<std::uint64_t>(rank) << 16) | i;
        fault.mode = SampleMode(node_rng, susceptibility);
        fault.anchor.node = node;
        fault.anchor.socket = SocketOfSlot(slot);
        fault.anchor.slot = slot;
        fault.anchor.rank = rank;
        fault.anchor.bank = static_cast<BankId>(node_rng.UniformInt(kBanksPerRank));
        fault.anchor.row = static_cast<RowId>(node_rng.UniformInt(kRowsPerBank));
        fault.anchor.column = static_cast<ColumnId>(node_rng.UniformInt(kColumnsPerRow));
        fault.anchor.bit =
            static_cast<BitPosition>(node_rng.UniformInt(kCodeBitsPerWord));
        fault.start = SampleStartTime(node_rng);
        fault.lifetime_days = node_rng.LogNormal(config_.lifetime_log_median_days,
                                                 config_.lifetime_log_sigma);
        fault.stuck_bit_count = 1;
        if (fault.mode == GroundTruthMode::kSingleWord) {
          // A word fault is by definition multiple weak bits in one word;
          // whether the bits can misread SIMULTANEOUSLY (defeating SEC-DED)
          // is a separate, rarer property.
          fault.stuck_bit_count = 2 + static_cast<int>(node_rng.UniformInt(3));
          fault.multibit_capable =
              node_rng.Bernoulli(config_.word_fault_multibit_probability);
        }
        fault.error_count =
            SampleErrorCount(node_rng, fault.mode, fault.multibit_capable);
        if (fault.multibit_capable) {
          fault.error_count =
              std::max(fault.error_count, config_.capable_word_min_errors);
        }
        fault.vendor_code = VendorCode(node, slot);
        fault.susceptibility = susceptibility;
        faults.push_back(fault);
      }
    }
  }
  return faults;
}

std::vector<ErrorEvent> FaultInjector::GenerateErrorEvents(const Fault& fault) const {
  std::vector<ErrorEvent> events;
  events.reserve(fault.error_count);
  Rng rng(MixSeed(config_.seed, kTagFaultErrors, fault.id));

  // Active interval, clipped to the campaign.
  const std::int64_t start_s = std::max(fault.start.Seconds(), campaign_.begin.Seconds());
  const auto lifetime_s = static_cast<std::int64_t>(
      fault.lifetime_days * static_cast<double>(SimTime::kSecondsPerDay));
  const std::int64_t end_s =
      std::min(fault.start.Seconds() + std::max<std::int64_t>(lifetime_s, 60),
               campaign_.end.Seconds());
  if (end_s <= start_s) return events;
  const std::uint64_t span = static_cast<std::uint64_t>(end_s - start_s);

  // The stuck-bit set for multi-bit word faults (distinct positions).
  int stuck_bits[4] = {fault.anchor.bit, 0, 0, 0};
  for (int b = 1; b < fault.stuck_bit_count && b < 4; ++b) {
    for (;;) {
      const int candidate = static_cast<int>(rng.UniformInt(kCodeBitsPerWord));
      bool duplicate = false;
      for (int prev = 0; prev < b; ++prev) duplicate |= candidate == stuck_bits[prev];
      if (!duplicate) {
        stuck_bits[b] = candidate;
        break;
      }
    }
  }

  for (std::uint64_t i = 0; i < fault.error_count; ++i) {
    ErrorEvent event;
    event.fault_id = fault.id;
    event.time = SimTime(start_s + static_cast<std::int64_t>(rng.UniformInt(span)));
    event.coord = fault.anchor;
    switch (fault.mode) {
      case GroundTruthMode::kSingleBit:
        break;  // everything anchored
      case GroundTruthMode::kSingleWord:
        event.coord.bit = static_cast<BitPosition>(
            stuck_bits[rng.UniformInt(static_cast<std::uint64_t>(fault.stuck_bit_count))]);
        break;
      case GroundTruthMode::kSingleColumn:
        event.coord.row = static_cast<RowId>(rng.UniformInt(kRowsPerBank));
        break;
      case GroundTruthMode::kSingleRow:
        event.coord.column = static_cast<ColumnId>(rng.UniformInt(kColumnsPerRow));
        break;
      case GroundTruthMode::kSingleBank:
        event.coord.row = static_cast<RowId>(rng.UniformInt(kRowsPerBank));
        event.coord.column = static_cast<ColumnId>(rng.UniformInt(kColumnsPerRow));
        event.coord.bit = static_cast<BitPosition>(rng.UniformInt(kCodeBitsPerWord));
        break;
    }

    // A routine read misreads ONE weak bit: the rank-level code corrects it
    // (a logged CE) — except under on-die ECC, where the device fixes the
    // lone flip before it ever crosses the bus and the host logs nothing.
    // The draws above still happen, so flip sets and event times stay
    // aligned across schemes: a scheme change relabels outcomes only.
    if (config_.ecc_scheme == ecc::EccScheme::kOnDieSecDed) continue;
    events.push_back(event);
  }

  // Multibit candidates: a multibit-capable fault occasionally misreads
  // >= 2 of its stuck bits in the same beat.  Each candidate is adjudicated
  // with the CONFIGURED codec (ecc_scheme) over the same flip pair — under
  // SEC-DED double flips decode as detected-uncorrectable (the historical
  // always-DUE behavior), chipkill corrects the pair when it is confined to
  // one x4 device, and on-die ECC can forward a miscorrected pattern that
  // the host code then mislabels (SDC).  Exactly one rng() draw (the data
  // word) is consumed per candidate under every scheme, so switching the
  // scheme relabels outcomes without moving any event in time.
  if (fault.multibit_capable && fault.stuck_bit_count >= 2) {
    const std::uint64_t due_count = rng.Poisson(
        config_.due_events_per_capable_fault * config_.rate_multipliers.due);
    for (std::uint64_t i = 0; i < due_count; ++i) {
      ErrorEvent event;
      event.fault_id = fault.id;
      event.time = SimTime(start_s + static_cast<std::int64_t>(rng.UniformInt(span)));
      event.coord = fault.anchor;
      event.coord.bit = static_cast<BitPosition>(stuck_bits[0]);
      const int flips[2] = {stuck_bits[0], stuck_bits[1]};
      const std::uint64_t data = rng();
      event.outcome = ecc::AdjudicateWordFault(config_.ecc_scheme, data, flips);
      if (event.outcome == ecc::ErrorOutcome::kClean) continue;
      events.push_back(event);
    }
  }

  std::sort(events.begin(), events.end(),
            [](const ErrorEvent& a, const ErrorEvent& b) { return a.time < b.time; });
  return events;
}

double FaultInjector::ExpectedTotalFaults() const noexcept {
  // Susceptibility factors have mean 1, so the expectation reduces to the
  // positional sums.  Region multiplier averages over the three regions.
  double slot_sum = 0.0;
  for (const double m : config_.slot_multiplier) slot_sum += m;
  const double rank_sum = config_.rank0_multiplier + config_.rank1_multiplier;
  double region_mean = 0.0;
  for (const double m : config_.region_multiplier) region_mean += m;
  region_mean /= kRackRegionCount;
  const double decline_factor = 1.0 - config_.decline_fraction / 2.0;
  // Sum over all (node, slot, rank) triples of the positional multipliers.
  return config_.base_rate_per_rank_day * campaign_days_ * decline_factor *
         config_.rate_multipliers.overall * static_cast<double>(kNumNodes) *
         region_mean * slot_sum * rank_sum;
}

}  // namespace astra::faultsim
