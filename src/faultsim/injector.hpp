// Fault injection: samples the latent fault population and expands each
// fault into its stream of (logged) error events.
#pragma once

#include <cstdint>
#include <vector>

#include "ecc/adjudicate.hpp"
#include "faultsim/fault_model.hpp"
#include "faultsim/fault_modes.hpp"
#include "geometry/topology.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace astra::faultsim {

// A latent defect in one DRAM device region.
struct Fault {
  std::uint64_t id = 0;
  GroundTruthMode mode = GroundTruthMode::kSingleBit;
  DramCoord anchor;            // full anchor; row/column/bit are the defect locus
  SimTime start;
  double lifetime_days = 0.0;  // error-producing lifetime (clipped at window end)
  std::uint64_t error_count = 0;  // errors the fault will emit (pre-mitigation)
  bool multibit_capable = false;  // can corrupt >= 2 bits of one word (DUE risk)
  int stuck_bit_count = 1;        // stuck bits for word faults
  int vendor_code = 0;            // consistent per-DIMM bit-position encoding
  double susceptibility = 1.0;    // combined node*dimm factor (diagnostics)
};

// One memory error occurrence, pre-ECC-logging.  `outcome` is what the
// configured codec (FaultModelConfig::ecc_scheme) adjudicated for the read:
// kCorrected renders as a CE record, kUncorrectable as a DUE record, and
// kSilent is corrupted data with NO log line at all — the fleet driver
// counts it as SDC and drops it before the mitigation pipeline, which can
// only act on what the OS can see.
struct ErrorEvent {
  SimTime time;
  DramCoord coord;
  std::uint64_t fault_id = 0;
  ecc::ErrorOutcome outcome = ecc::ErrorOutcome::kCorrected;

  [[nodiscard]] bool IsDue() const noexcept {
    return outcome == ecc::ErrorOutcome::kUncorrectable;
  }
  [[nodiscard]] bool IsSilent() const noexcept {
    return outcome == ecc::ErrorOutcome::kSilent;
  }
};

class FaultInjector {
 public:
  FaultInjector(const FaultModelConfig& config, TimeWindow campaign) noexcept;

  [[nodiscard]] const FaultModelConfig& Config() const noexcept { return config_; }

  // Static susceptibility factors (lognormal, mean 1), derived from the seed.
  [[nodiscard]] double NodeSusceptibility(NodeId node) const noexcept;
  [[nodiscard]] double DimmSusceptibility(NodeId node, DimmSlot slot) const noexcept;

  // Consistent vendor code of a DIMM (folded into recorded bit positions).
  [[nodiscard]] int VendorCode(NodeId node, DimmSlot slot) const noexcept;

  // Sample all faults arising on `node` during the campaign.  Deterministic
  // per (seed, node): safe to call concurrently for different nodes.
  [[nodiscard]] std::vector<Fault> GenerateNodeFaults(NodeId node) const;

  // Expand a fault into its error-event stream (times ascending).
  [[nodiscard]] std::vector<ErrorEvent> GenerateErrorEvents(const Fault& fault) const;

  // Expected fleet-wide fault count under the configuration (closed form,
  // used by calibration tests and capacity planning in the fleet driver).
  [[nodiscard]] double ExpectedTotalFaults() const noexcept;

 private:
  [[nodiscard]] double RateMultiplier(NodeId node, DimmSlot slot, RankId rank) const noexcept;
  [[nodiscard]] GroundTruthMode SampleMode(Rng& rng, double susceptibility) const noexcept;
  [[nodiscard]] SimTime SampleStartTime(Rng& rng) const noexcept;
  [[nodiscard]] std::uint64_t SampleErrorCount(Rng& rng, GroundTruthMode mode,
                                               bool multibit_capable) const noexcept;

  FaultModelConfig config_;
  TimeWindow campaign_;
  double campaign_days_;
};

}  // namespace astra::faultsim
