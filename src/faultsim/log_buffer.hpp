// Correctable-error logging-loss model (§2.3): "Correctable errors are
// logged internally, with space for a limited number of errors.  Once
// logging space is full, further CEs may be dropped.  This logging space is
// read periodically by the operating system via a polling mechanism that
// runs every few seconds."  Uncorrectable errors take the machine-check
// path and are "seldom lost".
//
// The model: per node, time is divided into poll periods of `poll_seconds`.
// Within one period at most `capacity` CE records survive; the rest are
// dropped.  DUEs always survive.  This is what makes the simulator's LOGGED
// error counts (the only thing a field study can see) diverge from the true
// error counts during bursts — quantified by the log-buffer ablation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "faultsim/injector.hpp"

namespace astra::faultsim {

struct LogBufferConfig {
  bool enabled = true;
  std::int64_t poll_seconds = 5;
  std::uint32_t capacity = 32;  // CE slots per poll period
};

struct LogBufferStats {
  std::uint64_t offered_ces = 0;
  std::uint64_t logged_ces = 0;
  std::uint64_t dropped_ces = 0;

  [[nodiscard]] double DropFraction() const noexcept {
    return offered_ces == 0
               ? 0.0
               : static_cast<double>(dropped_ces) / static_cast<double>(offered_ces);
  }

  void Merge(const LogBufferStats& other) noexcept {
    offered_ces += other.offered_ces;
    logged_ces += other.logged_ces;
    dropped_ces += other.dropped_ces;
  }
};

// Filter ONE NODE's error events (must be sorted by time ascending) through
// the bounded log buffer.  Returns the surviving events in time order and
// accumulates statistics into `stats`.
[[nodiscard]] std::vector<ErrorEvent> ApplyLogBuffer(const LogBufferConfig& config,
                                                     std::vector<ErrorEvent> events,
                                                     LogBufferStats& stats);

}  // namespace astra::faultsim
