// MitigationPolicy: every OS/operator response knob — page retirement,
// patrol scrubbing, DIMM replacement — traveling as ONE value, so a what-if
// campaign cell can swap the whole mitigation posture the way it swaps an
// ECC scheme.  The §3.2 discussion credits "advanced system software
// features, like page retirement" for Astra's low error volume; this seam
// is how the campaign engine asks what each of those features was worth.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "faultsim/injector.hpp"
#include "faultsim/retirement.hpp"
#include "faultsim/scrubber.hpp"

namespace astra::faultsim {

struct MitigationPolicy {
  std::string name = "astra";

  // OS page retirement (faultsim/retirement.hpp).
  RetirementConfig retirement;
  // Patrol scrubbing — the transient-accumulation channel; the fleet
  // simulator's hard-fault machinery never consults it, but the campaign
  // runner reports its closed-form accumulation-DUE rate per cell.
  ScrubConfig scrub;
  // Operator swap policy: after this many DUEs from one DIMM slot the
  // module is replaced with a healthy spare (subsequent events from that
  // slot are gone).  0 disables — no Astra-era policy replaced on DUEs
  // automatically.
  std::uint32_t replace_after_dues = 0;

  // Astra's production posture: the defaults above, verbatim.
  [[nodiscard]] static MitigationPolicy Astra();
  // Nothing enabled: the raw error stream reaches the logs.
  [[nodiscard]] static MitigationPolicy None();
  // Everything turned up: hair-trigger retirement, fast scrub, swap on the
  // second DUE.
  [[nodiscard]] static MitigationPolicy Aggressive();
};

// Parse a policy preset name ("astra", "none", "aggressive"); nullopt on
// anything else.
[[nodiscard]] std::optional<MitigationPolicy> MitigationPolicyFromName(
    std::string_view name);

struct ReplacementActionStats {
  std::uint64_t dimms_replaced = 0;
  std::uint64_t suppressed_events = 0;

  void Merge(const ReplacementActionStats& other) noexcept {
    dimms_replaced += other.dimms_replaced;
    suppressed_events += other.suppressed_events;
  }
};

// Apply the replace-after-DUEs policy to ONE NODE's time-sorted events: once
// a slot's cumulative DUE count reaches the threshold the DIMM is swapped,
// and every later event from that slot (CE, DUE, and silent alike — the
// faulty module is physically gone) is suppressed.  The triggering DUE
// itself survives.  No-op when replace_after_dues is 0.
[[nodiscard]] std::vector<ErrorEvent> ApplyDimmReplacement(
    const MitigationPolicy& policy, std::vector<ErrorEvent> events,
    ReplacementActionStats& stats);

}  // namespace astra::faultsim
