#include "faultsim/retirement.hpp"

#include <unordered_map>

#include "util/rng.hpp"

namespace astra::faultsim {
namespace {

struct PageState {
  std::uint32_t ce_count = 0;
  bool retire_decided = false;
  bool retirable = false;
  std::int64_t retired_at_seconds = 0;
  bool retired = false;
};

}  // namespace

std::vector<ErrorEvent> ApplyPageRetirement(const RetirementConfig& config,
                                            std::vector<ErrorEvent> events,
                                            RetirementStats& stats) {
  if (!config.enabled || events.empty()) return events;

  std::vector<ErrorEvent> survivors;
  survivors.reserve(events.size());
  std::unordered_map<std::uint64_t, PageState> pages;

  for (const ErrorEvent& event : events) {
    if (event.IsDue()) {
      survivors.push_back(event);
      continue;
    }
    const std::uint64_t page =
        EncodePhysicalAddress(event.coord) >> config.page_shift;
    PageState& state = pages[page];

    if (state.retired && event.time.Seconds() >= state.retired_at_seconds) {
      ++stats.suppressed_errors;
      continue;
    }

    ++state.ce_count;
    survivors.push_back(event);

    if (!state.retire_decided && state.ce_count >= config.ce_threshold) {
      state.retire_decided = true;
      Rng rng(MixSeed(config.seed, static_cast<std::uint64_t>(event.coord.node), page));
      state.retirable = rng.Bernoulli(config.success_probability);
      if (state.retirable) {
        state.retired = true;
        state.retired_at_seconds = event.time.Seconds() + config.reaction_seconds;
        ++stats.pages_retired;
      } else {
        ++stats.retirement_failures;
      }
    }
  }
  return survivors;
}

}  // namespace astra::faultsim
