#include "faultsim/log_buffer.hpp"

#include <algorithm>

namespace astra::faultsim {

std::vector<ErrorEvent> ApplyLogBuffer(const LogBufferConfig& config,
                                       std::vector<ErrorEvent> events,
                                       LogBufferStats& stats) {
  if (!config.enabled || events.empty()) {
    for (const ErrorEvent& e : events) {
      if (!e.IsDue()) {
        ++stats.offered_ces;
        ++stats.logged_ces;
      }
    }
    return events;
  }

  std::vector<ErrorEvent> survivors;
  survivors.reserve(events.size());
  std::int64_t current_period = INT64_MIN;
  std::uint32_t used = 0;
  for (const ErrorEvent& event : events) {
    if (event.IsDue()) {
      survivors.push_back(event);  // machine-check path: never dropped
      continue;
    }
    ++stats.offered_ces;
    const std::int64_t period = event.time.Seconds() / config.poll_seconds;
    if (period != current_period) {
      current_period = period;
      used = 0;
    }
    if (used < config.capacity) {
      ++used;
      ++stats.logged_ces;
      survivors.push_back(event);
    } else {
      ++stats.dropped_ces;
    }
  }
  return survivors;
}

}  // namespace astra::faultsim
