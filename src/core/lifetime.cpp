#include "core/lifetime.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace astra::core {
namespace {

constexpr double kSecondsPerDay = static_cast<double>(SimTime::kSecondsPerDay);

// The Weibull/exponential estimators accumulate floating-point sums in
// observation order, so feed them hash-map contents in sorted-key order to
// keep the fitted parameters bit-identical across hash layouts.
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& entry : map) keys.push_back(entry.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void LifetimeEngine::Observe(const logs::MemoryErrorRecord& record,
                             std::uint64_t /*seq*/) {
  if (record.type != logs::FailureType::kCorrectable) return;
  const std::int64_t dimm = GlobalDimmIndex(record.node, record.slot);
  const std::int64_t seconds = record.timestamp.Seconds();
  const auto [it, inserted] = first_ce_.try_emplace(dimm, seconds);
  if (!inserted && seconds < it->second) it->second = seconds;
}

bool LifetimeEngine::MergeFrom(const LifetimeEngine& other) {
  if (&other == this) return false;
  for (const auto& [dimm, seconds] : other.first_ce_) {
    const auto [it, inserted] = first_ce_.try_emplace(dimm, seconds);
    if (!inserted && seconds < it->second) it->second = seconds;
  }
  return true;
}

void LifetimeEngine::Snapshot(binio::Writer& writer) const {
  writer.PutU64(first_ce_.size());
  for (const auto& [dimm, seconds] : first_ce_) {
    writer.PutI64(dimm);
    writer.PutI64(seconds);
  }
}

bool LifetimeEngine::Restore(binio::Reader& reader) {
  first_ce_.clear();
  const std::uint64_t count = reader.GetU64();
  if (!reader.CanReadItems(count, 2 * sizeof(std::int64_t))) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::int64_t dimm = reader.GetI64();
    first_ce_[dimm] = reader.GetI64();
  }
  if (!reader.Ok()) {
    first_ce_.clear();
    return false;
  }
  return true;
}

LifetimeAnalysis LifetimeEngine::Finalize(const CoalesceResult& coalesced,
                                          TimeWindow window, int dimm_count) const {
  LifetimeAnalysis analysis;
  const double window_days = window.DurationDays();

  std::vector<stats::SurvivalObservation> first_ce_obs;
  first_ce_obs.reserve(static_cast<std::size_t>(dimm_count));
  for (const auto& [dimm, seconds] : first_ce_) {
    stats::SurvivalObservation obs;
    obs.time = static_cast<double>(SecondsBetween(window.begin, SimTime{seconds})) /
               kSecondsPerDay;
    obs.event = true;
    first_ce_obs.push_back(obs);
  }
  const std::size_t censored =
      static_cast<std::size_t>(dimm_count) > first_ce_.size()
          ? static_cast<std::size_t>(dimm_count) - first_ce_.size()
          : 0;
  for (std::size_t i = 0; i < censored; ++i) {
    first_ce_obs.push_back(stats::SurvivalObservation{window_days, false});
  }

  analysis.time_to_first_ce = stats::KaplanMeier(first_ce_obs);
  analysis.first_ce_weibull = stats::FitWeibull(first_ce_obs);
  analysis.first_ce_exponential = stats::FitExponential(first_ce_obs);
  analysis.first_ce_afr = stats::AnnualizedFailureRate(
      first_ce_.size(), analysis.first_ce_exponential.total_exposure, 365.25);

  // Fault activity spans.  A fault still erroring within a day of the
  // window end is censored: we did not observe it go quiet.
  std::vector<stats::SurvivalObservation> activity;
  activity.reserve(coalesced.faults.size());
  const SimTime censor_horizon = window.end.AddDays(-1);
  for (const auto& fault : coalesced.faults) {
    stats::SurvivalObservation obs;
    obs.time = std::max(
        static_cast<double>(SecondsBetween(fault.first_seen, fault.last_seen)) /
            kSecondsPerDay,
        1.0 / 24.0);  // sub-hour activity floored at one hour
    obs.event = fault.last_seen < censor_horizon;
    activity.push_back(obs);
  }
  analysis.fault_activity_days = stats::KaplanMeier(activity);
  analysis.median_fault_activity_days = analysis.fault_activity_days.MedianSurvival();
  return analysis;
}

LifetimeAnalysis AnalyzeLifetimes(std::span<const logs::MemoryErrorRecord> records,
                                  const CoalesceResult& coalesced, TimeWindow window,
                                  int dimm_count) {
  LifetimeEngine engine;
  std::uint64_t seq = 0;
  for (const auto& record : records) engine.Observe(record, seq++);
  return engine.Finalize(coalesced, window, dimm_count);
}

ReplacementLifetimeAnalysis AnalyzeReplacementLifetimes(
    std::span<const replace::ReplacementEvent> events, logs::ComponentKind kind,
    TimeWindow tracking, int site_count) {
  ReplacementLifetimeAnalysis analysis;
  analysis.sites = static_cast<std::size_t>(site_count);
  const double tracking_days = tracking.DurationDays();

  // Lifetime of the ORIGINAL part in each site: time from tracking start to
  // its first replacement; sites never replaced are censored at window end.
  // (Subsequent same-site replacements belong to the next part's lifetime
  // and are rare enough at these rates to ignore for the fit.)
  std::unordered_map<std::int64_t, double> first_replacement_day;
  for (const auto& event : events) {
    if (event.site.kind != kind) continue;
    const std::int64_t key = static_cast<std::int64_t>(event.site.node) * 64 +
                             event.site.index;
    const double day = static_cast<double>(SecondsBetween(tracking.begin, event.day)) /
                       kSecondsPerDay;
    const auto it = first_replacement_day.find(key);
    if (it == first_replacement_day.end() || day < it->second) {
      first_replacement_day[key] = day;
    }
    ++analysis.replacements;
  }

  std::vector<stats::SurvivalObservation> lifetimes;
  lifetimes.reserve(static_cast<std::size_t>(site_count));
  for (const std::int64_t site : SortedKeys(first_replacement_day)) {
    // Day-0 replacements are valid events; keep strictly positive times for
    // the log-based Weibull estimator.
    lifetimes.push_back(stats::SurvivalObservation{
        std::max(first_replacement_day.at(site), 0.5), true});
  }
  const std::size_t censored =
      static_cast<std::size_t>(site_count) > first_replacement_day.size()
          ? static_cast<std::size_t>(site_count) - first_replacement_day.size()
          : 0;
  for (std::size_t i = 0; i < censored; ++i) {
    lifetimes.push_back(stats::SurvivalObservation{tracking_days, false});
  }

  analysis.lifetime_fit = stats::FitWeibull(lifetimes);
  analysis.exponential = stats::FitExponential(lifetimes);
  analysis.afr = stats::AnnualizedFailureRate(
      first_replacement_day.size(), analysis.exponential.total_exposure, 365.25);
  return analysis;
}

}  // namespace astra::core
