#include "core/uncorrectable.hpp"

#include "stats/special.hpp"

#include <algorithm>

namespace astra::core {

double FitFromAnnualRate(double events_per_device_year) noexcept {
  return events_per_device_year / kHoursPerYear * 1e9;
}

UncorrectableAnalysis AnalyzeUncorrectable(std::span<const logs::HetRecord> records,
                                           TimeWindow recording_window, int dimm_count,
                                           const DataQuality* quality) {
  UncorrectableAnalysis analysis;
  analysis.recording_window = recording_window;
  analysis.dimm_count = dimm_count;

  const auto days = static_cast<std::size_t>(std::max<std::int64_t>(
      1, (recording_window.DurationSeconds() + SimTime::kSecondsPerDay - 1) /
             SimTime::kSecondsPerDay));
  for (auto& series : analysis.daily_by_type) series.assign(days, 0);
  analysis.daily_non_recoverable.assign(days, 0);

  for (const auto& r : records) {
    if (r.timestamp < recording_window.begin) {
      ++analysis.events_before_recording;
      continue;
    }
    if (!recording_window.Contains(r.timestamp)) continue;
    ++analysis.total_het_events;
    const auto day = static_cast<std::size_t>(
        SecondsBetween(recording_window.begin, r.timestamp) / SimTime::kSecondsPerDay);
    if (day >= days) continue;
    ++analysis.daily_by_type[static_cast<std::size_t>(r.event)][day];
    if (logs::IsMemoryDueEvent(r.event)) {
      ++analysis.memory_due_events;
      if (r.severity == logs::HetSeverity::kNonRecoverable) {
        ++analysis.daily_non_recoverable[day];
      }
    }
  }

  const double years = recording_window.DurationDays() / 365.25;
  if (dimm_count > 0 && years > 0.0) {
    analysis.dues_per_dimm_per_year = static_cast<double>(analysis.memory_due_events) /
                                      static_cast<double>(dimm_count) / years;
    analysis.fit_per_dimm = FitFromAnnualRate(analysis.dues_per_dimm_per_year);
    const stats::PoissonRateInterval ci = stats::PoissonRateCi(
        analysis.memory_due_events, static_cast<double>(dimm_count) * years);
    analysis.fit_ci_lo = FitFromAnnualRate(ci.lo);
    analysis.fit_ci_hi = FitFromAnnualRate(ci.hi);
  }

  // --- graceful degradation -------------------------------------------------
  if (analysis.memory_due_events < kMinDueEventsForRate) {
    analysis.low_confidence = true;
    analysis.caveats.push_back(
        "FIT rate rests on " + std::to_string(analysis.memory_due_events) +
        " DUE event(s) (< " + std::to_string(kMinDueEventsForRate) +
        "): quote the Garwood interval, not the point estimate");
  }
  if (quality != nullptr && quality->Degraded()) {
    analysis.low_confidence =
        analysis.low_confidence || quality->stream_missing || quality->over_budget;
    const auto extra = quality->Caveats();
    analysis.caveats.insert(analysis.caveats.end(), extra.begin(), extra.end());
  }
  return analysis;
}

}  // namespace astra::core
