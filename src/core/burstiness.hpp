// Temporal burstiness analysis of event streams.  The paper's central
// errors-vs-faults distinction has a temporal signature: FAULT arrivals are
// close to a Poisson process (independent rare defects), while ERROR
// arrivals are violently super-Poissonian (one fault replays for hours).
// Two standard dispersion measures quantify that:
//
//   - Fano factor: variance/mean of event counts in fixed windows
//     (1 for Poisson, >> 1 for clustered streams);
//   - squared coefficient of variation (CV^2) of inter-arrival times
//     (1 for Poisson, > 1 for bursty).
//
// Operationally this matters for log infrastructure sizing (§2.3's bounded
// CE buffer drops exactly these bursts) and for failure modeling: fitting a
// Poisson rate to raw CE counts, as error-based studies implicitly do,
// mis-sizes everything downstream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "logs/records.hpp"
#include "util/binio.hpp"
#include "util/sim_time.hpp"

namespace astra::core {

struct BurstinessAnalysis {
  std::size_t events = 0;
  std::size_t windows = 0;
  double mean_per_window = 0.0;
  double fano_factor = 0.0;      // 1 = Poisson
  double interarrival_cv2 = 0.0; // 1 = Poisson
  double max_window_count = 0.0;

  // Dispersion verdicts with head-room for sampling noise.
  [[nodiscard]] bool SuperPoisson() const noexcept { return fano_factor > 2.0; }
  [[nodiscard]] bool PoissonLike() const noexcept {
    return fano_factor > 0.25 && fano_factor < 4.0;
  }
};

// `timestamps` may be unsorted; only events inside `window` count.
// `bucket_seconds` sets the Fano-factor window length.
[[nodiscard]] BurstinessAnalysis AnalyzeBurstiness(std::span<const SimTime> timestamps,
                                                   TimeWindow window,
                                                   std::int64_t bucket_seconds =
                                                       SimTime::kSecondsPerHour);

// The burstiness analyzer engine (contract in core/engine.hpp) over the CE
// record stream.  The dispersion measures need every arrival time, so the
// engine buffers CE timestamps; AnalyzeBurstiness sorts internally, making
// the merge-by-concatenation exact in any shard order.  (The fault-onset
// variants of the analysis run on coalesce output, not on this engine.)
class BurstinessEngine {
 public:
  void Observe(const logs::MemoryErrorRecord& record, std::uint64_t /*seq*/) {
    if (record.type == logs::FailureType::kCorrectable) {
      ce_times_.push_back(record.timestamp);
    }
  }

  // Concatenates; fails only on self-merge (no configuration to mismatch).
  [[nodiscard]] bool MergeFrom(const BurstinessEngine& other);

  void Snapshot(binio::Writer& writer) const;
  // False on a malformed payload (engine left empty, never half-restored).
  [[nodiscard]] bool Restore(binio::Reader& reader);

  [[nodiscard]] BurstinessAnalysis Finalize(TimeWindow window,
                                            std::int64_t bucket_seconds =
                                                SimTime::kSecondsPerHour) const {
    return AnalyzeBurstiness(ce_times_, window, bucket_seconds);
  }

 private:
  std::vector<SimTime> ce_times_;
};

}  // namespace astra::core
