// Temporal series builders: the monthly error/fault-mode series of Fig. 4a
// and generic daily event counting used by Figs. 3 and 15.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/coalesce.hpp"
#include "logs/records.hpp"
#include "util/sim_time.hpp"

namespace astra::core {

struct MonthlyErrorSeries {
  SimTime origin;   // month 0
  int month_count = 0;

  std::vector<std::uint64_t> all_errors;  // CE records per calendar month
  // Errors per month attributed to faults of each observed mode.
  std::array<std::vector<std::uint64_t>, faultsim::kObservedModeCount> by_mode;

  // OLS slope of monthly totals (per month): negative = the paper's
  // "slightly downward trend as time progresses" (§3.2).
  [[nodiscard]] double TrendSlopePerMonth() const noexcept;
};

// `coalesced` must have been produced with month tracking enabled
// (CoalesceOptions::month_count > 0 and matching origin).  `threads` > 1
// bins record shards into per-thread month vectors summed in index order —
// identical output at any thread count (0 = hardware, 1 = serial).
[[nodiscard]] MonthlyErrorSeries BuildMonthlySeries(
    std::span<const logs::MemoryErrorRecord> records, const CoalesceResult& coalesced,
    SimTime origin, int month_count, unsigned threads = 1);

// Daily counts over a window (day 0 = window.begin's date).
[[nodiscard]] std::vector<std::uint64_t> DailyCounts(std::span<const SimTime> timestamps,
                                                     TimeWindow window);

}  // namespace astra::core
