// Temporal series builders: the monthly error/fault-mode series of Fig. 4a
// and generic daily event counting used by Figs. 3 and 15.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/coalesce.hpp"
#include "logs/records.hpp"
#include "util/binio.hpp"
#include "util/sim_time.hpp"

namespace astra::core {

struct MonthlyErrorSeries {
  SimTime origin;   // month 0
  int month_count = 0;

  std::vector<std::uint64_t> all_errors;  // CE records per calendar month
  // Errors per month attributed to faults of each observed mode.
  std::array<std::vector<std::uint64_t>, faultsim::kObservedModeCount> by_mode;

  // OLS slope of monthly totals (per month): negative = the paper's
  // "slightly downward trend as time progresses" (§3.2).
  [[nodiscard]] double TrendSlopePerMonth() const noexcept;
};

// The temporal analyzer engine (contract in core/engine.hpp): bins CE
// records by ABSOLUTE calendar month so the campaign window need not be
// known during observation; Finalize remaps onto the origin-relative series
// and folds in the per-mode split carried by the coalesce fragment.
class TemporalEngine {
 public:
  // Binning is order-insensitive; the global sequence number is unused.
  void Observe(const logs::MemoryErrorRecord& record, std::uint64_t /*seq*/);

  // Batched observation (core/engine.hpp): identical state to calling
  // Observe per record.  The batch walk memoizes the calendar-month range,
  // so consecutive same-month timestamps skip the civil-date conversion.
  void ObserveBatch(std::span<const logs::MemoryErrorRecord> batch,
                    std::uint64_t first_seq);

  // Month counts add; the engine carries no configuration, so the merge
  // always succeeds (status return = the uniform engine contract).
  [[nodiscard]] bool MergeFrom(const TemporalEngine& other);

  // Deterministic byte layout (ordered map).  Restore leaves the engine
  // empty and returns false on a malformed payload.
  void Snapshot(binio::Writer& writer) const;
  [[nodiscard]] bool Restore(binio::Reader& reader);

  // Project onto the series shape; months outside [0, month_count) are
  // dropped.  `coalesced` supplies the per-mode monthly split and must have
  // been finalized with the same (origin, month_count).
  [[nodiscard]] MonthlyErrorSeries Finalize(const CoalesceResult& coalesced,
                                            SimTime origin, int month_count) const;

 private:
  std::map<std::int64_t, std::uint64_t> ce_by_month_;  // absolute month -> CEs
};

// `coalesced` must have been produced with month tracking enabled
// (CoalesceOptions::month_count > 0 and matching origin).  `threads` > 1
// feeds record shards into per-shard TemporalEngines reduced via MergeFrom
// in index order — identical output at any thread count (0 = hardware,
// 1 = serial).
[[nodiscard]] MonthlyErrorSeries BuildMonthlySeries(
    std::span<const logs::MemoryErrorRecord> records, const CoalesceResult& coalesced,
    SimTime origin, int month_count, unsigned threads = 1);

// Daily counts over a window (day 0 = window.begin's date).
[[nodiscard]] std::vector<std::uint64_t> DailyCounts(std::span<const SimTime> timestamps,
                                                     TimeWindow window);

}  // namespace astra::core
