#include "core/data_quality.hpp"

#include "util/strings.hpp"

namespace astra::core {

DataQuality DataQuality::FromReport(const logs::IngestReport& report) {
  DataQuality q;
  q.lines_seen = report.stats.total_lines;
  q.parsed = report.stats.parsed;
  q.quarantined = report.stats.malformed;
  q.duplicates_removed = report.duplicates_removed;
  q.out_of_order = report.out_of_order_seen;
  q.reordered = report.reordered;
  q.order_violations = report.order_violations;
  q.header_remapped = report.header_remapped;
  q.over_budget = report.budget_exceeded;
  return q;
}

void DataQuality::Merge(const DataQuality& other) {
  lines_seen += other.lines_seen;
  parsed += other.parsed;
  quarantined += other.quarantined;
  duplicates_removed += other.duplicates_removed;
  out_of_order += other.out_of_order;
  reordered += other.reordered;
  order_violations += other.order_violations;
  header_remapped = header_remapped || other.header_remapped;
  over_budget = over_budget || other.over_budget;
  stream_missing = stream_missing || other.stream_missing;
}

bool DataQuality::Degraded() const noexcept {
  return quarantined > 0 || duplicates_removed > 0 || out_of_order > 0 ||
         order_violations > 0 || header_remapped || over_budget || stream_missing;
}

std::vector<std::string> DataQuality::Caveats() const {
  std::vector<std::string> caveats;
  if (quarantined > 0) {
    caveats.push_back(WithThousands(quarantined) + " of " +
                      WithThousands(lines_seen) + " telemetry lines quarantined (" +
                      FormatDouble(100.0 * QuarantinedFraction(), 2) +
                      "%): error and fault counts are lower bounds");
  }
  if (duplicates_removed > 0) {
    caveats.push_back(WithThousands(duplicates_removed) +
                      " duplicate records removed: raw per-line counts upstream of "
                      "this ingest are inflated");
  }
  if (order_violations > 0) {
    caveats.push_back(WithThousands(order_violations) +
                      " records delivered out of order (beyond the reorder "
                      "window): time-series and burst statistics may be distorted");
  } else if (reordered > 0) {
    caveats.push_back(WithThousands(reordered) +
                      " records re-sorted into order: inter-arrival statistics "
                      "carry clock-granularity noise");
  }
  if (header_remapped) {
    caveats.push_back(
        "column schema drift repaired by header remapping: verify the source "
        "collector version");
  }
  if (stream_missing) {
    caveats.push_back(
        "a telemetry stream is missing entirely: the analyses that depend on it "
        "were skipped or computed from partial data");
  }
  if (over_budget) {
    caveats.push_back(
        "malformed fraction exceeds the ingest budget: treat every conclusion "
        "from this dataset as suspect");
  }
  return caveats;
}

}  // namespace astra::core
