#include "core/impact.hpp"

#include <unordered_map>
#include <unordered_set>

namespace astra::core {

ImpactAnalysis AnalyzeImpact(std::span<const logs::MemoryErrorRecord> records,
                             TimeWindow window, int node_count,
                             const ImpactConfig& config) {
  ImpactAnalysis analysis;
  analysis.total_node_hours =
      static_cast<double>(node_count) * window.DurationDays() * 24.0;
  if (analysis.total_node_hours <= 0.0) return analysis;

  // Storm detection: CEs per (node, hour).  Multi-bit signature tracking for
  // the chipkill counterfactual: (dimm, address) -> distinct recorded bits.
  std::unordered_map<std::uint64_t, std::uint32_t> ces_per_node_hour;
  std::unordered_map<std::uint64_t, std::unordered_set<std::int32_t>> bits_per_word;
  std::unordered_set<std::int64_t> multibit_dimms;

  for (const auto& r : records) {
    if (!window.Contains(r.timestamp)) continue;
    const std::int64_t dimm = GlobalDimmIndex(r.node, r.slot);
    if (r.type == logs::FailureType::kCorrectable) {
      const std::uint64_t node_hour =
          (static_cast<std::uint64_t>(r.node) << 24) |
          static_cast<std::uint64_t>(SecondsBetween(window.begin, r.timestamp) /
                                     SimTime::kSecondsPerHour);
      ++ces_per_node_hour[node_hour];
      // Word key: dimm plus the word address; recorded bit positions under
      // one word reveal the multi-bit (chipkill-correctable) class.
      const std::uint64_t word_key =
          static_cast<std::uint64_t>(dimm) * 1315423911ULL ^ r.physical_address;
      auto& bits = bits_per_word[word_key];
      bits.insert(r.bit_position);
      if (bits.size() >= 2) multibit_dimms.insert(dimm);
      continue;
    }
    // DUE.
    ++analysis.due_events;
    if (multibit_dimms.count(dimm) > 0) {
      // Single-device multi-bit signature preceded this DUE: a
      // chipkill-class code corrects that pattern instead of crashing.
      ++analysis.dues_avoidable_with_chipkill;
    }
  }

  // astra-lint: allow(det-unordered-iter): order-independent threshold count.
  for (const auto& [node_hour, count] : ces_per_node_hour) {
    if (count >= config.storm_ces_per_hour) ++analysis.storm_node_hours;
  }

  analysis.node_hours_lost_to_dues =
      static_cast<double>(analysis.due_events) *
      (config.due_outage_minutes / 60.0 + config.due_lost_work_node_hours);
  analysis.node_hours_lost_to_storms =
      static_cast<double>(analysis.storm_node_hours) * config.storm_slowdown_fraction;
  analysis.availability =
      1.0 - analysis.TotalLostNodeHours() / analysis.total_node_hours;
  analysis.node_hours_saved_by_chipkill =
      static_cast<double>(analysis.dues_avoidable_with_chipkill) *
      (config.due_outage_minutes / 60.0 + config.due_lost_work_node_hours);
  return analysis;
}

}  // namespace astra::core
