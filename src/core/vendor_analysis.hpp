// Per-vendor reliability analysis.  Astra's CE records encode a consistent
// per-DIMM vendor tag in the high bits of the recorded bit position (§3.2
// footnote; logs::EncodeRecordedBit).  That makes the DIMM vendor
// RECOVERABLE from the error log alone — any DIMM that ever logged a CE
// reveals its vendor — which is exactly the information Sridharan et al.
// used to resolve their per-rack error trends into manufacturer effects,
// and the paper's limitations section flags as a first-order reliability
// variable.
//
// Caveat handled explicitly: vendor identity is only known for DIMMs that
// LOGGED at least one error, so per-vendor denominators must be estimated.
// With a deterministic hash-mix (as on Astra's simulated fleet) each vendor
// holds ~1/4 of the population; `assumed_vendor_share` makes the assumption
// visible and overridable.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "core/coalesce.hpp"
#include "stats/bootstrap.hpp"
#include "util/binio.hpp"

namespace astra::core {

inline constexpr int kVendorCount = 4;

struct VendorSummary {
  int vendor = 0;
  std::uint64_t dimms_observed = 0;  // DIMMs of this vendor that logged CEs
  std::uint64_t faults = 0;
  std::uint64_t errors = 0;
  double faults_per_dimm_year = 0.0;  // against the estimated population
  stats::BootstrapInterval rate_ci;   // bootstrap over per-DIMM fault counts
};

struct VendorAnalysis {
  std::array<VendorSummary, kVendorCount> vendors;
  std::uint64_t unattributed_faults = 0;  // malformed/out-of-range encodings

  // Ratio of the highest to lowest per-vendor fault rate — Sridharan et
  // al.'s headline was a multiple-x spread between manufacturers.
  [[nodiscard]] double MaxToMinRateRatio() const noexcept;
};

struct VendorAnalysisOptions {
  // Fraction of the DIMM population assumed per vendor (uniform mix).
  std::array<double, kVendorCount> assumed_vendor_share = {0.25, 0.25, 0.25, 0.25};
  double campaign_days = 237.0;
  int dimm_population = kNumDimms;
  std::size_t bootstrap_replicates = 400;
  std::uint64_t bootstrap_seed = 0xb007ULL;
};

[[nodiscard]] VendorAnalysis AnalyzeVendors(const CoalesceResult& coalesced,
                                            const VendorAnalysisOptions& options);

// The vendor analyzer engine (contract in core/engine.hpp).  Vendor rates
// are a pure function of the coalesce fragment (the vendor tag rides in each
// fault's anchor bit encoding), so like SpatialEngine this is a
// finalize-stage engine with no per-record state.
class VendorEngine {
 public:
  void Observe(const logs::MemoryErrorRecord& /*record*/, std::uint64_t /*seq*/) {}
  [[nodiscard]] bool MergeFrom(const VendorEngine& other) {
    return &other != this;
  }
  void Snapshot(binio::Writer& /*writer*/) const {}
  [[nodiscard]] bool Restore(binio::Reader& reader) { return reader.Ok(); }
  [[nodiscard]] VendorAnalysis Finalize(const CoalesceResult& coalesced,
                                        const VendorAnalysisOptions& options) const {
    return AnalyzeVendors(coalesced, options);
  }
};

}  // namespace astra::core
