#include "core/report.hpp"

#include <algorithm>
#include <ostream>

#include "util/strings.hpp"
#include "util/text_table.hpp"

namespace astra::core {

void RenderCaveats(std::ostream& out, const std::vector<std::string>& caveats) {
  if (caveats.empty()) return;
  out << "== data-quality caveats ==\n";
  for (const auto& caveat : caveats) out << "  ! " << caveat << '\n';
}

void RenderAnalysisReport(std::ostream& out, const AnalysisArtifacts& artifacts) {
  const auto& faults = artifacts.faults;
  const auto& positions = artifacts.positions;
  const int nodes = artifacts.node_span;

  out << "== volume ==\n";
  out << "  records: " << WithThousands(artifacts.record_count) << " ("
      << WithThousands(faults.total_errors) << " CEs, "
      << WithThousands(faults.skipped_records) << " DUEs)\n";
  out << "  coalesced faults: " << WithThousands(faults.faults.size()) << '\n';
  out << "  nodes with CEs: " << positions.nodes_with_errors << " of " << nodes
      << '\n';

  out << "== fault modes ==\n";
  TextTable modes({"mode", "faults", "errors"});
  for (int m = 0; m < faultsim::kObservedModeCount; ++m) {
    const auto mode = static_cast<faultsim::ObservedMode>(m);
    if (faults.FaultsOfMode(mode) == 0) continue;
    modes.AddRow({std::string(faultsim::ObservedModeName(mode)),
                  WithThousands(faults.FaultsOfMode(mode)),
                  WithThousands(faults.ErrorsOfMode(mode))});
  }
  modes.Print(out);

  out << "== positional verdicts (fault counts) ==\n";
  const auto verdict = [](const stats::ChiSquareResult& r) {
    return std::string(r.ConsistentWithUniform() ? "uniform" : "skewed") + " (V=" +
           FormatDouble(r.cramers_v, 3) + ")";
  };
  out << "  socket: " << verdict(positions.fault_uniformity.socket)
      << "\n  bank:   " << verdict(positions.fault_uniformity.bank)
      << "\n  column: " << verdict(positions.fault_uniformity.column)
      << "\n  slot:   " << verdict(positions.fault_uniformity.slot)
      << "\n  rack:   " << verdict(positions.fault_uniformity.rack)
      << "\n  region: " << verdict(positions.fault_uniformity.region) << '\n';
  out << "  rank0/rank1 faults: " << positions.faults.per_rank[0] << "/"
      << positions.faults.per_rank[1] << '\n';
  out << "  top 2% nodes hold "
      << FormatDouble(100.0 * positions.ce_concentration.ShareOfTop(
                                  static_cast<std::size_t>(
                                      std::max(1, nodes / 50))),
                      1)
      << "% of CEs\n";

  out << "== monthly CE series ==\n  ";
  for (const auto m : artifacts.series.all_errors) out << m << ' ';
  out << "(trend " << FormatDouble(artifacts.series.TrendSlopePerMonth(), 1)
      << "/month)\n";

  out << "== uncorrectable ==\n  HET-recorded DUEs: "
      << artifacts.dues.memory_due_events
      << "  FIT/DIMM: " << FormatDouble(artifacts.dues.fit_per_dimm, 0)
      << (artifacts.dues.low_confidence ? "  [low confidence]" : "") << '\n';

  const auto& prediction = artifacts.prediction;
  out << "== DUE early warning (multi-bit signature) ==\n  flagged DIMMs: "
      << prediction.dimms_flagged
      << "  precision: " << FormatDouble(prediction.Precision(), 2)
      << "  recall: " << FormatDouble(prediction.Recall(), 2) << '\n';
  if (!prediction.flags.empty()) {
    out << "  first flags:\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(5, prediction.flags.size());
         ++i) {
      const auto& flag = prediction.flags[i];
      out << "    " << flag.flagged_at.ToString() << "  node " << flag.node
          << " slot " << DimmSlotLetter(flag.slot) << "  (" << flag.reason
          << ")\n";
    }
  }

  // Every stage repeats the shared ingest caveats; print each once.
  std::vector<std::string> caveats;
  const auto add_unique = [&caveats](const std::vector<std::string>& more) {
    for (const auto& c : more) {
      if (std::find(caveats.begin(), caveats.end(), c) == caveats.end()) {
        caveats.push_back(c);
      }
    }
  };
  add_unique(faults.caveats);
  add_unique(positions.caveats);
  add_unique(artifacts.dues.caveats);
  RenderCaveats(out, caveats);
}

namespace {

// One stream's ingest accounting line, printed unconditionally so malformed
// lines are never silently swallowed (an empty report is itself information).
void RenderIngestLine(std::ostream& out, const std::string& name,
                      const logs::IngestReport& report) {
  out << "  " << name << ": " << WithThousands(report.stats.total_lines)
      << " lines, " << WithThousands(report.stats.parsed) << " parsed, "
      << WithThousands(report.stats.malformed) << " quarantined ("
      << FormatDouble(100.0 * report.stats.MalformedFraction(), 2) << "%)";
  if (report.stats.malformed > 0) {
    out << " [";
    bool first = true;
    for (int r = 0; r < logs::kMalformedReasonCount; ++r) {
      const auto n = report.malformed_by_reason[static_cast<std::size_t>(r)];
      if (n == 0) continue;
      out << (first ? "" : ", ")
          << logs::MalformedReasonName(static_cast<logs::MalformedReason>(r))
          << " " << n;
      first = false;
    }
    out << "]";
  }
  if (report.duplicates_removed > 0) {
    out << ", " << WithThousands(report.duplicates_removed) << " deduped";
  }
  if (report.reordered > 0 || report.order_violations > 0) {
    out << ", " << WithThousands(report.reordered) << " re-sorted";
    if (report.order_violations > 0) {
      out << " (" << WithThousands(report.order_violations) << " beyond window)";
    }
  }
  if (report.header_remapped) out << ", header remapped";
  out << '\n';
}

}  // namespace

void RenderIngestReport(std::ostream& out, const logs::IngestPolicy& policy,
                        const logs::IngestReport& memory_report,
                        const logs::IngestReport* het_report) {
  out << "== ingest ("
      << (policy.mode == logs::IngestPolicy::Mode::kStrict ? "strict" : "lenient")
      << ", budget " << FormatDouble(100.0 * policy.max_malformed_fraction, 1)
      << "%) ==\n";
  RenderIngestLine(out, "memory_errors", memory_report);
  if (het_report == nullptr) {
    out << "  het_events: MISSING (DUE analysis degrades)\n";
  } else {
    RenderIngestLine(out, "het_events", *het_report);
  }
  for (const auto& repair : memory_report.repairs) {
    out << "  repair: " << repair << '\n';
  }
  if (het_report != nullptr) {
    for (const auto& repair : het_report->repairs) {
      out << "  repair: " << repair << '\n';
    }
  }
}

void RenderEmptyDatasetReport(std::ostream& out, const DataQuality& quality) {
  out << "== volume ==\n  records: 0 — analysis skipped "
         "(no parseable memory error records)\n";
  RenderCaveats(out, quality.Caveats());
}

}  // namespace astra::core
