#include "core/vendor_analysis.hpp"

#include <algorithm>
#include <map>

namespace astra::core {
namespace {

// Vendor tag from a recorded bit position: bits [7, 9) (logs::EncodeRecordedBit).
int VendorOfRecordedBit(std::int32_t recorded) noexcept {
  return (recorded >> 7) & 0x3;
}

}  // namespace

double VendorAnalysis::MaxToMinRateRatio() const noexcept {
  double lo = 1e300, hi = 0.0;
  for (const VendorSummary& v : vendors) {
    if (v.faults == 0) continue;
    lo = std::min(lo, v.faults_per_dimm_year);
    hi = std::max(hi, v.faults_per_dimm_year);
  }
  return lo > 0.0 && lo < 1e300 ? hi / lo : 0.0;
}

VendorAnalysis AnalyzeVendors(const CoalesceResult& coalesced,
                              const VendorAnalysisOptions& options) {
  VendorAnalysis analysis;
  for (int v = 0; v < kVendorCount; ++v) {
    analysis.vendors[static_cast<std::size_t>(v)].vendor = v;
  }

  // Per-DIMM fault counts keyed by (dimm, vendor) — the vendor read off the
  // fault's recorded anchor bit.
  std::map<std::int64_t, std::pair<int, std::uint64_t>> per_dimm;  // dimm -> (vendor, faults)
  for (const auto& fault : coalesced.faults) {
    const int vendor = VendorOfRecordedBit(fault.anchor_bit);
    if (vendor < 0 || vendor >= kVendorCount) {
      ++analysis.unattributed_faults;
      continue;
    }
    auto& summary = analysis.vendors[static_cast<std::size_t>(vendor)];
    ++summary.faults;
    summary.errors += fault.error_count;
    auto& slot = per_dimm[GlobalDimmIndex(fault.node, fault.slot)];
    slot.first = vendor;
    ++slot.second;
  }

  // Observed DIMMs and per-vendor per-DIMM samples for the bootstrap.
  std::array<std::vector<double>, kVendorCount> samples;
  for (const auto& [dimm, entry] : per_dimm) {
    auto& summary = analysis.vendors[static_cast<std::size_t>(entry.first)];
    ++summary.dimms_observed;
    samples[static_cast<std::size_t>(entry.first)].push_back(
        static_cast<double>(entry.second));
  }

  const double years = options.campaign_days / 365.25;
  Rng rng(options.bootstrap_seed);
  for (int v = 0; v < kVendorCount; ++v) {
    auto& summary = analysis.vendors[static_cast<std::size_t>(v)];
    const double population = options.assumed_vendor_share[static_cast<std::size_t>(v)] *
                              static_cast<double>(options.dimm_population);
    if (population <= 0.0 || years <= 0.0) continue;
    summary.faults_per_dimm_year =
        static_cast<double>(summary.faults) / population / years;

    // Bootstrap the rate over observed per-DIMM fault counts; zero-fault
    // DIMMs contribute through the fixed population denominator.
    const auto& vendor_samples = samples[static_cast<std::size_t>(v)];
    if (!vendor_samples.empty()) {
      Rng vendor_rng = rng.Fork(static_cast<std::uint64_t>(v));
      summary.rate_ci = stats::BootstrapCi(
          vendor_samples,
          [&](std::span<const double> xs) {
            double total = 0.0;
            for (const double x : xs) total += x;
            return total / population / years;
          },
          vendor_rng, options.bootstrap_replicates);
    }
  }
  return analysis;
}

}  // namespace astra::core
