// Uncorrectable error analysis (§3.5, Fig. 15): HET event series, the
// non-recoverable subset, and the DUE-rate / FIT arithmetic.
//
// FIT (Failures In Time) = failures per 10^9 device-hours.  The paper:
// "the average number of DUEs per DIMM per year is 0.00948, which yields a
// FIT per DIMM of approximately 1081."  (0.00948 / 8766 h * 1e9 = 1081.)
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/data_quality.hpp"
#include "core/record_buffer.hpp"
#include "logs/records.hpp"
#include "util/sim_time.hpp"

namespace astra::core {

struct UncorrectableAnalysis {
  // Daily counts per HET event type over the recording window (Fig. 15a).
  std::array<std::vector<std::uint64_t>, logs::kHetEventTypeCount> daily_by_type;
  // Daily counts of NON-RECOVERABLE memory events (Fig. 15b).
  std::vector<std::uint64_t> daily_non_recoverable;

  TimeWindow recording_window;  // firmware start .. window end
  std::uint64_t total_het_events = 0;
  std::uint64_t memory_due_events = 0;   // uncorrectableECC + MCE
  std::uint64_t events_before_recording = 0;  // should be 0 on Astra

  int dimm_count = 0;
  double dues_per_dimm_per_year = 0.0;
  double fit_per_dimm = 0.0;
  // Exact (Garwood) 95% CI on the FIT estimate — essential honesty for a
  // rate derived from a handful of recorded events (§3.5's 0.00948/yr rests
  // on a ~22-day sample).
  double fit_ci_lo = 0.0;
  double fit_ci_hi = 0.0;

  // Graceful degradation: true when the FIT rate rests on fewer than
  // kMinDueEventsForRate events (or the HET stream was damaged/missing).
  bool low_confidence = false;
  std::vector<std::string> caveats;
};

// Hours per year used in FIT arithmetic (Julian year, as in the paper).
inline constexpr double kHoursPerYear = 8766.0;

[[nodiscard]] double FitFromAnnualRate(double events_per_device_year) noexcept;

// `recording_window`: the span over which the HET was actually recording
// (post-firmware-update).  `dimm_count`: DIMM population for the rate.
// `quality` (optional) carries ingest damage into the result's caveats.
[[nodiscard]] UncorrectableAnalysis AnalyzeUncorrectable(
    std::span<const logs::HetRecord> records, TimeWindow recording_window,
    int dimm_count, const DataQuality* quality = nullptr);

// The uncorrectable analyzer engine (contract in core/engine.hpp).  DUEs are
// rare, so the engine simply buffers the HET stream verbatim and replays it
// through AnalyzeUncorrectable at finalize time — the recording window (and
// hence the daily-series shape) is only known once observation ends.
class UncorrectableEngine {
 public:
  // Observes the HET stream, not the memory-error stream; daily binning is
  // order-insensitive, so the global sequence number is unused.
  void Observe(const logs::HetRecord& record, std::uint64_t /*seq*/) {
    records_.Add(record);
  }

  [[nodiscard]] bool MergeFrom(const UncorrectableEngine& other) {
    return records_.MergeFrom(other.records_);
  }

  void Snapshot(binio::Writer& writer) const { records_.Snapshot(writer); }
  [[nodiscard]] bool Restore(binio::Reader& reader) {
    return records_.Restore(reader);
  }

  [[nodiscard]] UncorrectableAnalysis Finalize(
      TimeWindow recording_window, int dimm_count,
      const DataQuality* quality = nullptr) const {
    return AnalyzeUncorrectable(records_.Records(), recording_window, dimm_count,
                                quality);
  }

  // Earliest buffered HET timestamp, used by drivers to infer the recording
  // window's start; `fallback` when nothing has been observed.
  [[nodiscard]] SimTime EarliestTimestamp(SimTime fallback) const {
    SimTime earliest = fallback;
    for (const auto& record : records_.Records()) {
      earliest = std::min(earliest, record.timestamp);
    }
    return earliest;
  }

  [[nodiscard]] std::span<const logs::HetRecord> Records() const {
    return records_.Records();
  }

 private:
  RecordBuffer<logs::HetRecord> records_;
};

}  // namespace astra::core
