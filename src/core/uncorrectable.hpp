// Uncorrectable error analysis (§3.5, Fig. 15): HET event series, the
// non-recoverable subset, and the DUE-rate / FIT arithmetic.
//
// FIT (Failures In Time) = failures per 10^9 device-hours.  The paper:
// "the average number of DUEs per DIMM per year is 0.00948, which yields a
// FIT per DIMM of approximately 1081."  (0.00948 / 8766 h * 1e9 = 1081.)
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/data_quality.hpp"
#include "logs/records.hpp"
#include "util/sim_time.hpp"

namespace astra::core {

struct UncorrectableAnalysis {
  // Daily counts per HET event type over the recording window (Fig. 15a).
  std::array<std::vector<std::uint64_t>, logs::kHetEventTypeCount> daily_by_type;
  // Daily counts of NON-RECOVERABLE memory events (Fig. 15b).
  std::vector<std::uint64_t> daily_non_recoverable;

  TimeWindow recording_window;  // firmware start .. window end
  std::uint64_t total_het_events = 0;
  std::uint64_t memory_due_events = 0;   // uncorrectableECC + MCE
  std::uint64_t events_before_recording = 0;  // should be 0 on Astra

  int dimm_count = 0;
  double dues_per_dimm_per_year = 0.0;
  double fit_per_dimm = 0.0;
  // Exact (Garwood) 95% CI on the FIT estimate — essential honesty for a
  // rate derived from a handful of recorded events (§3.5's 0.00948/yr rests
  // on a ~22-day sample).
  double fit_ci_lo = 0.0;
  double fit_ci_hi = 0.0;

  // Graceful degradation: true when the FIT rate rests on fewer than
  // kMinDueEventsForRate events (or the HET stream was damaged/missing).
  bool low_confidence = false;
  std::vector<std::string> caveats;
};

// Hours per year used in FIT arithmetic (Julian year, as in the paper).
inline constexpr double kHoursPerYear = 8766.0;

[[nodiscard]] double FitFromAnnualRate(double events_per_device_year) noexcept;

// `recording_window`: the span over which the HET was actually recording
// (post-firmware-update).  `dimm_count`: DIMM population for the rate.
// `quality` (optional) carries ingest damage into the result's caveats.
[[nodiscard]] UncorrectableAnalysis AnalyzeUncorrectable(
    std::span<const logs::HetRecord> records, TimeWindow recording_window,
    int dimm_count, const DataQuality* quality = nullptr);

}  // namespace astra::core
