// Verbatim record buffer — the engine state for analyses whose Finalize is
// a replay of the raw stream (temperature look-backs, impact accounting, the
// DUE daily series).  Buffering is the honest incremental form when the
// analysis is order-sensitive (impact's chipkill attribution depends on
// whether the multi-bit signature preceded the DUE) or needs finalize-time
// context that cannot be binned in advance (temperature's environment
// look-backs): replaying the exact stream is what makes the engine's
// Finalize byte-identical to the batch pass.
//
// MergeFrom concatenates, so under the drivers' shard-index-order reduction
// (util/parallel.hpp) the merged buffer IS the original stream order.
// Snapshot serializes through the canonical text codec (logs/serialize.hpp)
// — the same bytes the log files carry — so checkpoints stay debuggable and
// the parser's validation guards the restore path for free.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "logs/records.hpp"
#include "logs/serialize.hpp"
#include "util/binio.hpp"

namespace astra::core {
namespace detail {

// Overload set dispatching RecordBuffer<T>::Restore to the right parser.
[[nodiscard]] inline std::optional<logs::MemoryErrorRecord> ParseBufferedRecord(
    std::string_view line, const logs::MemoryErrorRecord*) {
  return logs::ParseMemoryError(line);
}
[[nodiscard]] inline std::optional<logs::HetRecord> ParseBufferedRecord(
    std::string_view line, const logs::HetRecord*) {
  return logs::ParseHet(line);
}

}  // namespace detail

template <typename Record>
class RecordBuffer {
 public:
  void Add(const Record& record) { records_.push_back(record); }

  // Batched append (one growth check instead of batch.size() of them) and
  // pre-sizing for feeders that know the stream length up front.
  void AddSpan(std::span<const Record> batch) {
    records_.insert(records_.end(), batch.begin(), batch.end());
  }
  void Reserve(std::size_t expected) { records_.reserve(expected); }

  // Appends the other buffer's records.  False (state unchanged) only on
  // self-merge; a buffer carries no configuration to mismatch.
  [[nodiscard]] bool MergeFrom(const RecordBuffer& other) {
    if (&other == this) return false;
    records_.insert(records_.end(), other.records_.begin(), other.records_.end());
    return true;
  }

  void Snapshot(binio::Writer& writer) const {
    writer.PutU64(records_.size());
    for (const Record& record : records_) {
      writer.PutString(logs::FormatRecord(record));
    }
  }

  // False on a malformed payload (buffer left empty, never half-restored).
  [[nodiscard]] bool Restore(binio::Reader& reader) {
    records_.clear();
    const std::uint64_t count = reader.GetU64();
    bool ok = reader.CanReadItems(count, 8);
    std::string line;
    for (std::uint64_t i = 0; ok && i < count; ++i) {
      ok = reader.GetString(line);
      if (!ok) break;
      const auto record =
          detail::ParseBufferedRecord(line, static_cast<const Record*>(nullptr));
      if (!record) {
        ok = false;
        break;
      }
      records_.push_back(*record);
    }
    if (!ok || !reader.Ok()) {
      records_.clear();
      return false;
    }
    return true;
  }

  [[nodiscard]] std::span<const Record> Records() const { return records_; }
  [[nodiscard]] bool Empty() const { return records_.empty(); }
  [[nodiscard]] std::size_t Size() const { return records_.size(); }

 private:
  std::vector<Record> records_;
};

}  // namespace astra::core
