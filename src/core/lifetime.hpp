// Lifetime / survival analyses over campaign telemetry:
//
//  - time-to-first-CE per DIMM (Kaplan-Meier + parametric fits): most DIMMs
//    never log an error during the window — textbook right-censoring;
//  - observed fault activity spans (first_seen .. last_seen);
//  - replacement-lifetime fit: treating time-in-service-until-replacement as
//    the lifetime variable recovers the §3.1 infant-mortality signature
//    (Weibull shape < 1) directly from inventory-diff events, closing the
//    loop on Fig. 3's qualitative narrative.
#pragma once

#include <cstdint>
#include <map>
#include <span>

#include "core/coalesce.hpp"
#include "replace/replacement_sim.hpp"
#include "stats/survival.hpp"
#include "util/binio.hpp"

namespace astra::core {

struct LifetimeAnalysis {
  // Subjects: every DIMM in the fleet; event: its first logged CE.
  stats::KaplanMeierCurve time_to_first_ce;
  stats::WeibullFit first_ce_weibull;
  stats::ExponentialFit first_ce_exponential;
  // First-CE incidence annualized per DIMM (events per DIMM-year).
  double first_ce_afr = 0.0;

  // Observed fault activity spans in days (faults whose stream touches the
  // final day are treated as censored).
  stats::KaplanMeierCurve fault_activity_days;
  double median_fault_activity_days = 0.0;
};

// The lifetime analyzer engine (contract in core/engine.hpp): the only
// per-record state the survival analysis needs is each DIMM's earliest CE
// timestamp — a per-key minimum, so merging commutes and the engine is tiny
// regardless of stream volume.  Fault activity spans come from the coalesce
// fragment at finalize time.
class LifetimeEngine {
 public:
  // First-CE tracking is a minimum, hence order-insensitive; the global
  // sequence number is unused.
  void Observe(const logs::MemoryErrorRecord& record, std::uint64_t /*seq*/);

  // Per-DIMM minima commute; the engine carries no configuration, so the
  // merge fails only on self-merge (status return = the uniform contract).
  [[nodiscard]] bool MergeFrom(const LifetimeEngine& other);

  // Deterministic byte layout (ordered map).  Restore leaves the engine
  // empty and returns false on a malformed payload.
  void Snapshot(binio::Writer& writer) const;
  [[nodiscard]] bool Restore(binio::Reader& reader);

  // `dimm_count` is the fleet's DIMM population; DIMMs that never logged a
  // CE are right-censored at the window end.  Non-consuming.
  [[nodiscard]] LifetimeAnalysis Finalize(const CoalesceResult& coalesced,
                                          TimeWindow window, int dimm_count) const;

 private:
  std::map<std::int64_t, std::int64_t> first_ce_;  // dimm -> earliest CE (s)
};

// `dimm_count` is the fleet's DIMM population (node_count * 16 for scaled
// runs).  Only CE records are considered.  A single-LifetimeEngine replay.
[[nodiscard]] LifetimeAnalysis AnalyzeLifetimes(
    std::span<const logs::MemoryErrorRecord> records, const CoalesceResult& coalesced,
    TimeWindow window, int dimm_count);

struct ReplacementLifetimeAnalysis {
  stats::WeibullFit lifetime_fit;      // time-in-service until replacement
  stats::ExponentialFit exponential;   // memoryless baseline for contrast
  double afr = 0.0;                    // replacements per site-year
  std::size_t replacements = 0;
  std::size_t sites = 0;

  // The §3.1 takeaway in one bit: a decreasing hazard (shape < 1) means the
  // replacement process is dominated by infant mortality, not aging.
  [[nodiscard]] bool InfantMortalityDominated() const noexcept {
    return lifetime_fit.InfantMortality();
  }
};

// `kind` selects the component class; `site_count` its population.
[[nodiscard]] ReplacementLifetimeAnalysis AnalyzeReplacementLifetimes(
    std::span<const replace::ReplacementEvent> events, logs::ComponentKind kind,
    TimeWindow tracking, int site_count);

}  // namespace astra::core
