// Availability impact accounting: what memory failures actually COST a
// production machine, derived from the error log alone.
//
// Two channels, both grounded in the paper:
//  - DUEs crash the node (uncorrectable data loss -> kernel panic / job
//    kill): each costs a reboot plus lost work (re-queue, checkpoint
//    rollback).
//  - CE storms degrade the node while it stays up: correctable errors
//    "can have significant performance implications [18, 24]" (§3.2 — [18]
//    is Macarenco et al.'s SMI-interference study), because each burst of
//    corrections steals cycles through polling/SMI machinery.
//
// A chipkill counterfactual is computed from the log: a DUE on a DIMM whose
// CE history shows the multi-bit-single-word signature was a single-device
// failure — exactly the class a chipkill-grade code corrects transparently
// (see ecc/chipkill.hpp) — so those node-crashes were avoidable at the cost
// §2.2 says Astra chose not to pay.
#pragma once

#include <cstdint>
#include <span>

#include "core/record_buffer.hpp"
#include "logs/records.hpp"

namespace astra::core {

struct ImpactConfig {
  // Node outage per DUE: panic + reboot + health checks + scheduler rejoin.
  double due_outage_minutes = 20.0;
  // Lost computation per DUE beyond the outage itself (killed job re-queue /
  // checkpoint rollback), expressed in node-hours.
  double due_lost_work_node_hours = 2.0;
  // A node-hour with at least this many CEs counts as a storm hour.
  std::uint32_t storm_ces_per_hour = 1000;
  // Effective capacity lost during a storm hour (correction overhead,
  // polling, SMI-style interference).
  double storm_slowdown_fraction = 0.10;
};

struct ImpactAnalysis {
  double total_node_hours = 0.0;

  std::uint64_t due_events = 0;
  double node_hours_lost_to_dues = 0.0;

  std::uint64_t storm_node_hours = 0;
  double node_hours_lost_to_storms = 0.0;

  // 1 - lost/total.
  double availability = 1.0;

  // Chipkill counterfactual.
  std::uint64_t dues_avoidable_with_chipkill = 0;
  double node_hours_saved_by_chipkill = 0.0;

  [[nodiscard]] double TotalLostNodeHours() const noexcept {
    return node_hours_lost_to_dues + node_hours_lost_to_storms;
  }
};

[[nodiscard]] ImpactAnalysis AnalyzeImpact(
    std::span<const logs::MemoryErrorRecord> records, TimeWindow window,
    int node_count, const ImpactConfig& config = {});

// The impact analyzer engine (contract in core/engine.hpp).  The chipkill
// counterfactual is ORDER-SENSITIVE — a DUE is avoidable only if the
// multi-bit signature preceded it in the stream — so the engine buffers the
// stream verbatim; index-order MergeFrom reconstructs the original order and
// Finalize replays AnalyzeImpact exactly.
class ImpactEngine {
 public:
  void Observe(const logs::MemoryErrorRecord& record, std::uint64_t /*seq*/) {
    records_.Add(record);
  }
  [[nodiscard]] bool MergeFrom(const ImpactEngine& other) {
    return records_.MergeFrom(other.records_);
  }
  void Snapshot(binio::Writer& writer) const { records_.Snapshot(writer); }
  [[nodiscard]] bool Restore(binio::Reader& reader) {
    return records_.Restore(reader);
  }
  [[nodiscard]] ImpactAnalysis Finalize(TimeWindow window, int node_count,
                                        const ImpactConfig& config = {}) const {
    return AnalyzeImpact(records_.Records(), window, node_count, config);
  }

 private:
  RecordBuffer<logs::MemoryErrorRecord> records_;
};

}  // namespace astra::core
