// Availability impact accounting: what memory failures actually COST a
// production machine, derived from the error log alone.
//
// Two channels, both grounded in the paper:
//  - DUEs crash the node (uncorrectable data loss -> kernel panic / job
//    kill): each costs a reboot plus lost work (re-queue, checkpoint
//    rollback).
//  - CE storms degrade the node while it stays up: correctable errors
//    "can have significant performance implications [18, 24]" (§3.2 — [18]
//    is Macarenco et al.'s SMI-interference study), because each burst of
//    corrections steals cycles through polling/SMI machinery.
//
// A chipkill counterfactual is computed from the log: a DUE on a DIMM whose
// CE history shows the multi-bit-single-word signature was a single-device
// failure — exactly the class a chipkill-grade code corrects transparently
// (see ecc/chipkill.hpp) — so those node-crashes were avoidable at the cost
// §2.2 says Astra chose not to pay.
#pragma once

#include <cstdint>
#include <span>

#include "logs/records.hpp"

namespace astra::core {

struct ImpactConfig {
  // Node outage per DUE: panic + reboot + health checks + scheduler rejoin.
  double due_outage_minutes = 20.0;
  // Lost computation per DUE beyond the outage itself (killed job re-queue /
  // checkpoint rollback), expressed in node-hours.
  double due_lost_work_node_hours = 2.0;
  // A node-hour with at least this many CEs counts as a storm hour.
  std::uint32_t storm_ces_per_hour = 1000;
  // Effective capacity lost during a storm hour (correction overhead,
  // polling, SMI-style interference).
  double storm_slowdown_fraction = 0.10;
};

struct ImpactAnalysis {
  double total_node_hours = 0.0;

  std::uint64_t due_events = 0;
  double node_hours_lost_to_dues = 0.0;

  std::uint64_t storm_node_hours = 0;
  double node_hours_lost_to_storms = 0.0;

  // 1 - lost/total.
  double availability = 1.0;

  // Chipkill counterfactual.
  std::uint64_t dues_avoidable_with_chipkill = 0;
  double node_hours_saved_by_chipkill = 0.0;

  [[nodiscard]] double TotalLostNodeHours() const noexcept {
    return node_hours_lost_to_dues + node_hours_lost_to_storms;
  }
};

[[nodiscard]] ImpactAnalysis AnalyzeImpact(
    std::span<const logs::MemoryErrorRecord> records, TimeWindow window,
    int node_count, const ImpactConfig& config = {});

}  // namespace astra::core
