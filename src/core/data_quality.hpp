// Data-quality propagation: the bridge between the hardened ingest layer
// (logs::IngestReport) and the analyses.  Every analysis that consumes field
// telemetry degrades gracefully instead of silently computing on garbage:
// minimum-sample guards flip a `low_sample`/`low_confidence` flag and the
// damage observed during ingest becomes explicit caveat strings in the
// analysis output — the reproduction analogue of §2.2's "we exclude these
// data points".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logs/ingest.hpp"

namespace astra::core {

// Minimum-sample thresholds below which headline statistics are flagged.
inline constexpr std::size_t kMinFaultsForUniformity = 30;   // chi-square axes
inline constexpr std::size_t kMinObservationsForDeciles = 40;  // Figs. 13-14
inline constexpr std::uint64_t kMinDueEventsForRate = 3;       // §3.5 FIT

// Aggregate quality of the record streams feeding an analysis.
struct DataQuality {
  std::size_t lines_seen = 0;
  std::size_t parsed = 0;
  std::size_t quarantined = 0;
  std::size_t duplicates_removed = 0;
  std::size_t out_of_order = 0;
  std::size_t reordered = 0;
  std::size_t order_violations = 0;  // delivered out of order (beyond window)
  bool header_remapped = false;
  bool over_budget = false;
  bool stream_missing = false;  // a whole telemetry stream was absent

  [[nodiscard]] static DataQuality FromReport(const logs::IngestReport& report);
  void Merge(const DataQuality& other);

  [[nodiscard]] double QuarantinedFraction() const noexcept {
    return lines_seen == 0 ? 0.0
                           : static_cast<double>(quarantined) /
                                 static_cast<double>(lines_seen);
  }
  [[nodiscard]] double DuplicateFraction() const noexcept {
    return parsed == 0 ? 0.0
                       : static_cast<double>(duplicates_removed) /
                             static_cast<double>(parsed);
  }
  // Any damage that an analysis consumer should disclose.
  [[nodiscard]] bool Degraded() const noexcept;

  // Human-readable caveats describing how the damage can bias conclusions.
  [[nodiscard]] std::vector<std::string> Caveats() const;
};

}  // namespace astra::core
