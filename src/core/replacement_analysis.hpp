// Replacement tallies (§3.1): Table 1 totals/percentages and the Fig. 3
// daily replacement timelines, computed from replacement events however they
// were obtained (simulator ground truth or inventory-scan diffs).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "replace/replacement_sim.hpp"

namespace astra::core {

struct ReplacementAnalysis {
  struct KindSummary {
    logs::ComponentKind kind = logs::ComponentKind::kProcessor;
    std::uint64_t replaced = 0;
    std::uint64_t population = 0;
    double percent_of_total = 0.0;
    std::vector<std::uint64_t> daily;  // replacements per tracking day
    // Day index of the busiest replacement day (wave detection aid).
    std::size_t peak_day = 0;
  };

  std::array<KindSummary, logs::kComponentKindCount> kinds;
  TimeWindow tracking;

  [[nodiscard]] const KindSummary& Of(logs::ComponentKind kind) const noexcept {
    return kinds[static_cast<std::size_t>(kind)];
  }
};

// `node_count` scales the population denominators for scaled-down runs.
[[nodiscard]] ReplacementAnalysis AnalyzeReplacements(
    std::span<const replace::ReplacementEvent> events, TimeWindow tracking,
    int node_count);

}  // namespace astra::core
