#include "core/positional.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace astra::core {
namespace {

void Tally(PositionalCounts& counts, NodeId node, SocketId socket, DimmSlot slot,
           RankId rank, BankId bank, std::int16_t column, std::int32_t bit,
           std::uint64_t address) {
  const NodeLocation loc = LocateNode(node);
  const auto region = static_cast<int>(RegionOfChassis(loc.chassis));
  ++counts.per_socket[static_cast<std::size_t>(socket)];
  ++counts.per_bank[static_cast<std::size_t>(bank)];
  ++counts.per_rank[static_cast<std::size_t>(rank)];
  ++counts.per_slot[static_cast<std::size_t>(static_cast<int>(slot))];
  ++counts.per_rack[static_cast<std::size_t>(loc.rack)];
  ++counts.per_region[static_cast<std::size_t>(region)];
  ++counts.per_rack_region[static_cast<std::size_t>(loc.rack)]
                          [static_cast<std::size_t>(region)];
  const int bucket = static_cast<int>(column) * PositionalCounts::kColumnBuckets /
                     kColumnsPerRow;
  ++counts.per_column_bucket[static_cast<std::size_t>(
      std::clamp(bucket, 0, PositionalCounts::kColumnBuckets - 1))];
  if (node >= 0) {
    // Grown on demand so incremental callers need no span up front;
    // FinalizePositions clamps the vector back to the analysed span.
    if (static_cast<std::size_t>(node) >= counts.per_node.size()) {
      counts.per_node.resize(static_cast<std::size_t>(node) + 1, 0);
    }
    ++counts.per_node[static_cast<std::size_t>(node)];
  }
  ++counts.per_bit_position[bit];
  ++counts.per_address[address];
}

PositionalAnalysis::UniformityTests TestUniformity(const PositionalCounts& c) {
  PositionalAnalysis::UniformityTests tests;
  tests.socket = stats::ChiSquareUniform(c.per_socket);
  tests.bank = stats::ChiSquareUniform(c.per_bank);
  tests.column = stats::ChiSquareUniform(c.per_column_bucket);
  tests.rank = stats::ChiSquareUniform(c.per_rank);
  tests.slot = stats::ChiSquareUniform(c.per_slot);
  tests.rack = stats::ChiSquareUniform(c.per_rack);
  tests.region = stats::ChiSquareUniform(c.per_region);
  return tests;
}

}  // namespace

std::uint64_t PositionalCounts::Total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t v : per_socket) total += v;
  return total;
}

void PositionalCounts::ObserveBatch(std::span<const logs::MemoryErrorRecord> batch,
                                    std::uint64_t /*first_seq*/) {
  for (const auto& record : batch) TallyErrorRecord(*this, record);
}

void PositionalCounts::Observe(const logs::MemoryErrorRecord& record,
                               std::uint64_t /*seq*/) {
  TallyErrorRecord(*this, record);
}

bool PositionalCounts::MergeFrom(const PositionalCounts& other) {
  if (&other == this) return false;
  const auto add_array = [](auto& into, const auto& from) {
    for (std::size_t i = 0; i < into.size(); ++i) into[i] += from[i];
  };
  add_array(per_socket, other.per_socket);
  add_array(per_bank, other.per_bank);
  add_array(per_rank, other.per_rank);
  add_array(per_slot, other.per_slot);
  add_array(per_rack, other.per_rack);
  add_array(per_region, other.per_region);
  add_array(per_column_bucket, other.per_column_bucket);
  for (std::size_t r = 0; r < per_rack_region.size(); ++r) {
    add_array(per_rack_region[r], other.per_rack_region[r]);
  }
  if (per_node.size() < other.per_node.size()) {
    per_node.resize(other.per_node.size(), 0);
  }
  for (std::size_t n = 0; n < other.per_node.size(); ++n) {
    per_node[n] += other.per_node[n];
  }
  // astra-lint: allow(det-unordered-iter): keyed += is commutative.
  for (const auto& [bit, count] : other.per_bit_position) {
    per_bit_position[bit] += count;
  }
  // astra-lint: allow(det-unordered-iter): keyed += is commutative.
  for (const auto& [addr, count] : other.per_address) {
    per_address[addr] += count;
  }
  return true;
}

void TallyErrorRecord(PositionalCounts& counts,
                      const logs::MemoryErrorRecord& record) {
  if (record.type != logs::FailureType::kCorrectable) return;
  const DramCoord coord =
      DecodePhysicalAddress(record.node, record.physical_address);
  Tally(counts, record.node, record.socket, record.slot, record.rank,
        record.bank, coord.column, record.bit_position,
        record.physical_address);
}

namespace {

template <typename Array>
void PutDenseAxis(binio::Writer& writer, const Array& axis) {
  writer.PutU64(axis.size());
  for (const std::uint64_t v : axis) writer.PutU64(v);
}

// The dense axes have compile-time sizes; a count mismatch means the
// checkpoint came from an incompatible layout and the decode must fail
// rather than silently misalign every following field.
template <typename Array>
bool GetDenseAxis(binio::Reader& reader, Array& axis) {
  const std::uint64_t count = reader.GetU64();
  if (count != axis.size() || !reader.CanReadItems(count, sizeof(std::uint64_t))) {
    return false;
  }
  for (auto& v : axis) v = reader.GetU64();
  return reader.Ok();
}

}  // namespace

void PositionalCounts::Snapshot(binio::Writer& writer) const {
  PutDenseAxis(writer, per_socket);
  PutDenseAxis(writer, per_bank);
  PutDenseAxis(writer, per_rank);
  PutDenseAxis(writer, per_slot);
  PutDenseAxis(writer, per_rack);
  PutDenseAxis(writer, per_region);
  PutDenseAxis(writer, per_column_bucket);
  for (const auto& row : per_rack_region) PutDenseAxis(writer, row);
  writer.PutU64(per_node.size());
  for (const std::uint64_t v : per_node) writer.PutU64(v);
  writer.PutU64(per_bit_position.size());
  for (const auto& [bit, count] : per_bit_position.SortedItems()) {
    writer.PutI32(bit);
    writer.PutU64(count);
  }
  writer.PutU64(per_address.size());
  for (const auto& [addr, count] : per_address.SortedItems()) {
    writer.PutU64(addr);
    writer.PutU64(count);
  }
}

bool PositionalCounts::Restore(binio::Reader& reader) {
  *this = PositionalCounts{};
  bool ok = GetDenseAxis(reader, per_socket) && GetDenseAxis(reader, per_bank) &&
            GetDenseAxis(reader, per_rank) && GetDenseAxis(reader, per_slot) &&
            GetDenseAxis(reader, per_rack) && GetDenseAxis(reader, per_region) &&
            GetDenseAxis(reader, per_column_bucket);
  for (auto& row : per_rack_region) {
    if (!ok) break;
    ok = GetDenseAxis(reader, row);
  }
  if (ok) {
    const std::uint64_t node_count = reader.GetU64();
    ok = reader.CanReadItems(node_count, sizeof(std::uint64_t));
    if (ok) {
      per_node.resize(static_cast<std::size_t>(node_count));
      for (auto& v : per_node) v = reader.GetU64();
    }
  }
  if (ok) {
    const std::uint64_t bit_count = reader.GetU64();
    ok = reader.CanReadItems(bit_count, 12);
    if (ok) per_bit_position.Reserve(static_cast<std::size_t>(bit_count));
    for (std::uint64_t i = 0; ok && i < bit_count; ++i) {
      const std::int32_t bit = reader.GetI32();
      per_bit_position[bit] = reader.GetU64();
      ok = reader.Ok();
    }
  }
  if (ok) {
    const std::uint64_t addr_count = reader.GetU64();
    ok = reader.CanReadItems(addr_count, 16);
    if (ok) per_address.Reserve(static_cast<std::size_t>(addr_count));
    for (std::uint64_t i = 0; ok && i < addr_count; ++i) {
      const std::uint64_t addr = reader.GetU64();
      per_address[addr] = reader.GetU64();
      ok = reader.Ok();
    }
  }
  if (!ok || !reader.Ok()) {
    *this = PositionalCounts{};
    return false;
  }
  return true;
}

PositionalAnalysis AnalyzePositions(std::span<const logs::MemoryErrorRecord> records,
                                    const CoalesceResult& coalesced, int node_span,
                                    const DataQuality* quality, unsigned threads) {
  PositionalCounts errors;
  errors.per_node.assign(static_cast<std::size_t>(node_span), 0);

  // --- errors: one tally per CE record ------------------------------------
  const auto tally_range = [&records](PositionalCounts& counts, std::size_t begin,
                                      std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      TallyErrorRecord(counts, records[i]);
    }
  };
  const unsigned resolved = ResolveThreadCount(threads);
  if (resolved <= 1 || records.size() < kParallelAnalysisMinItems) {
    tally_range(errors, 0, records.size());
  } else {
    // Per-shard accumulators reduced in index order; counts are sums, so
    // the reduction is order-insensitive and hence thread-count-invariant.
    // FinalizePositions renormalizes per_node to the analysed span.
    errors = ShardedReduce<PositionalCounts>(
        records.size(), resolved,
        [](std::size_t) { return PositionalCounts{}; }, tally_range);
  }
  return FinalizePositions(std::move(errors), coalesced, node_span, quality);
}

PositionalAnalysis FinalizePositions(PositionalCounts errors,
                                     const CoalesceResult& coalesced,
                                     int node_span, const DataQuality* quality) {
  PositionalAnalysis analysis;
  analysis.node_span = static_cast<std::uint64_t>(node_span);
  analysis.errors = std::move(errors);
  analysis.errors.per_node.resize(static_cast<std::size_t>(node_span), 0);
  analysis.faults.per_node.assign(static_cast<std::size_t>(node_span), 0);

  // --- faults: one tally per coalesced fault -------------------------------
  for (const auto& f : coalesced.faults) {
    const DramCoord coord = DecodePhysicalAddress(f.node, f.anchor_address);
    Tally(analysis.faults, f.node, f.socket, f.slot, f.rank, f.bank, coord.column,
          f.anchor_bit, f.anchor_address);
  }
  analysis.faults.per_node.resize(static_cast<std::size_t>(node_span), 0);

  analysis.error_uniformity = TestUniformity(analysis.errors);
  analysis.fault_uniformity = TestUniformity(analysis.faults);

  // --- Fig. 5: per-node distribution and concentration ---------------------
  for (const std::uint64_t count : analysis.faults.per_node) {
    if (count > 0) analysis.faults_per_node_frequency.Add(count);
  }
  analysis.ce_concentration = stats::ComputeConcentration(analysis.errors.per_node);
  for (const std::uint64_t count : analysis.errors.per_node) {
    if (count > 0) ++analysis.nodes_with_errors;
  }
  {
    std::vector<std::uint64_t> fault_counts;
    fault_counts.reserve(analysis.faults.per_node.size());
    for (const std::uint64_t c : analysis.faults.per_node) {
      if (c > 0) fault_counts.push_back(c);
    }
    analysis.faults_per_node_fit = stats::FitPowerLaw(fault_counts);
  }

  // --- Fig. 8: error-weighted counts per bit position and address ----------
  {
    // Sorted-key traversal: the fit consumes counts in a floating-point
    // reduction, so the input order must not depend on hash layout.
    std::vector<std::uint64_t> bit_counts;
    bit_counts.reserve(analysis.errors.per_bit_position.size());
    for (const auto& [bit, count] : analysis.errors.per_bit_position.SortedItems()) {
      bit_counts.push_back(count);
    }
    analysis.bit_position_fit = stats::FitPowerLaw(bit_counts);

    std::vector<std::uint64_t> address_counts;
    address_counts.reserve(analysis.errors.per_address.size());
    for (const auto& [addr, count] : analysis.errors.per_address.SortedItems()) {
      address_counts.push_back(count);
    }
    analysis.address_fit = stats::FitPowerLaw(address_counts);
  }

  // --- graceful degradation -------------------------------------------------
  if (coalesced.faults.size() < kMinFaultsForUniformity) {
    analysis.low_sample = true;
    analysis.caveats.push_back(
        "only " + std::to_string(coalesced.faults.size()) + " coalesced faults (< " +
        std::to_string(kMinFaultsForUniformity) +
        "): uniformity verdicts and power-law fits are unreliable");
  }
  if (quality != nullptr && quality->Degraded()) {
    const auto extra = quality->Caveats();
    analysis.caveats.insert(analysis.caveats.end(), extra.begin(), extra.end());
  }

  return analysis;
}

}  // namespace astra::core
