#include "core/positional.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace astra::core {
namespace {

void Tally(PositionalCounts& counts, NodeId node, SocketId socket, DimmSlot slot,
           RankId rank, BankId bank, std::int16_t column, std::int32_t bit,
           std::uint64_t address) {
  const NodeLocation loc = LocateNode(node);
  const auto region = static_cast<int>(RegionOfChassis(loc.chassis));
  ++counts.per_socket[static_cast<std::size_t>(socket)];
  ++counts.per_bank[static_cast<std::size_t>(bank)];
  ++counts.per_rank[static_cast<std::size_t>(rank)];
  ++counts.per_slot[static_cast<std::size_t>(static_cast<int>(slot))];
  ++counts.per_rack[static_cast<std::size_t>(loc.rack)];
  ++counts.per_region[static_cast<std::size_t>(region)];
  ++counts.per_rack_region[static_cast<std::size_t>(loc.rack)]
                          [static_cast<std::size_t>(region)];
  const int bucket = static_cast<int>(column) * PositionalCounts::kColumnBuckets /
                     kColumnsPerRow;
  ++counts.per_column_bucket[static_cast<std::size_t>(
      std::clamp(bucket, 0, PositionalCounts::kColumnBuckets - 1))];
  if (node >= 0 && static_cast<std::size_t>(node) < counts.per_node.size()) {
    ++counts.per_node[static_cast<std::size_t>(node)];
  }
  ++counts.per_bit_position[bit];
  ++counts.per_address[address];
}

PositionalAnalysis::UniformityTests TestUniformity(const PositionalCounts& c) {
  PositionalAnalysis::UniformityTests tests;
  tests.socket = stats::ChiSquareUniform(c.per_socket);
  tests.bank = stats::ChiSquareUniform(c.per_bank);
  tests.column = stats::ChiSquareUniform(c.per_column_bucket);
  tests.rank = stats::ChiSquareUniform(c.per_rank);
  tests.slot = stats::ChiSquareUniform(c.per_slot);
  tests.rack = stats::ChiSquareUniform(c.per_rack);
  tests.region = stats::ChiSquareUniform(c.per_region);
  return tests;
}

}  // namespace

std::uint64_t PositionalCounts::Total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t v : per_socket) total += v;
  return total;
}

void PositionalCounts::MergeFrom(const PositionalCounts& other) {
  const auto add_array = [](auto& into, const auto& from) {
    for (std::size_t i = 0; i < into.size(); ++i) into[i] += from[i];
  };
  add_array(per_socket, other.per_socket);
  add_array(per_bank, other.per_bank);
  add_array(per_rank, other.per_rank);
  add_array(per_slot, other.per_slot);
  add_array(per_rack, other.per_rack);
  add_array(per_region, other.per_region);
  add_array(per_column_bucket, other.per_column_bucket);
  for (std::size_t r = 0; r < per_rack_region.size(); ++r) {
    add_array(per_rack_region[r], other.per_rack_region[r]);
  }
  if (per_node.size() < other.per_node.size()) {
    per_node.resize(other.per_node.size(), 0);
  }
  for (std::size_t n = 0; n < other.per_node.size(); ++n) {
    per_node[n] += other.per_node[n];
  }
  for (const auto& [bit, count] : other.per_bit_position) {
    per_bit_position[bit] += count;
  }
  for (const auto& [addr, count] : other.per_address) {
    per_address[addr] += count;
  }
}

PositionalAnalysis AnalyzePositions(std::span<const logs::MemoryErrorRecord> records,
                                    const CoalesceResult& coalesced, int node_span,
                                    const DataQuality* quality, unsigned threads) {
  PositionalAnalysis analysis;
  analysis.node_span = static_cast<std::uint64_t>(node_span);
  analysis.errors.per_node.assign(static_cast<std::size_t>(node_span), 0);
  analysis.faults.per_node.assign(static_cast<std::size_t>(node_span), 0);

  // --- errors: one tally per CE record ------------------------------------
  const auto tally_range = [&records](PositionalCounts& counts, std::size_t begin,
                                      std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto& r = records[i];
      if (r.type != logs::FailureType::kCorrectable) continue;
      const DramCoord coord = DecodePhysicalAddress(r.node, r.physical_address);
      Tally(counts, r.node, r.socket, r.slot, r.rank, r.bank, coord.column,
            r.bit_position, r.physical_address);
    }
  };
  const unsigned resolved = ResolveThreadCount(threads);
  constexpr std::size_t kParallelTallyMinRecords = 1 << 15;
  if (resolved <= 1 || records.size() < kParallelTallyMinRecords) {
    tally_range(analysis.errors, 0, records.size());
  } else {
    // Per-shard accumulators reduced in index order; counts are sums, so
    // the reduction is order-insensitive and hence thread-count-invariant.
    std::vector<PositionalCounts> partials(resolved);
    for (auto& partial : partials) {
      partial.per_node.assign(static_cast<std::size_t>(node_span), 0);
    }
    ParallelShards(records.size(), resolved,
                   [&](std::size_t shard, std::size_t begin, std::size_t end) {
                     tally_range(partials[shard], begin, end);
                   });
    for (const auto& partial : partials) analysis.errors.MergeFrom(partial);
  }

  // --- faults: one tally per coalesced fault -------------------------------
  for (const auto& f : coalesced.faults) {
    const DramCoord coord = DecodePhysicalAddress(f.node, f.anchor_address);
    Tally(analysis.faults, f.node, f.socket, f.slot, f.rank, f.bank, coord.column,
          f.anchor_bit, f.anchor_address);
  }

  analysis.error_uniformity = TestUniformity(analysis.errors);
  analysis.fault_uniformity = TestUniformity(analysis.faults);

  // --- Fig. 5: per-node distribution and concentration ---------------------
  for (const std::uint64_t count : analysis.faults.per_node) {
    if (count > 0) analysis.faults_per_node_frequency.Add(count);
  }
  analysis.ce_concentration = stats::ComputeConcentration(analysis.errors.per_node);
  for (const std::uint64_t count : analysis.errors.per_node) {
    if (count > 0) ++analysis.nodes_with_errors;
  }
  {
    std::vector<std::uint64_t> fault_counts;
    fault_counts.reserve(analysis.faults.per_node.size());
    for (const std::uint64_t c : analysis.faults.per_node) {
      if (c > 0) fault_counts.push_back(c);
    }
    analysis.faults_per_node_fit = stats::FitPowerLaw(fault_counts);
  }

  // --- Fig. 8: error-weighted counts per bit position and address ----------
  {
    std::vector<std::uint64_t> bit_counts;
    bit_counts.reserve(analysis.errors.per_bit_position.size());
    for (const auto& [bit, count] : analysis.errors.per_bit_position) {
      bit_counts.push_back(count);
    }
    analysis.bit_position_fit = stats::FitPowerLaw(bit_counts);

    std::vector<std::uint64_t> address_counts;
    address_counts.reserve(analysis.errors.per_address.size());
    for (const auto& [addr, count] : analysis.errors.per_address) {
      address_counts.push_back(count);
    }
    analysis.address_fit = stats::FitPowerLaw(address_counts);
  }

  // --- graceful degradation -------------------------------------------------
  if (coalesced.faults.size() < kMinFaultsForUniformity) {
    analysis.low_sample = true;
    analysis.caveats.push_back(
        "only " + std::to_string(coalesced.faults.size()) + " coalesced faults (< " +
        std::to_string(kMinFaultsForUniformity) +
        "): uniformity verdicts and power-law fits are unreliable");
  }
  if (quality != nullptr && quality->Degraded()) {
    const auto extra = quality->Caveats();
    analysis.caveats.insert(analysis.caveats.end(), extra.begin(), extra.end());
  }

  return analysis;
}

}  // namespace astra::core
