#include "core/engine.hpp"

#include <algorithm>

#include "core/burstiness.hpp"
#include "core/impact.hpp"
#include "core/lifetime.hpp"
#include "core/spatial.hpp"
#include "core/temperature.hpp"
#include "core/vendor_analysis.hpp"
#include "faultsim/fleet.hpp"
#include "util/parallel.hpp"

namespace astra::core {

// The non-report analyses honor the same contract; pinned here so a drifted
// signature is a compile error, not a doc rot.
static_assert(AnalyzerEngine<LifetimeEngine>);
static_assert(AnalyzerEngine<BurstinessEngine>);
static_assert(AnalyzerEngine<TemperatureEngine>);
static_assert(AnalyzerEngine<ImpactEngine>);
static_assert(AnalyzerEngine<SpatialEngine>);
static_assert(AnalyzerEngine<VendorEngine>);
static_assert(AnalyzerEngine<AnalysisEngineSet>);

AnalysisEngineSet::AnalysisEngineSet(const EngineSetConfig& config,
                                     std::uint64_t first_sequence)
    : config_(config),
      coalescer_(config.coalesce),
      predictor_(config.predictor),
      next_seq_(first_sequence) {}

void AnalysisEngineSet::ObserveMemory(const logs::MemoryErrorRecord& record) {
  const std::uint64_t seq = next_seq_++;
  coalescer_.Observe(record, seq);
  positional_.Observe(record, seq);
  temporal_.Observe(record, seq);
  predictor_.Observe(record, seq);
  ++delivered_;
  max_node_ = std::max(max_node_, record.node);
  if (!any_) {
    any_ = true;
    lo_ = hi_ = record.timestamp;
  } else {
    lo_ = std::min(lo_, record.timestamp);
    hi_ = std::max(hi_, record.timestamp);
  }
}

void AnalysisEngineSet::ObserveMemoryBatch(
    std::span<const logs::MemoryErrorRecord> batch) {
  if (batch.empty()) return;
  const std::uint64_t first_seq = next_seq_;
  // Engine-wise delivery: each member sees the whole span in record order,
  // so its state equals the per-record fan-out's (engines never observe each
  // other).  The set's own bookkeeping folds in one tight pass.
  ObserveSpan(coalescer_, batch, first_seq);
  ObserveSpan(positional_, batch, first_seq);
  ObserveSpan(temporal_, batch, first_seq);
  ObserveSpan(predictor_, batch, first_seq);
  next_seq_ += batch.size();
  delivered_ += batch.size();
  if (!any_) {
    any_ = true;
    lo_ = hi_ = batch.front().timestamp;
  }
  for (const auto& record : batch) {
    max_node_ = std::max(max_node_, record.node);
    lo_ = std::min(lo_, record.timestamp);
    hi_ = std::max(hi_, record.timestamp);
  }
}

void AnalysisEngineSet::ObserveHet(const logs::HetRecord& record) {
  dues_.Observe(record, 0);
}

bool AnalysisEngineSet::MergeFrom(const AnalysisEngineSet& other) {
  if (&other == this) return false;
  if (!(config_ == other.config_)) return false;
  // Past the guards the member merges cannot fail (equal configs, distinct
  // operands); run them all so the set never ends up partially merged.
  bool ok = coalescer_.MergeFrom(other.coalescer_);
  ok &= positional_.MergeFrom(other.positional_);
  ok &= temporal_.MergeFrom(other.temporal_);
  ok &= predictor_.MergeFrom(other.predictor_);
  ok &= dues_.MergeFrom(other.dues_);

  delivered_ += other.delivered_;
  next_seq_ = std::max(next_seq_, other.next_seq_);
  max_node_ = std::max(max_node_, other.max_node_);
  if (other.any_) {
    if (!any_) {
      any_ = true;
      lo_ = other.lo_;
      hi_ = other.hi_;
    } else {
      lo_ = std::min(lo_, other.lo_);
      hi_ = std::max(hi_, other.hi_);
    }
  }
  return ok;
}

void AnalysisEngineSet::Snapshot(binio::Writer& writer) const {
  coalescer_.Snapshot(writer);
  positional_.Snapshot(writer);
  temporal_.Snapshot(writer);
  predictor_.Snapshot(writer);
  dues_.Snapshot(writer);
  writer.PutU64(next_seq_);
  writer.PutU64(delivered_);
  writer.PutBool(any_);
  writer.PutI32(max_node_);
  writer.PutI64(lo_.Seconds());
  writer.PutI64(hi_.Seconds());
}

bool AnalysisEngineSet::Restore(binio::Reader& reader) {
  *this = AnalysisEngineSet{config_};
  bool ok = coalescer_.Restore(reader) && positional_.Restore(reader) &&
            temporal_.Restore(reader) && predictor_.Restore(reader) &&
            dues_.Restore(reader);
  next_seq_ = reader.GetU64();
  delivered_ = reader.GetU64();
  any_ = reader.GetBool();
  max_node_ = reader.GetI32();
  lo_ = SimTime{reader.GetI64()};
  hi_ = SimTime{reader.GetI64()};
  if (!ok || !reader.Ok()) {
    *this = AnalysisEngineSet{config_};
    return false;
  }
  return true;
}

EngineContext AnalysisEngineSet::InferredContext() const {
  EngineContext ctx;
  ctx.window = TimeWindow{lo_, hi_.AddSeconds(1)};
  ctx.node_span = static_cast<int>(max_node_) + 1;
  ctx.month_count = CalendarMonthIndex(ctx.window.begin, ctx.window.end) + 1;
  ctx.het_start = dues_.EarliestTimestamp(hi_);
  return ctx;
}

AnalysisArtifacts AnalysisEngineSet::Finalize(const EngineContext& ctx,
                                              const DataQuality* quality) const {
  AnalysisArtifacts artifacts;
  artifacts.record_count = static_cast<std::size_t>(delivered_);
  artifacts.node_span = ctx.node_span;

  artifacts.faults = coalescer_.Finalize(ctx.window.begin, ctx.month_count);
  AttachIngestCaveats(artifacts.faults, quality);
  artifacts.positions =
      FinalizePositions(positional_, artifacts.faults, ctx.node_span, quality);
  artifacts.series =
      temporal_.Finalize(artifacts.faults, ctx.window.begin, ctx.month_count);
  const TimeWindow recording{ctx.het_start, ctx.window.end};
  artifacts.dues =
      dues_.Finalize(recording, ctx.node_span * kDimmSlotsPerNode, quality);
  artifacts.prediction = predictor_.Finalize();
  return artifacts;
}

AnalysisArtifacts BuildAnalysisArtifacts(
    std::span<const logs::MemoryErrorRecord> records,
    std::span<const logs::HetRecord> het, int node_span, TimeWindow window,
    SimTime het_start, const DataQuality* quality, unsigned threads) {
  const EngineSetConfig config;
  const unsigned resolved = ResolveThreadCount(threads);
  AnalysisEngineSet set(config);
  if (resolved <= 1 || records.size() < kParallelAnalysisMinItems) {
    set.ObserveMemoryBatch(records);
  } else {
    set = ShardedReduce<AnalysisEngineSet>(
        records.size(), resolved,
        [&config](std::size_t first) { return AnalysisEngineSet(config, first); },
        [&records](AnalysisEngineSet& shard, std::size_t begin, std::size_t end) {
          shard.ObserveMemoryBatch(records.subspan(begin, end - begin));
        });
  }
  // The HET stream is tiny (DUEs are rare); observed serially after the
  // reduction.
  for (const auto& record : het) set.ObserveHet(record);

  EngineContext ctx;
  ctx.window = window;
  ctx.het_start = het_start;
  ctx.node_span = node_span;
  ctx.month_count = CalendarMonthIndex(window.begin, window.end) + 1;
  return set.Finalize(ctx, quality);
}

AnalysisArtifacts AnalyzeCampaignResult(const faultsim::CampaignResult& result,
                                        const faultsim::CampaignConfig& config,
                                        unsigned threads) {
  return BuildAnalysisArtifacts(result.memory_errors, result.het_records,
                                config.node_count, config.window,
                                config.het_firmware_start, nullptr, threads);
}

}  // namespace astra::core
