#include "core/predictor.hpp"

#include <algorithm>
#include <optional>

#include "stats/descriptive.hpp"

namespace astra::core {

void PredictorEngine::Observe(const logs::MemoryErrorRecord& record,
                              std::uint64_t seq) {
  ObserveInDimm(dimms_[GlobalDimmIndex(record.node, record.slot)], record, seq);
}

void PredictorEngine::ObserveBatch(std::span<const logs::MemoryErrorRecord> batch,
                                   std::uint64_t first_seq) {
  // Error streams cluster by DIMM, so consecutive records usually hit the
  // same slot; the memo skips the tree descent (map nodes never move, so
  // the pointer stays valid across insertions of other DIMMs).
  std::int64_t last_dimm = 0;
  DimmState* state = nullptr;
  std::uint64_t seq = first_seq;
  for (const auto& record : batch) {
    const std::int64_t dimm = GlobalDimmIndex(record.node, record.slot);
    if (state == nullptr || dimm != last_dimm) {
      state = &dimms_[dimm];
      last_dimm = dimm;
    }
    ObserveInDimm(*state, record, seq++);
  }
}

void PredictorEngine::ObserveInDimm(DimmState& state,
                                    const logs::MemoryErrorRecord& record,
                                    std::uint64_t seq) {
  if (record.type == logs::FailureType::kUncorrectable) {
    // Only the earliest DUE matters — and in a time-sorted replay the first
    // DUE seen is the one with the minimum timestamp.
    if (!state.due_seen || record.timestamp.Seconds() < state.first_due) {
      state.due_seen = true;
      state.first_due = record.timestamp.Seconds();
    }
    return;
  }

  const Moment moment{record.timestamp.Seconds(), seq};
  if (config_.ce_count_threshold > 0) {
    const std::size_t limit = config_.ce_count_threshold;
    if (state.ce_smallest.size() < limit) {
      state.ce_smallest.push_back(moment);
      std::push_heap(state.ce_smallest.begin(), state.ce_smallest.end());
    } else if (moment < state.ce_smallest.front()) {
      std::pop_heap(state.ce_smallest.begin(), state.ce_smallest.end());
      state.ce_smallest.back() = moment;
      std::push_heap(state.ce_smallest.begin(), state.ce_smallest.end());
    }
  }
  auto& bits = state.bits_by_address[record.physical_address];
  const auto [it, inserted] = bits.emplace(record.bit_position, moment);
  if (!inserted && moment < it->second) it->second = moment;
}

void PredictorEngine::MergeDimm(DimmState& into, const DimmState& from) const {
  if (from.due_seen &&
      (!into.due_seen || from.first_due < into.first_due)) {
    into.due_seen = true;
    into.first_due = from.first_due;
  }
  for (const auto& [addr, from_bits] : from.bits_by_address) {
    auto& bits = into.bits_by_address[addr];
    for (const auto& [bit, moment] : from_bits) {
      const auto [it, inserted] = bits.emplace(bit, moment);
      if (!inserted && moment < it->second) it->second = moment;
    }
  }
  if (config_.ce_count_threshold > 0 && !from.ce_smallest.empty()) {
    // The N smallest of (N smallest of A) ∪ (N smallest of B) are the N
    // smallest of A ∪ B, so the merged heap equals the serial one.
    into.ce_smallest.insert(into.ce_smallest.end(), from.ce_smallest.begin(),
                            from.ce_smallest.end());
    std::sort(into.ce_smallest.begin(), into.ce_smallest.end());
    const std::size_t limit = config_.ce_count_threshold;
    if (into.ce_smallest.size() > limit) into.ce_smallest.resize(limit);
    std::make_heap(into.ce_smallest.begin(), into.ce_smallest.end());
  }
}

bool PredictorEngine::MergeFrom(const PredictorEngine& other) {
  if (&other == this) return false;
  if (!(config_ == other.config_)) return false;
  for (const auto& [dimm, from] : other.dimms_) {
    const auto [it, inserted] = dimms_.try_emplace(dimm);
    if (inserted) {
      it->second = from;
    } else {
      MergeDimm(it->second, from);
    }
  }
  return true;
}

PredictionEvaluation PredictorEngine::Finalize() const {
  PredictionEvaluation evaluation;
  std::vector<double> lead_days;
  std::vector<Moment> scratch;

  for (const auto& [dimm, state] : dimms_) {
    // Earliest firing moment of each enabled rule in a time-sorted replay.
    std::optional<Moment> multibit_at;
    if (config_.flag_multibit_word_signature) {
      for (const auto& [addr, bits] : state.bits_by_address) {
        if (bits.size() < 2) continue;
        // The address turns multi-bit when its 2nd distinct bit appears.
        Moment smallest = bits.begin()->second;
        Moment second = smallest;
        bool have_second = false;
        for (auto it = bits.begin(); it != bits.end(); ++it) {
          const Moment m = it->second;
          if (it == bits.begin()) continue;
          if (m < smallest) {
            second = smallest;
            smallest = m;
            have_second = true;
          } else if (!have_second || m < second) {
            second = m;
            have_second = true;
          }
        }
        if (!multibit_at || second < *multibit_at) multibit_at = second;
      }
    }
    std::optional<Moment> volume_at;
    if (config_.ce_count_threshold > 0 &&
        state.ce_smallest.size() >= config_.ce_count_threshold) {
      volume_at = state.ce_smallest.front();  // max of the N smallest = Nth CE
    }
    std::optional<Moment> footprint_at;
    if (config_.distinct_address_threshold > 0 &&
        state.bits_by_address.size() >= config_.distinct_address_threshold) {
      // The rule fires when the K-th distinct address first appears.
      scratch.clear();
      for (const auto& [addr, bits] : state.bits_by_address) {
        Moment first = bits.begin()->second;
        for (const auto& [bit, m] : bits) first = std::min(first, m);
        scratch.push_back(first);
      }
      const auto kth =
          scratch.begin() + (config_.distinct_address_threshold - 1);
      std::nth_element(scratch.begin(), kth, scratch.end());
      footprint_at = *kth;
    }

    std::optional<Moment> flagged_moment;
    for (const auto& candidate : {multibit_at, volume_at, footprint_at}) {
      if (candidate && (!flagged_moment || *candidate < *flagged_moment)) {
        flagged_moment = candidate;
      }
    }
    std::string reason;
    if (flagged_moment) {
      // Rules are checked in priority order at the record that first fires
      // any of them; with equal moments the same priority applies here.
      if (multibit_at && *multibit_at == *flagged_moment) {
        reason = "multi-bit word signature";
      } else if (volume_at && *volume_at == *flagged_moment) {
        reason = "CE volume >= " + std::to_string(config_.ce_count_threshold);
      } else {
        reason = "footprint >= " +
                 std::to_string(config_.distinct_address_threshold) +
                 " addresses";
      }
    }

    const bool flagged = flagged_moment.has_value();
    const SimTime flagged_at{flagged ? flagged_moment->ts : 0};
    if (flagged) {
      ++evaluation.dimms_flagged;
      DimmFlag flag;
      flag.node = static_cast<NodeId>(dimm / kDimmSlotsPerNode);
      flag.slot = static_cast<DimmSlot>(dimm % kDimmSlotsPerNode);
      flag.flagged_at = flagged_at;
      flag.reason = std::move(reason);
      evaluation.flags.push_back(std::move(flag));
    }
    if (state.due_seen) ++evaluation.dimms_with_due;

    if (flagged && state.due_seen) {
      const std::int64_t lead = state.first_due - flagged_at.Seconds();
      if (lead >= config_.lead_time_seconds) {
        ++evaluation.true_positives;
        lead_days.push_back(static_cast<double>(lead) /
                            static_cast<double>(SimTime::kSecondsPerDay));
      } else {
        ++evaluation.late_flags;
      }
    } else if (flagged) {
      ++evaluation.false_positives;
    } else if (state.due_seen) {
      ++evaluation.missed;
    }
  }
  evaluation.missed += evaluation.late_flags;  // late flags are also misses
  evaluation.median_lead_time_days = stats::Median(lead_days);

  // (node, slot) breaks flag-time ties so the flag list is a pure function
  // of the record set — the keystone of the drivers' byte-identical parity.
  std::sort(evaluation.flags.begin(), evaluation.flags.end(),
            [](const DimmFlag& a, const DimmFlag& b) {
              if (a.flagged_at != b.flagged_at) return a.flagged_at < b.flagged_at;
              if (a.node != b.node) return a.node < b.node;
              return a.slot < b.slot;
            });
  return evaluation;
}

void PredictorEngine::Snapshot(binio::Writer& writer) const {
  writer.PutU64(dimms_.size());
  for (const auto& [dimm, state] : dimms_) {
    writer.PutI64(dimm);
    writer.PutBool(state.due_seen);
    writer.PutI64(state.first_due);
    writer.PutU64(state.bits_by_address.size());
    for (const auto& [addr, bits] : state.bits_by_address) {
      writer.PutU64(addr);
      writer.PutU64(bits.size());
      for (const auto& [bit, moment] : bits) {
        writer.PutI32(bit);
        writer.PutI64(moment.ts);
        writer.PutU64(moment.seq);
      }
    }
    std::vector<Moment> heap = state.ce_smallest;
    std::sort(heap.begin(), heap.end());
    writer.PutU64(heap.size());
    for (const Moment& m : heap) {
      writer.PutI64(m.ts);
      writer.PutU64(m.seq);
    }
  }
}

bool PredictorEngine::Restore(binio::Reader& reader) {
  dimms_.clear();
  const std::uint64_t dimm_count = reader.GetU64();
  bool ok = reader.CanReadItems(dimm_count, 8);
  for (std::uint64_t d = 0; ok && d < dimm_count; ++d) {
    const std::int64_t dimm = reader.GetI64();
    DimmState state;
    state.due_seen = reader.GetBool();
    state.first_due = reader.GetI64();
    const std::uint64_t addr_count = reader.GetU64();
    ok = reader.CanReadItems(addr_count, 16);
    for (std::uint64_t a = 0; ok && a < addr_count; ++a) {
      const std::uint64_t addr = reader.GetU64();
      auto& bits = state.bits_by_address[addr];
      const std::uint64_t bit_count = reader.GetU64();
      ok = reader.CanReadItems(bit_count, 20);
      for (std::uint64_t b = 0; ok && b < bit_count; ++b) {
        const std::int32_t bit = reader.GetI32();
        Moment moment;
        moment.ts = reader.GetI64();
        moment.seq = reader.GetU64();
        bits[bit] = moment;
        ok = reader.Ok();
      }
    }
    const std::uint64_t heap_count = reader.GetU64();
    ok = ok && reader.CanReadItems(heap_count, 16);
    for (std::uint64_t i = 0; ok && i < heap_count; ++i) {
      Moment moment;
      moment.ts = reader.GetI64();
      moment.seq = reader.GetU64();
      state.ce_smallest.push_back(moment);
    }
    std::make_heap(state.ce_smallest.begin(), state.ce_smallest.end());
    if (ok) dimms_.emplace(dimm, std::move(state));
  }
  if (!ok || !reader.Ok()) {
    dimms_.clear();
    return false;
  }
  return true;
}

PredictionEvaluation EvaluatePredictor(std::span<const logs::MemoryErrorRecord> records,
                                       const PredictorConfig& config) {
  PredictorEngine engine(config);
  std::uint64_t seq = 0;
  for (const auto& record : records) engine.Observe(record, seq++);
  return engine.Finalize();
}

}  // namespace astra::core
