#include "core/predictor.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "stats/descriptive.hpp"

namespace astra::core {
namespace {

struct DimmState {
  std::uint32_t ce_count = 0;
  std::unordered_map<std::uint64_t, std::unordered_set<std::int32_t>> bits_by_address;
  bool multibit_seen = false;
  bool flagged = false;
  SimTime flagged_at;
  std::string reason;
  bool due_seen = false;
  SimTime first_due;
};

}  // namespace

PredictionEvaluation EvaluatePredictor(std::span<const logs::MemoryErrorRecord> records,
                                       const PredictorConfig& config) {
  // Time-ordered view of the stream (stable for deterministic tie handling).
  std::vector<const logs::MemoryErrorRecord*> ordered;
  ordered.reserve(records.size());
  for (const auto& r : records) ordered.push_back(&r);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const logs::MemoryErrorRecord* a, const logs::MemoryErrorRecord* b) {
                     return a->timestamp < b->timestamp;
                   });

  std::unordered_map<std::int64_t, DimmState> dimms;
  for (const logs::MemoryErrorRecord* r : ordered) {
    DimmState& state = dimms[GlobalDimmIndex(r->node, r->slot)];

    if (r->type == logs::FailureType::kUncorrectable) {
      if (!state.due_seen) {
        state.due_seen = true;
        state.first_due = r->timestamp;
      }
      continue;
    }

    ++state.ce_count;
    auto& bits = state.bits_by_address[r->physical_address];
    bits.insert(r->bit_position);
    if (bits.size() >= 2) state.multibit_seen = true;

    if (state.flagged) continue;
    // Rule evaluation — strictly from information seen so far.
    if (config.flag_multibit_word_signature && state.multibit_seen) {
      state.flagged = true;
      state.reason = "multi-bit word signature";
    } else if (config.ce_count_threshold > 0 &&
               state.ce_count >= config.ce_count_threshold) {
      state.flagged = true;
      state.reason = "CE volume >= " + std::to_string(config.ce_count_threshold);
    } else if (config.distinct_address_threshold > 0 &&
               state.bits_by_address.size() >= config.distinct_address_threshold) {
      state.flagged = true;
      state.reason = "footprint >= " +
                     std::to_string(config.distinct_address_threshold) + " addresses";
    }
    if (state.flagged) state.flagged_at = r->timestamp;
  }

  PredictionEvaluation evaluation;
  std::vector<double> lead_days;
  // astra-lint: allow(det-unordered-iter): counts commute; outputs sorted below.
  for (const auto& [dimm, state] : dimms) {
    if (state.flagged) {
      ++evaluation.dimms_flagged;
      DimmFlag flag;
      flag.node = static_cast<NodeId>(dimm / kDimmSlotsPerNode);
      flag.slot = static_cast<DimmSlot>(dimm % kDimmSlotsPerNode);
      flag.flagged_at = state.flagged_at;
      flag.reason = state.reason;
      evaluation.flags.push_back(std::move(flag));
    }
    if (state.due_seen) ++evaluation.dimms_with_due;

    if (state.flagged && state.due_seen) {
      const std::int64_t lead = SecondsBetween(state.flagged_at, state.first_due);
      if (lead >= config.lead_time_seconds) {
        ++evaluation.true_positives;
        lead_days.push_back(static_cast<double>(lead) /
                            static_cast<double>(SimTime::kSecondsPerDay));
      } else {
        ++evaluation.late_flags;
      }
    } else if (state.flagged) {
      ++evaluation.false_positives;
    } else if (state.due_seen) {
      ++evaluation.missed;
    }
  }
  evaluation.missed += evaluation.late_flags;  // late flags are also misses
  evaluation.median_lead_time_days = stats::Median(lead_days);

  // (node, slot) breaks flag-time ties so the flag list is a pure function
  // of the record set — required for the streaming pipeline's byte-identical
  // equivalence, and independent of hash-map iteration order here.
  std::sort(evaluation.flags.begin(), evaluation.flags.end(),
            [](const DimmFlag& a, const DimmFlag& b) {
              if (a.flagged_at != b.flagged_at) return a.flagged_at < b.flagged_at;
              if (a.node != b.node) return a.node < b.node;
              return a.slot < b.slot;
            });
  return evaluation;
}

}  // namespace astra::core
