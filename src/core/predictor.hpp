// DUE early-warning prediction from CE history — the operational payoff of
// fault-aware CE analysis.  §3.2 establishes that SEC-DED DUEs are the
// manifestation of multi-bit faults; the streams that precede them are
// visible in the CE log long before the uncorrectable read happens.  A
// predictor that flags at-risk DIMMs for proactive replacement (or page
// offlining) is the standard downstream use of studies like this one.
//
// The predictor is an ONLINE rule over the time-ordered record stream — it
// may only use information available strictly before the event it predicts,
// and the evaluator enforces that (a flag raised at or after the DIMM's
// first DUE does not count as a hit).
//
// Signals, in increasing specificity:
//   - raw CE volume on the DIMM (the classic ops rule of thumb);
//   - distinct failing addresses (footprint growth: column/row/bank faults);
//   - a multi-bit-word signature: >= 2 distinct bit positions at ONE
//     address — the direct precursor of a SEC-DED DUE.
//
// PredictorEngine is the single implementation (contract in
// core/engine.hpp).  It cannot assume the stream arrives time-sorted, so it
// tracks, per DIMM, the earliest (timestamp, sequence) MOMENT at which each
// rule would fire in a time-sorted replay: the rules are monotone (once true
// they stay true), so the flag time is exactly the minimum firing moment and
// the reason is the priority-ordered rule among those firing at that moment.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "logs/records.hpp"
#include "util/binio.hpp"

namespace astra::core {

struct PredictorConfig {
  // Any enabled rule firing flags the DIMM.  Thresholds of 0 disable a rule.
  std::uint32_t ce_count_threshold = 0;          // e.g. 500
  std::uint32_t distinct_address_threshold = 0;  // e.g. 16
  bool flag_multibit_word_signature = true;
  // Required lead time: a flag counts as a true positive only if raised at
  // least this long before the DIMM's first DUE.
  std::int64_t lead_time_seconds = 3600;

  friend bool operator==(const PredictorConfig&, const PredictorConfig&) = default;
};

struct DimmFlag {
  NodeId node = 0;
  DimmSlot slot = DimmSlot::A;
  SimTime flagged_at;
  std::string reason;
};

struct PredictionEvaluation {
  std::vector<DimmFlag> flags;        // every flagged DIMM with reason
  std::size_t dimms_flagged = 0;
  std::size_t dimms_with_due = 0;     // DIMMs that logged >= 1 DUE
  std::size_t true_positives = 0;     // flagged with required lead time
  std::size_t late_flags = 0;         // flagged but after (or too close to) the DUE
  std::size_t false_positives = 0;    // flagged, never DUEd
  std::size_t missed = 0;             // DUEd, never flagged in time
  double median_lead_time_days = 0.0; // over true positives

  [[nodiscard]] double Precision() const noexcept {
    return dimms_flagged == 0 ? 0.0
                              : static_cast<double>(true_positives) /
                                    static_cast<double>(dimms_flagged);
  }
  [[nodiscard]] double Recall() const noexcept {
    return dimms_with_due == 0 ? 0.0
                               : static_cast<double>(true_positives) /
                                     static_cast<double>(dimms_with_due);
  }
};

class PredictorEngine {
 public:
  explicit PredictorEngine(const PredictorConfig& config = {})
      : config_(config) {}

  // `seq` is the record's global stream index — the tie-break the
  // time-sorted replay applies at equal timestamps (a batch stable sort by
  // timestamp orders records by exactly (timestamp, index)).
  void Observe(const logs::MemoryErrorRecord& record, std::uint64_t seq);

  // Batched observation (core/engine.hpp): record i carries sequence number
  // first_seq + i, so the state is identical to calling Observe per record.
  // The batch walk memoizes the previous record's DIMM slot (std::map nodes
  // are pointer-stable), skipping the tree descent on clustered streams.
  void ObserveBatch(std::span<const logs::MemoryErrorRecord> batch,
                    std::uint64_t first_seq);

  // Per-DIMM minima commute, and the CE-volume heap keeps the N smallest
  // moments of the union, so merging is associative and order-insensitive.
  // False (state unchanged) when the configs differ.
  [[nodiscard]] bool MergeFrom(const PredictorEngine& other);

  // Deterministic byte layout (ordered maps, heap serialized sorted).  The
  // config is NOT serialized; Restore must target an engine constructed with
  // the same config.  False on a malformed payload (engine left empty).
  void Snapshot(binio::Writer& writer) const;
  [[nodiscard]] bool Restore(binio::Reader& reader);

  // Reconstruct the evaluation of the time-sorted replay.  Non-consuming.
  [[nodiscard]] PredictionEvaluation Finalize() const;

 private:
  // A position in the time-sorted replay of the stream.
  struct Moment {
    std::int64_t ts = 0;
    std::uint64_t seq = 0;
    friend constexpr auto operator<=>(const Moment&, const Moment&) = default;
  };
  struct DimmState {
    // Earliest moment each distinct (address, bit) was seen.
    std::map<std::uint64_t, std::map<std::int32_t, Moment>> bits_by_address;
    // Max-heap of the `ce_count_threshold` smallest CE moments; its maximum
    // is the moment the volume rule fires.  Empty when the rule is disabled.
    std::vector<Moment> ce_smallest;
    bool due_seen = false;
    std::int64_t first_due = 0;
  };

  void ObserveInDimm(DimmState& state, const logs::MemoryErrorRecord& record,
                     std::uint64_t seq);
  void MergeDimm(DimmState& into, const DimmState& from) const;

  PredictorConfig config_;
  std::map<std::int64_t, DimmState> dimms_;  // ordered: deterministic state
};

// Batch evaluation harness: a single PredictorEngine replay.  `records` may
// be in any order; delivery index is the tie-break for equal timestamps,
// matching a stable time-sort of the span.
[[nodiscard]] PredictionEvaluation EvaluatePredictor(
    std::span<const logs::MemoryErrorRecord> records, const PredictorConfig& config);

}  // namespace astra::core
