// DUE early-warning prediction from CE history — the operational payoff of
// fault-aware CE analysis.  §3.2 establishes that SEC-DED DUEs are the
// manifestation of multi-bit faults; the streams that precede them are
// visible in the CE log long before the uncorrectable read happens.  A
// predictor that flags at-risk DIMMs for proactive replacement (or page
// offlining) is the standard downstream use of studies like this one.
//
// The predictor is an ONLINE rule over the time-ordered record stream — it
// may only use information available strictly before the event it predicts,
// and the evaluator enforces that (a flag raised at or after the DIMM's
// first DUE does not count as a hit).
//
// Signals, in increasing specificity:
//   - raw CE volume on the DIMM (the classic ops rule of thumb);
//   - distinct failing addresses (footprint growth: column/row/bank faults);
//   - a multi-bit-word signature: >= 2 distinct bit positions at ONE
//     address — the direct precursor of a SEC-DED DUE.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "logs/records.hpp"

namespace astra::core {

struct PredictorConfig {
  // Any enabled rule firing flags the DIMM.  Thresholds of 0 disable a rule.
  std::uint32_t ce_count_threshold = 0;          // e.g. 500
  std::uint32_t distinct_address_threshold = 0;  // e.g. 16
  bool flag_multibit_word_signature = true;
  // Required lead time: a flag counts as a true positive only if raised at
  // least this long before the DIMM's first DUE.
  std::int64_t lead_time_seconds = 3600;
};

struct DimmFlag {
  NodeId node = 0;
  DimmSlot slot = DimmSlot::A;
  SimTime flagged_at;
  std::string reason;
};

struct PredictionEvaluation {
  std::vector<DimmFlag> flags;        // every flagged DIMM with reason
  std::size_t dimms_flagged = 0;
  std::size_t dimms_with_due = 0;     // DIMMs that logged >= 1 DUE
  std::size_t true_positives = 0;     // flagged with required lead time
  std::size_t late_flags = 0;         // flagged but after (or too close to) the DUE
  std::size_t false_positives = 0;    // flagged, never DUEd
  std::size_t missed = 0;             // DUEd, never flagged in time
  double median_lead_time_days = 0.0; // over true positives

  [[nodiscard]] double Precision() const noexcept {
    return dimms_flagged == 0 ? 0.0
                              : static_cast<double>(true_positives) /
                                    static_cast<double>(dimms_flagged);
  }
  [[nodiscard]] double Recall() const noexcept {
    return dimms_with_due == 0 ? 0.0
                               : static_cast<double>(true_positives) /
                                     static_cast<double>(dimms_with_due);
  }
};

// Streaming predictor state + evaluation harness.  `records` may be in any
// order; they are processed in timestamp order internally.
[[nodiscard]] PredictionEvaluation EvaluatePredictor(
    std::span<const logs::MemoryErrorRecord> records, const PredictorConfig& config);

}  // namespace astra::core
