#include "core/temporal.hpp"

#include <algorithm>

#include "stats/linear_fit.hpp"
#include "util/parallel.hpp"

namespace astra::core {

double MonthlyErrorSeries::TrendSlopePerMonth() const noexcept {
  std::vector<double> x, y;
  x.reserve(all_errors.size());
  y.reserve(all_errors.size());
  for (std::size_t m = 0; m < all_errors.size(); ++m) {
    x.push_back(static_cast<double>(m));
    y.push_back(static_cast<double>(all_errors[m]));
  }
  return stats::FitLine(x, y).slope;
}

void TemporalEngine::Observe(const logs::MemoryErrorRecord& record,
                             std::uint64_t /*seq*/) {
  if (record.type != logs::FailureType::kCorrectable) return;
  ++ce_by_month_[AbsoluteCalendarMonth(record.timestamp)];
}

void TemporalEngine::ObserveBatch(std::span<const logs::MemoryErrorRecord> batch,
                                  std::uint64_t /*first_seq*/) {
  // Error timestamps arrive nearly sorted, so almost every record lands in
  // the same calendar month as its predecessor: the cache turns the civil
  // date conversion into a range check, and the bucket memo turns the map
  // walk into a pointer bump.
  CalendarMonthCache cache;
  std::int64_t last_month = 0;
  std::uint64_t* bucket = nullptr;
  for (const auto& record : batch) {
    if (record.type != logs::FailureType::kCorrectable) continue;
    const std::int64_t month = cache.MonthOf(record.timestamp);
    if (bucket == nullptr || month != last_month) {
      bucket = &ce_by_month_[month];
      last_month = month;
    }
    ++*bucket;
  }
}

bool TemporalEngine::MergeFrom(const TemporalEngine& other) {
  if (&other == this) return false;
  for (const auto& [month, count] : other.ce_by_month_) {
    ce_by_month_[month] += count;
  }
  return true;
}

void TemporalEngine::Snapshot(binio::Writer& writer) const {
  writer.PutU64(ce_by_month_.size());
  for (const auto& [month, count] : ce_by_month_) {
    writer.PutI64(month);
    writer.PutU64(count);
  }
}

bool TemporalEngine::Restore(binio::Reader& reader) {
  ce_by_month_.clear();
  const std::uint64_t count = reader.GetU64();
  if (!reader.CanReadItems(count, sizeof(std::int64_t) + sizeof(std::uint64_t))) {
    return false;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::int64_t month = reader.GetI64();
    ce_by_month_[month] = reader.GetU64();
  }
  if (!reader.Ok()) {
    ce_by_month_.clear();
    return false;
  }
  return true;
}

MonthlyErrorSeries TemporalEngine::Finalize(const CoalesceResult& coalesced,
                                            const SimTime origin,
                                            const int month_count) const {
  MonthlyErrorSeries series;
  series.origin = origin;
  series.month_count = month_count;
  series.all_errors.assign(static_cast<std::size_t>(std::max(0, month_count)), 0);
  for (auto& mode_series : series.by_mode) {
    mode_series.assign(static_cast<std::size_t>(std::max(0, month_count)), 0);
  }

  const std::int64_t origin_month = AbsoluteCalendarMonth(origin);
  for (const auto& [month, count] : ce_by_month_) {
    const std::int64_t index = month - origin_month;
    if (index >= 0 && index < month_count) {
      series.all_errors[static_cast<std::size_t>(index)] += count;
    }
  }

  for (const auto& fault : coalesced.faults) {
    const auto mode_idx = static_cast<std::size_t>(fault.mode);
    const std::size_t months =
        std::min(fault.monthly_errors.size(), series.by_mode[mode_idx].size());
    for (std::size_t m = 0; m < months; ++m) {
      series.by_mode[mode_idx][m] += fault.monthly_errors[m];
    }
  }
  return series;
}

MonthlyErrorSeries BuildMonthlySeries(std::span<const logs::MemoryErrorRecord> records,
                                      const CoalesceResult& coalesced, SimTime origin,
                                      int month_count, unsigned threads) {
  const auto observe_range = [&records](TemporalEngine& engine, std::size_t begin,
                                        std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) engine.Observe(records[i], i);
  };
  const unsigned resolved = ResolveThreadCount(threads);
  TemporalEngine engine;
  if (resolved <= 1 || records.size() < kParallelAnalysisMinItems) {
    observe_range(engine, 0, records.size());
  } else {
    engine = ShardedReduce<TemporalEngine>(
        records.size(), resolved, [](std::size_t) { return TemporalEngine{}; },
        observe_range);
  }
  return engine.Finalize(coalesced, origin, month_count);
}

std::vector<std::uint64_t> DailyCounts(std::span<const SimTime> timestamps,
                                       TimeWindow window) {
  const auto days = static_cast<std::size_t>(
      std::max<std::int64_t>(1, (window.DurationSeconds() +
                                 SimTime::kSecondsPerDay - 1) /
                                    SimTime::kSecondsPerDay));
  std::vector<std::uint64_t> counts(days, 0);
  for (const SimTime t : timestamps) {
    if (!window.Contains(t)) continue;
    const auto day = static_cast<std::size_t>(
        SecondsBetween(window.begin, t) / SimTime::kSecondsPerDay);
    if (day < counts.size()) ++counts[day];
  }
  return counts;
}

}  // namespace astra::core
