#include "core/temporal.hpp"

#include <algorithm>

#include "stats/linear_fit.hpp"

namespace astra::core {

double MonthlyErrorSeries::TrendSlopePerMonth() const noexcept {
  std::vector<double> x, y;
  x.reserve(all_errors.size());
  y.reserve(all_errors.size());
  for (std::size_t m = 0; m < all_errors.size(); ++m) {
    x.push_back(static_cast<double>(m));
    y.push_back(static_cast<double>(all_errors[m]));
  }
  return stats::FitLine(x, y).slope;
}

MonthlyErrorSeries BuildMonthlySeries(std::span<const logs::MemoryErrorRecord> records,
                                      const CoalesceResult& coalesced, SimTime origin,
                                      int month_count) {
  MonthlyErrorSeries series;
  series.origin = origin;
  series.month_count = month_count;
  series.all_errors.assign(static_cast<std::size_t>(month_count), 0);
  for (auto& mode_series : series.by_mode) {
    mode_series.assign(static_cast<std::size_t>(month_count), 0);
  }

  for (const auto& r : records) {
    if (r.type != logs::FailureType::kCorrectable) continue;
    const int month = CalendarMonthIndex(origin, r.timestamp);
    if (month >= 0 && month < month_count) {
      ++series.all_errors[static_cast<std::size_t>(month)];
    }
  }

  for (const auto& fault : coalesced.faults) {
    const auto mode_idx = static_cast<std::size_t>(fault.mode);
    const std::size_t months =
        std::min(fault.monthly_errors.size(), series.by_mode[mode_idx].size());
    for (std::size_t m = 0; m < months; ++m) {
      series.by_mode[mode_idx][m] += fault.monthly_errors[m];
    }
  }
  return series;
}

std::vector<std::uint64_t> DailyCounts(std::span<const SimTime> timestamps,
                                       TimeWindow window) {
  const auto days = static_cast<std::size_t>(
      std::max<std::int64_t>(1, (window.DurationSeconds() +
                                 SimTime::kSecondsPerDay - 1) /
                                    SimTime::kSecondsPerDay));
  std::vector<std::uint64_t> counts(days, 0);
  for (const SimTime t : timestamps) {
    if (!window.Contains(t)) continue;
    const auto day = static_cast<std::size_t>(
        SecondsBetween(window.begin, t) / SimTime::kSecondsPerDay);
    if (day < counts.size()) ++counts[day];
  }
  return counts;
}

}  // namespace astra::core
