#include "core/temporal.hpp"

#include <algorithm>

#include "stats/linear_fit.hpp"
#include "util/parallel.hpp"

namespace astra::core {

double MonthlyErrorSeries::TrendSlopePerMonth() const noexcept {
  std::vector<double> x, y;
  x.reserve(all_errors.size());
  y.reserve(all_errors.size());
  for (std::size_t m = 0; m < all_errors.size(); ++m) {
    x.push_back(static_cast<double>(m));
    y.push_back(static_cast<double>(all_errors[m]));
  }
  return stats::FitLine(x, y).slope;
}

MonthlyErrorSeries BuildMonthlySeries(std::span<const logs::MemoryErrorRecord> records,
                                      const CoalesceResult& coalesced, SimTime origin,
                                      int month_count, unsigned threads) {
  MonthlyErrorSeries series;
  series.origin = origin;
  series.month_count = month_count;
  series.all_errors.assign(static_cast<std::size_t>(month_count), 0);
  for (auto& mode_series : series.by_mode) {
    mode_series.assign(static_cast<std::size_t>(month_count), 0);
  }

  const auto bin_range = [&](std::vector<std::uint64_t>& months, std::size_t begin,
                             std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto& r = records[i];
      if (r.type != logs::FailureType::kCorrectable) continue;
      const int month = CalendarMonthIndex(origin, r.timestamp);
      if (month >= 0 && month < month_count) {
        ++months[static_cast<std::size_t>(month)];
      }
    }
  };
  const unsigned resolved = ResolveThreadCount(threads);
  constexpr std::size_t kParallelBinMinRecords = 1 << 15;
  if (resolved <= 1 || records.size() < kParallelBinMinRecords) {
    bin_range(series.all_errors, 0, records.size());
  } else {
    std::vector<std::vector<std::uint64_t>> partials(
        resolved, std::vector<std::uint64_t>(static_cast<std::size_t>(month_count), 0));
    ParallelShards(records.size(), resolved,
                   [&](std::size_t shard, std::size_t begin, std::size_t end) {
                     bin_range(partials[shard], begin, end);
                   });
    for (const auto& partial : partials) {
      for (std::size_t m = 0; m < series.all_errors.size(); ++m) {
        series.all_errors[m] += partial[m];
      }
    }
  }

  for (const auto& fault : coalesced.faults) {
    const auto mode_idx = static_cast<std::size_t>(fault.mode);
    const std::size_t months =
        std::min(fault.monthly_errors.size(), series.by_mode[mode_idx].size());
    for (std::size_t m = 0; m < months; ++m) {
      series.by_mode[mode_idx][m] += fault.monthly_errors[m];
    }
  }
  return series;
}

std::vector<std::uint64_t> DailyCounts(std::span<const SimTime> timestamps,
                                       TimeWindow window) {
  const auto days = static_cast<std::size_t>(
      std::max<std::int64_t>(1, (window.DurationSeconds() +
                                 SimTime::kSecondsPerDay - 1) /
                                    SimTime::kSecondsPerDay));
  std::vector<std::uint64_t> counts(days, 0);
  for (const SimTime t : timestamps) {
    if (!window.Contains(t)) continue;
    const auto day = static_cast<std::size_t>(
        SecondsBetween(window.begin, t) / SimTime::kSecondsPerDay);
    if (day < counts.size()) ++counts[day];
  }
  return counts;
}

}  // namespace astra::core
