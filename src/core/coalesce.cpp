#include "core/coalesce.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace astra::core {

std::uint64_t FaultCoalescer::GroupKey(const logs::MemoryErrorRecord& r) noexcept {
  return (static_cast<std::uint64_t>(r.node) << 16) |
         (static_cast<std::uint64_t>(static_cast<int>(r.slot)) << 8) |
         (static_cast<std::uint64_t>(r.rank) << 6) |
         static_cast<std::uint64_t>(r.bank);
}

void FaultCoalescer::AddToGroup(Group& group, const logs::MemoryErrorRecord& record) {
  if (group.error_count == 0) {
    group.first_seen = record.timestamp;
    group.last_seen = record.timestamp;
    group.anchor_address = record.physical_address;
    group.anchor_bit = record.bit_position;
  }
  ++group.error_count;
  group.first_seen = std::min(group.first_seen, record.timestamp);
  group.last_seen = std::max(group.last_seen, record.timestamp);
  ++group.addresses[record.physical_address];
  // Column is decodable from the physical address (layout in geometry/).
  const DramCoord coord = DecodePhysicalAddress(record.node, record.physical_address);
  ++group.columns[static_cast<std::uint32_t>(coord.column)];
  ++group.bits[static_cast<std::uint32_t>(record.bit_position)];
  if (options_.row_decodable && record.row != logs::kNoRowInfo) {
    group.rows.insert(static_cast<std::uint32_t>(record.row));
  }

  // Absolute calendar month: origin-free, so the same accumulation serves
  // batch (window known up front) and streaming (window known at finalize).
  const std::int64_t month = month_cache_.MonthOf(record.timestamp);
  ++group.monthly[month];

  // Per-address detail, abandoned once the group is too large to decompose.
  if (!group.detail_overflow) {
    if (group.addresses.size() > options_.decompose_address_limit) {
      group.detail_overflow = true;
      group.details.clear();
      group.details.shrink_to_fit();
    } else {
      auto it = std::find_if(group.details.begin(), group.details.end(),
                             [&](const AddressDetail& d) {
                               return d.address == record.physical_address;
                             });
      if (it == group.details.end()) {
        AddressDetail detail;
        detail.address = record.physical_address;
        detail.first_seen = record.timestamp;
        detail.last_seen = record.timestamp;
        detail.anchor_bit = record.bit_position;
        group.details.push_back(std::move(detail));
        it = std::prev(group.details.end());
      }
      ++it->error_count;
      it->first_seen = std::min(it->first_seen, record.timestamp);
      it->last_seen = std::max(it->last_seen, record.timestamp);
      it->bits.insert(static_cast<std::uint32_t>(record.bit_position));
      ++it->monthly[month];
    }
  }
}

void FaultCoalescer::Add(const logs::MemoryErrorRecord& record) {
  if (record.type == logs::FailureType::kUncorrectable &&
      !options_.include_uncorrectable) {
    ++skipped_records_;
    return;
  }
  ++total_errors_;
  AddToGroup(groups_[GroupKey(record)], record);
}

void FaultCoalescer::ObserveBatch(std::span<const logs::MemoryErrorRecord> batch,
                                  std::uint64_t /*first_seq*/) {
  // Same state as Add per record; the only extra is a last-group memo.
  // Error streams cluster by DIMM, so consecutive records usually share a
  // key and skip the hash lookup.  unordered_map values are pointer-stable
  // (rehashing relinks nodes, never moves them), so the memo survives
  // insertions of other keys.
  std::uint64_t last_key = 0;
  Group* last_group = nullptr;
  for (const auto& record : batch) {
    if (record.type == logs::FailureType::kUncorrectable &&
        !options_.include_uncorrectable) {
      ++skipped_records_;
      continue;
    }
    ++total_errors_;
    const std::uint64_t key = GroupKey(record);
    if (last_group == nullptr || key != last_key) {
      last_group = &groups_[key];
      last_key = key;
    }
    AddToGroup(*last_group, record);
  }
}

namespace {

// Largest single-key share of a counted pattern.
template <typename Map>
double TopShare(const Map& counts, std::uint64_t total) noexcept {
  std::uint64_t top = 0;
  for (const auto& [key, count] : counts) top = std::max(top, count);
  return total == 0 ? 0.0
                    : static_cast<double>(top) / static_cast<double>(total);
}

// Sorted-order map/set traversal keeps emitted fault order and serialized
// bytes independent of hash-table iteration order, so identical logical
// state always produces identical output (and a stable checkpoint CRC).
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& entry : map) keys.push_back(entry.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

template <typename Set>
std::vector<typename Set::key_type> SortedValues(const Set& set) {
  std::vector<typename Set::key_type> values(set.begin(), set.end());
  std::sort(values.begin(), values.end());
  return values;
}

// Project absolute-month bins onto the origin-relative series the report
// renders; months outside [0, month_count) are dropped, matching a batch
// pass configured with this shape up front.
std::vector<std::uint32_t> RemapMonthly(
    const std::map<std::int64_t, std::uint32_t>& monthly,
    std::int64_t origin_month, int month_count) {
  std::vector<std::uint32_t> out;
  if (month_count <= 0) return out;
  out.assign(static_cast<std::size_t>(month_count), 0);
  for (const auto& [month, count] : monthly) {
    const std::int64_t index = month - origin_month;
    if (index >= 0 && index < month_count) {
      out[static_cast<std::size_t>(index)] += count;
    }
  }
  return out;
}

}  // namespace

faultsim::ObservedMode FaultCoalescer::Classify(const Group& group) const noexcept {
  using faultsim::ObservedMode;
  if (group.error_count == 0) return ObservedMode::kUnclassified;
  const double theta = options_.dominance_fraction;
  const bool addr_dominant =
      group.addresses.size() == 1 || TopShare(group.addresses, group.error_count) >= theta;
  const bool col_dominant =
      group.columns.size() == 1 || TopShare(group.columns, group.error_count) >= theta;
  const bool bit_dominant =
      group.bits.size() == 1 || TopShare(group.bits, group.error_count) >= theta;

  if (addr_dominant) {
    return bit_dominant ? ObservedMode::kSingleBit : ObservedMode::kSingleWord;
  }
  if (col_dominant && bit_dominant) return ObservedMode::kSingleColumn;
  if (bit_dominant) {
    // Many columns, one failing bit: a word-line (row) signature.  Platforms
    // that expose rows can confirm (distinct_rows == 1); Astra cannot (§3.2).
    return ObservedMode::kUnattributedRowLike;
  }
  return ObservedMode::kSingleBank;
}

void FaultCoalescer::EmitGroup(const std::uint64_t key, const Group& group,
                               const std::int64_t origin_month,
                               const int month_count,
                               std::vector<CoalescedFault>& out) const {
  const auto node = static_cast<NodeId>(key >> 16);
  const auto slot = static_cast<DimmSlot>((key >> 8) & 0xFF);
  const auto rank = static_cast<RankId>((key >> 6) & 0x3);
  const auto bank = static_cast<BankId>(key & 0x3F);

  const faultsim::ObservedMode mode = Classify(group);
  const bool decompose = mode == faultsim::ObservedMode::kSingleBank &&
                         !group.detail_overflow &&
                         group.addresses.size() <= options_.decompose_address_limit;

  auto base_fault = [&] {
    CoalescedFault fault;
    fault.node = node;
    fault.slot = slot;
    fault.socket = SocketOfSlot(slot);
    fault.rank = rank;
    fault.bank = bank;
    return fault;
  };

  if (!decompose) {
    CoalescedFault fault = base_fault();
    fault.mode = mode;
    fault.error_count = group.error_count;
    fault.distinct_addresses = static_cast<std::uint32_t>(group.addresses.size());
    fault.distinct_columns = static_cast<std::uint32_t>(group.columns.size());
    fault.distinct_bits = static_cast<std::uint32_t>(group.bits.size());
    fault.distinct_rows = static_cast<std::uint32_t>(group.rows.size());
    fault.first_seen = group.first_seen;
    fault.last_seen = group.last_seen;
    fault.anchor_address = group.anchor_address;
    fault.anchor_bit = group.anchor_bit;
    fault.monthly_errors = RemapMonthly(group.monthly, origin_month, month_count);
    out.push_back(std::move(fault));
    return;
  }

  // Incoherent multi-address / multi-bit pattern over a handful of
  // addresses: independent cell faults sharing a bank.  Emit one fault per
  // address, in canonical (address) order so output is independent of the
  // record order the caller happened to feed.
  std::vector<const AddressDetail*> details;
  details.reserve(group.details.size());
  for (const AddressDetail& d : group.details) details.push_back(&d);
  std::sort(details.begin(), details.end(),
            [](const AddressDetail* a, const AddressDetail* b) {
              return a->address < b->address;
            });
  for (const AddressDetail* detail : details) {
    CoalescedFault fault = base_fault();
    fault.mode = detail->bits.size() == 1 ? faultsim::ObservedMode::kSingleBit
                                          : faultsim::ObservedMode::kSingleWord;
    fault.error_count = detail->error_count;
    fault.distinct_addresses = 1;
    fault.distinct_columns = 1;
    fault.distinct_bits = static_cast<std::uint32_t>(detail->bits.size());
    fault.distinct_rows = 0;
    fault.first_seen = detail->first_seen;
    fault.last_seen = detail->last_seen;
    fault.anchor_address = detail->address;
    fault.anchor_bit = detail->anchor_bit;
    fault.monthly_errors = RemapMonthly(detail->monthly, origin_month, month_count);
    out.push_back(std::move(fault));
  }
}

CoalesceResult FaultCoalescer::Finalize(const SimTime origin,
                                        const int month_count) const {
  CoalesceResult result;
  result.total_errors = total_errors_;
  result.skipped_records = skipped_records_;
  result.faults.reserve(groups_.size());

  const std::int64_t origin_month = AbsoluteCalendarMonth(origin);
  // Deterministic iteration order regardless of hash layout.
  for (const std::uint64_t key : SortedKeys(groups_)) {
    EmitGroup(key, groups_.at(key), origin_month, month_count, result.faults);
  }
  return result;
}

void FaultCoalescer::MergeGroup(Group& into, const Group& from) {
  into.error_count += from.error_count;
  into.first_seen = std::min(into.first_seen, from.first_seen);
  into.last_seen = std::max(into.last_seen, from.last_seen);
  // Anchors: `into` holds the earlier shard in index order, so its first
  // observation is the global first — keep its anchor fields.
  // astra-lint: allow(det-unordered-iter): keyed += is commutative.
  for (const auto& [addr, count] : from.addresses) into.addresses[addr] += count;
  // astra-lint: allow(det-unordered-iter): keyed += is commutative.
  for (const auto& [col, count] : from.columns) into.columns[col] += count;
  // astra-lint: allow(det-unordered-iter): keyed += is commutative.
  for (const auto& [bit, count] : from.bits) into.bits[bit] += count;
  // astra-lint: allow(det-unordered-iter): set union is order-independent.
  into.rows.insert(from.rows.begin(), from.rows.end());
  for (const auto& [month, count] : from.monthly) into.monthly[month] += count;

  if (!into.detail_overflow && !from.detail_overflow) {
    for (const AddressDetail& d : from.details) {
      auto it = std::find_if(into.details.begin(), into.details.end(),
                             [&](const AddressDetail& mine) {
                               return mine.address == d.address;
                             });
      if (it == into.details.end()) {
        into.details.push_back(d);
      } else {
        it->error_count += d.error_count;
        it->first_seen = std::min(it->first_seen, d.first_seen);
        it->last_seen = std::max(it->last_seen, d.last_seen);
        // astra-lint: allow(det-unordered-iter): set union is order-independent.
        it->bits.insert(d.bits.begin(), d.bits.end());
        for (const auto& [month, count] : d.monthly) it->monthly[month] += count;
      }
    }
  }
  // Overflow is monotone in the serial pass (details are dropped the moment
  // distinct addresses exceed the limit and never revived), so the merged
  // group overflows iff the union of addresses exceeds the limit — which an
  // overflowed input shard already implies.
  if (into.detail_overflow || from.detail_overflow ||
      into.addresses.size() > options_.decompose_address_limit) {
    into.detail_overflow = true;
    into.details.clear();
    into.details.shrink_to_fit();
  }
}

bool FaultCoalescer::MergeFrom(const FaultCoalescer& other) {
  if (&other == this) return false;
  if (!(options_ == other.options_)) return false;
  total_errors_ += other.total_errors_;
  skipped_records_ += other.skipped_records_;
  for (const std::uint64_t key : SortedKeys(other.groups_)) {
    const Group& from = other.groups_.at(key);
    const auto [it, inserted] = groups_.try_emplace(key);
    if (inserted) {
      it->second = from;
    } else {
      MergeGroup(it->second, from);
    }
  }
  return true;
}

CoalesceResult FaultCoalescer::Coalesce(std::span<const logs::MemoryErrorRecord> records,
                                        const CoalesceOptions& options,
                                        const DataQuality* quality,
                                        unsigned threads) {
  const unsigned resolved = ResolveThreadCount(threads);
  CoalesceResult result;
  if (resolved <= 1 || records.size() < kParallelAnalysisMinItems) {
    FaultCoalescer coalescer(options);
    for (const auto& record : records) coalescer.Add(record);
    result = coalescer.Finalize();
  } else {
    // One engine per contiguous record-index shard, reduced via MergeFrom in
    // index order: byte-identical to the serial pass at any thread count.
    const FaultCoalescer merged = ShardedReduce<FaultCoalescer>(
        records.size(), resolved,
        [&options](std::size_t) { return FaultCoalescer(options); },
        [&records](FaultCoalescer& coalescer, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) coalescer.Add(records[i]);
        });
    result = merged.Finalize();
  }
  AttachIngestCaveats(result, quality);
  return result;
}

void AttachIngestCaveats(CoalesceResult& result, const DataQuality* quality) {
  if (quality == nullptr || !quality->Degraded()) return;
  result.caveats = quality->Caveats();
  if (quality->duplicates_removed > 0) {
    result.caveats.push_back(
        "duplicate telemetry was removed before coalescing; duplication that "
        "predates collection would still inflate per-fault error counts");
  }
}

namespace {

void PutMonthly(binio::Writer& writer,
                const std::map<std::int64_t, std::uint32_t>& monthly) {
  writer.PutU64(monthly.size());
  for (const auto& [month, count] : monthly) {
    writer.PutI64(month);
    writer.PutU32(count);
  }
}

bool GetMonthly(binio::Reader& reader,
                std::map<std::int64_t, std::uint32_t>& monthly) {
  const std::uint64_t count = reader.GetU64();
  if (!reader.CanReadItems(count, sizeof(std::int64_t) + sizeof(std::uint32_t))) {
    return false;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::int64_t month = reader.GetI64();
    monthly[month] = reader.GetU32();
  }
  return reader.Ok();
}

}  // namespace

void FaultCoalescer::Snapshot(binio::Writer& writer) const {
  writer.PutU64(total_errors_);
  writer.PutU64(skipped_records_);
  writer.PutU64(groups_.size());
  for (const std::uint64_t key : SortedKeys(groups_)) {
    const Group& group = groups_.at(key);
    writer.PutU64(key);
    writer.PutU64(group.error_count);
    writer.PutI64(group.first_seen.Seconds());
    writer.PutI64(group.last_seen.Seconds());
    writer.PutU64(group.anchor_address);
    writer.PutI32(group.anchor_bit);
    writer.PutBool(group.detail_overflow);

    writer.PutU64(group.addresses.size());
    for (const std::uint64_t addr : SortedKeys(group.addresses)) {
      writer.PutU64(addr);
      writer.PutU64(group.addresses.at(addr));
    }
    writer.PutU64(group.columns.size());
    for (const std::uint32_t col : SortedKeys(group.columns)) {
      writer.PutU32(col);
      writer.PutU64(group.columns.at(col));
    }
    writer.PutU64(group.bits.size());
    for (const std::uint32_t bit : SortedKeys(group.bits)) {
      writer.PutU32(bit);
      writer.PutU64(group.bits.at(bit));
    }
    const std::vector<std::uint32_t> sorted_rows = SortedValues(group.rows);
    writer.PutU64(sorted_rows.size());
    for (const std::uint32_t row : sorted_rows) writer.PutU32(row);
    PutMonthly(writer, group.monthly);

    // Details sorted by address: insertion order only reflects the record
    // order already consumed, and EmitGroup re-sorts before use anyway.
    std::vector<const AddressDetail*> details;
    details.reserve(group.details.size());
    for (const AddressDetail& d : group.details) details.push_back(&d);
    std::sort(details.begin(), details.end(),
              [](const AddressDetail* a, const AddressDetail* b) {
                return a->address < b->address;
              });
    writer.PutU64(details.size());
    for (const AddressDetail* d : details) {
      writer.PutU64(d->address);
      writer.PutU64(d->error_count);
      writer.PutI64(d->first_seen.Seconds());
      writer.PutI64(d->last_seen.Seconds());
      writer.PutI32(d->anchor_bit);
      const std::vector<std::uint32_t> sorted_bits = SortedValues(d->bits);
      writer.PutU64(sorted_bits.size());
      for (const std::uint32_t bit : sorted_bits) writer.PutU32(bit);
      PutMonthly(writer, d->monthly);
    }
  }
}

bool FaultCoalescer::Restore(binio::Reader& reader) {
  groups_.clear();
  total_errors_ = 0;
  skipped_records_ = 0;

  const std::uint64_t total_errors = reader.GetU64();
  const std::uint64_t skipped = reader.GetU64();
  const std::uint64_t group_count = reader.GetU64();
  // Smallest possible group encoding is well over 8 bytes; 8 is enough to
  // reject hostile counts before the reserve below.
  if (!reader.CanReadItems(group_count, 8)) return false;
  groups_.reserve(static_cast<std::size_t>(group_count));

  for (std::uint64_t g = 0; g < group_count; ++g) {
    const std::uint64_t key = reader.GetU64();
    Group group;
    group.error_count = reader.GetU64();
    group.first_seen = SimTime(reader.GetI64());
    group.last_seen = SimTime(reader.GetI64());
    group.anchor_address = reader.GetU64();
    group.anchor_bit = reader.GetI32();
    group.detail_overflow = reader.GetBool();

    const std::uint64_t addr_count = reader.GetU64();
    if (!reader.CanReadItems(addr_count, 16)) break;
    group.addresses.Reserve(static_cast<std::size_t>(addr_count));
    for (std::uint64_t i = 0; i < addr_count; ++i) {
      const std::uint64_t addr = reader.GetU64();
      group.addresses[addr] = reader.GetU64();
    }
    const std::uint64_t col_count = reader.GetU64();
    if (!reader.CanReadItems(col_count, 12)) break;
    group.columns.Reserve(static_cast<std::size_t>(col_count));
    for (std::uint64_t i = 0; i < col_count; ++i) {
      const std::uint32_t col = reader.GetU32();
      group.columns[col] = reader.GetU64();
    }
    const std::uint64_t bit_count = reader.GetU64();
    if (!reader.CanReadItems(bit_count, 12)) break;
    group.bits.Reserve(static_cast<std::size_t>(bit_count));
    for (std::uint64_t i = 0; i < bit_count; ++i) {
      const std::uint32_t bit = reader.GetU32();
      group.bits[bit] = reader.GetU64();
    }
    const std::uint64_t row_count = reader.GetU64();
    if (!reader.CanReadItems(row_count, sizeof(std::uint32_t))) break;
    group.rows.reserve(static_cast<std::size_t>(row_count));
    for (std::uint64_t i = 0; i < row_count; ++i) {
      group.rows.insert(reader.GetU32());
    }
    if (!GetMonthly(reader, group.monthly)) break;

    const std::uint64_t detail_count = reader.GetU64();
    if (!reader.CanReadItems(detail_count, 8)) break;
    group.details.reserve(static_cast<std::size_t>(detail_count));
    for (std::uint64_t i = 0; i < detail_count; ++i) {
      AddressDetail detail;
      detail.address = reader.GetU64();
      detail.error_count = reader.GetU64();
      detail.first_seen = SimTime(reader.GetI64());
      detail.last_seen = SimTime(reader.GetI64());
      detail.anchor_bit = reader.GetI32();
      const std::uint64_t dbits = reader.GetU64();
      if (!reader.CanReadItems(dbits, sizeof(std::uint32_t))) break;
      detail.bits.reserve(static_cast<std::size_t>(dbits));
      for (std::uint64_t b = 0; b < dbits; ++b) {
        detail.bits.insert(reader.GetU32());
      }
      if (!GetMonthly(reader, detail.monthly)) break;
      group.details.push_back(std::move(detail));
    }
    if (!reader.Ok()) break;
    groups_.emplace(key, std::move(group));
  }

  if (!reader.Ok()) {
    groups_.clear();
    return false;
  }
  total_errors_ = total_errors;
  skipped_records_ = skipped;
  return true;
}

std::vector<std::uint64_t> CoalesceResult::ErrorsPerFault() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(faults.size());
  for (const auto& fault : faults) counts.push_back(fault.error_count);
  return counts;
}

std::uint64_t CoalesceResult::ErrorsOfMode(faultsim::ObservedMode mode) const noexcept {
  std::uint64_t total = 0;
  for (const auto& fault : faults) {
    if (fault.mode == mode) total += fault.error_count;
  }
  return total;
}

std::uint64_t CoalesceResult::FaultsOfMode(faultsim::ObservedMode mode) const noexcept {
  std::uint64_t total = 0;
  for (const auto& fault : faults) {
    if (fault.mode == mode) ++total;
  }
  return total;
}

}  // namespace astra::core
