#include "core/dataset.hpp"

#include <algorithm>

#include "logs/parallel_ingest.hpp"

namespace astra::core {

DatasetPaths DatasetPaths::InDirectory(const std::string& dir) {
  DatasetPaths paths;
  paths.memory_errors = dir + "/memory_errors.tsv";
  paths.het_events = dir + "/het_events.tsv";
  paths.sensors = dir + "/sensor_readings.tsv";
  paths.inventory = dir + "/inventory_scans.tsv";
  return paths;
}

bool WriteFailureData(const DatasetPaths& paths, const faultsim::CampaignResult& result) {
  logs::LogFileWriter<logs::MemoryErrorRecord> errors(paths.memory_errors);
  if (!errors.Ok()) return false;
  for (const auto& record : result.memory_errors) errors.Append(record);
  if (!errors.Finish()) return false;

  logs::LogFileWriter<logs::HetRecord> het(paths.het_events);
  if (!het.Ok()) return false;
  for (const auto& record : result.het_records) het.Append(record);
  return het.Finish();
}

bool WriteSensorData(const DatasetPaths& paths, const sensors::Environment& environment,
                     TimeWindow window, int node_count, const SensorDumpOptions& options) {
  logs::LogFileWriter<logs::SensorRecord> writer(paths.sensors);
  if (!writer.Ok()) return false;

  const int nodes = options.node_limit > 0 ? std::min(options.node_limit, node_count)
                                           : node_count;
  const std::int64_t stride_s =
      std::max<std::int64_t>(1, options.stride_minutes) * SimTime::kSecondsPerMinute;
  for (std::int64_t t = window.begin.Seconds(); t < window.end.Seconds(); t += stride_s) {
    const SimTime when(t);
    for (NodeId node = 0; node < nodes; ++node) {
      for (int s = 0; s < kSensorsPerNode; ++s) {
        const auto kind = static_cast<SensorKind>(s);
        const sensors::SensorReading reading =
            environment.Sensors().Sample(node, kind, when);
        logs::SensorRecord record;
        record.timestamp = when;
        record.node = node;
        record.sensor = kind;
        if (reading.status == sensors::SampleStatus::kMissing) {
          record.valid = false;
        } else {
          record.valid = true;
          record.value = reading.value;  // invalid glitch values written as-is
        }
        writer.Append(record);
      }
    }
  }
  return writer.Finish();
}

bool WriteInventoryData(const DatasetPaths& paths,
                        const replace::ReplacementSimulator& simulator,
                        const replace::ReplacementCampaign& campaign, int stride_days) {
  logs::LogFileWriter<logs::InventoryRecord> writer(paths.inventory);
  if (!writer.Ok()) return false;
  const TimeWindow tracking = simulator.Config().tracking;
  const auto days = static_cast<int>(tracking.DurationDays());
  for (int d = 0; d <= days; d += std::max(1, stride_days)) {
    const SimTime date = tracking.begin.AddDays(d);
    for (const auto& record : simulator.SnapshotAt(campaign, date)) {
      writer.Append(record);
    }
  }
  return writer.Finish();
}

DatasetIngest IngestFailureData(const DatasetPaths& paths,
                                const logs::IngestPolicy& policy, unsigned threads) {
  DatasetIngest ingest;

  const auto memory = logs::ParallelIngestAllRecords<logs::MemoryErrorRecord>(
      paths.memory_errors, policy, threads, &ingest.memory_report);
  if (!memory) {
    ingest.status = DatasetStatus::kMissingPrimary;
    return ingest;
  }
  ingest.memory_errors = std::move(*memory);
  ingest.quality = DataQuality::FromReport(ingest.memory_report);
  if (!ingest.memory_report.AcceptedBy(policy)) {
    ingest.status = DatasetStatus::kRejected;
    return ingest;
  }

  // Auxiliary streams degrade instead of failing the whole ingest: a missing
  // HET file is exactly the "whole missing files" damage class, and lenient
  // mode continues with what survives.
  const auto het = logs::ParallelIngestAllRecords<logs::HetRecord>(
      paths.het_events, policy, threads, &ingest.het_report);
  if (!het) {
    ingest.het_missing = true;
    ingest.quality.stream_missing = true;
  } else {
    ingest.het_events = std::move(*het);
    ingest.quality.Merge(DataQuality::FromReport(ingest.het_report));
    if (!ingest.het_report.AcceptedBy(policy)) {
      ingest.status = DatasetStatus::kRejected;
      return ingest;
    }
  }
  return ingest;
}

std::optional<LoadedFailureData> ReadFailureData(const DatasetPaths& paths) {
  LoadedFailureData data;
  const auto errors = logs::ReadAllRecords<logs::MemoryErrorRecord>(
      paths.memory_errors, &data.memory_stats);
  if (!errors) return std::nullopt;
  data.memory_errors = std::move(*errors);
  const auto het = logs::ReadAllRecords<logs::HetRecord>(paths.het_events,
                                                         &data.het_stats);
  if (!het) return std::nullopt;
  data.het_events = std::move(*het);
  return data;
}

}  // namespace astra::core
