// Fault coalescing and mode classification — the paper's central
// methodological move (§3.2): "not properly accounting for faults can lead
// to erroneous conclusions".  Raw CE records are ERRORS; the underlying
// defects are FAULTS.  This pass groups the error stream into faults and
// classifies each fault's mode from the observable evidence.
//
// Grouping key: (node, slot, rank, bank).  Correctable error streams on a
// SEC-DED machine cannot span multiple banks from one fault (multi-bank
// corruption exceeds SEC-DED's correction ability and becomes a DUE, §3.2),
// so the bank is the natural coalescing granule; like all log-based studies,
// two independent faults in the SAME bank of the same rank merge — a known
// and accepted limitation of the methodology.
//
// Classification evidence per group (Astra conditions):
//  - the record's explicit fields: slot, rank, bank, recorded bit position
//    (vendor encoding is consistent per DIMM, so equal recorded values imply
//    equal true bit positions — §3.2 footnote);
//  - the physical address, from which the COLUMN is decodable but the ROW is
//    not (§3.2: "the system does not provide proper row information").
//
// Decision rule (per bank group), using DOMINANT-pattern shares so that a
// prolific fault is not misclassified merely because an unrelated cell fault
// shares its bank (fault-prone DIMMs host many independent faults, so
// same-bank collisions are common at fleet scale):
//
//   one address (or one address dominates)      -> single-bit / single-word
//   one column dominates + one bit dominates    -> single-column
//   one bit dominates, many columns             -> row-like (single-row on
//                                                  platforms that expose rows)
//   incoherent but only a few addresses         -> DECOMPOSE into one cell
//                                                  fault per address
//   incoherent over many addresses              -> single-bank
//
// "Dominates" means the pattern accounts for at least `dominance_fraction`
// of the group's errors.  `decompose_address_limit` bounds how many distinct
// addresses still count as "a few colliding cell faults" rather than a
// genuine bank footprint.
//
// FaultCoalescer is an analyzer engine (core/engine.hpp): Observe/MergeFrom/
// Snapshot/Restore/Finalize.  Monthly activity is accumulated by ABSOLUTE
// calendar month, so the same engine state serves batch (window known up
// front) and streaming (window known only at finalize): Finalize(origin,
// month_count) remaps the absolute bins to the origin-relative series.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/data_quality.hpp"
#include "faultsim/fault_modes.hpp"
#include "logs/records.hpp"
#include "util/binio.hpp"
#include "util/flat_map.hpp"
#include "util/sim_time.hpp"

namespace astra::core {

struct CoalesceOptions {
  // Astra condition: rows cannot be recovered from records (§3.2).  When
  // true (non-Astra platforms), the row field is trusted and single-row
  // faults become classifiable.
  bool row_decodable = false;
  // Include DUE records in fault grouping (the paper's fault analysis is
  // CE-based; DUEs are analysed separately in §3.5).
  bool include_uncorrectable = false;
  // Default monthly-series shape for the argument-free Finalize(): number of
  // months (0 = empty monthly_errors) and month 0 of the series.  Engine
  // drivers that only learn the window at finalize time pass the shape to
  // Finalize(origin, month_count) instead.
  int month_count = 0;
  SimTime series_origin;  // month 0 of the series
  // Bank groups with more than one column, more than one bit, and at most
  // this many distinct addresses are split into per-address cell faults.
  std::uint32_t decompose_address_limit = 4;
  // Share of a group's errors a single address / column / bit must hold to
  // be treated as the group's defining pattern.
  double dominance_fraction = 0.85;

  friend bool operator==(const CoalesceOptions&, const CoalesceOptions&) = default;
};

// One coalesced fault: the observable aggregate of a defect's error stream.
struct CoalescedFault {
  NodeId node = 0;
  SocketId socket = 0;
  DimmSlot slot = DimmSlot::A;
  RankId rank = 0;
  BankId bank = 0;

  faultsim::ObservedMode mode = faultsim::ObservedMode::kUnclassified;
  std::uint64_t error_count = 0;
  std::uint32_t distinct_addresses = 0;
  std::uint32_t distinct_columns = 0;
  std::uint32_t distinct_bits = 0;   // distinct recorded bit positions
  std::uint32_t distinct_rows = 0;   // 0 when rows are not decodable
  SimTime first_seen;
  SimTime last_seen;

  // Representative locus (first error observed).
  std::uint64_t anchor_address = 0;
  std::int32_t anchor_bit = 0;

  // Errors per month of the series (empty when month_count == 0).
  std::vector<std::uint32_t> monthly_errors;
};

struct CoalesceResult {
  std::vector<CoalescedFault> faults;
  std::uint64_t total_errors = 0;      // error records consumed
  std::uint64_t skipped_records = 0;   // DUEs skipped when not included

  // Data-quality caveats inherited from the ingest (empty on clean input).
  // Duplicated or quarantined telemetry biases error counts and fault
  // classification; callers must surface these alongside the results.
  std::vector<std::string> caveats;

  // Errors-per-fault samples (same order as `faults`) — Fig. 4b's violin.
  [[nodiscard]] std::vector<std::uint64_t> ErrorsPerFault() const;

  // Total errors attributed to faults of a given observed mode.
  [[nodiscard]] std::uint64_t ErrorsOfMode(faultsim::ObservedMode mode) const noexcept;
  [[nodiscard]] std::uint64_t FaultsOfMode(faultsim::ObservedMode mode) const noexcept;
};

// Attach the ingest-damage caveats the one-shot Coalesce() adds to a result
// finalized by hand (engine drivers finalize a live coalescer and must
// disclose the same damage the one-shot path would).
void AttachIngestCaveats(CoalesceResult& result, const DataQuality* quality);

class FaultCoalescer {
 public:
  explicit FaultCoalescer(const CoalesceOptions& options = {}) : options_(options) {}

  // Records may be in any order; call Add repeatedly, then Finalize.
  void Add(const logs::MemoryErrorRecord& record);

  // Engine-contract alias: coalescing is order-insensitive, so the global
  // sequence number is unused.
  void Observe(const logs::MemoryErrorRecord& record, std::uint64_t /*seq*/) {
    Add(record);
  }

  // Batched observation (core/engine.hpp): identical state to calling Add
  // per record — the batch walk just reuses the previous record's group
  // slot, since error streams cluster heavily by DIMM.
  void ObserveBatch(std::span<const logs::MemoryErrorRecord> batch,
                    std::uint64_t first_seq);

  // Fold another coalescer's accumulated state into this one.  Merging is
  // associative and, for the anchor fields (first error observed), drivers
  // must merge in shard INDEX order with `this` holding the earlier shard —
  // then every merged group's anchors equal the serial first-observation
  // anchors.  False (state unchanged) when the options differ.
  [[nodiscard]] bool MergeFrom(const FaultCoalescer& other);

  // Finalize to the origin-relative series shape stored in the options.
  // Non-consuming: the engine can keep observing afterwards (the streaming
  // driver reports mid-campaign).
  [[nodiscard]] CoalesceResult Finalize() const {
    return Finalize(options_.series_origin, options_.month_count);
  }

  // Finalize with an explicit monthly-series shape (engine drivers infer the
  // campaign window after observation ends).  Absolute-month bins are
  // remapped to `monthly_errors[m] = errors in calendar month origin + m`;
  // months outside [0, month_count) are dropped, matching a batch pass that
  // was configured with this shape up front.
  [[nodiscard]] CoalesceResult Finalize(SimTime origin, int month_count) const;

  // Convenience one-shot API.  When `quality` is provided (records came from
  // a hardened dataset ingest), its damage summary is turned into explicit
  // caveats on the result instead of being silently ignored.
  //
  // `threads` > 1 coalesces contiguous record-index shards concurrently and
  // reduces the per-shard engines via MergeFrom in index order — the
  // determinism idiom shared by every analysis (util/parallel.hpp), so
  // results are identical at any thread count.  0 = hardware concurrency,
  // 1 = serial.
  [[nodiscard]] static CoalesceResult Coalesce(
      std::span<const logs::MemoryErrorRecord> records,
      const CoalesceOptions& options = {}, const DataQuality* quality = nullptr,
      unsigned threads = 1);

  // Checkpoint support: serialize the accumulated grouping state
  // deterministically (sorted keys, sorted map entries) so a restored
  // coalescer finalizes to the identical result.  Options are NOT
  // serialized — Restore must target a coalescer constructed with the same
  // options the snapshotted one used; the checkpoint envelope's version
  // field gates format compatibility.
  void Snapshot(binio::Writer& writer) const;
  // Replaces this coalescer's state.  False on a malformed payload (the
  // coalescer is left empty, never half-restored).
  [[nodiscard]] bool Restore(binio::Reader& reader);

 private:
  // Errors per absolute calendar month (util/sim_time.hpp) — origin-free so
  // batch and streaming accumulate identically.
  using MonthlyMap = std::map<std::int64_t, std::uint32_t>;

  // Per-address evidence, kept only while the group is small enough to be a
  // decomposition candidate.
  struct AddressDetail {
    std::uint64_t address = 0;
    std::unordered_set<std::uint32_t> bits;
    std::uint64_t error_count = 0;
    SimTime first_seen;
    SimTime last_seen;
    std::int32_t anchor_bit = 0;
    MonthlyMap monthly;
  };

  struct Group {
    // Flat counter maps (util/flat_map.hpp): contiguous slots, no per-key
    // node allocation on the per-record increment path.  Iteration order is
    // unspecified; Snapshot/Classify walk sorted keys or reduce commutatively.
    FlatCountMap<std::uint64_t> addresses;  // addr -> errors
    FlatCountMap<std::uint32_t> columns;    // col  -> errors
    FlatCountMap<std::uint32_t> bits;       // bit  -> errors
    std::unordered_set<std::uint32_t> rows;
    std::uint64_t error_count = 0;
    SimTime first_seen;
    SimTime last_seen;
    std::uint64_t anchor_address = 0;
    std::int32_t anchor_bit = 0;
    MonthlyMap monthly;
    std::vector<AddressDetail> details;  // valid while !detail_overflow
    bool detail_overflow = false;
  };

  [[nodiscard]] static std::uint64_t GroupKey(const logs::MemoryErrorRecord& r) noexcept;
  [[nodiscard]] faultsim::ObservedMode Classify(const Group& group) const noexcept;
  void EmitGroup(std::uint64_t key, const Group& group, std::int64_t origin_month,
                 int month_count, std::vector<CoalescedFault>& out) const;
  void MergeGroup(Group& into, const Group& from);
  void AddToGroup(Group& group, const logs::MemoryErrorRecord& record);

  CoalesceOptions options_;
  std::unordered_map<std::uint64_t, Group> groups_;
  std::uint64_t total_errors_ = 0;
  std::uint64_t skipped_records_ = 0;
  // Pure cache (never serialized, never merged): month binning memo.
  CalendarMonthCache month_cache_;
};

}  // namespace astra::core
