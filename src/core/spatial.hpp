// Spatial clustering of faults (after Patwari et al., FTXS'17 — the
// paper's reference [23] on "the spatial characteristics of DRAM errors in
// HPC clusters").  Independence would make fault counts per container
// (DIMM, node) Poisson; real fleets — and this simulator's susceptibility
// model — cluster: a device that faulted once is far more likely to fault
// again, and a node with one bad DIMM is more likely to have another.
//
// Measures:
//  - per-container dispersion (variance-to-mean ratio of fault counts;
//    1 = Poisson, > 1 = clustered);
//  - recurrence lift: P(>= 2 faults | >= 1 fault) measured vs the Poisson
//    expectation at the same mean — "how much more likely is a second
//    fault, given a first" (Hwang et al.'s cosmic-rays-don't-strike-twice
//    argument in container form).
#pragma once

#include <cstdint>
#include <span>

#include "core/coalesce.hpp"
#include "util/binio.hpp"

namespace astra::core {

struct ContainerClustering {
  std::size_t containers = 0;          // population (with or without faults)
  std::size_t containers_with_fault = 0;
  std::size_t containers_with_repeat = 0;  // >= 2 faults
  double mean_faults = 0.0;
  double dispersion = 0.0;             // var/mean; 1 = Poisson
  double repeat_probability = 0.0;     // P(>=2 | >=1), measured
  double poisson_repeat_probability = 0.0;  // same quantity if Poisson
  // Lift over Poisson; > 1 means observing one fault predicts more.
  [[nodiscard]] double RecurrenceLift() const noexcept {
    return poisson_repeat_probability > 0.0
               ? repeat_probability / poisson_repeat_probability
               : 0.0;
  }
};

struct SpatialAnalysis {
  ContainerClustering per_dimm;
  ContainerClustering per_node;
  // P(a node has >= 2 DISTINCT faulty DIMMs | >= 1 faulty DIMM), vs the
  // independence baseline computed from the marginal DIMM fault incidence.
  double multi_dimm_probability = 0.0;
  double independent_multi_dimm_probability = 0.0;

  [[nodiscard]] double MultiDimmLift() const noexcept {
    return independent_multi_dimm_probability > 0.0
               ? multi_dimm_probability / independent_multi_dimm_probability
               : 0.0;
  }
};

// `node_count` bounds the populations (DIMM population = node_count * 16).
[[nodiscard]] SpatialAnalysis AnalyzeSpatialClustering(const CoalesceResult& coalesced,
                                                       int node_count);

// The spatial analyzer engine (contract in core/engine.hpp).  Clustering is
// a pure function of the coalesce fragment, so this is a FINALIZE-STAGE
// engine: it carries no per-record state — Observe/Snapshot are no-ops and
// Finalize consumes the FaultCoalescer engine's fragment directly.
class SpatialEngine {
 public:
  void Observe(const logs::MemoryErrorRecord& /*record*/, std::uint64_t /*seq*/) {}
  [[nodiscard]] bool MergeFrom(const SpatialEngine& other) {
    return &other != this;
  }
  void Snapshot(binio::Writer& /*writer*/) const {}
  [[nodiscard]] bool Restore(binio::Reader& reader) { return reader.Ok(); }
  [[nodiscard]] SpatialAnalysis Finalize(const CoalesceResult& coalesced,
                                         int node_count) const {
    return AnalyzeSpatialClustering(coalesced, node_count);
  }
};

}  // namespace astra::core
