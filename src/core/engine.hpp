// The single incremental analysis core.  Every analysis in core/ is an
// ENGINE honoring one contract, and the three drivers — batch serial, batch
// parallel, streaming watch — are thin shells over the same engines:
//
//   batch serial   = one engine set, records replayed in file order;
//   batch parallel = per-shard engine sets over contiguous record-index
//                    ranges, reduced via MergeFrom in shard INDEX order
//                    (util/parallel.hpp ShardedReduce);
//   streaming      = the same engine set fed by TailReader as records
//                    arrive, checkpointed through Snapshot/Restore.
//
// The contract (each engine implements all five):
//
//   void Observe(const Record& record, std::uint64_t seq)
//       Fold one record into the engine state.  `seq` is the record's
//       GLOBAL stream index — the tie-break a stable time-sort applies at
//       equal timestamps.  Order-insensitive engines ignore it.
//   [[nodiscard]] bool MergeFrom(const E& other)
//       Fold another engine's state into this one.  Associative; drivers
//       merge in shard index order with `this` holding the EARLIER shard,
//       which makes first-observation state (anchors) equal the serial
//       replay's.  False — with this engine unchanged — on a configuration
//       mismatch or self-merge.
//   void Snapshot(binio::Writer&) const / [[nodiscard]] bool Restore(binio::Reader&)
//       Deterministic byte serialization of the engine state (sorted keys,
//       ordered containers).  Restore replaces the state; on a malformed
//       payload it returns false with the engine left EMPTY, never
//       half-restored.  Configuration is not serialized: Restore targets an
//       engine constructed with the snapshotted one's config, and the
//       checkpoint envelope version (stream/checkpoint.hpp) gates format.
//   Finalize(...) -> report fragment
//       Project the state onto the analysis result.  Const and
//       non-consuming — the streaming driver reports mid-campaign and keeps
//       observing.  Signatures are engine-specific: finalize-time context
//       (window, origin, populations) is passed here precisely so the same
//       observed state serves drivers that learn the window up front and
//       drivers that infer it after the fact.
//
// Determinism rules the parity tests pin down: identical bytes from all
// three drivers at any thread count requires (a) engine state that is a
// pure function of the observed multiset plus, for order-sensitive
// analyses, the global sequence numbers; (b) reductions in shard index
// order only; (c) iteration over ordered containers (or sorted keys)
// wherever floating-point accumulation order matters.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <utility>

#include "core/coalesce.hpp"
#include "core/positional.hpp"
#include "core/predictor.hpp"
#include "core/temporal.hpp"
#include "core/uncorrectable.hpp"
#include "util/binio.hpp"
#include "util/sim_time.hpp"

namespace astra::core {

// The uniform four of the contract (Finalize is engine-specific).
template <typename E, typename Record = logs::MemoryErrorRecord>
concept AnalyzerEngine =
    std::movable<E> &&
    requires(E engine, const E& other, const Record& record, binio::Writer& writer,
             binio::Reader& reader) {
      { engine.Observe(record, std::uint64_t{0}) } -> std::same_as<void>;
      { engine.MergeFrom(other) } -> std::same_as<bool>;
      { std::as_const(engine).Snapshot(writer) } -> std::same_as<void>;
      { engine.Restore(reader) } -> std::same_as<bool>;
    };

static_assert(AnalyzerEngine<FaultCoalescer>);
static_assert(AnalyzerEngine<PositionalCounts>);
static_assert(AnalyzerEngine<TemporalEngine>);
static_assert(AnalyzerEngine<PredictorEngine>);
static_assert(AnalyzerEngine<UncorrectableEngine, logs::HetRecord>);

// Optional batched extension of the contract.  ObserveBatch(batch, first_seq)
// MUST leave the engine in the state Observe would after
//
//   for (i = 0; i < batch.size(); ++i) Observe(batch[i], first_seq + i);
//
// — it is a pure throughput override (hoisting per-record dispatch, caching
// month bins, reusing the previous record's group slot), never a semantic
// one, so the parity suites hold at any batching boundary.  Drivers call
// ObserveSpan below, which uses the override when an engine provides it and
// falls back to the per-record loop otherwise.
template <typename E, typename Record = logs::MemoryErrorRecord>
concept BatchAnalyzerEngine =
    AnalyzerEngine<E, Record> &&
    requires(E engine, std::span<const Record> batch) {
      { engine.ObserveBatch(batch, std::uint64_t{0}) } -> std::same_as<void>;
    };

static_assert(BatchAnalyzerEngine<FaultCoalescer>);
static_assert(BatchAnalyzerEngine<PositionalCounts>);
static_assert(BatchAnalyzerEngine<TemporalEngine>);
static_assert(BatchAnalyzerEngine<PredictorEngine>);

// Deliver a span of records to an engine: the batched path when the engine
// has one, the equivalent per-record loop otherwise.
template <typename Record, typename E>
void ObserveSpan(E& engine, std::span<const Record> batch, std::uint64_t first_seq) {
  if constexpr (BatchAnalyzerEngine<E, Record>) {
    engine.ObserveBatch(batch, first_seq);
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      engine.Observe(batch[i], first_seq + i);
    }
  }
}

// Finalize-time context shared by the report engines: the analysis window
// (month 0 of the series = window.begin's calendar month), the HET
// recording start, and the analysed populations.
struct EngineContext {
  TimeWindow window;
  SimTime het_start;
  int node_span = 0;
  int month_count = 0;
};

// Configuration for the engines a set carries.  MergeFrom and Restore
// require equal configs on both sides.
struct EngineSetConfig {
  CoalesceOptions coalesce;
  PredictorConfig predictor;

  friend bool operator==(const EngineSetConfig&, const EngineSetConfig&) = default;
};

// Everything the full reliability report prints, in one place.  Each field
// is one engine's Finalize() fragment.
struct AnalysisArtifacts {
  std::size_t record_count = 0;  // delivered memory records (CEs + DUEs)
  int node_span = 0;             // number of node ids analysed
  CoalesceResult faults;
  PositionalAnalysis positions;
  MonthlyErrorSeries series;
  UncorrectableAnalysis dues;
  PredictionEvaluation prediction;
};

// The report's engine set: the five engines whose fragments make up
// AnalysisArtifacts, plus the window/span inference the streaming driver
// needs.  Itself an engine (the contract composes): Observe fans out to the
// members, MergeFrom/Snapshot/Restore delegate member-wise in fixed order.
class AnalysisEngineSet {
 public:
  // `first_sequence` seeds the global stream index of the next ObserveMemory
  // — per-shard sets pass their shard's first record index so sequence
  // numbers are globally consistent after the index-order reduction.
  explicit AnalysisEngineSet(const EngineSetConfig& config = {},
                             std::uint64_t first_sequence = 0);

  void ObserveMemory(const logs::MemoryErrorRecord& record);
  void ObserveHet(const logs::HetRecord& record);

  // Deliver a contiguous batch: identical final state to calling
  // ObserveMemory per record, but each member engine consumes the whole span
  // in one call (engines are independent, so engine-wise delivery reorders
  // nothing an engine can see).
  void ObserveMemoryBatch(std::span<const logs::MemoryErrorRecord> batch);

  // Contract form: deliver `record` AS global stream index `seq`.  The
  // streaming driver uses ObserveMemory and lets the set number its own
  // stream; a caller replaying an explicit indexing (the contract property
  // tests, a shard fed out-of-band) pins each record's index here.
  void Observe(const logs::MemoryErrorRecord& record, std::uint64_t seq) {
    next_seq_ = seq;
    ObserveMemory(record);
  }

  [[nodiscard]] bool MergeFrom(const AnalysisEngineSet& other);
  void Snapshot(binio::Writer& writer) const;
  [[nodiscard]] bool Restore(binio::Reader& reader);

  [[nodiscard]] std::uint64_t Delivered() const { return delivered_; }

  // Context inferred from the records observed so far — node span from the
  // highest node id, window from the timestamp extremes, HET start from the
  // earliest HET event — exactly as the batch `analyze` derives them from an
  // ingested record set.
  [[nodiscard]] EngineContext InferredContext() const;

  // Assemble the full artifact bundle from the engines' fragments.
  // Non-consuming; `quality` threads ingest damage into every fragment's
  // caveats.
  [[nodiscard]] AnalysisArtifacts Finalize(const EngineContext& ctx,
                                           const DataQuality* quality = nullptr) const;

 private:
  EngineSetConfig config_;

  FaultCoalescer coalescer_;
  PositionalCounts positional_;
  TemporalEngine temporal_;
  PredictorEngine predictor_;
  UncorrectableEngine dues_;

  std::uint64_t next_seq_ = 0;   // global stream index of the next record
  std::uint64_t delivered_ = 0;  // memory records observed by THIS set
  bool any_ = false;
  NodeId max_node_ = 0;
  SimTime lo_;
  SimTime hi_;
};

// The batch pipeline: coalesce, positional, monthly series, DUE/FIT and the
// predictor over an ingested record set.  `quality` (optional) threads
// ingest damage through to every stage's caveats.  `threads` > 1 replays
// record-index shards into per-shard engine sets reduced via MergeFrom in
// index order — the artifacts never depend on it (0 = hardware, 1 = serial).
[[nodiscard]] AnalysisArtifacts BuildAnalysisArtifacts(
    std::span<const logs::MemoryErrorRecord> records,
    std::span<const logs::HetRecord> het, int node_span, TimeWindow window,
    SimTime het_start, const DataQuality* quality = nullptr,
    unsigned threads = 0);

}  // namespace astra::core

namespace astra::faultsim {
struct CampaignConfig;
struct CampaignResult;
}  // namespace astra::faultsim

namespace astra::core {

// The in-memory campaign trial path: feed a simulator result straight into
// the engine set (ObserveMemoryBatch over the record vectors, window and
// populations taken from the config) with no serialize-to-disk + re-parse
// round trip.  Byte-identical artifacts to `simulate` + `analyze` over the
// same campaign modulo the window inference analyze performs from record
// extremes; the campaign runner executes hundreds of trials through this
// path (bench_campaign quantifies the saving).
[[nodiscard]] AnalysisArtifacts AnalyzeCampaignResult(
    const faultsim::CampaignResult& result,
    const faultsim::CampaignConfig& config, unsigned threads = 0);

}  // namespace astra::core
