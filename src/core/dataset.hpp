// Dataset directory I/O in the §2.4 release layout: one TSV per telemetry
// stream.  The same reader works on the public Astra release (after column
// name mapping) and on simulator output, which is the point — the analysis
// side of the toolkit never knows which one it got.
#pragma once

#include <optional>
#include <string>

#include "core/data_quality.hpp"
#include "faultsim/fleet.hpp"
#include "logs/log_file.hpp"
#include "replace/replacement_sim.hpp"
#include "sensors/environment.hpp"

namespace astra::core {

struct DatasetPaths {
  std::string memory_errors;  // memory_errors.tsv
  std::string het_events;     // het_events.tsv
  std::string sensors;        // sensor_readings.tsv
  std::string inventory;      // inventory_scans.tsv

  [[nodiscard]] static DatasetPaths InDirectory(const std::string& dir);
};

struct SensorDumpOptions {
  // Sensor sampling stride in minutes (1 = the real cadence; larger values
  // shrink the file for examples and tests).
  int stride_minutes = 60;
  // Only the first `node_limit` nodes are dumped (<=0 = all simulated).
  int node_limit = 0;
};

// Write a campaign's failure telemetry (memory errors + HET stream).
[[nodiscard]] bool WriteFailureData(const DatasetPaths& paths,
                                    const faultsim::CampaignResult& result);

// Write environmental telemetry sampled from the procedural sensor field.
[[nodiscard]] bool WriteSensorData(const DatasetPaths& paths,
                                   const sensors::Environment& environment,
                                   TimeWindow window, int node_count,
                                   const SensorDumpOptions& options = {});

// Write daily inventory snapshots for the tracking window (one snapshot per
// `stride_days`).
[[nodiscard]] bool WriteInventoryData(const DatasetPaths& paths,
                                      const replace::ReplacementSimulator& simulator,
                                      const replace::ReplacementCampaign& campaign,
                                      int stride_days = 1);

// Read back the failure telemetry.
struct LoadedFailureData {
  std::vector<logs::MemoryErrorRecord> memory_errors;
  std::vector<logs::HetRecord> het_events;
  logs::ParseStats memory_stats;
  logs::ParseStats het_stats;
};

[[nodiscard]] std::optional<LoadedFailureData> ReadFailureData(const DatasetPaths& paths);

// --- Hardened dataset ingest --------------------------------------------------

enum class DatasetStatus {
  kOk,              // ingested (possibly with repairs; see quality)
  kMissingPrimary,  // memory_errors.tsv absent or unreadable — nothing to analyse
  kRejected,        // strict policy: malformed budget exceeded
};

// Failure telemetry ingested under an IngestPolicy, with full accounting.
// Lenient mode survives every corruption mode the injector produces: damaged
// lines are quarantined, missing auxiliary streams are flagged, and the
// merged DataQuality summary feeds the analyses' graceful degradation.
struct DatasetIngest {
  DatasetStatus status = DatasetStatus::kOk;
  std::vector<logs::MemoryErrorRecord> memory_errors;
  std::vector<logs::HetRecord> het_events;
  logs::IngestReport memory_report;
  logs::IngestReport het_report;
  bool het_missing = false;  // HET stream absent: DUE analysis degrades
  DataQuality quality;       // merged across ingested streams
};

// `threads` selects the sharded mmap ingest path: 0 = hardware concurrency,
// 1 = the serial reader.  Records, reports, and strict-mode verdicts are
// byte-identical at every thread count.
[[nodiscard]] DatasetIngest IngestFailureData(const DatasetPaths& paths,
                                              const logs::IngestPolicy& policy,
                                              unsigned threads = 1);

}  // namespace astra::core
