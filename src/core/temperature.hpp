// Temperature / utilization correlation analyses (§3.3, Figs. 9, 13, 14).
//
// Three analyses, all consuming the CE record stream plus the environmental
// model (on real data, the same interfaces are served by the sensor files):
//
//  Fig. 9  — look-back fits: for each CE, the mean temperature of the
//            errored DIMM's sensor over the preceding 1 h / 1 d / 1 w / 1 mo
//            window; CE counts are binned by that mean temperature and a
//            line is fitted.  The paper's conclusion: slope ~ 0.
//
//  Fig. 13 — Schroeder-style deciles: (node, sensor, month) observations of
//            monthly-average temperature vs that month's CE count for the
//            components the sensor covers, reduced to deciles.
//
//  Fig. 14 — utilization deciles with a hot/cold split: same observations
//            keyed by monthly-average node POWER (the utilization proxy),
//            split by whether the sensor's monthly temperature is above or
//            below its median.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/data_quality.hpp"
#include "core/record_buffer.hpp"
#include "logs/records.hpp"
#include "sensors/environment.hpp"
#include "stats/deciles.hpp"
#include "stats/linear_fit.hpp"

namespace astra::core {

struct TemperatureAnalysisConfig {
  // Analysis window (§3.3 uses May 20 - Sep 19 2019, the span with
  // environmental data).
  TimeWindow window{SimTime::FromCivil(2019, 5, 20), SimTime::FromCivil(2019, 9, 14)};

  // Look-back durations for the Fig. 9 fits.
  std::vector<std::int64_t> lookback_seconds{
      SimTime::kSecondsPerHour, SimTime::kSecondsPerDay, SimTime::kSecondsPerWeek,
      30 * SimTime::kSecondsPerDay};

  // CE subsampling for the look-back analysis: at most this many CEs are
  // evaluated (deterministic stride); bin counts are scaled back up.
  std::size_t max_lookback_samples = 40'000;

  // Temperature bin width for the Fig. 9 scatter.
  double temp_bin_width_c = 0.5;

  // Integration resolution for window means.
  int mean_samples = 128;
};

// --- Fig. 9 -------------------------------------------------------------------

struct LookbackFit {
  std::int64_t lookback_seconds = 0;
  // Binned scatter: x = mean DIMM temperature before the CE, y = CE count.
  std::vector<double> temperature_bins;  // bin centers
  std::vector<double> ce_counts;         // scaled counts per bin
  stats::LinearFit fit;                  // line over the binned points
};

// --- Figs. 13 / 14 -------------------------------------------------------------

// One (node, sensor, month) observation.
struct MonthlyObservation {
  NodeId node = 0;
  SensorKind sensor = SensorKind::kCpu0Temp;
  int month = 0;                // index from window.begin
  double mean_temperature = 0.0;
  double mean_power = 0.0;      // node DC power over the month
  std::uint64_t ce_count = 0;   // CEs on the components this sensor covers
};

struct SensorDecileSeries {
  SensorKind sensor = SensorKind::kCpu0Temp;
  stats::DecileSeries by_temperature;                  // Fig. 13
  stats::DecileSeries by_power_hot;                    // Fig. 14, T > median
  stats::DecileSeries by_power_cold;                   // Fig. 14, T <= median
  double median_temperature = 0.0;
};

struct TemperatureAnalysis {
  std::vector<LookbackFit> lookback_fits;                       // Fig. 9
  std::array<SensorDecileSeries, kTempSensorsPerNode> deciles;  // Figs. 13-14
  std::vector<MonthlyObservation> observations;                 // raw pairs

  // The paper's bottom line: no look-back window shows a strong positive
  // correlation between temperature and CE rate.
  [[nodiscard]] bool AnyStrongPositiveCorrelation() const noexcept;

  // Graceful degradation: true when too few (node, sensor, month)
  // observations back the decile series for the correlation verdict to hold.
  bool low_sample = false;
  std::vector<std::string> caveats;
};

class TemperatureAnalyzer {
 public:
  TemperatureAnalyzer(const TemperatureAnalysisConfig& config,
                      const sensors::Environment* environment) noexcept
      : config_(config), environment_(environment) {}

  // `node_span`: number of node ids to cover in the decile analyses.
  // `quality` (optional) carries ingest damage into the result's caveats.
  [[nodiscard]] TemperatureAnalysis Analyze(
      std::span<const logs::MemoryErrorRecord> records, int node_span,
      const DataQuality* quality = nullptr) const;

 private:
  [[nodiscard]] LookbackFit AnalyzeLookback(
      std::span<const logs::MemoryErrorRecord> records,
      std::int64_t lookback_seconds) const;

  [[nodiscard]] std::vector<MonthlyObservation> CollectMonthlyObservations(
      std::span<const logs::MemoryErrorRecord> records, int node_span) const;

  TemperatureAnalysisConfig config_;
  const sensors::Environment* environment_;  // not owned
};

// The temperature analyzer engine (contract in core/engine.hpp).  The
// look-back fits integrate the environment over windows anchored at each
// CE's timestamp with a deterministic stride over the whole record set —
// state that cannot be binned incrementally — so the engine buffers the
// stream verbatim and replays TemperatureAnalyzer at finalize time.
class TemperatureEngine {
 public:
  void Observe(const logs::MemoryErrorRecord& record, std::uint64_t /*seq*/) {
    records_.Add(record);
  }
  [[nodiscard]] bool MergeFrom(const TemperatureEngine& other) {
    return records_.MergeFrom(other.records_);
  }
  void Snapshot(binio::Writer& writer) const { records_.Snapshot(writer); }
  [[nodiscard]] bool Restore(binio::Reader& reader) {
    return records_.Restore(reader);
  }
  [[nodiscard]] TemperatureAnalysis Finalize(
      const TemperatureAnalysisConfig& config,
      const sensors::Environment* environment, int node_span,
      const DataQuality* quality = nullptr) const {
    return TemperatureAnalyzer(config, environment)
        .Analyze(records_.Records(), node_span, quality);
  }

 private:
  RecordBuffer<logs::MemoryErrorRecord> records_;
};

}  // namespace astra::core
