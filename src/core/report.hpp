// Shared report rendering for the CLI's `analyze`/`report` commands and the
// streaming `watch` pipeline.  The parity bar across all drivers is
// byte-identical output, so there must be exactly one place that turns
// analysis results into report bytes — these render functions.  Both the
// batch pipeline (BuildAnalysisArtifacts) and the streaming monitor finalize
// the SAME engines (core/engine.hpp) into the same AnalysisArtifacts struct
// and render through the same functions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "logs/ingest.hpp"

namespace astra::core {

// The full report body (volume, fault modes, positional verdicts, monthly
// series, uncorrectable, early warning, deduplicated caveats).
void RenderAnalysisReport(std::ostream& out, const AnalysisArtifacts& artifacts);

// Per-stream ingest accounting, printed before any analysis so malformed
// lines are never silently swallowed.  `het_report == nullptr` renders the
// "het_events: MISSING" degradation line instead.
void RenderIngestReport(std::ostream& out, const logs::IngestPolicy& policy,
                        const logs::IngestReport& memory_report,
                        const logs::IngestReport* het_report);

// The degenerate lenient outcome: nothing usable survived ingest.
void RenderEmptyDatasetReport(std::ostream& out, const DataQuality& quality);

void RenderCaveats(std::ostream& out, const std::vector<std::string>& caveats);

}  // namespace astra::core
