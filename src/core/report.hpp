// Shared report assembly and rendering for the CLI's `analyze`/`report`
// commands and the streaming `watch` pipeline.  The acceptance bar for the
// streaming subsystem is byte-identical output against the batch path, so
// there must be exactly one place that turns analysis results into report
// bytes — these render functions.  The batch path builds its artifacts with
// BuildAnalysisArtifacts; the streaming monitor assembles the same struct
// from its incremental analyzers and renders through the same functions.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/coalesce.hpp"
#include "core/positional.hpp"
#include "core/predictor.hpp"
#include "core/temporal.hpp"
#include "core/uncorrectable.hpp"
#include "logs/ingest.hpp"

namespace astra::core {

// Everything the full reliability report prints, in one place.
struct AnalysisArtifacts {
  std::size_t record_count = 0;  // delivered memory records (CEs + DUEs)
  int node_span = 0;             // number of node ids analysed
  CoalesceResult faults;
  PositionalAnalysis positions;
  MonthlyErrorSeries series;
  UncorrectableAnalysis dues;
  PredictionEvaluation prediction;
};

// The batch pipeline: coalesce, positional, monthly series, DUE/FIT and the
// predictor over an ingested record set.  `quality` (optional) threads
// ingest damage through to every stage's caveats.  `threads` fans stages out
// over shards with deterministic merges — the artifacts never depend on it.
[[nodiscard]] AnalysisArtifacts BuildAnalysisArtifacts(
    std::span<const logs::MemoryErrorRecord> records,
    std::span<const logs::HetRecord> het, int node_span, TimeWindow window,
    SimTime het_start, const DataQuality* quality = nullptr,
    unsigned threads = 0);

// The full report body (volume, fault modes, positional verdicts, monthly
// series, uncorrectable, early warning, deduplicated caveats).
void RenderAnalysisReport(std::ostream& out, const AnalysisArtifacts& artifacts);

// Per-stream ingest accounting, printed before any analysis so malformed
// lines are never silently swallowed.  `het_report == nullptr` renders the
// "het_events: MISSING" degradation line instead.
void RenderIngestReport(std::ostream& out, const logs::IngestPolicy& policy,
                        const logs::IngestReport& memory_report,
                        const logs::IngestReport* het_report);

// The degenerate lenient outcome: nothing usable survived ingest.
void RenderEmptyDatasetReport(std::ostream& out, const DataQuality& quality);

void RenderCaveats(std::ostream& out, const std::vector<std::string>& caveats);

}  // namespace astra::core
