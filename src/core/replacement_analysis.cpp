#include "core/replacement_analysis.hpp"

#include <algorithm>

namespace astra::core {

ReplacementAnalysis AnalyzeReplacements(
    std::span<const replace::ReplacementEvent> events, TimeWindow tracking,
    int node_count) {
  ReplacementAnalysis analysis;
  analysis.tracking = tracking;

  const auto days = static_cast<std::size_t>(
      std::max<std::int64_t>(1, tracking.DurationSeconds() / SimTime::kSecondsPerDay));
  const double population_scale =
      static_cast<double>(node_count) / static_cast<double>(kNumNodes);

  for (int k = 0; k < logs::kComponentKindCount; ++k) {
    auto& summary = analysis.kinds[static_cast<std::size_t>(k)];
    summary.kind = static_cast<logs::ComponentKind>(k);
    summary.population = static_cast<std::uint64_t>(
        static_cast<double>(logs::ComponentPopulation(summary.kind)) *
        population_scale);
    summary.daily.assign(days, 0);
  }

  for (const auto& event : events) {
    auto& summary = analysis.kinds[static_cast<std::size_t>(event.site.kind)];
    ++summary.replaced;
    if (tracking.Contains(event.day)) {
      const auto day = static_cast<std::size_t>(
          SecondsBetween(tracking.begin, event.day) / SimTime::kSecondsPerDay);
      if (day < summary.daily.size()) ++summary.daily[day];
    }
  }

  for (auto& summary : analysis.kinds) {
    if (summary.population > 0) {
      summary.percent_of_total = 100.0 * static_cast<double>(summary.replaced) /
                                 static_cast<double>(summary.population);
    }
    const auto peak = std::max_element(summary.daily.begin(), summary.daily.end());
    summary.peak_day =
        peak == summary.daily.end()
            ? 0
            : static_cast<std::size_t>(std::distance(summary.daily.begin(), peak));
  }
  return analysis;
}

}  // namespace astra::core
