#include "core/spatial.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace astra::core {
namespace {

ContainerClustering Cluster(const std::unordered_map<std::int64_t, std::uint64_t>& counts,
                            std::size_t population) {
  ContainerClustering clustering;
  clustering.containers = population;
  if (population == 0) return clustering;

  std::uint64_t total = 0, sum_sq = 0;
  // astra-lint: allow(det-unordered-iter): integer sums commute exactly.
  for (const auto& [container, count] : counts) {
    ++clustering.containers_with_fault;
    clustering.containers_with_repeat += count >= 2;
    total += count;
    sum_sq += count * count;
  }
  const auto n = static_cast<double>(population);
  clustering.mean_faults = static_cast<double>(total) / n;
  // Population variance including the zero-count containers.
  const double mean = clustering.mean_faults;
  const double variance = static_cast<double>(sum_sq) / n - mean * mean;
  clustering.dispersion = mean > 0.0 ? variance / mean : 0.0;

  if (clustering.containers_with_fault > 0) {
    clustering.repeat_probability =
        static_cast<double>(clustering.containers_with_repeat) /
        static_cast<double>(clustering.containers_with_fault);
  }
  // Poisson with the same mean: P(>=2 | >=1) = (1 - e^-m (1+m)) / (1 - e^-m).
  if (mean > 0.0) {
    const double p_ge1 = 1.0 - std::exp(-mean);
    const double p_ge2 = 1.0 - std::exp(-mean) * (1.0 + mean);
    clustering.poisson_repeat_probability = p_ge1 > 0.0 ? p_ge2 / p_ge1 : 0.0;
  }
  return clustering;
}

}  // namespace

SpatialAnalysis AnalyzeSpatialClustering(const CoalesceResult& coalesced,
                                         int node_count) {
  SpatialAnalysis analysis;

  std::unordered_map<std::int64_t, std::uint64_t> per_dimm, per_node;
  std::unordered_map<NodeId, std::unordered_set<int>> faulty_dimms_per_node;
  for (const auto& fault : coalesced.faults) {
    ++per_dimm[GlobalDimmIndex(fault.node, fault.slot)];
    ++per_node[fault.node];
    faulty_dimms_per_node[fault.node].insert(static_cast<int>(fault.slot));
  }

  const auto dimm_population =
      static_cast<std::size_t>(node_count) * kDimmSlotsPerNode;
  analysis.per_dimm = Cluster(per_dimm, dimm_population);
  analysis.per_node = Cluster(per_node, static_cast<std::size_t>(node_count));

  // Multi-DIMM nodes: measured P(>=2 faulty DIMMs | >=1) vs independence.
  std::size_t nodes_with_faulty = 0, nodes_with_multi = 0;
  // astra-lint: allow(det-unordered-iter): order-independent integer counts.
  for (const auto& [node, dimms] : faulty_dimms_per_node) {
    ++nodes_with_faulty;
    nodes_with_multi += dimms.size() >= 2;
  }
  if (nodes_with_faulty > 0) {
    analysis.multi_dimm_probability = static_cast<double>(nodes_with_multi) /
                                      static_cast<double>(nodes_with_faulty);
  }
  // Independence baseline: each DIMM faulty with marginal probability p;
  // per node of 16 DIMMs, P(>=2 | >=1) with binomial counts.
  const double p = dimm_population > 0
                       ? static_cast<double>(analysis.per_dimm.containers_with_fault) /
                             static_cast<double>(dimm_population)
                       : 0.0;
  if (p > 0.0) {
    const double p0 = std::pow(1.0 - p, kDimmSlotsPerNode);
    const double p1 = kDimmSlotsPerNode * p * std::pow(1.0 - p, kDimmSlotsPerNode - 1);
    const double p_ge1 = 1.0 - p0;
    analysis.independent_multi_dimm_probability =
        p_ge1 > 0.0 ? (1.0 - p0 - p1) / p_ge1 : 0.0;
  }
  return analysis;
}

}  // namespace astra::core
