#include "core/burstiness.hpp"

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"

namespace astra::core {

bool BurstinessEngine::MergeFrom(const BurstinessEngine& other) {
  if (&other == this) return false;
  ce_times_.insert(ce_times_.end(), other.ce_times_.begin(), other.ce_times_.end());
  return true;
}

void BurstinessEngine::Snapshot(binio::Writer& writer) const {
  writer.PutU64(ce_times_.size());
  for (const SimTime t : ce_times_) writer.PutI64(t.Seconds());
}

bool BurstinessEngine::Restore(binio::Reader& reader) {
  ce_times_.clear();
  const std::uint64_t count = reader.GetU64();
  if (!reader.CanReadItems(count, sizeof(std::int64_t))) return false;
  ce_times_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    ce_times_.push_back(SimTime{reader.GetI64()});
  }
  if (!reader.Ok()) {
    ce_times_.clear();
    return false;
  }
  return true;
}

BurstinessAnalysis AnalyzeBurstiness(std::span<const SimTime> timestamps,
                                     TimeWindow window, std::int64_t bucket_seconds) {
  BurstinessAnalysis analysis;
  if (bucket_seconds <= 0 || window.DurationSeconds() <= 0) return analysis;

  std::vector<std::int64_t> in_window;
  in_window.reserve(timestamps.size());
  for (const SimTime t : timestamps) {
    if (window.Contains(t)) in_window.push_back(t.Seconds());
  }
  std::sort(in_window.begin(), in_window.end());
  analysis.events = in_window.size();
  if (in_window.empty()) return analysis;

  // Fano factor over fixed windows.
  const auto buckets = static_cast<std::size_t>(
      (window.DurationSeconds() + bucket_seconds - 1) / bucket_seconds);
  std::vector<double> counts(buckets, 0.0);
  for (const std::int64_t s : in_window) {
    const auto bucket =
        static_cast<std::size_t>((s - window.begin.Seconds()) / bucket_seconds);
    if (bucket < buckets) counts[bucket] += 1.0;
  }
  analysis.windows = buckets;
  const stats::Summary count_summary = stats::Summarize(counts);
  analysis.mean_per_window = count_summary.mean;
  analysis.max_window_count = count_summary.max;
  if (count_summary.mean > 0.0) {
    analysis.fano_factor = count_summary.variance / count_summary.mean;
  }

  // CV^2 of inter-arrival times.
  if (in_window.size() >= 3) {
    std::vector<double> gaps;
    gaps.reserve(in_window.size() - 1);
    for (std::size_t i = 1; i < in_window.size(); ++i) {
      gaps.push_back(static_cast<double>(in_window[i] - in_window[i - 1]));
    }
    const stats::Summary gap_summary = stats::Summarize(gaps);
    if (gap_summary.mean > 0.0) {
      analysis.interarrival_cv2 =
          gap_summary.variance / (gap_summary.mean * gap_summary.mean);
    }
  }
  return analysis;
}

}  // namespace astra::core
