// Positional distribution analyses: how errors and faults distribute across
// every structural axis the paper examines — node (Fig. 5), socket / bank /
// column (Fig. 6), rank / DIMM slot (Fig. 7), bit position / physical
// address (Fig. 8), rack region (Figs. 10-11) and rack (Fig. 12).
//
// Everything is tallied twice — once per ERROR record and once per coalesced
// FAULT — because the contrast between the two is the paper's headline
// result: error counts are dominated by a few prolific faults and look
// skewed; fault counts are (mostly) uniform.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/coalesce.hpp"
#include "stats/chi_square.hpp"
#include "stats/histogram.hpp"
#include "stats/power_law.hpp"
#include "util/flat_map.hpp"

namespace astra::core {

struct PositionalCounts {
  // Dense axes.
  std::array<std::uint64_t, kSocketsPerNode> per_socket{};
  std::array<std::uint64_t, kBanksPerRank> per_bank{};
  std::array<std::uint64_t, kRanksPerDimm> per_rank{};
  std::array<std::uint64_t, kDimmSlotCount> per_slot{};
  std::array<std::uint64_t, kNumRacks> per_rack{};
  std::array<std::uint64_t, kRackRegionCount> per_region{};
  // Columns bucketed into kColumnBuckets groups of contiguous columns (the
  // paper's Fig. 6c/f plots ~32 column groups).
  static constexpr int kColumnBuckets = 32;
  std::array<std::uint64_t, kColumnBuckets> per_column_bucket{};

  // Sparse axes.  The flat maps (util/flat_map.hpp) iterate in UNSPECIFIED
  // order; every determinism-sensitive consumer (Snapshot, the power-law fit
  // inputs) walks them via SortedItems().
  std::vector<std::uint64_t> per_node;                     // size = node span
  FlatCountMap<std::int32_t> per_bit_position;             // recorded bit
  FlatCountMap<std::uint64_t> per_address;

  // Region share per rack (Fig. 11): counts[rack][region].
  std::array<std::array<std::uint64_t, kRackRegionCount>, kNumRacks> per_rack_region{};

  [[nodiscard]] std::uint64_t Total() const noexcept;

  // Engine-contract observation (core/engine.hpp): tally one record.
  // Tallying is order-insensitive, so the global sequence number is unused.
  void Observe(const logs::MemoryErrorRecord& record, std::uint64_t /*seq*/);

  // Batched observation (core/engine.hpp): identical state to calling
  // Observe per record, amortizing the per-record engine dispatch.
  void ObserveBatch(std::span<const logs::MemoryErrorRecord> batch,
                    std::uint64_t first_seq);

  // Add another accumulator's tallies into this one (the reduction step of
  // the sharded analysis; addition commutes, and the sparse axes are ordered
  // maps, so the merged result is independent of shard count).  Counts carry
  // no configuration, so the merge always succeeds; the status return is the
  // uniform engine contract.
  [[nodiscard]] bool MergeFrom(const PositionalCounts& other);

  // Checkpoint support (deterministic byte layout; Restore leaves the
  // counts empty and returns false on a malformed payload).
  void Snapshot(binio::Writer& writer) const;
  [[nodiscard]] bool Restore(binio::Reader& reader);
};

struct PositionalAnalysis {
  PositionalCounts errors;  // one increment per error record
  PositionalCounts faults;  // one increment per coalesced fault

  // Uniformity verdicts for the axes the paper tests (§3.2, §3.4).
  struct UniformityTests {
    stats::ChiSquareResult socket;
    stats::ChiSquareResult bank;
    stats::ChiSquareResult column;
    stats::ChiSquareResult rank;
    stats::ChiSquareResult slot;
    stats::ChiSquareResult rack;
    stats::ChiSquareResult region;
  };
  UniformityTests error_uniformity;
  UniformityTests fault_uniformity;

  // Fig. 5 artifacts.
  stats::FrequencyTable faults_per_node_frequency;  // x faults -> y nodes
  stats::ConcentrationCurve ce_concentration;       // CDF of CEs by node
  stats::PowerLawFit faults_per_node_fit;
  std::uint64_t nodes_with_errors = 0;
  std::uint64_t node_span = 0;  // number of node ids analysed

  // Fig. 8 artifacts (error-weighted, see DESIGN.md note on Fig. 8 counts).
  stats::PowerLawFit bit_position_fit;
  stats::PowerLawFit address_fit;

  // Graceful degradation: true when too few coalesced faults survived ingest
  // for the uniformity verdicts / power-law fits to mean anything.  The
  // caveats spell out why (damage inherited from the dataset ingest).
  bool low_sample = false;
  std::vector<std::string> caveats;
};

// Compute the full positional analysis.  `node_span` bounds the per-node
// arrays (use the campaign's node_count; records outside are ignored).
// DUE records are excluded to match the paper's CE-based analysis.
// `quality` (optional) carries ingest damage into the result's caveats.
// `threads` > 1 tallies record shards into per-thread accumulators reduced
// in shard index order; results are identical at any thread count
// (0 = hardware concurrency, 1 = serial).
[[nodiscard]] PositionalAnalysis AnalyzePositions(
    std::span<const logs::MemoryErrorRecord> records,
    const CoalesceResult& coalesced, int node_span,
    const DataQuality* quality = nullptr, unsigned threads = 1);

// Streaming building blocks: AnalyzePositions is exactly TallyErrorRecord
// over every record followed by FinalizePositions.  TallyErrorRecord ignores
// non-CE records and grows the per-node vector on demand; FinalizePositions
// clamps it back to `node_span`, so an incremental accumulation finalizes to
// the identical analysis a batch run would produce.
void TallyErrorRecord(PositionalCounts& counts,
                      const logs::MemoryErrorRecord& record);
[[nodiscard]] PositionalAnalysis FinalizePositions(PositionalCounts errors,
                                                   const CoalesceResult& coalesced,
                                                   int node_span,
                                                   const DataQuality* quality = nullptr);

}  // namespace astra::core
