#include "core/temperature.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/parallel.hpp"

namespace astra::core {
namespace {

// Months covered by a window (partial months count).
int MonthSpan(TimeWindow window) {
  return CalendarMonthIndex(window.begin, window.end.AddSeconds(-1)) + 1;
}

// First instant of month `m` counted from `origin`'s month (clamped to the
// window in the caller).
SimTime MonthBegin(SimTime origin, int m) {
  const CivilDateTime c = origin.ToCivil();
  const int month0 = (c.date.year * 12) + (c.date.month - 1) + m;
  return SimTime::FromCivil(month0 / 12, month0 % 12 + 1, 1);
}

}  // namespace

bool TemperatureAnalysis::AnyStrongPositiveCorrelation() const noexcept {
  for (const LookbackFit& lookback : lookback_fits) {
    if (lookback.fit.slope > 0.0 && lookback.fit.IsStrongCorrelation()) return true;
  }
  return false;
}

LookbackFit TemperatureAnalyzer::AnalyzeLookback(
    std::span<const logs::MemoryErrorRecord> records,
    std::int64_t lookback_seconds) const {
  LookbackFit result;
  result.lookback_seconds = lookback_seconds;

  // Deterministic subsample of the CE stream.
  std::vector<std::size_t> sampled;
  {
    std::vector<std::size_t> eligible;
    eligible.reserve(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto& r = records[i];
      if (r.type == logs::FailureType::kCorrectable && config_.window.Contains(r.timestamp)) {
        eligible.push_back(i);
      }
    }
    const std::size_t stride =
        std::max<std::size_t>(1, eligible.size() / config_.max_lookback_samples);
    for (std::size_t j = 0; j < eligible.size(); j += stride) {
      sampled.push_back(eligible[j]);
    }
    // Scale factor restores the full population in the bin counts.
    result.ce_counts.clear();
  }
  if (sampled.empty()) return result;
  const double scale = 1.0;  // counts are reported per sampled CE, rescaled below

  // Mean DIMM-sensor temperature over the look-back window per sampled CE,
  // computed in parallel.
  std::vector<double> temps(sampled.size(), 0.0);
  const sensors::SensorField& field = environment_->Sensors();
  ParallelFor(sampled.size(), [&](std::size_t j) {
    const auto& r = records[sampled[j]];
    const SensorKind sensor = DimmSensorOfSlot(r.slot);
    const TimeWindow lookback{r.timestamp.AddSeconds(-lookback_seconds), r.timestamp};
    temps[j] = field.MeanOverWindow(r.node, sensor, lookback, config_.mean_samples);
  });

  // Bin.
  std::map<std::int64_t, std::uint64_t> bins;
  for (const double t : temps) {
    bins[static_cast<std::int64_t>(std::floor(t / config_.temp_bin_width_c))] += 1;
  }
  const double rescale =
      static_cast<double>(std::count_if(records.begin(), records.end(),
                                        [&](const logs::MemoryErrorRecord& r) {
                                          return r.type == logs::FailureType::kCorrectable &&
                                                 config_.window.Contains(r.timestamp);
                                        })) /
      static_cast<double>(sampled.size()) * scale;
  for (const auto& [bin, count] : bins) {
    result.temperature_bins.push_back((static_cast<double>(bin) + 0.5) *
                                      config_.temp_bin_width_c);
    result.ce_counts.push_back(static_cast<double>(count) * rescale);
  }
  result.fit = stats::FitLine(result.temperature_bins, result.ce_counts);
  return result;
}

std::vector<MonthlyObservation> TemperatureAnalyzer::CollectMonthlyObservations(
    std::span<const logs::MemoryErrorRecord> records, int node_span) const {
  const int months = MonthSpan(config_.window);

  // CE counts per (node, sensor, month).  CPU sensors cover their socket's
  // 8 slots; DIMM sensors cover their 4 slots.
  std::vector<std::uint64_t> cpu_counts(
      static_cast<std::size_t>(node_span) * 2 * static_cast<std::size_t>(months), 0);
  std::vector<std::uint64_t> dimm_counts(
      static_cast<std::size_t>(node_span) * 4 * static_cast<std::size_t>(months), 0);

  for (const auto& r : records) {
    if (r.type != logs::FailureType::kCorrectable) continue;
    if (!config_.window.Contains(r.timestamp) || r.node >= node_span) continue;
    const int month = CalendarMonthIndex(config_.window.begin, r.timestamp);
    if (month < 0 || month >= months) continue;
    const auto node_ix = static_cast<std::size_t>(r.node);
    cpu_counts[(node_ix * 2 + static_cast<std::size_t>(r.socket)) *
                   static_cast<std::size_t>(months) +
               static_cast<std::size_t>(month)] += 1;
    const auto dimm_sensor = DimmSensorOfSlot(r.slot);
    const auto dimm_ix =
        static_cast<std::size_t>(static_cast<int>(dimm_sensor) -
                                 static_cast<int>(SensorKind::kDimmsACEG));
    dimm_counts[(node_ix * 4 + dimm_ix) * static_cast<std::size_t>(months) +
                static_cast<std::size_t>(month)] += 1;
  }

  // One observation per (node, temp sensor, month), environmental means
  // evaluated against the models.
  std::vector<MonthlyObservation> observations(
      static_cast<std::size_t>(node_span) * kTempSensorsPerNode *
      static_cast<std::size_t>(months));
  const sensors::SensorField& field = environment_->Sensors();
  const sensors::PowerModel& power = environment_->Power();

  ParallelFor(static_cast<std::size_t>(node_span), [&](std::size_t node_ix) {
    const auto node = static_cast<NodeId>(node_ix);
    for (int m = 0; m < months; ++m) {
      const TimeWindow month_window{
          std::max(MonthBegin(config_.window.begin, m), config_.window.begin),
          std::min(MonthBegin(config_.window.begin, m + 1), config_.window.end)};
      if (month_window.DurationSeconds() <= 0) continue;
      const double mean_power = power.MeanPower(node, month_window);
      for (int s = 0; s < kTempSensorsPerNode; ++s) {
        const auto sensor = static_cast<SensorKind>(s);
        MonthlyObservation obs;
        obs.node = node;
        obs.sensor = sensor;
        obs.month = m;
        obs.mean_temperature =
            field.MeanOverWindow(node, sensor, month_window, config_.mean_samples);
        obs.mean_power = mean_power;
        if (sensor == SensorKind::kCpu0Temp || sensor == SensorKind::kCpu1Temp) {
          obs.ce_count = cpu_counts[(node_ix * 2 + static_cast<std::size_t>(s)) *
                                        static_cast<std::size_t>(months) +
                                    static_cast<std::size_t>(m)];
        } else {
          const auto dimm_ix = static_cast<std::size_t>(
              s - static_cast<int>(SensorKind::kDimmsACEG));
          obs.ce_count = dimm_counts[(node_ix * 4 + dimm_ix) *
                                         static_cast<std::size_t>(months) +
                                     static_cast<std::size_t>(m)];
        }
        observations[(node_ix * kTempSensorsPerNode + static_cast<std::size_t>(s)) *
                         static_cast<std::size_t>(months) +
                     static_cast<std::size_t>(m)] = obs;
      }
    }
  });
  return observations;
}

TemperatureAnalysis TemperatureAnalyzer::Analyze(
    std::span<const logs::MemoryErrorRecord> records, int node_span,
    const DataQuality* quality) const {
  TemperatureAnalysis analysis;

  for (const std::int64_t lookback : config_.lookback_seconds) {
    analysis.lookback_fits.push_back(AnalyzeLookback(records, lookback));
  }

  analysis.observations = CollectMonthlyObservations(records, node_span);

  // Reduce to per-sensor decile series.
  for (int s = 0; s < kTempSensorsPerNode; ++s) {
    const auto sensor = static_cast<SensorKind>(s);
    std::vector<double> temperature, power_x, ces;
    for (const MonthlyObservation& obs : analysis.observations) {
      if (obs.sensor != sensor) continue;
      temperature.push_back(obs.mean_temperature);
      power_x.push_back(obs.mean_power);
      ces.push_back(static_cast<double>(obs.ce_count));
    }
    SensorDecileSeries& series = analysis.deciles[static_cast<std::size_t>(s)];
    series.sensor = sensor;
    series.by_temperature = stats::ComputeDecileSeries(temperature, ces);
    const stats::MedianSplit split = stats::SplitByMedian(temperature, power_x, ces);
    series.median_temperature = split.median_key;
    series.by_power_cold = stats::ComputeDecileSeries(split.low_x, split.low_y);
    series.by_power_hot = stats::ComputeDecileSeries(split.high_x, split.high_y);
  }

  // --- graceful degradation -------------------------------------------------
  if (analysis.observations.size() < kMinObservationsForDeciles) {
    analysis.low_sample = true;
    analysis.caveats.push_back(
        "only " + std::to_string(analysis.observations.size()) +
        " (node, sensor, month) observations (< " +
        std::to_string(kMinObservationsForDeciles) +
        "): decile series and correlation verdicts are unreliable");
  }
  if (quality != nullptr && quality->Degraded()) {
    const auto extra = quality->Caveats();
    analysis.caveats.insert(analysis.caveats.end(), extra.begin(), extra.end());
  }
  return analysis;
}

}  // namespace astra::core
