// astra_serve — fleet-of-fleets monitoring daemon.
//
//   astra_serve ROOT [--racks=N] [--nodes-per-rack=N] [--topology=FILE]
//               [--port=N] [--port-file=FILE] [--checkpoint-dir=DIR]
//               [--checkpoint-every=N] [--webhook=URL] [--poll-ms=MS]
//               [--merge-ms=MS] [--pollers=N] [--idle-exit-ms=MS]
//               [--quiesce-ms=MS] [--strict|--lenient] [--max-malformed=F]
//               [--alert-window=SEC] [--alert-fleet-ces=N] [--alert-node-ces=N]
//               [--retry-max=N] [--retry-base-ms=MS] [--drain]
//       Tail one dataset directory per node under ROOT (node-0000/,
//       node-0001/, ... — the layout serve_fleet writes), merge node -> rack
//       -> fleet, and serve live reports over HTTP on 127.0.0.1:
//         /healthz /fleet/report /rack/{id}/report /node/{id}/report
//         /alerts /stats
//       A served report is byte-identical to `astra-mrt analyze` over the
//       concatenation of the same delivered records.  --checkpoint-dir makes
//       the whole tree crash-safe: per-node checkpoints under one manifest,
//       restored on restart.  --webhook POSTs each published alert as JSON.
//       SIGTERM/SIGINT stop the daemon cleanly (final checkpoint included).
//       With --drain the daemon instead consumes everything currently on
//       disk, prints the fleet report to stdout, and exits — the one-shot
//       batch-parity mode tests and scripts use.
//
//   astra_serve get URL
//       Minimal HTTP GET helper (no curl needed in tests): prints the
//       response body to stdout, exits 0 on HTTP 200.
//
// Exit codes: 0 success, 1 bad usage, 2 I/O or serving failure (unreadable
//             primary logs in --drain mode, rejected checkpoint manifest,
//             bind failure, failed GET).
#include <csignal>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>

#include "serve/daemon.hpp"
#include "serve/http.hpp"
#include "serve/topology.hpp"
#include "util/io_faults.hpp"
#include "util/strings.hpp"

namespace astra::serve {
namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

struct ServeCliOptions {
  std::string root;
  std::string topology_file;
  int racks = 0;           // 0 = from file or default
  int nodes_per_rack = 0;  // 0 = from file or default
  int port = 0;            // 0 = kernel-assigned
  std::string port_file;
  std::string checkpoint_dir;
  int checkpoint_every = 5;
  std::string webhook;
  int poll_ms = 200;
  int merge_ms = 1000;
  int pollers = 4;
  int idle_exit_ms = 0;  // 0 = serve until a signal
  int quiesce_ms = 0;    // 0 = tail forever; >0 = drain after that much idle
  int http_workers = 4;
  std::int64_t alert_window_seconds = 3600;
  std::uint64_t alert_fleet_ces = 0;
  std::uint64_t alert_node_ces = 0;
  int retry_max = 10;
  std::int64_t retry_base_ms = 50;
  logs::IngestPolicy policy;
  bool drain = false;
  std::string bad_flag;  // first flag whose value failed validation
};

ServeCliOptions ParseServeFlags(int argc, char** argv, int first) {
  ServeCliOptions options;
  const auto bad = [&options](const std::string& message) {
    if (options.bad_flag.empty()) options.bad_flag = message;
  };
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (StartsWith(arg, "--racks=")) {
      if (const auto v = ParseInt64(arg.substr(8)); v && *v > 0 && *v <= 100000) {
        options.racks = static_cast<int>(*v);
      } else {
        bad("--racks expects a positive rack count");
      }
    } else if (StartsWith(arg, "--nodes-per-rack=")) {
      if (const auto v = ParseInt64(arg.substr(17)); v && *v > 0 && *v <= 100000) {
        options.nodes_per_rack = static_cast<int>(*v);
      } else {
        bad("--nodes-per-rack expects a positive node count");
      }
    } else if (StartsWith(arg, "--topology=")) {
      options.topology_file = std::string(arg.substr(11));
    } else if (StartsWith(arg, "--port=")) {
      if (const auto v = ParseInt64(arg.substr(7)); v && *v >= 0 && *v <= 65535) {
        options.port = static_cast<int>(*v);
      } else {
        bad("--port expects a port in [0, 65535]");
      }
    } else if (StartsWith(arg, "--port-file=")) {
      options.port_file = std::string(arg.substr(12));
    } else if (StartsWith(arg, "--checkpoint-dir=")) {
      options.checkpoint_dir = std::string(arg.substr(17));
    } else if (StartsWith(arg, "--checkpoint-every=")) {
      if (const auto v = ParseInt64(arg.substr(19)); v && *v > 0) {
        options.checkpoint_every = static_cast<int>(*v);
      } else {
        bad("--checkpoint-every expects a positive merge-cycle count");
      }
    } else if (StartsWith(arg, "--webhook=")) {
      options.webhook = std::string(arg.substr(10));
    } else if (StartsWith(arg, "--poll-ms=")) {
      if (const auto v = ParseInt64(arg.substr(10)); v && *v > 0) {
        options.poll_ms = static_cast<int>(*v);
      } else {
        bad("--poll-ms expects a positive millisecond count");
      }
    } else if (StartsWith(arg, "--merge-ms=")) {
      if (const auto v = ParseInt64(arg.substr(11)); v && *v > 0) {
        options.merge_ms = static_cast<int>(*v);
      } else {
        bad("--merge-ms expects a positive millisecond count");
      }
    } else if (StartsWith(arg, "--pollers=")) {
      if (const auto v = ParseInt64(arg.substr(10)); v && *v > 0 && *v <= 256) {
        options.pollers = static_cast<int>(*v);
      } else {
        bad("--pollers expects a thread count in [1, 256]");
      }
    } else if (StartsWith(arg, "--http-workers=")) {
      if (const auto v = ParseInt64(arg.substr(15)); v && *v > 0 && *v <= 64) {
        options.http_workers = static_cast<int>(*v);
      } else {
        bad("--http-workers expects a thread count in [1, 64]");
      }
    } else if (StartsWith(arg, "--idle-exit-ms=")) {
      if (const auto v = ParseInt64(arg.substr(15)); v && *v >= 0) {
        options.idle_exit_ms = static_cast<int>(*v);
      } else {
        bad("--idle-exit-ms expects a non-negative millisecond count");
      }
    } else if (StartsWith(arg, "--quiesce-ms=")) {
      if (const auto v = ParseInt64(arg.substr(13)); v && *v >= 0) {
        options.quiesce_ms = static_cast<int>(*v);
      } else {
        bad("--quiesce-ms expects a non-negative millisecond count");
      }
    } else if (arg == "--strict") {
      options.policy.mode = logs::IngestPolicy::Mode::kStrict;
    } else if (arg == "--lenient") {
      options.policy.mode = logs::IngestPolicy::Mode::kLenient;
    } else if (StartsWith(arg, "--max-malformed=")) {
      if (const auto v = ParseDouble(arg.substr(16)); v && *v >= 0.0 && *v <= 1.0) {
        options.policy.max_malformed_fraction = *v;
      } else {
        bad("--max-malformed expects a fraction in [0, 1]");
      }
    } else if (StartsWith(arg, "--alert-window=")) {
      if (const auto v = ParseInt64(arg.substr(15)); v && *v > 0) {
        options.alert_window_seconds = *v;
      } else {
        bad("--alert-window expects a positive second count");
      }
    } else if (StartsWith(arg, "--alert-fleet-ces=")) {
      if (const auto v = ParseUint64(arg.substr(18)); v && *v > 0) {
        options.alert_fleet_ces = *v;
      } else {
        bad("--alert-fleet-ces expects a positive CE count");
      }
    } else if (StartsWith(arg, "--alert-node-ces=")) {
      if (const auto v = ParseUint64(arg.substr(17)); v && *v > 0) {
        options.alert_node_ces = *v;
      } else {
        bad("--alert-node-ces expects a positive CE count");
      }
    } else if (StartsWith(arg, "--retry-max=")) {
      if (const auto v = ParseInt64(arg.substr(12)); v && *v > 0 && *v <= 100) {
        options.retry_max = static_cast<int>(*v);
      } else {
        bad("--retry-max expects an attempt count in [1, 100]");
      }
    } else if (StartsWith(arg, "--retry-base-ms=")) {
      if (const auto v = ParseInt64(arg.substr(16)); v && *v >= 0) {
        options.retry_base_ms = *v;
      } else {
        bad("--retry-base-ms expects a non-negative millisecond count");
      }
    } else if (arg == "--drain") {
      options.drain = true;
    } else if (StartsWith(arg, "--")) {
      bad("unknown flag: " + std::string(arg));
    } else if (options.root.empty()) {
      options.root = std::string(arg);
    }
  }
  return options;
}

void PrintUsage() {
  std::cout <<
      "astra_serve — fleet-of-fleets memory reliability monitor\n"
      "\n"
      "usage:\n"
      "  astra_serve ROOT [--racks=N] [--nodes-per-rack=N] [--topology=FILE]\n"
      "              [--port=N] [--port-file=FILE] [--checkpoint-dir=DIR]\n"
      "              [--checkpoint-every=N] [--webhook=URL] [--poll-ms=MS]\n"
      "              [--merge-ms=MS] [--pollers=N] [--http-workers=N]\n"
      "              [--idle-exit-ms=MS] [--quiesce-ms=MS]\n"
      "              [--strict|--lenient] [--max-malformed=F]\n"
      "              [--alert-window=SEC] [--alert-fleet-ces=N] [--alert-node-ces=N]\n"
      "              [--retry-max=N] [--retry-base-ms=MS] [--drain]\n"
      "  astra_serve get URL\n"
      "\n"
      "ROOT holds one dataset directory per node (node-0000/, node-0001/, ...).\n"
      "Endpoints: /healthz /fleet/report /rack/{id}/report /node/{id}/report\n"
      "           /alerts /stats\n";
}

// Resolve the serving topology: file first, then explicit flag overrides.
bool ResolveTopology(const ServeCliOptions& options, ServeTopology& topology) {
  if (!options.topology_file.empty()) {
    const auto parsed = ParseTopologyFile(options.topology_file);
    if (!parsed) {
      std::cerr << "astra_serve: cannot parse topology file "
                << options.topology_file << '\n';
      return false;
    }
    topology = *parsed;
  }
  if (options.racks > 0) topology.racks = options.racks;
  if (options.nodes_per_rack > 0) topology.nodes_per_rack = options.nodes_per_rack;
  if (!topology.Valid()) {
    std::cerr << "astra_serve: invalid topology (" << topology.racks << " x "
              << topology.nodes_per_rack << ")\n";
    return false;
  }
  return true;
}

ServeOptions BuildServeOptions(const ServeCliOptions& options,
                               const ServeTopology& topology) {
  ServeOptions serve;
  serve.root = options.root;
  serve.topology = topology;
  serve.monitor.policy = options.policy;
  serve.monitor.alerts.window_seconds = options.alert_window_seconds;
  serve.monitor.alerts.fleet_ce_threshold = options.alert_fleet_ces;
  serve.monitor.alerts.node_ce_threshold = options.alert_node_ces;
  serve.poll_ms = options.poll_ms;
  serve.merge_ms = options.merge_ms;
  serve.pollers = options.pollers;
  serve.checkpoint_dir = options.checkpoint_dir;
  serve.checkpoint_every_merges = options.checkpoint_every;
  serve.quiesce_ms = options.quiesce_ms;
  serve.retry.max_attempts = options.retry_max;
  serve.retry.base_delay_ms = options.retry_base_ms;
  serve.retry_sleep = ThreadSleeper();
  // Per-poll transient-fault absorption: a short in-poll budget; the poll
  // cadence itself provides the long-horizon retry.
  serve.monitor.io_retry.max_attempts = 3;
  serve.monitor.io_retry.base_delay_ms = options.retry_base_ms;
  return serve;
}

bool InstallWebhook(const ServeCliOptions& options, ServeDaemon& daemon) {
  if (options.webhook.empty()) return true;
  const auto url = ParseHttpUrl(options.webhook);
  if (!url) {
    std::cerr << "astra_serve: cannot parse webhook URL " << options.webhook
              << " (expected http://host:port/path)\n";
    return false;
  }
  RetryPolicy retry;
  retry.max_attempts = options.retry_max;
  retry.base_delay_ms = options.retry_base_ms;
  daemon.Hub().SetWebhook(
      [url = *url](const std::string& body) {
        const auto result = HttpFetch(url.host, url.port, "POST", url.path, body);
        return result && result->status >= 200 && result->status < 300;
      },
      retry, ThreadSleeper());
  return true;
}

int CmdGet(const std::string& url_text) {
  const auto url = ParseHttpUrl(url_text);
  if (!url) {
    std::cerr << "astra_serve get: cannot parse URL " << url_text << '\n';
    return 1;
  }
  const auto result = HttpFetch(url->host, url->port, "GET", url->path);
  if (!result) {
    std::cerr << "astra_serve get: request to " << url_text << " failed\n";
    return 2;
  }
  std::cout << result->body;
  return result->status == 200 ? 0 : 2;
}

int CmdServe(const ServeCliOptions& options) {
  ServeTopology topology;
  if (!ResolveTopology(options, topology)) return 1;

  ServeDaemon daemon(BuildServeOptions(options, topology));
  std::string error;
  if (!daemon.Init(&error)) {
    std::cerr << "astra_serve: " << error << '\n';
    return 2;
  }
  if (!InstallWebhook(options, daemon)) return 1;

  if (options.drain) {
    const std::size_t missing = daemon.Drain();
    if (missing > 0) {
      std::cerr << "astra_serve: " << missing
                << " node(s) have no readable memory_errors log\n";
      return 2;
    }
    std::cout << daemon.FleetReport();
    if (!options.checkpoint_dir.empty() && !daemon.SaveCheckpoint()) {
      std::cerr << "astra_serve: final checkpoint failed\n";
      return 2;
    }
    return 0;
  }

  HttpServer server;
  if (!server.Start(MakeDaemonHandler(daemon),
                    static_cast<std::uint16_t>(options.port),
                    options.http_workers)) {
    std::cerr << "astra_serve: cannot bind 127.0.0.1:" << options.port << '\n';
    return 2;
  }
  if (!options.port_file.empty()) {
    if (!io::Current().WriteFile(options.port_file,
                                 std::to_string(server.Port()) + "\n")) {
      std::cerr << "astra_serve: cannot write port file " << options.port_file
                << '\n';
      server.Stop();
      return 2;
    }
  }
  if (!daemon.StartServing()) {
    std::cerr << "astra_serve: failed to start poller threads\n";
    server.Stop();
    return 2;
  }
  std::cerr << "astra_serve: monitoring " << topology.NodeCount()
            << " node streams (" << topology.racks << " racks x "
            << topology.nodes_per_rack << " nodes) on 127.0.0.1:"
            << server.Port() << '\n';

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  // Serve until a stop signal — or, with --idle-exit-ms, until the data
  // generation stops moving for that long (CI smoke and tests use this as a
  // belt-and-braces bound; the signal path is the normal exit).
  const auto idle_limit = std::chrono::milliseconds(options.idle_exit_ms);
  auto last_activity = std::chrono::steady_clock::now();
  std::uint64_t last_generation = daemon.DataGeneration();
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (options.idle_exit_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      const std::uint64_t generation = daemon.DataGeneration();
      if (generation != last_generation) {
        last_generation = generation;
        last_activity = now;
      } else if (daemon.Ready() && now - last_activity >= idle_limit) {
        break;
      }
    }
  }

  daemon.StopServing();
  server.Stop();
  if (!options.checkpoint_dir.empty() && !daemon.SaveCheckpoint()) {
    std::cerr << "astra_serve: final checkpoint failed\n";
    return 2;
  }
  std::cerr << "astra_serve: stopped after " << server.RequestsServed()
            << " request(s)\n";
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string_view command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    PrintUsage();
    return 0;
  }
  if (command == "get") {
    if (argc < 3) {
      std::cerr << "astra_serve get: URL required\n";
      return 1;
    }
    return CmdGet(argv[2]);
  }

  const ServeCliOptions options = ParseServeFlags(argc, argv, 1);
  if (!options.bad_flag.empty()) {
    std::cerr << "astra_serve: " << options.bad_flag << '\n';
    return 1;
  }
  if (options.root.empty()) {
    std::cerr << "astra_serve: serve root directory required\n";
    PrintUsage();
    return 1;
  }
  return CmdServe(options);
}

}  // namespace
}  // namespace astra::serve

int main(int argc, char** argv) { return astra::serve::Main(argc, argv); }
