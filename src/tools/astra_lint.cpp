// astra-lint: repo-invariant static analysis for the Astra MRT tree.
//
//   astra_lint [--json] [--list-rules] [--no-test-overrides] PATH...
//
// Lints every *.hpp / *.cpp under each PATH (directories recurse; files are
// taken as-is) against the repo's rule families: determinism (no wall
// clocks or libc randomness, no hash-order iteration in report paths, no
// pointer-keyed ordered containers), serialization (checkpoint bytes go
// through util/binio), error handling (no bare catch (...), no exit()
// outside tools/, no discarded ingest/checkpoint statuses), and header
// hygiene (#pragma once, no header-scope using namespace).
//
// Violations are suppressible in-source with a mandatory justification via
// an allow(<rule>) comment; see DESIGN.md "Static analysis" for the syntax.
//
// Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint/engine.hpp"

namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: astra_lint [--json] [--list-rules] [--no-test-overrides] "
         "PATH...\n";
}

void PrintRules(std::ostream& out) {
  for (const astra::lint::RuleInfo& info : astra::lint::kRules) {
    out << "  " << info.id << "\n      " << info.summary << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  astra::lint::LintOptions options;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      PrintRules(std::cout);
      return 0;
    } else if (arg == "--no-test-overrides") {
      options.honor_test_overrides = false;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      PrintRules(std::cout);
      return 0;
    } else if (arg.substr(0, 2) == "--") {
      std::cerr << "astra_lint: unknown flag " << arg << '\n';
      PrintUsage(std::cerr);
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }

  const astra::lint::LintResult result = astra::lint::LintTree(roots, options);
  if (json) {
    astra::lint::RenderJson(std::cout, result);
  } else {
    astra::lint::RenderText(std::cout, result);
  }
  if (!result.io_errors.empty() || result.files_scanned == 0) return 2;
  return result.diagnostics.empty() ? 0 : 1;
}
