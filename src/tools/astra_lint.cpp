// astra-lint: repo-invariant static analysis for the Astra MRT tree.
//
//   astra_lint [--json | --sarif] [--threads=N] [--cache=FILE]
//              [--layers=FILE] [--stats] [--list-rules]
//              [--no-test-overrides] PATH...
//
// Lints every *.hpp / *.cpp under each PATH (directories recurse; files are
// taken as-is) against the repo's rule families: determinism (no wall
// clocks or libc randomness, no hash-order iteration in report paths, no
// pointer-keyed ordered containers), serialization (checkpoint bytes go
// through util/binio), error handling (no bare catch (...), no exit()
// outside tools/, no discarded ingest/checkpoint statuses), header hygiene
// (#pragma once, no header-scope using namespace), lock discipline
// (ASTRA_GUARDED_BY / ASTRA_REQUIRES / ASTRA_EXCLUDES / ASTRA_BLOCKING
// annotations, cross-TU lock-order cycles), and layering (the committed
// src/lint/layers.conf matrix over the include graph).
//
// Analysis fans out over --threads workers (default: hardware concurrency);
// output is byte-identical at any thread count.  --cache=FILE keeps an
// incremental database so unchanged files are never re-lexed across runs.
// --stats prints a one-line summary to stderr (stdout stays identical
// whatever the cache state).
//
// Violations are suppressible in-source with a mandatory justification via
// an allow(<rule>) comment; see DESIGN.md "Static analysis" for the syntax.
//
// Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.
#include <charconv>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint/engine.hpp"

namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: astra_lint [--json | --sarif] [--threads=N] [--cache=FILE]\n"
         "                  [--layers=FILE] [--stats] [--list-rules]\n"
         "                  [--no-test-overrides] PATH...\n";
}

void PrintRules(std::ostream& out) {
  for (const astra::lint::RuleInfo& info : astra::lint::kRules) {
    out << "  " << info.id << "\n      " << info.summary << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  bool stats = false;
  astra::lint::LintOptions options;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg.substr(0, 10) == "--threads=") {
      const std::string_view value = arg.substr(10);
      unsigned threads = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), threads);
      if (ec != std::errc() || ptr != value.data() + value.size()) {
        std::cerr << "astra_lint: bad --threads value '" << value << "'\n";
        return 2;
      }
      options.threads = threads;
    } else if (arg.substr(0, 8) == "--cache=") {
      options.cache_path = std::string(arg.substr(8));
    } else if (arg.substr(0, 9) == "--layers=") {
      options.layers_path = std::string(arg.substr(9));
    } else if (arg == "--list-rules") {
      PrintRules(std::cout);
      return 0;
    } else if (arg == "--no-test-overrides") {
      options.honor_test_overrides = false;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      PrintRules(std::cout);
      return 0;
    } else if (arg.substr(0, 2) == "--") {
      std::cerr << "astra_lint: unknown flag " << arg << '\n';
      PrintUsage(std::cerr);
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }
  if (json && sarif) {
    std::cerr << "astra_lint: --json and --sarif are mutually exclusive\n";
    return 2;
  }

  const astra::lint::LintResult result = astra::lint::LintTree(roots, options);
  if (json) {
    astra::lint::RenderJson(std::cout, result);
  } else if (sarif) {
    astra::lint::RenderSarif(std::cout, result);
  } else {
    astra::lint::RenderText(std::cout, result);
  }
  if (stats) astra::lint::RenderStats(std::cerr, result);
  if (!result.io_errors.empty() || result.files_scanned == 0) return 2;
  return result.diagnostics.empty() ? 0 : 1;
}
