// astra-mrt — command-line front end for the toolkit.
//
//   astra-mrt simulate --out=DIR [--nodes=N] [--seed=S] [--sensor-stride=MIN]
//                      [--live] [--live-batch=N] [--live-delay-ms=MS]
//       Run a campaign and write the full §2.4-format dataset to DIR.  With
//       --live the failure logs are appended in timestamp order, in batches
//       with a delay between them, so a `watch --follow` can tail them as
//       they grow.
//
//   astra-mrt analyze DIR [--nodes=N] [--strict|--lenient] [--threads=N]
//                     [--max-malformed=F] [--reorder-window=SECONDS]
//       Ingest a dataset directory (simulated or real) and print the
//       complete reliability report: fault modes, positional verdicts,
//       concentration, monthly series, DUE/FIT, predictor flags.
//
//   astra-mrt watch DIR [--follow] [--poll-ms=MS] [--idle-exit-ms=MS]
//                   [--checkpoint=FILE] [--strict|--lenient]
//                   [--alert-window=SEC] [--alert-fleet-ces=N]
//                   [--alert-node-ces=N] [--retry-max=N] [--retry-base-ms=MS]
//       Stream the dataset through the incremental analyzers.  Without
//       --follow, one pass over the current file contents prints a report
//       byte-identical to `analyze`; with --follow the files are tailed as
//       they grow, alerts stream to stderr, and the final report is printed
//       on exit.  --checkpoint saves resumable pipeline state (crash-safe:
//       fsync + atomic rename; a stale .tmp from a killed run is swept on
//       startup).  Environmental I/O failures — unreadable logs, checkpoint
//       read/write errors, a primary log that has not appeared yet — are
//       retried under exponential backoff: --retry-max bounds the attempts
//       and --retry-base-ms sets the first delay (doubling, jittered,
//       capped at 2s).  Faults that outlive the budget follow the exit-code
//       contract below; degradable ones (e.g. a het_events stream that
//       never appears) are instead reported as data-quality caveats.
//
//   astra-mrt report [--nodes=N] [--seed=S] [--threads=N]
//       Simulate + analyze in memory (no files) and print the report.
//
//   astra-mrt campaign [--grid=FILE] [--trials=N] [--nodes=N] [--seed=S]
//                      [--threads=N] [--json]
//       Run a what-if scenario grid (ECC scheme x fault-rate multiplier x
//       mitigation policy x thermal profile), N seeded trials per cell,
//       entirely in memory, and print per-cell CE/DUE/SDC/FIT means with
//       bootstrap 95% intervals plus deltas against the Astra baseline
//       cell.  Without --grid the default 2x2x2 headline grid runs;
//       --trials/--nodes/--seed override the grid file's values.  Output is
//       byte-identical at any --threads value.
//
//   astra-mrt corrupt DIR --severity=S [--seed=N] [--modes=a,b,...]
//       Deterministically degrade a dataset directory the way field
//       collection does (truncation, duplicates, clock skew, schema
//       drift, ...).  Use it to exercise `analyze` against dirty data.
//
// Analyze/watch ingest policy: lenient by default (quarantine-and-continue,
// with repairs); --strict rejects the dataset once the malformed fraction
// exceeds --max-malformed (default 0.05).
//
// Exit codes: 0 success, 1 bad usage, 2 I/O failure (fatal: persists past
//             the bounded retry budget), 3 dataset rejected by the strict
//             ingest policy.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "campaign/render.hpp"
#include "campaign/runner.hpp"
#include "core/dataset.hpp"
#include "core/report.hpp"
#include "util/file_io.hpp"
#include "logs/corruption.hpp"
#include "replace/replacement_sim.hpp"
#include "stream/checkpoint.hpp"
#include "stream/monitor.hpp"
#include "util/io_faults.hpp"
#include "util/retry.hpp"
#include "util/strings.hpp"

namespace astra {
namespace {

struct CliOptions {
  int nodes = 6 * kNodesPerRack;
  std::uint64_t seed = 20190120;
  int sensor_stride_minutes = 60;
  unsigned threads = 0;  // 0 = hardware concurrency, 1 = serial pipeline
  std::string out_dir;
  std::string positional;  // first non-flag argument after the command

  // analyze/watch ingest policy
  logs::IngestPolicy policy;
  // corrupt
  double severity = 0.25;
  std::string modes;  // comma-separated subset; empty = all modes
  // simulate --live
  bool live = false;
  int live_batch = 500;
  int live_delay_ms = 25;
  // watch
  bool follow = false;
  int poll_ms = 200;
  int idle_exit_ms = 0;  // 0 = follow forever
  std::string checkpoint;
  std::int64_t alert_window_seconds = 3600;
  std::uint64_t alert_fleet_ces = 0;
  std::uint64_t alert_node_ces = 0;
  // Bounded-backoff budget for environmental I/O failure (watch).  The
  // defaults give up after ~9s of waiting on a log that never appears —
  // generous enough to ride out a slow producer, bounded enough that a
  // wrong path fails loudly instead of hanging forever.
  int retry_max = 10;
  std::int64_t retry_base_ms = 50;
  // campaign
  std::string grid_file;
  bool json = false;
  int trials = 0;  // 0 = grid file / default
  // Flag-given markers: campaign grid files carry their own seed/nodes, and
  // an explicit flag must win over the file, not over the default.
  bool seed_set = false;
  bool nodes_set = false;

  // First flag whose value failed validation; commands refuse to run on it
  // rather than silently proceeding with a default.
  std::string bad_flag;
};

CliOptions ParseCommon(int argc, char** argv, int first) {
  CliOptions options;
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (StartsWith(arg, "--nodes=")) {
      if (const auto v = ParseInt64(arg.substr(8)); v && *v > 0 && *v <= kNumNodes) {
        options.nodes = static_cast<int>(*v);
        options.nodes_set = true;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--nodes expects an integer in [1, " +
                           std::to_string(kNumNodes) + "]";
      }
    } else if (StartsWith(arg, "--seed=")) {
      if (const auto v = ParseUint64(arg.substr(7))) {
        options.seed = *v;
        options.seed_set = true;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--seed expects an unsigned integer";
      }
    } else if (StartsWith(arg, "--sensor-stride=")) {
      if (const auto v = ParseInt64(arg.substr(16)); v && *v > 0) {
        options.sensor_stride_minutes = static_cast<int>(*v);
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--sensor-stride expects a positive minute count";
      }
    } else if (StartsWith(arg, "--threads=")) {
      if (const auto v = ParseInt64(arg.substr(10)); v && *v > 0 && *v <= 1024) {
        options.threads = static_cast<unsigned>(*v);
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--threads expects a positive thread count";
      }
    } else if (StartsWith(arg, "--out=")) {
      options.out_dir = std::string(arg.substr(6));
    } else if (arg == "--strict") {
      options.policy.mode = logs::IngestPolicy::Mode::kStrict;
    } else if (arg == "--lenient") {
      options.policy.mode = logs::IngestPolicy::Mode::kLenient;
    } else if (StartsWith(arg, "--max-malformed=")) {
      if (const auto v = ParseDouble(arg.substr(16)); v && *v >= 0.0 && *v <= 1.0) {
        options.policy.max_malformed_fraction = *v;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--max-malformed expects a fraction in [0, 1]";
      }
    } else if (StartsWith(arg, "--reorder-window=")) {
      if (const auto v = ParseInt64(arg.substr(17)); v && *v >= 0) {
        options.policy.reorder_window_seconds = *v;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--reorder-window expects a non-negative second count";
      }
    } else if (StartsWith(arg, "--severity=")) {
      if (const auto v = ParseDouble(arg.substr(11)); v && *v >= 0.0 && *v <= 1.0) {
        options.severity = *v;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--severity expects a fraction in [0, 1]";
      }
    } else if (StartsWith(arg, "--modes=")) {
      options.modes = std::string(arg.substr(8));
    } else if (arg == "--live") {
      options.live = true;
    } else if (StartsWith(arg, "--live-batch=")) {
      if (const auto v = ParseInt64(arg.substr(13)); v && *v > 0) {
        options.live_batch = static_cast<int>(*v);
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--live-batch expects a positive record count";
      }
    } else if (StartsWith(arg, "--live-delay-ms=")) {
      if (const auto v = ParseInt64(arg.substr(16)); v && *v >= 0) {
        options.live_delay_ms = static_cast<int>(*v);
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--live-delay-ms expects a non-negative millisecond count";
      }
    } else if (arg == "--follow") {
      options.follow = true;
    } else if (StartsWith(arg, "--poll-ms=")) {
      if (const auto v = ParseInt64(arg.substr(10)); v && *v > 0) {
        options.poll_ms = static_cast<int>(*v);
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--poll-ms expects a positive millisecond count";
      }
    } else if (StartsWith(arg, "--idle-exit-ms=")) {
      if (const auto v = ParseInt64(arg.substr(15)); v && *v >= 0) {
        options.idle_exit_ms = static_cast<int>(*v);
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--idle-exit-ms expects a non-negative millisecond count";
      }
    } else if (StartsWith(arg, "--checkpoint=")) {
      options.checkpoint = std::string(arg.substr(13));
    } else if (StartsWith(arg, "--retry-max=")) {
      if (const auto v = ParseInt64(arg.substr(12)); v && *v > 0 && *v <= 100) {
        options.retry_max = static_cast<int>(*v);
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--retry-max expects an attempt count in [1, 100]";
      }
    } else if (StartsWith(arg, "--retry-base-ms=")) {
      if (const auto v = ParseInt64(arg.substr(16)); v && *v >= 0) {
        options.retry_base_ms = *v;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--retry-base-ms expects a non-negative millisecond count";
      }
    } else if (StartsWith(arg, "--alert-window=")) {
      if (const auto v = ParseInt64(arg.substr(15)); v && *v > 0) {
        options.alert_window_seconds = *v;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--alert-window expects a positive second count";
      }
    } else if (StartsWith(arg, "--alert-fleet-ces=")) {
      if (const auto v = ParseUint64(arg.substr(18)); v && *v > 0) {
        options.alert_fleet_ces = *v;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--alert-fleet-ces expects a positive CE count";
      }
    } else if (StartsWith(arg, "--alert-node-ces=")) {
      if (const auto v = ParseUint64(arg.substr(17)); v && *v > 0) {
        options.alert_node_ces = *v;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--alert-node-ces expects a positive CE count";
      }
    } else if (StartsWith(arg, "--grid=")) {
      options.grid_file = std::string(arg.substr(7));
    } else if (arg == "--json") {
      options.json = true;
    } else if (StartsWith(arg, "--trials=")) {
      if (const auto v = ParseInt64(arg.substr(9)); v && *v > 0 && *v <= 10'000) {
        options.trials = static_cast<int>(*v);
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--trials expects a trial count in [1, 10000]";
      }
    } else if (StartsWith(arg, "--")) {
      // A misspelled flag silently falling through to defaults is how a
      // what-if campaign quietly runs the wrong scenario; refuse instead.
      if (options.bad_flag.empty()) {
        options.bad_flag = "unknown flag '" + std::string(arg) +
                           "' (see `astra-mrt help`)";
      }
    } else if (options.positional.empty()) {
      options.positional = std::string(arg);
    }
  }
  return options;
}

void PrintUsage() {
  std::cout <<
      "astra-mrt — Astra Memory Reliability Toolkit\n"
      "\n"
      "usage:\n"
      "  astra-mrt simulate --out=DIR [--nodes=N] [--seed=S] [--sensor-stride=MIN]\n"
      "                     [--live] [--live-batch=N] [--live-delay-ms=MS]\n"
      "  astra-mrt analyze DIR [--nodes=N] [--strict|--lenient] [--threads=N]\n"
      "                    [--max-malformed=F] [--reorder-window=SECONDS]\n"
      "  astra-mrt watch DIR [--follow] [--poll-ms=MS] [--idle-exit-ms=MS]\n"
      "                  [--checkpoint=FILE] [--strict|--lenient]\n"
      "                  [--alert-window=SEC] [--alert-fleet-ces=N] [--alert-node-ces=N]\n"
      "                  [--retry-max=N] [--retry-base-ms=MS]\n"
      "  astra-mrt report [--nodes=N] [--seed=S] [--threads=N]\n"
      "  astra-mrt campaign [--grid=FILE] [--trials=N] [--nodes=N] [--seed=S]\n"
      "                     [--threads=N] [--json]\n"
      "  astra-mrt corrupt DIR --severity=S [--seed=N] [--modes=a,b,...]\n"
      "\n"
      "campaign grid file: key=value lines; axes `ecc` (secded, chipkill,\n"
      "  ondie), `rate` (positive multipliers), `policy` (astra, none,\n"
      "  aggressive), `thermal` (astra, cool, hot) as comma-separated lists;\n"
      "  scalars `trials`, `nodes`, `seed`.  `#` starts a comment.\n"
      "\n"
      "corruption modes: ";
  for (int m = 0; m < logs::kCorruptionModeCount; ++m) {
    std::cout << (m == 0 ? "" : ", ")
              << logs::CorruptionModeName(static_cast<logs::CorruptionMode>(m));
  }
  std::cout << "\n";
}

// Append the failure logs in timestamp order, a batch at a time with a flush
// and a pause between batches — a deterministic stand-in for a fleet's
// telemetry daemons, for exercising `watch --follow` against growing files.
int LiveAppendFailureData(const core::DatasetPaths& paths,
                          const faultsim::CampaignResult& campaign,
                          int batch_size, int delay_ms) {
  logs::LogFileWriter<logs::MemoryErrorRecord> errors(paths.memory_errors);
  logs::LogFileWriter<logs::HetRecord> het(paths.het_events);
  if (!errors.Ok() || !het.Ok()) return 2;

  const auto& memory = campaign.memory_errors;
  const auto& hets = campaign.het_records;
  std::size_t mi = 0;
  std::size_t hi = 0;
  int in_batch = 0;
  while (mi < memory.size() || hi < hets.size()) {
    const bool take_memory =
        hi >= hets.size() ||
        (mi < memory.size() && memory[mi].timestamp <= hets[hi].timestamp);
    if (take_memory) {
      errors.Append(memory[mi++]);
    } else {
      het.Append(hets[hi++]);
    }
    if (++in_batch >= batch_size) {
      in_batch = 0;
      errors.Flush();
      het.Flush();
      if (!errors.Ok() || !het.Ok()) return 2;
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
    }
  }
  return errors.Finish() && het.Finish() ? 0 : 2;
}

int CmdSimulate(const CliOptions& options) {
  if (options.out_dir.empty()) {
    std::cerr << "simulate: --out=DIR is required\n";
    return 1;
  }
  std::filesystem::create_directories(options.out_dir);
  const auto paths = core::DatasetPaths::InDirectory(options.out_dir);

  faultsim::CampaignConfig config;
  config.SeedFrom(options.seed);
  config.node_count = options.nodes;
  std::cerr << "simulating " << options.nodes << " nodes (seed " << options.seed
            << ") ...\n";
  const auto campaign = faultsim::FleetSimulator(config).Run();

  const sensors::Environment environment;
  auto replacement_config = replace::ReplacementSimConfig::AstraDefaults();
  replacement_config.seed = options.seed;
  replacement_config.node_count = options.nodes;
  const replace::ReplacementSimulator replacements(replacement_config);
  const auto replacement_campaign = replacements.Run();

  core::SensorDumpOptions sensor_options;
  sensor_options.stride_minutes = options.sensor_stride_minutes;
  sensor_options.node_limit = std::min(options.nodes, 64);
  // The slow-growing failure logs go last in live mode, so a watcher sees
  // the static streams complete before the tailed ones start growing.
  if (!core::WriteSensorData(paths, environment, config.window, options.nodes,
                             sensor_options) ||
      !core::WriteInventoryData(paths, replacements, replacement_campaign, 7)) {
    std::cerr << "simulate: failed writing dataset to " << options.out_dir << '\n';
    return 2;
  }
  if (options.live) {
    std::cerr << "appending failure logs live (batch " << options.live_batch
              << ", delay " << options.live_delay_ms << "ms) ...\n";
    if (LiveAppendFailureData(paths, campaign, options.live_batch,
                              options.live_delay_ms) != 0) {
      std::cerr << "simulate: failed writing dataset to " << options.out_dir << '\n';
      return 2;
    }
  } else if (!core::WriteFailureData(paths, campaign)) {
    std::cerr << "simulate: failed writing dataset to " << options.out_dir << '\n';
    return 2;
  }
  std::cerr << "wrote " << WithThousands(campaign.memory_errors.size())
            << " memory error records to " << options.out_dir << '\n';
  return 0;
}

int CmdAnalyze(const CliOptions& options) {
  if (options.positional.empty()) {
    std::cerr << "analyze: dataset directory required\n";
    return 1;
  }
  const auto paths = core::DatasetPaths::InDirectory(options.positional);
  const auto ingest = core::IngestFailureData(paths, options.policy, options.threads);
  if (ingest.status == core::DatasetStatus::kMissingPrimary) {
    std::cerr << "analyze: cannot read " << paths.memory_errors << '\n';
    return 2;
  }

  // Ingest accounting is printed before anything else, even when every line
  // parsed — "0 quarantined" is a claim the reader should get to see.
  core::RenderIngestReport(std::cout, options.policy, ingest.memory_report,
                           ingest.het_missing ? nullptr : &ingest.het_report);

  if (ingest.status == core::DatasetStatus::kRejected) {
    std::cerr << "analyze: dataset rejected by strict ingest policy "
                 "(malformed fraction exceeds "
              << FormatDouble(100.0 * options.policy.max_malformed_fraction, 1)
              << "% budget); rerun with --lenient to quarantine and continue\n";
    return 3;
  }

  if (ingest.memory_errors.empty()) {
    // Nothing usable survived (e.g. missing-data corruption at full severity).
    // An empty dataset is a degenerate but valid lenient outcome: report it
    // instead of inferring a time window from no records.
    core::RenderEmptyDatasetReport(std::cout, ingest.quality);
    return 0;
  }

  // Infer span and window from the data itself.
  NodeId max_node = 0;
  SimTime lo = ingest.memory_errors.front().timestamp;
  SimTime hi = lo;
  for (const auto& r : ingest.memory_errors) {
    max_node = std::max(max_node, r.node);
    lo = std::min(lo, r.timestamp);
    hi = std::max(hi, r.timestamp);
  }
  SimTime het_start = hi;
  for (const auto& r : ingest.het_events) {
    het_start = std::min(het_start, r.timestamp);
  }
  const auto artifacts = core::BuildAnalysisArtifacts(
      ingest.memory_errors, ingest.het_events, max_node + 1,
      {lo, hi.AddSeconds(1)}, het_start, &ingest.quality, options.threads);
  core::RenderAnalysisReport(std::cout, artifacts);
  return 0;
}

int CmdWatch(const CliOptions& options) {
  if (options.positional.empty()) {
    std::cerr << "watch: dataset directory required\n";
    return 1;
  }
  const auto paths = core::DatasetPaths::InDirectory(options.positional);

  // One backoff budget governs every environmental retry in this command:
  // in-poll map retries (back-to-back — the poll/probe cadence paces them),
  // checkpoint reads/writes, and waiting for the primary log to appear.
  RetryPolicy retry;
  retry.max_attempts = options.retry_max;
  retry.base_delay_ms = options.retry_base_ms;
  retry.seed = options.seed;

  stream::MonitorConfig config;
  config.policy = options.policy;
  config.alerts.window_seconds = options.alert_window_seconds;
  config.alerts.fleet_ce_threshold = options.alert_fleet_ces;
  config.alerts.node_ce_threshold = options.alert_node_ces;
  config.io_retry = retry;
  stream::StreamMonitor monitor(paths, config);

  if (!options.checkpoint.empty()) {
    // A crash mid-save can leave a torn `.tmp` sidecar; sweep it before the
    // first save would otherwise silently overwrite it.
    if (!stream::RemoveStaleCheckpointTmp(options.checkpoint)) {
      std::cerr << "watch: cannot remove stale checkpoint tmp "
                << options.checkpoint << ".tmp\n";
      return 2;
    }
    if (std::filesystem::exists(options.checkpoint)) {
      const auto status = stream::RestoreMonitorCheckpoint(
          monitor, options.checkpoint, retry, ThreadSleeper());
      if (status != stream::CheckpointStatus::kOk) {
        std::cerr << "watch: checkpoint rejected ("
                  << stream::CheckpointStatusMessage(status) << "): "
                  << options.checkpoint << '\n';
        return 2;
      }
      std::cerr << "watch: resumed from " << options.checkpoint << " ("
                << WithThousands(monitor.Delivered())
                << " records already seen)\n";
    }
  }

  // Alerts stream to stderr as they fire, so the report on stdout stays
  // byte-identical to `analyze` over the same records.
  const auto emit_alerts = [&monitor] {
    for (const auto& alert : monitor.DrainAlerts()) {
      std::cerr << alert.Message() << '\n';
    }
  };
  const auto save_checkpoint = [&]() -> bool {
    if (options.checkpoint.empty()) return true;
    const auto status = stream::SaveMonitorCheckpoint(
        monitor, options.checkpoint, retry, ThreadSleeper());
    if (status != stream::CheckpointStatus::kOk) {
      std::cerr << "watch: cannot write checkpoint " << options.checkpoint
                << '\n';
      return false;
    }
    return true;
  };

  if (options.follow) {
    // Tail the logs until nothing new arrives for --idle-exit-ms (or forever
    // when 0), checkpointing after every productive poll.  A primary log
    // that has never been readable is waited for under bounded backoff
    // instead of the fixed poll interval: the gaps grow until --retry-max
    // consecutive misses, then the watch gives up with the documented I/O
    // failure exit code rather than spinning forever on a wrong path.
    int idle_ms = 0;
    int missing_attempts = 0;
    const auto sleeper = ThreadSleeper();
    while (true) {
      const auto status = monitor.Poll();
      emit_alerts();
      if (status == stream::MonitorStatus::kRejected) break;
      if (status == stream::MonitorStatus::kMissingPrimary) {
        ++missing_attempts;
        if (missing_attempts >= options.retry_max) {
          std::cerr << "watch: cannot read " << paths.memory_errors << " after "
                    << missing_attempts << " attempts\n";
          return 2;
        }
        sleeper(BackoffDelayMs(retry, missing_attempts));
        continue;
      }
      missing_attempts = 0;
      if (status == stream::MonitorStatus::kAdvanced) {
        idle_ms = 0;
        if (!save_checkpoint()) return 2;
      } else {
        idle_ms += options.poll_ms;
        if (options.idle_exit_ms > 0 && idle_ms >= options.idle_exit_ms) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
    }
  } else {
    // Single pass: give a primary log that has not appeared yet (slow
    // producer, racing mount) the same bounded-backoff grace before the
    // final batch-equivalent sweep decides it is fatally unreadable.
    const auto sleeper = ThreadSleeper();
    for (int attempt = 1; attempt < options.retry_max &&
                          !io::Current().FileSize(paths.memory_errors).has_value();
         ++attempt) {
      sleeper(BackoffDelayMs(retry, attempt));
    }
  }

  const auto final_status = monitor.Finish();
  emit_alerts();
  if (final_status == stream::MonitorStatus::kMissingPrimary) {
    std::cerr << "watch: cannot read " << paths.memory_errors << '\n';
    return 2;
  }
  core::RenderIngestReport(std::cout, options.policy, monitor.MemoryReport(),
                           monitor.HetMissing() ? nullptr : &monitor.HetReport());
  if (final_status == stream::MonitorStatus::kRejected) {
    std::cerr << "watch: dataset rejected by strict ingest policy "
                 "(malformed fraction exceeds "
              << FormatDouble(100.0 * options.policy.max_malformed_fraction, 1)
              << "% budget); rerun with --lenient to quarantine and continue\n";
    return 3;
  }
  if (monitor.Delivered() == 0) {
    core::RenderEmptyDatasetReport(std::cout, monitor.Quality());
    return save_checkpoint() ? 0 : 2;
  }
  core::RenderAnalysisReport(std::cout, monitor.Artifacts());
  return save_checkpoint() ? 0 : 2;
}

int CmdCorrupt(const CliOptions& options) {
  if (options.positional.empty()) {
    std::cerr << "corrupt: dataset directory required\n";
    return 1;
  }
  if (!std::filesystem::is_directory(options.positional)) {
    std::cerr << "corrupt: not a directory: " << options.positional << '\n';
    return 2;
  }

  logs::CorruptionConfig config;
  config.seed = options.seed;
  if (options.modes.empty()) {
    config.SetAll(options.severity);
  } else {
    for (const auto name : SplitView(options.modes, ',')) {
      const auto mode = logs::CorruptionModeFromName(TrimView(name));
      if (!mode) {
        std::cerr << "corrupt: unknown mode '" << std::string(TrimView(name))
                  << "' (see `astra-mrt help` for the list)\n";
        return 1;
      }
      config.Set(*mode, options.severity);
    }
  }

  logs::CorruptionInjector injector(config);
  const auto report = injector.CorruptDirectory(options.positional);
  if (!report) {
    std::cerr << "corrupt: failed rewriting files in " << options.positional << '\n';
    return 2;
  }
  std::cout << "corrupted " << options.positional << " (seed " << options.seed
            << ", severity " << FormatDouble(options.severity, 2) << ")\n";
  for (int m = 0; m < logs::kCorruptionModeCount; ++m) {
    const auto mode = static_cast<logs::CorruptionMode>(m);
    if (report->AffectedBy(mode) == 0) continue;
    std::cout << "  " << logs::CorruptionModeName(mode) << ": "
              << WithThousands(report->AffectedBy(mode)) << " lines\n";
  }
  std::cout << "  files damaged: " << report->files_corrupted
            << "  files dropped: " << report->files_dropped
            << "  bytes chopped: " << WithThousands(report->bytes_chopped) << '\n';
  for (const auto& action : report->actions) {
    std::cout << "  " << action << '\n';
  }
  return 0;
}

int CmdReport(const CliOptions& options) {
  faultsim::CampaignConfig config;
  config.SeedFrom(options.seed);
  config.node_count = options.nodes;
  const auto campaign = faultsim::FleetSimulator(config).Run();
  const auto artifacts =
      core::AnalyzeCampaignResult(campaign, config, options.threads);
  core::RenderAnalysisReport(std::cout, artifacts);
  return 0;
}

int CmdCampaign(const CliOptions& options) {
  campaign::ScenarioGrid grid;
  if (!options.grid_file.empty()) {
    const auto bytes = ReadFileBytes(options.grid_file);
    if (!bytes) {
      std::cerr << "campaign: cannot read " << options.grid_file << '\n';
      return 2;
    }
    std::string error;
    auto parsed = campaign::ParseScenarioGrid(*bytes, &error);
    if (!parsed) {
      std::cerr << "campaign: " << options.grid_file << ": " << error << '\n';
      return 1;
    }
    grid = std::move(*parsed);
  }
  // Explicit flags override the grid file; defaults never do.
  if (options.trials > 0) grid.trials = options.trials;
  if (options.nodes_set) grid.node_count = options.nodes;
  if (options.seed_set) grid.seed = options.seed;

  std::cerr << "campaign: " << grid.CellCount() << " cells x " << grid.trials
            << " trials over " << grid.node_count << " nodes each ...\n";
  const campaign::CampaignTable table =
      campaign::RunCampaign(grid, options.threads);
  std::cout << (options.json ? campaign::RenderCampaignJson(table)
                             : campaign::RenderCampaignText(table));
  return 0;
}

}  // namespace
}  // namespace astra

int main(int argc, char** argv) {
  if (argc < 2) {
    astra::PrintUsage();
    return 1;
  }
  const std::string_view command = argv[1];
  const astra::CliOptions options = astra::ParseCommon(argc, argv, 2);
  if (!options.bad_flag.empty()) {
    std::cerr << command << ": " << options.bad_flag << "\n";
    return 1;
  }
  if (command == "simulate") return astra::CmdSimulate(options);
  if (command == "analyze") return astra::CmdAnalyze(options);
  if (command == "watch") return astra::CmdWatch(options);
  if (command == "report") return astra::CmdReport(options);
  if (command == "campaign") return astra::CmdCampaign(options);
  if (command == "corrupt") return astra::CmdCorrupt(options);
  if (command == "help" || command == "--help") {
    astra::PrintUsage();
    return 0;
  }
  std::cerr << "unknown command: " << command << "\n\n";
  astra::PrintUsage();
  return 1;
}
