// astra-mrt — command-line front end for the toolkit.
//
//   astra-mrt simulate --out=DIR [--nodes=N] [--seed=S] [--sensor-stride=MIN]
//       Run a campaign and write the full §2.4-format dataset to DIR.
//
//   astra-mrt analyze DIR [--nodes=N]
//       Ingest a dataset directory (simulated or real) and print the
//       complete reliability report: fault modes, positional verdicts,
//       concentration, monthly series, DUE/FIT, predictor flags.
//
//   astra-mrt report [--nodes=N] [--seed=S]
//       Simulate + analyze in memory (no files) and print the report.
//
//   astra-mrt corrupt DIR --severity=S [--seed=N] [--modes=a,b,...]
//       Deterministically degrade a dataset directory the way field
//       collection does (truncation, duplicates, clock skew, schema
//       drift, ...).  Use it to exercise `analyze` against dirty data.
//
// Analyze ingest policy: lenient by default (quarantine-and-continue, with
// repairs); --strict rejects the dataset once the malformed fraction
// exceeds --max-malformed (default 0.05).
//
// Exit codes: 0 success, 1 bad usage, 2 I/O failure,
//             3 dataset rejected by the strict ingest policy.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>

#include "core/coalesce.hpp"
#include "core/dataset.hpp"
#include "core/lifetime.hpp"
#include "core/positional.hpp"
#include "core/predictor.hpp"
#include "core/temporal.hpp"
#include "core/uncorrectable.hpp"
#include "logs/corruption.hpp"
#include "replace/replacement_sim.hpp"
#include "util/strings.hpp"
#include "util/text_table.hpp"

namespace astra {
namespace {

struct CliOptions {
  int nodes = 6 * kNodesPerRack;
  std::uint64_t seed = 20190120;
  int sensor_stride_minutes = 60;
  unsigned threads = 0;  // 0 = hardware concurrency, 1 = serial pipeline
  std::string out_dir;
  std::string positional;  // first non-flag argument after the command

  // analyze ingest policy
  logs::IngestPolicy policy;
  // corrupt
  double severity = 0.25;
  std::string modes;  // comma-separated subset; empty = all modes

  // First flag whose value failed validation; commands refuse to run on it
  // rather than silently proceeding with a default.
  std::string bad_flag;
};

CliOptions ParseCommon(int argc, char** argv, int first) {
  CliOptions options;
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (StartsWith(arg, "--nodes=")) {
      if (const auto v = ParseInt64(arg.substr(8)); v && *v > 0 && *v <= kNumNodes) {
        options.nodes = static_cast<int>(*v);
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--nodes expects an integer in [1, " +
                           std::to_string(kNumNodes) + "]";
      }
    } else if (StartsWith(arg, "--seed=")) {
      if (const auto v = ParseUint64(arg.substr(7))) {
        options.seed = *v;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--seed expects an unsigned integer";
      }
    } else if (StartsWith(arg, "--sensor-stride=")) {
      if (const auto v = ParseInt64(arg.substr(16)); v && *v > 0) {
        options.sensor_stride_minutes = static_cast<int>(*v);
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--sensor-stride expects a positive minute count";
      }
    } else if (StartsWith(arg, "--threads=")) {
      if (const auto v = ParseInt64(arg.substr(10)); v && *v > 0 && *v <= 1024) {
        options.threads = static_cast<unsigned>(*v);
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--threads expects a positive thread count";
      }
    } else if (StartsWith(arg, "--out=")) {
      options.out_dir = std::string(arg.substr(6));
    } else if (arg == "--strict") {
      options.policy.mode = logs::IngestPolicy::Mode::kStrict;
    } else if (arg == "--lenient") {
      options.policy.mode = logs::IngestPolicy::Mode::kLenient;
    } else if (StartsWith(arg, "--max-malformed=")) {
      if (const auto v = ParseDouble(arg.substr(16)); v && *v >= 0.0 && *v <= 1.0) {
        options.policy.max_malformed_fraction = *v;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--max-malformed expects a fraction in [0, 1]";
      }
    } else if (StartsWith(arg, "--reorder-window=")) {
      if (const auto v = ParseInt64(arg.substr(17)); v && *v >= 0) {
        options.policy.reorder_window_seconds = *v;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--reorder-window expects a non-negative second count";
      }
    } else if (StartsWith(arg, "--severity=")) {
      if (const auto v = ParseDouble(arg.substr(11)); v && *v >= 0.0 && *v <= 1.0) {
        options.severity = *v;
      } else if (options.bad_flag.empty()) {
        options.bad_flag = "--severity expects a fraction in [0, 1]";
      }
    } else if (StartsWith(arg, "--modes=")) {
      options.modes = std::string(arg.substr(8));
    } else if (!StartsWith(arg, "--") && options.positional.empty()) {
      options.positional = std::string(arg);
    }
  }
  return options;
}

void PrintUsage() {
  std::cout <<
      "astra-mrt — Astra Memory Reliability Toolkit\n"
      "\n"
      "usage:\n"
      "  astra-mrt simulate --out=DIR [--nodes=N] [--seed=S] [--sensor-stride=MIN]\n"
      "  astra-mrt analyze DIR [--nodes=N] [--strict|--lenient] [--threads=N]\n"
      "                    [--max-malformed=F] [--reorder-window=SECONDS]\n"
      "  astra-mrt report [--nodes=N] [--seed=S] [--threads=N]\n"
      "  astra-mrt corrupt DIR --severity=S [--seed=N] [--modes=a,b,...]\n"
      "\n"
      "corruption modes: ";
  for (int m = 0; m < logs::kCorruptionModeCount; ++m) {
    std::cout << (m == 0 ? "" : ", ")
              << logs::CorruptionModeName(static_cast<logs::CorruptionMode>(m));
  }
  std::cout << "\n";
}

// Per-stream ingest accounting, printed unconditionally so malformed lines
// are never silently swallowed (an empty report is itself information).
void PrintIngestLine(const std::string& name, const logs::IngestReport& report) {
  std::cout << "  " << name << ": " << WithThousands(report.stats.total_lines)
            << " lines, " << WithThousands(report.stats.parsed) << " parsed, "
            << WithThousands(report.stats.malformed) << " quarantined ("
            << FormatDouble(100.0 * report.stats.MalformedFraction(), 2) << "%)";
  if (report.stats.malformed > 0) {
    std::cout << " [";
    bool first = true;
    for (int r = 0; r < logs::kMalformedReasonCount; ++r) {
      const auto n = report.malformed_by_reason[static_cast<std::size_t>(r)];
      if (n == 0) continue;
      std::cout << (first ? "" : ", ")
                << logs::MalformedReasonName(static_cast<logs::MalformedReason>(r))
                << " " << n;
      first = false;
    }
    std::cout << "]";
  }
  if (report.duplicates_removed > 0) {
    std::cout << ", " << WithThousands(report.duplicates_removed) << " deduped";
  }
  if (report.reordered > 0 || report.order_violations > 0) {
    std::cout << ", " << WithThousands(report.reordered) << " re-sorted";
    if (report.order_violations > 0) {
      std::cout << " (" << WithThousands(report.order_violations)
                << " beyond window)";
    }
  }
  if (report.header_remapped) std::cout << ", header remapped";
  std::cout << '\n';
}

void PrintCaveats(const std::vector<std::string>& caveats) {
  if (caveats.empty()) return;
  std::cout << "== data-quality caveats ==\n";
  for (const auto& caveat : caveats) std::cout << "  ! " << caveat << '\n';
}

// The shared analysis report over an ingested record set.  `quality`
// (optional) threads ingest damage through to every analysis stage.
// `threads` fans the coalesce / positional / temporal stages out over shards
// with deterministic merges — the report bytes never depend on it.
int PrintReport(const std::vector<logs::MemoryErrorRecord>& records,
                const std::vector<logs::HetRecord>& het, int nodes,
                TimeWindow window, SimTime het_start,
                const core::DataQuality* quality = nullptr, unsigned threads = 0) {
  core::CoalesceOptions coalesce_options;
  coalesce_options.month_count = CalendarMonthIndex(window.begin, window.end) + 1;
  coalesce_options.series_origin = window.begin;
  const auto faults =
      core::FaultCoalescer::Coalesce(records, coalesce_options, quality, threads);
  const auto positions =
      core::AnalyzePositions(records, faults, nodes, quality, threads);

  std::cout << "== volume ==\n";
  std::cout << "  records: " << WithThousands(records.size()) << " ("
            << WithThousands(faults.total_errors) << " CEs, "
            << WithThousands(faults.skipped_records) << " DUEs)\n";
  std::cout << "  coalesced faults: " << WithThousands(faults.faults.size()) << '\n';
  std::cout << "  nodes with CEs: " << positions.nodes_with_errors << " of " << nodes
            << '\n';

  std::cout << "== fault modes ==\n";
  TextTable modes({"mode", "faults", "errors"});
  for (int m = 0; m < faultsim::kObservedModeCount; ++m) {
    const auto mode = static_cast<faultsim::ObservedMode>(m);
    if (faults.FaultsOfMode(mode) == 0) continue;
    modes.AddRow({std::string(faultsim::ObservedModeName(mode)),
                  WithThousands(faults.FaultsOfMode(mode)),
                  WithThousands(faults.ErrorsOfMode(mode))});
  }
  modes.Print(std::cout);

  std::cout << "== positional verdicts (fault counts) ==\n";
  const auto verdict = [](const stats::ChiSquareResult& r) {
    return std::string(r.ConsistentWithUniform() ? "uniform" : "skewed") + " (V=" +
           FormatDouble(r.cramers_v, 3) + ")";
  };
  std::cout << "  socket: " << verdict(positions.fault_uniformity.socket)
            << "\n  bank:   " << verdict(positions.fault_uniformity.bank)
            << "\n  column: " << verdict(positions.fault_uniformity.column)
            << "\n  slot:   " << verdict(positions.fault_uniformity.slot)
            << "\n  rack:   " << verdict(positions.fault_uniformity.rack)
            << "\n  region: " << verdict(positions.fault_uniformity.region) << '\n';
  std::cout << "  rank0/rank1 faults: " << positions.faults.per_rank[0] << "/"
            << positions.faults.per_rank[1] << '\n';
  std::cout << "  top 2% nodes hold "
            << FormatDouble(100.0 * positions.ce_concentration.ShareOfTop(
                                static_cast<std::size_t>(
                                    std::max(1, nodes / 50))),
                            1)
            << "% of CEs\n";

  const auto series = core::BuildMonthlySeries(records, faults, window.begin,
                                               coalesce_options.month_count, threads);
  std::cout << "== monthly CE series ==\n  ";
  for (const auto m : series.all_errors) std::cout << m << ' ';
  std::cout << "(trend " << FormatDouble(series.TrendSlopePerMonth(), 1)
            << "/month)\n";

  const TimeWindow recording{het_start, window.end};
  const auto due_analysis = core::AnalyzeUncorrectable(
      het, recording, nodes * kDimmSlotsPerNode, quality);
  std::cout << "== uncorrectable ==\n  HET-recorded DUEs: "
            << due_analysis.memory_due_events
            << "  FIT/DIMM: " << FormatDouble(due_analysis.fit_per_dimm, 0)
            << (due_analysis.low_confidence ? "  [low confidence]" : "") << '\n';

  core::PredictorConfig predictor_config;
  const auto prediction = core::EvaluatePredictor(records, predictor_config);
  std::cout << "== DUE early warning (multi-bit signature) ==\n  flagged DIMMs: "
            << prediction.dimms_flagged
            << "  precision: " << FormatDouble(prediction.Precision(), 2)
            << "  recall: " << FormatDouble(prediction.Recall(), 2) << '\n';
  if (!prediction.flags.empty()) {
    std::cout << "  first flags:\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(5, prediction.flags.size());
         ++i) {
      const auto& flag = prediction.flags[i];
      std::cout << "    " << flag.flagged_at.ToString() << "  node " << flag.node
                << " slot " << DimmSlotLetter(flag.slot) << "  (" << flag.reason
                << ")\n";
    }
  }

  // Every stage repeats the shared ingest caveats; print each once.
  std::vector<std::string> caveats;
  const auto add_unique = [&caveats](const std::vector<std::string>& more) {
    for (const auto& c : more) {
      if (std::find(caveats.begin(), caveats.end(), c) == caveats.end()) {
        caveats.push_back(c);
      }
    }
  };
  add_unique(faults.caveats);
  add_unique(positions.caveats);
  add_unique(due_analysis.caveats);
  PrintCaveats(caveats);
  return 0;
}

int CmdSimulate(const CliOptions& options) {
  if (options.out_dir.empty()) {
    std::cerr << "simulate: --out=DIR is required\n";
    return 1;
  }
  std::filesystem::create_directories(options.out_dir);
  const auto paths = core::DatasetPaths::InDirectory(options.out_dir);

  faultsim::CampaignConfig config;
  config.SeedFrom(options.seed);
  config.node_count = options.nodes;
  std::cerr << "simulating " << options.nodes << " nodes (seed " << options.seed
            << ") ...\n";
  const auto campaign = faultsim::FleetSimulator(config).Run();

  const sensors::Environment environment;
  auto replacement_config = replace::ReplacementSimConfig::AstraDefaults();
  replacement_config.seed = options.seed;
  replacement_config.node_count = options.nodes;
  const replace::ReplacementSimulator replacements(replacement_config);
  const auto replacement_campaign = replacements.Run();

  core::SensorDumpOptions sensor_options;
  sensor_options.stride_minutes = options.sensor_stride_minutes;
  sensor_options.node_limit = std::min(options.nodes, 64);
  if (!core::WriteFailureData(paths, campaign) ||
      !core::WriteSensorData(paths, environment, config.window, options.nodes,
                             sensor_options) ||
      !core::WriteInventoryData(paths, replacements, replacement_campaign, 7)) {
    std::cerr << "simulate: failed writing dataset to " << options.out_dir << '\n';
    return 2;
  }
  std::cerr << "wrote " << WithThousands(campaign.memory_errors.size())
            << " memory error records to " << options.out_dir << '\n';
  return 0;
}

int CmdAnalyze(const CliOptions& options) {
  if (options.positional.empty()) {
    std::cerr << "analyze: dataset directory required\n";
    return 1;
  }
  const auto paths = core::DatasetPaths::InDirectory(options.positional);
  const auto ingest = core::IngestFailureData(paths, options.policy, options.threads);
  if (ingest.status == core::DatasetStatus::kMissingPrimary) {
    std::cerr << "analyze: cannot read " << paths.memory_errors << '\n';
    return 2;
  }

  // Ingest accounting is printed before anything else, even when every line
  // parsed — "0 quarantined" is a claim the reader should get to see.
  std::cout << "== ingest ("
            << (options.policy.mode == logs::IngestPolicy::Mode::kStrict
                    ? "strict" : "lenient")
            << ", budget "
            << FormatDouble(100.0 * options.policy.max_malformed_fraction, 1)
            << "%) ==\n";
  PrintIngestLine("memory_errors", ingest.memory_report);
  if (ingest.het_missing) {
    std::cout << "  het_events: MISSING (DUE analysis degrades)\n";
  } else {
    PrintIngestLine("het_events", ingest.het_report);
  }
  for (const auto& repair : ingest.memory_report.repairs) {
    std::cout << "  repair: " << repair << '\n';
  }
  for (const auto& repair : ingest.het_report.repairs) {
    std::cout << "  repair: " << repair << '\n';
  }

  if (ingest.status == core::DatasetStatus::kRejected) {
    std::cerr << "analyze: dataset rejected by strict ingest policy "
                 "(malformed fraction exceeds "
              << FormatDouble(100.0 * options.policy.max_malformed_fraction, 1)
              << "% budget); rerun with --lenient to quarantine and continue\n";
    return 3;
  }

  if (ingest.memory_errors.empty()) {
    // Nothing usable survived (e.g. missing-data corruption at full severity).
    // An empty dataset is a degenerate but valid lenient outcome: report it
    // instead of inferring a time window from no records.
    std::cout << "== volume ==\n  records: 0 — analysis skipped "
                 "(no parseable memory error records)\n";
    PrintCaveats(ingest.quality.Caveats());
    return 0;
  }

  // Infer span and window from the data itself.
  NodeId max_node = 0;
  SimTime lo = ingest.memory_errors.front().timestamp;
  SimTime hi = lo;
  for (const auto& r : ingest.memory_errors) {
    max_node = std::max(max_node, r.node);
    lo = std::min(lo, r.timestamp);
    hi = std::max(hi, r.timestamp);
  }
  SimTime het_start = hi;
  for (const auto& r : ingest.het_events) {
    het_start = std::min(het_start, r.timestamp);
  }
  return PrintReport(ingest.memory_errors, ingest.het_events, max_node + 1,
                     {lo, hi.AddSeconds(1)}, het_start, &ingest.quality,
                     options.threads);
}

int CmdCorrupt(const CliOptions& options) {
  if (options.positional.empty()) {
    std::cerr << "corrupt: dataset directory required\n";
    return 1;
  }
  if (!std::filesystem::is_directory(options.positional)) {
    std::cerr << "corrupt: not a directory: " << options.positional << '\n';
    return 2;
  }

  logs::CorruptionConfig config;
  config.seed = options.seed;
  if (options.modes.empty()) {
    config.SetAll(options.severity);
  } else {
    for (const auto name : SplitView(options.modes, ',')) {
      const auto mode = logs::CorruptionModeFromName(TrimView(name));
      if (!mode) {
        std::cerr << "corrupt: unknown mode '" << std::string(TrimView(name))
                  << "' (see `astra-mrt help` for the list)\n";
        return 1;
      }
      config.Set(*mode, options.severity);
    }
  }

  logs::CorruptionInjector injector(config);
  const auto report = injector.CorruptDirectory(options.positional);
  if (!report) {
    std::cerr << "corrupt: failed rewriting files in " << options.positional << '\n';
    return 2;
  }
  std::cout << "corrupted " << options.positional << " (seed " << options.seed
            << ", severity " << FormatDouble(options.severity, 2) << ")\n";
  for (int m = 0; m < logs::kCorruptionModeCount; ++m) {
    const auto mode = static_cast<logs::CorruptionMode>(m);
    if (report->AffectedBy(mode) == 0) continue;
    std::cout << "  " << logs::CorruptionModeName(mode) << ": "
              << WithThousands(report->AffectedBy(mode)) << " lines\n";
  }
  std::cout << "  files damaged: " << report->files_corrupted
            << "  files dropped: " << report->files_dropped
            << "  bytes chopped: " << WithThousands(report->bytes_chopped) << '\n';
  for (const auto& action : report->actions) {
    std::cout << "  " << action << '\n';
  }
  return 0;
}

int CmdReport(const CliOptions& options) {
  faultsim::CampaignConfig config;
  config.SeedFrom(options.seed);
  config.node_count = options.nodes;
  const auto campaign = faultsim::FleetSimulator(config).Run();
  return PrintReport(campaign.memory_errors, campaign.het_records, options.nodes,
                     config.window, config.het_firmware_start, nullptr,
                     options.threads);
}

}  // namespace
}  // namespace astra

int main(int argc, char** argv) {
  if (argc < 2) {
    astra::PrintUsage();
    return 1;
  }
  const std::string_view command = argv[1];
  const astra::CliOptions options = astra::ParseCommon(argc, argv, 2);
  if (!options.bad_flag.empty()) {
    std::cerr << command << ": " << options.bad_flag << "\n";
    return 1;
  }
  if (command == "simulate") return astra::CmdSimulate(options);
  if (command == "analyze") return astra::CmdAnalyze(options);
  if (command == "report") return astra::CmdReport(options);
  if (command == "corrupt") return astra::CmdCorrupt(options);
  if (command == "help" || command == "--help") {
    astra::PrintUsage();
    return 0;
  }
  std::cerr << "unknown command: " << command << "\n\n";
  astra::PrintUsage();
  return 1;
}
