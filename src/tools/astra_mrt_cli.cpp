// astra-mrt — command-line front end for the toolkit.
//
//   astra-mrt simulate --out=DIR [--nodes=N] [--seed=S] [--sensor-stride=MIN]
//       Run a campaign and write the full §2.4-format dataset to DIR.
//
//   astra-mrt analyze DIR [--nodes=N]
//       Ingest a dataset directory (simulated or real) and print the
//       complete reliability report: fault modes, positional verdicts,
//       concentration, monthly series, DUE/FIT, predictor flags.
//
//   astra-mrt report [--nodes=N] [--seed=S]
//       Simulate + analyze in memory (no files) and print the report.
//
// Exit codes: 0 success, 1 bad usage, 2 I/O failure.
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>

#include "core/coalesce.hpp"
#include "core/dataset.hpp"
#include "core/lifetime.hpp"
#include "core/positional.hpp"
#include "core/predictor.hpp"
#include "core/temporal.hpp"
#include "core/uncorrectable.hpp"
#include "replace/replacement_sim.hpp"
#include "util/strings.hpp"
#include "util/text_table.hpp"

namespace astra {
namespace {

struct CliOptions {
  int nodes = 6 * kNodesPerRack;
  std::uint64_t seed = 20190120;
  int sensor_stride_minutes = 60;
  std::string out_dir;
  std::string positional;  // first non-flag argument after the command
};

CliOptions ParseCommon(int argc, char** argv, int first) {
  CliOptions options;
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (StartsWith(arg, "--nodes=")) {
      if (const auto v = ParseInt64(arg.substr(8)); v && *v > 0 && *v <= kNumNodes) {
        options.nodes = static_cast<int>(*v);
      }
    } else if (StartsWith(arg, "--seed=")) {
      if (const auto v = ParseUint64(arg.substr(7))) options.seed = *v;
    } else if (StartsWith(arg, "--sensor-stride=")) {
      if (const auto v = ParseInt64(arg.substr(16)); v && *v > 0) {
        options.sensor_stride_minutes = static_cast<int>(*v);
      }
    } else if (StartsWith(arg, "--out=")) {
      options.out_dir = std::string(arg.substr(6));
    } else if (!StartsWith(arg, "--") && options.positional.empty()) {
      options.positional = std::string(arg);
    }
  }
  return options;
}

void PrintUsage() {
  std::cout <<
      "astra-mrt — Astra Memory Reliability Toolkit\n"
      "\n"
      "usage:\n"
      "  astra-mrt simulate --out=DIR [--nodes=N] [--seed=S] [--sensor-stride=MIN]\n"
      "  astra-mrt analyze DIR [--nodes=N]\n"
      "  astra-mrt report [--nodes=N] [--seed=S]\n";
}

// The shared analysis report over an ingested record set.
int PrintReport(const std::vector<logs::MemoryErrorRecord>& records,
                const std::vector<logs::HetRecord>& het, int nodes,
                TimeWindow window, SimTime het_start) {
  core::CoalesceOptions coalesce_options;
  coalesce_options.month_count = CalendarMonthIndex(window.begin, window.end) + 1;
  coalesce_options.series_origin = window.begin;
  const auto faults = core::FaultCoalescer::Coalesce(records, coalesce_options);
  const auto positions = core::AnalyzePositions(records, faults, nodes);

  std::cout << "== volume ==\n";
  std::cout << "  records: " << WithThousands(records.size()) << " ("
            << WithThousands(faults.total_errors) << " CEs, "
            << WithThousands(faults.skipped_records) << " DUEs)\n";
  std::cout << "  coalesced faults: " << WithThousands(faults.faults.size()) << '\n';
  std::cout << "  nodes with CEs: " << positions.nodes_with_errors << " of " << nodes
            << '\n';

  std::cout << "== fault modes ==\n";
  TextTable modes({"mode", "faults", "errors"});
  for (int m = 0; m < faultsim::kObservedModeCount; ++m) {
    const auto mode = static_cast<faultsim::ObservedMode>(m);
    if (faults.FaultsOfMode(mode) == 0) continue;
    modes.AddRow({std::string(faultsim::ObservedModeName(mode)),
                  WithThousands(faults.FaultsOfMode(mode)),
                  WithThousands(faults.ErrorsOfMode(mode))});
  }
  modes.Print(std::cout);

  std::cout << "== positional verdicts (fault counts) ==\n";
  const auto verdict = [](const stats::ChiSquareResult& r) {
    return std::string(r.ConsistentWithUniform() ? "uniform" : "skewed") + " (V=" +
           FormatDouble(r.cramers_v, 3) + ")";
  };
  std::cout << "  socket: " << verdict(positions.fault_uniformity.socket)
            << "\n  bank:   " << verdict(positions.fault_uniformity.bank)
            << "\n  column: " << verdict(positions.fault_uniformity.column)
            << "\n  slot:   " << verdict(positions.fault_uniformity.slot)
            << "\n  rack:   " << verdict(positions.fault_uniformity.rack)
            << "\n  region: " << verdict(positions.fault_uniformity.region) << '\n';
  std::cout << "  rank0/rank1 faults: " << positions.faults.per_rank[0] << "/"
            << positions.faults.per_rank[1] << '\n';
  std::cout << "  top 2% nodes hold "
            << FormatDouble(100.0 * positions.ce_concentration.ShareOfTop(
                                static_cast<std::size_t>(
                                    std::max(1, nodes / 50))),
                            1)
            << "% of CEs\n";

  const auto series = core::BuildMonthlySeries(records, faults, window.begin,
                                               coalesce_options.month_count);
  std::cout << "== monthly CE series ==\n  ";
  for (const auto m : series.all_errors) std::cout << m << ' ';
  std::cout << "(trend " << FormatDouble(series.TrendSlopePerMonth(), 1)
            << "/month)\n";

  const TimeWindow recording{het_start, window.end};
  const auto due_analysis = core::AnalyzeUncorrectable(
      het, recording, nodes * kDimmSlotsPerNode);
  std::cout << "== uncorrectable ==\n  HET-recorded DUEs: "
            << due_analysis.memory_due_events
            << "  FIT/DIMM: " << FormatDouble(due_analysis.fit_per_dimm, 0) << '\n';

  core::PredictorConfig predictor_config;
  const auto prediction = core::EvaluatePredictor(records, predictor_config);
  std::cout << "== DUE early warning (multi-bit signature) ==\n  flagged DIMMs: "
            << prediction.dimms_flagged
            << "  precision: " << FormatDouble(prediction.Precision(), 2)
            << "  recall: " << FormatDouble(prediction.Recall(), 2) << '\n';
  if (!prediction.flags.empty()) {
    std::cout << "  first flags:\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(5, prediction.flags.size());
         ++i) {
      const auto& flag = prediction.flags[i];
      std::cout << "    " << flag.flagged_at.ToString() << "  node " << flag.node
                << " slot " << DimmSlotLetter(flag.slot) << "  (" << flag.reason
                << ")\n";
    }
  }
  return 0;
}

int CmdSimulate(const CliOptions& options) {
  if (options.out_dir.empty()) {
    std::cerr << "simulate: --out=DIR is required\n";
    return 1;
  }
  std::filesystem::create_directories(options.out_dir);
  const auto paths = core::DatasetPaths::InDirectory(options.out_dir);

  faultsim::CampaignConfig config;
  config.SeedFrom(options.seed);
  config.node_count = options.nodes;
  std::cerr << "simulating " << options.nodes << " nodes (seed " << options.seed
            << ") ...\n";
  const auto campaign = faultsim::FleetSimulator(config).Run();

  const sensors::Environment environment;
  auto replacement_config = replace::ReplacementSimConfig::AstraDefaults();
  replacement_config.seed = options.seed;
  replacement_config.node_count = options.nodes;
  const replace::ReplacementSimulator replacements(replacement_config);
  const auto replacement_campaign = replacements.Run();

  core::SensorDumpOptions sensor_options;
  sensor_options.stride_minutes = options.sensor_stride_minutes;
  sensor_options.node_limit = std::min(options.nodes, 64);
  if (!core::WriteFailureData(paths, campaign) ||
      !core::WriteSensorData(paths, environment, config.window, options.nodes,
                             sensor_options) ||
      !core::WriteInventoryData(paths, replacements, replacement_campaign, 7)) {
    std::cerr << "simulate: failed writing dataset to " << options.out_dir << '\n';
    return 2;
  }
  std::cerr << "wrote " << WithThousands(campaign.memory_errors.size())
            << " memory error records to " << options.out_dir << '\n';
  return 0;
}

int CmdAnalyze(const CliOptions& options) {
  if (options.positional.empty()) {
    std::cerr << "analyze: dataset directory required\n";
    return 1;
  }
  const auto paths = core::DatasetPaths::InDirectory(options.positional);
  const auto loaded = core::ReadFailureData(paths);
  if (!loaded) {
    std::cerr << "analyze: cannot read dataset in " << options.positional << '\n';
    return 2;
  }
  std::cout << "ingested " << WithThousands(loaded->memory_errors.size())
            << " records (" << loaded->memory_stats.malformed << " malformed)\n";

  // Infer span and window from the data itself.
  NodeId max_node = 0;
  SimTime lo = SimTime::FromCivil(2100, 1, 1), hi = SimTime::FromCivil(1970, 1, 2);
  for (const auto& r : loaded->memory_errors) {
    max_node = std::max(max_node, r.node);
    lo = std::min(lo, r.timestamp);
    hi = std::max(hi, r.timestamp);
  }
  SimTime het_start = hi;
  for (const auto& r : loaded->het_events) {
    het_start = std::min(het_start, r.timestamp);
  }
  return PrintReport(loaded->memory_errors, loaded->het_events, max_node + 1,
                     {lo, hi.AddSeconds(1)}, het_start);
}

int CmdReport(const CliOptions& options) {
  faultsim::CampaignConfig config;
  config.SeedFrom(options.seed);
  config.node_count = options.nodes;
  const auto campaign = faultsim::FleetSimulator(config).Run();
  return PrintReport(campaign.memory_errors, campaign.het_records, options.nodes,
                     config.window, config.het_firmware_start);
}

}  // namespace
}  // namespace astra

int main(int argc, char** argv) {
  if (argc < 2) {
    astra::PrintUsage();
    return 1;
  }
  const std::string_view command = argv[1];
  const astra::CliOptions options = astra::ParseCommon(argc, argv, 2);
  if (command == "simulate") return astra::CmdSimulate(options);
  if (command == "analyze") return astra::CmdAnalyze(options);
  if (command == "report") return astra::CmdReport(options);
  if (command == "help" || command == "--help") {
    astra::PrintUsage();
    return 0;
  }
  std::cerr << "unknown command: " << command << "\n\n";
  astra::PrintUsage();
  return 1;
}
