// Render a CampaignTable for humans (fixed-width text) and machines (JSON).
// Both renderings are deterministic byte-for-byte functions of the table —
// the CLI's threads-invariance contract is tested against these bytes.
#pragma once

#include <string>

#include "campaign/runner.hpp"

namespace astra::campaign {

// Text report: the per-cell table (mean CE/DUE/SDC/FIT with 95% bootstrap
// intervals, retired pages, replaced DIMMs, scrub-channel accumulation
// rate), then the delta table against the baseline cell, with '*' marking
// intervals that exclude zero.
[[nodiscard]] std::string RenderCampaignText(const CampaignTable& table);

// JSON document with the same content: grid echo, per-cell summaries with
// raw trial metrics, and baseline deltas.
[[nodiscard]] std::string RenderCampaignJson(const CampaignTable& table);

}  // namespace astra::campaign
