// Scenario grids for the what-if campaign engine: the cross product of
// (ECC scheme x fault-rate multiplier x mitigation policy x thermal
// profile), each cell an independently seeded bundle of simulation trials.
// The grid answers the counterfactuals the paper can only argue
// qualitatively — what §3.5's DUE rate would have been under chipkill, what
// §3.2's CE volume costs without page retirement, how the story bends when
// the fault process runs hotter than Astra's machine room.
//
// Determinism contract: a trial's entire outcome is a pure function of
// (grid seed, cell key, trial index).  The cell key is a canonical string
// ("chipkill|x2.00|none|hot"), hashed with FNV-1a and folded through
// util/rng MixSeed, so inserting, removing, or reordering OTHER cells never
// moves an existing cell's results — and no thread schedule can either.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ecc/scheme.hpp"
#include "faultsim/fleet.hpp"
#include "faultsim/mitigation.hpp"

namespace astra::campaign {

// Machine-room thermal posture, expressed as a multiplicative factor on the
// fault arrival rate (the paper's §3.4 temperature analysis finds CE volume
// concentrating in the warmer deciles; the factors below bracket that
// effect without re-deriving the calibration).
struct ThermalProfile {
  std::string name = "astra";
  double fault_rate_factor = 1.0;

  // Astra's measured machine room: no adjustment.
  [[nodiscard]] static ThermalProfile Astra();
  // Aggressive cooling: fault pressure eases.
  [[nodiscard]] static ThermalProfile Cool();
  // Degraded cooling / hot aisle: fault pressure grows.
  [[nodiscard]] static ThermalProfile Hot();

  friend bool operator==(const ThermalProfile&, const ThermalProfile&) = default;
};

// Parse a thermal preset name ("astra", "cool", "hot"); nullopt otherwise.
[[nodiscard]] std::optional<ThermalProfile> ThermalProfileFromName(
    std::string_view name);

// One cell of the grid: a full scenario assignment.
struct ScenarioCell {
  ecc::EccScheme scheme = ecc::EccScheme::kSecDed;
  double rate_multiplier = 1.0;
  faultsim::MitigationPolicy policy;
  ThermalProfile thermal;

  // Canonical identity string, e.g. "secded|x1.00|astra|astra".  Doubles as
  // the seed-derivation key and the table row label.
  [[nodiscard]] std::string Key() const;
};

// The campaign's axes.  Defaults give the 2x2x2x1 = 8-cell headline grid:
// {secded, chipkill} x {1x, 2x} x {astra, none} x {astra}.
struct ScenarioGrid {
  std::uint64_t seed = 20190120;
  int trials = 5;       // seeded simulation trials per cell
  int node_count = 36;  // fleet scale-down per trial

  std::vector<ecc::EccScheme> schemes{ecc::EccScheme::kSecDed,
                                      ecc::EccScheme::kChipkill};
  std::vector<double> rate_multipliers{1.0, 2.0};
  std::vector<faultsim::MitigationPolicy> policies{
      faultsim::MitigationPolicy::Astra(), faultsim::MitigationPolicy::None()};
  std::vector<ThermalProfile> thermals{ThermalProfile::Astra()};

  [[nodiscard]] std::size_t CellCount() const noexcept {
    return schemes.size() * rate_multipliers.size() * policies.size() *
           thermals.size();
  }

  // Cells enumerate with thermal fastest, then policy, then rate, then
  // scheme — the order the table prints.
  [[nodiscard]] ScenarioCell CellAt(std::size_t index) const;

  // The Astra-condition cell all deltas are measured against: secded, rate
  // 1.0, policy "astra", thermal "astra" when present, else cell 0.
  [[nodiscard]] std::size_t BaselineIndex() const;
};

// Parse a grid file: one `key=value` per line, '#' comments and blank lines
// ignored.  Keys: `ecc`, `rate`, `policy`, `thermal` (comma-separated axis
// lists), `trials`, `nodes`, `seed` (scalars).  Unknown keys, malformed
// values, and empty axes are errors; `error` (if non-null) receives a
// one-line description naming the offending line.
[[nodiscard]] std::optional<ScenarioGrid> ParseScenarioGrid(
    std::string_view text, std::string* error);

// The (grid seed, cell key, trial) -> campaign seed derivation.  Stable
// across grid shape and thread count by construction.
[[nodiscard]] std::uint64_t TrialSeed(std::uint64_t grid_seed,
                                      std::string_view cell_key, int trial);

// Materialize the fleet-simulator config for one (cell, trial): the cell's
// scheme, combined rate multiplier (rate x thermal factor), and mitigation
// policy over a fleet of grid.node_count nodes, seeded by TrialSeed.
[[nodiscard]] faultsim::CampaignConfig CellCampaignConfig(
    const ScenarioGrid& grid, const ScenarioCell& cell, int trial);

}  // namespace astra::campaign
