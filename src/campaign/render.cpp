#include "campaign/render.hpp"

#include <sstream>

#include "util/strings.hpp"
#include "util/text_table.hpp"

namespace astra::campaign {

namespace {

std::string Ci(const stats::BootstrapInterval& interval, int precision) {
  return FormatDouble(interval.point, precision) + " [" +
         FormatDouble(interval.lo, precision) + ", " +
         FormatDouble(interval.hi, precision) + "]";
}

// Delta cell: point [lo, hi], starred when the interval excludes zero.
std::string DeltaCi(const stats::BootstrapInterval& interval, int precision) {
  std::string text = Ci(interval, precision);
  if (interval.Excludes(0.0)) text += " *";
  return text;
}

double MeanOf(const std::vector<TrialMetrics>& trials,
              std::uint64_t TrialMetrics::* field) {
  double sum = 0.0;
  for (const TrialMetrics& t : trials) sum += static_cast<double>(t.*field);
  return trials.empty() ? 0.0 : sum / static_cast<double>(trials.size());
}

void JsonInterval(std::ostringstream& out, const char* name,
                  const stats::BootstrapInterval& interval) {
  out << '"' << name << "\":{\"mean\":" << FormatDouble(interval.point, 4)
      << ",\"lo\":" << FormatDouble(interval.lo, 4)
      << ",\"hi\":" << FormatDouble(interval.hi, 4) << '}';
}

}  // namespace

std::string RenderCampaignText(const CampaignTable& table) {
  std::ostringstream out;
  out << "Scenario campaign: " << table.cells.size() << " cells x "
      << table.grid.trials << " trials, " << table.grid.node_count
      << " nodes/trial, seed " << table.grid.seed << "\n";
  out << "Baseline cell: " << table.cells[table.baseline_index].key << "\n\n";

  TextTable cells({"Cell", "CEs (95% CI)", "DUEs (95% CI)", "SDCs (95% CI)",
                   "FIT/DIMM", "Pages ret.", "DIMMs swapped", "Scrub DUE/day"});
  for (const CellSummary& cell : table.cells) {
    cells.AddRow({cell.key, Ci(cell.ces_ci, 1), Ci(cell.dues_ci, 1),
                  Ci(cell.sdc_ci, 1), FormatDouble(cell.fit_ci.point, 1),
                  FormatDouble(MeanOf(cell.trials, &TrialMetrics::pages_retired), 1),
                  FormatDouble(MeanOf(cell.trials, &TrialMetrics::dimms_replaced), 1),
                  FormatDouble(cell.accumulation_dues_per_day, 4)});
  }
  cells.Print(out);

  out << "\nDeltas vs baseline (mean difference, '*' = 95% CI excludes 0):\n";
  TextTable deltas({"Cell", "dCEs", "dDUEs", "dSDCs"});
  for (std::size_t c = 0; c < table.cells.size(); ++c) {
    if (c == table.baseline_index) continue;
    deltas.AddRow({table.cells[c].key, DeltaCi(table.deltas[c].ces, 1),
                   DeltaCi(table.deltas[c].dues, 1),
                   DeltaCi(table.deltas[c].sdc, 1)});
  }
  deltas.Print(out);
  return std::move(out).str();
}

std::string RenderCampaignJson(const CampaignTable& table) {
  std::ostringstream out;
  out << "{\"grid\":{\"seed\":" << table.grid.seed
      << ",\"trials\":" << table.grid.trials
      << ",\"nodes\":" << table.grid.node_count
      << ",\"cells\":" << table.cells.size() << "},\"baseline\":\""
      << table.cells[table.baseline_index].key << "\",\"cells\":[";
  for (std::size_t c = 0; c < table.cells.size(); ++c) {
    const CellSummary& cell = table.cells[c];
    if (c != 0) out << ',';
    out << "{\"key\":\"" << cell.key << "\",\"ecc\":\""
        << ecc::EccSchemeName(cell.cell.scheme)
        << "\",\"rate\":" << FormatDouble(cell.cell.rate_multiplier, 2)
        << ",\"policy\":\"" << cell.cell.policy.name << "\",\"thermal\":\""
        << cell.cell.thermal.name << "\",";
    JsonInterval(out, "ces", cell.ces_ci);
    out << ',';
    JsonInterval(out, "dues", cell.dues_ci);
    out << ',';
    JsonInterval(out, "sdc", cell.sdc_ci);
    out << ',';
    JsonInterval(out, "fit_per_dimm", cell.fit_ci);
    out << ",\"pages_retired_mean\":"
        << FormatDouble(MeanOf(cell.trials, &TrialMetrics::pages_retired), 2)
        << ",\"dimms_replaced_mean\":"
        << FormatDouble(MeanOf(cell.trials, &TrialMetrics::dimms_replaced), 2)
        << ",\"accumulation_dues_per_day\":"
        << FormatDouble(cell.accumulation_dues_per_day, 6) << ",\"trials\":[";
    for (std::size_t t = 0; t < cell.trials.size(); ++t) {
      const TrialMetrics& m = cell.trials[t];
      if (t != 0) out << ',';
      out << "{\"faults\":" << m.faults << ",\"ces\":" << m.ces
          << ",\"dues\":" << m.dues << ",\"sdc\":" << m.sdc
          << ",\"pages_retired\":" << m.pages_retired
          << ",\"dimms_replaced\":" << m.dimms_replaced
          << ",\"fit_per_dimm\":" << FormatDouble(m.fit_per_dimm, 4) << '}';
    }
    out << ']';
    if (c != table.baseline_index) {
      const CellDelta& delta = table.deltas[c];
      out << ",\"delta_vs_baseline\":{";
      JsonInterval(out, "ces", delta.ces);
      out << ",\"ces_significant\":" << (delta.ces.Excludes(0.0) ? "true" : "false")
          << ',';
      JsonInterval(out, "dues", delta.dues);
      out << ",\"dues_significant\":"
          << (delta.dues.Excludes(0.0) ? "true" : "false") << ',';
      JsonInterval(out, "sdc", delta.sdc);
      out << ",\"sdc_significant\":" << (delta.sdc.Excludes(0.0) ? "true" : "false")
          << '}';
    }
    out << '}';
  }
  out << "]}\n";
  return std::move(out).str();
}

}  // namespace astra::campaign
