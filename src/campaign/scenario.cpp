#include "campaign/scenario.hpp"

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace astra::campaign {

ThermalProfile ThermalProfile::Astra() { return {}; }

ThermalProfile ThermalProfile::Cool() { return {.name = "cool", .fault_rate_factor = 0.8}; }

ThermalProfile ThermalProfile::Hot() { return {.name = "hot", .fault_rate_factor = 1.5}; }

std::optional<ThermalProfile> ThermalProfileFromName(std::string_view name) {
  if (name == "astra") return ThermalProfile::Astra();
  if (name == "cool") return ThermalProfile::Cool();
  if (name == "hot") return ThermalProfile::Hot();
  return std::nullopt;
}

std::string ScenarioCell::Key() const {
  std::string key;
  key += ecc::EccSchemeName(scheme);
  key += "|x";
  key += FormatDouble(rate_multiplier, 2);
  key += '|';
  key += policy.name;
  key += '|';
  key += thermal.name;
  return key;
}

ScenarioCell ScenarioGrid::CellAt(std::size_t index) const {
  ScenarioCell cell;
  cell.thermal = thermals[index % thermals.size()];
  index /= thermals.size();
  cell.policy = policies[index % policies.size()];
  index /= policies.size();
  cell.rate_multiplier = rate_multipliers[index % rate_multipliers.size()];
  index /= rate_multipliers.size();
  cell.scheme = schemes[index % schemes.size()];
  return cell;
}

std::size_t ScenarioGrid::BaselineIndex() const {
  for (std::size_t i = 0; i < CellCount(); ++i) {
    const ScenarioCell cell = CellAt(i);
    if (cell.scheme == ecc::EccScheme::kSecDed && cell.rate_multiplier == 1.0 &&
        cell.policy.name == "astra" && cell.thermal.name == "astra") {
      return i;
    }
  }
  return 0;
}

namespace {

// FNV-1a over the canonical cell key: the stable string -> u64 step of the
// trial-seed derivation.
std::uint64_t HashKey(std::string_view key) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

bool Fail(std::string* error, int line, std::string message) {
  if (error != nullptr) {
    *error = "grid line " + std::to_string(line) + ": " + std::move(message);
  }
  return false;
}

bool ApplyAxis(ScenarioGrid& grid, std::string_view key, std::string_view value,
               int line, std::string* error) {
  if (key == "trials" || key == "nodes" || key == "seed") {
    if (key == "seed") {
      const auto parsed = ParseUint64(value);
      if (!parsed) return Fail(error, line, "bad seed '" + std::string(value) + "'");
      grid.seed = *parsed;
      return true;
    }
    const auto parsed = ParseInt64(value);
    if (!parsed || *parsed < 1) {
      return Fail(error, line,
                  "bad " + std::string(key) + " '" + std::string(value) + "'");
    }
    (key == "trials" ? grid.trials : grid.node_count) = static_cast<int>(*parsed);
    return true;
  }

  if (key == "ecc") grid.schemes.clear();
  if (key == "rate") grid.rate_multipliers.clear();
  if (key == "policy") grid.policies.clear();
  if (key == "thermal") grid.thermals.clear();
  for (const std::string_view raw : SplitView(value, ',')) {
    const std::string_view item = TrimView(raw);
    if (key == "ecc") {
      const auto scheme = ecc::EccSchemeFromName(item);
      if (!scheme) {
        return Fail(error, line, "unknown ecc scheme '" + std::string(item) + "'");
      }
      grid.schemes.push_back(*scheme);
    } else if (key == "rate") {
      const auto rate = ParseDouble(item);
      if (!rate || *rate <= 0.0) {
        return Fail(error, line, "bad rate '" + std::string(item) + "'");
      }
      grid.rate_multipliers.push_back(*rate);
    } else if (key == "policy") {
      auto policy = faultsim::MitigationPolicyFromName(item);
      if (!policy) {
        return Fail(error, line, "unknown policy '" + std::string(item) + "'");
      }
      grid.policies.push_back(std::move(*policy));
    } else if (key == "thermal") {
      const auto thermal = ThermalProfileFromName(item);
      if (!thermal) {
        return Fail(error, line, "unknown thermal profile '" + std::string(item) + "'");
      }
      grid.thermals.push_back(*thermal);
    } else {
      return Fail(error, line, "unknown key '" + std::string(key) + "'");
    }
  }
  return true;
}

}  // namespace

std::optional<ScenarioGrid> ParseScenarioGrid(std::string_view text,
                                              std::string* error) {
  ScenarioGrid grid;
  int line_number = 0;
  for (const std::string_view raw_line : SplitView(text, '\n')) {
    ++line_number;
    std::string_view line = raw_line;
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = TrimView(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      Fail(error, line_number, "expected key=value");
      return std::nullopt;
    }
    const std::string_view key = TrimView(line.substr(0, eq));
    const std::string_view value = TrimView(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      Fail(error, line_number, "expected key=value");
      return std::nullopt;
    }
    if (!ApplyAxis(grid, key, value, line_number, error)) return std::nullopt;
  }
  if (grid.CellCount() == 0) {
    if (error != nullptr) *error = "grid has an empty axis";
    return std::nullopt;
  }
  return grid;
}

std::uint64_t TrialSeed(std::uint64_t grid_seed, std::string_view cell_key,
                        int trial) {
  return MixSeed(grid_seed, HashKey(cell_key),
                 static_cast<std::uint64_t>(trial));
}

faultsim::CampaignConfig CellCampaignConfig(const ScenarioGrid& grid,
                                            const ScenarioCell& cell, int trial) {
  faultsim::CampaignConfig config;
  config.node_count = grid.node_count;
  // Policy first: SeedFrom overwrites the retirement stream seed afterwards,
  // keeping mitigation RNG independent of which policy struct was assigned.
  config.mitigation = cell.policy;
  config.fault_model.ecc_scheme = cell.scheme;
  config.fault_model.rate_multipliers.overall =
      cell.rate_multiplier * cell.thermal.fault_rate_factor;
  config.seed = TrialSeed(grid.seed, cell.Key(), trial);
  config.SeedFrom(config.seed);
  return config;
}

}  // namespace astra::campaign
