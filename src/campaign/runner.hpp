// The campaign runner: execute every (cell, trial) of a ScenarioGrid
// through the in-memory simulate -> analyze path and reduce each cell's
// trials to bootstrap-bounded summaries plus deltas against the Astra
// baseline cell.
//
// Parallelism: trials fan out over util/parallel ParallelShards with each
// trial run FULLY SERIAL inside its shard (FleetSimulator::Run(1),
// core::AnalyzeCampaignResult(..., 1)) — shard workers already occupy the
// shared pool, and a nested ParallelForRanges waiting on that same pool
// would deadlock.  Each trial writes its metrics into a pre-sized slot
// indexed by (cell, trial), so the reduction below never depends on the
// shard partition and the table is byte-identical at any --threads value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/scenario.hpp"
#include "stats/bootstrap.hpp"

namespace astra::campaign {

// What one seeded trial contributes to its cell.
struct TrialMetrics {
  std::uint64_t faults = 0;
  std::uint64_t ces = 0;
  std::uint64_t dues = 0;
  std::uint64_t sdc = 0;
  std::uint64_t pages_retired = 0;
  std::uint64_t dimms_replaced = 0;
  // Hard-fault FIT/DIMM from the in-memory analysis pass (core engine set),
  // 0 when the trial recorded no post-firmware DUEs.
  double fit_per_dimm = 0.0;
};

// One cell's trial set reduced to per-metric means with percentile-bootstrap
// 95% intervals.
struct CellSummary {
  std::string key;
  ScenarioCell cell;
  std::vector<TrialMetrics> trials;

  stats::BootstrapInterval ces_ci;
  stats::BootstrapInterval dues_ci;
  stats::BootstrapInterval sdc_ci;
  stats::BootstrapInterval fit_ci;

  // Closed-form transient-accumulation DUE rate under the cell's scrub
  // policy (faultsim/scrubber.hpp) — the channel the trial simulation does
  // not carry, reported alongside it.
  double accumulation_dues_per_day = 0.0;
};

// Mean-difference intervals (cell minus baseline), two-sample bootstrap.
// The baseline cell's delta row is identically zero.
struct CellDelta {
  stats::BootstrapInterval ces;
  stats::BootstrapInterval dues;
  stats::BootstrapInterval sdc;
};

struct CampaignTable {
  ScenarioGrid grid;
  std::size_t baseline_index = 0;
  std::vector<CellSummary> cells;   // grid enumeration order
  std::vector<CellDelta> deltas;    // parallel to `cells`
};

// Run one (cell, trial): simulate and analyze entirely in memory, serially.
// Exposed for the determinism tests and the bench harness.
[[nodiscard]] TrialMetrics RunTrial(const ScenarioGrid& grid,
                                    const ScenarioCell& cell, int trial);

// Run the whole grid.  `threads` follows the --threads convention
// (0 = hardware concurrency); the result is independent of it.
[[nodiscard]] CampaignTable RunCampaign(const ScenarioGrid& grid,
                                        unsigned threads = 0);

}  // namespace astra::campaign
