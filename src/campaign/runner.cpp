#include "campaign/runner.hpp"

#include "core/engine.hpp"
#include "faultsim/scrubber.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace astra::campaign {

namespace {

// Seed tags for the bootstrap resampling streams, disjoint per metric so
// adding a metric never perturbs another's interval.
constexpr std::uint64_t kTagBootCes = 0xb001;
constexpr std::uint64_t kTagBootDues = 0xb002;
constexpr std::uint64_t kTagBootSdc = 0xb003;
constexpr std::uint64_t kTagBootFit = 0xb004;

// DIMM data capacity per node: 16 slots x 8 GiB on Astra.
constexpr double kNodeCapacityGib = 128.0;

double MeanOf(std::span<const double> samples) {
  double sum = 0.0;
  for (const double v : samples) sum += v;
  return samples.empty() ? 0.0 : sum / static_cast<double>(samples.size());
}

stats::BootstrapInterval MeanCi(const std::vector<double>& samples,
                                std::uint64_t seed) {
  Rng rng(seed);
  return stats::BootstrapCi(samples, MeanOf, rng);
}

stats::BootstrapInterval MeanDeltaCi(const std::vector<double>& a,
                                     const std::vector<double>& b,
                                     std::uint64_t seed) {
  Rng rng(seed);
  return stats::BootstrapDeltaCi(a, b, MeanOf, rng);
}

std::vector<double> Extract(const std::vector<TrialMetrics>& trials,
                            double (*get)(const TrialMetrics&)) {
  std::vector<double> values;
  values.reserve(trials.size());
  for (const TrialMetrics& t : trials) values.push_back(get(t));
  return values;
}

double GetCes(const TrialMetrics& t) { return static_cast<double>(t.ces); }
double GetDues(const TrialMetrics& t) { return static_cast<double>(t.dues); }
double GetSdc(const TrialMetrics& t) { return static_cast<double>(t.sdc); }
double GetFit(const TrialMetrics& t) { return t.fit_per_dimm; }

}  // namespace

TrialMetrics RunTrial(const ScenarioGrid& grid, const ScenarioCell& cell,
                      int trial) {
  const faultsim::CampaignConfig config = CellCampaignConfig(grid, cell, trial);
  // Serial inner run: the caller may be a shared-pool shard (see header).
  const faultsim::CampaignResult result =
      faultsim::FleetSimulator(config).Run(/*max_threads=*/1);
  const core::AnalysisArtifacts artifacts =
      core::AnalyzeCampaignResult(result, config, /*threads=*/1);

  TrialMetrics metrics;
  metrics.faults = result.faults.size();
  metrics.ces = result.total_ces;
  metrics.dues = result.total_dues;
  metrics.sdc = result.total_sdc;
  metrics.pages_retired = result.retirement_stats.pages_retired;
  metrics.dimms_replaced = result.replacement_stats.dimms_replaced;
  metrics.fit_per_dimm = artifacts.dues.fit_per_dimm;
  return metrics;
}

CampaignTable RunCampaign(const ScenarioGrid& grid, unsigned threads) {
  CampaignTable table;
  table.grid = grid;
  table.baseline_index = grid.BaselineIndex();

  const std::size_t cell_count = grid.CellCount();
  const std::size_t trials = static_cast<std::size_t>(grid.trials);
  std::vector<ScenarioCell> cells;
  cells.reserve(cell_count);
  for (std::size_t i = 0; i < cell_count; ++i) cells.push_back(grid.CellAt(i));

  // One slot per (cell, trial); shards own disjoint slot ranges.
  std::vector<TrialMetrics> slots(cell_count * trials);
  ParallelShards(slots.size(), ResolveThreadCount(threads),
                 [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     const std::size_t cell_index = i / trials;
                     const int trial = static_cast<int>(i % trials);
                     slots[i] = RunTrial(grid, cells[cell_index], trial);
                   }
                 });

  const double exposure_hours =
      static_cast<double>(faultsim::CampaignConfig{}.window.DurationSeconds()) /
      3600.0;
  table.cells.reserve(cell_count);
  for (std::size_t c = 0; c < cell_count; ++c) {
    CellSummary summary;
    summary.cell = cells[c];
    summary.key = cells[c].Key();
    summary.trials.assign(slots.begin() + static_cast<std::ptrdiff_t>(c * trials),
                          slots.begin() + static_cast<std::ptrdiff_t>((c + 1) * trials));
    summary.ces_ci = MeanCi(Extract(summary.trials, GetCes),
                            MixSeed(grid.seed, kTagBootCes, c));
    summary.dues_ci = MeanCi(Extract(summary.trials, GetDues),
                             MixSeed(grid.seed, kTagBootDues, c));
    summary.sdc_ci = MeanCi(Extract(summary.trials, GetSdc),
                            MixSeed(grid.seed, kTagBootSdc, c));
    summary.fit_ci = MeanCi(Extract(summary.trials, GetFit),
                            MixSeed(grid.seed, kTagBootFit, c));
    summary.accumulation_dues_per_day = faultsim::ExpectedAccumulationDuesPerDay(
        cells[c].policy.scrub, grid.node_count * kNodeCapacityGib, exposure_hours);
    table.cells.push_back(std::move(summary));
  }

  const std::vector<TrialMetrics>& base = table.cells[table.baseline_index].trials;
  table.deltas.reserve(cell_count);
  for (std::size_t c = 0; c < cell_count; ++c) {
    CellDelta delta;
    if (c != table.baseline_index) {
      const std::vector<TrialMetrics>& own = table.cells[c].trials;
      delta.ces = MeanDeltaCi(Extract(own, GetCes), Extract(base, GetCes),
                              MixSeed(grid.seed, kTagBootCes, c, 1));
      delta.dues = MeanDeltaCi(Extract(own, GetDues), Extract(base, GetDues),
                               MixSeed(grid.seed, kTagBootDues, c, 1));
      delta.sdc = MeanDeltaCi(Extract(own, GetSdc), Extract(base, GetSdc),
                              MixSeed(grid.seed, kTagBootSdc, c, 1));
    }
    table.deltas.push_back(delta);
  }
  return table;
}

}  // namespace astra::campaign
