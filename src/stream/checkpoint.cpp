#include "stream/checkpoint.hpp"

#include <filesystem>
#include <system_error>

#include "util/file_io.hpp"

namespace astra::stream {

std::string_view CheckpointStatusMessage(CheckpointStatus status) {
  switch (status) {
    case CheckpointStatus::kOk: return "ok";
    case CheckpointStatus::kIoError: return "cannot read or write the file";
    case CheckpointStatus::kBadMagic: return "not a checkpoint file";
    case CheckpointStatus::kBadVersion: return "incompatible checkpoint version";
    case CheckpointStatus::kTruncated: return "file shorter than its envelope declares";
    case CheckpointStatus::kBadCrc: return "payload checksum mismatch";
    case CheckpointStatus::kBadPayload: return "malformed monitor state";
  }
  return "unknown";
}

CheckpointStatus SaveMonitorCheckpoint(const StreamMonitor& monitor,
                                       const std::string& path) {
  std::string payload;
  binio::Writer payload_writer(payload);
  monitor.Snapshot(payload_writer);

  std::string envelope;
  envelope += kCheckpointMagic;
  binio::Writer envelope_writer(envelope);
  envelope_writer.PutU32(kCheckpointVersion);
  envelope_writer.PutU64(payload.size());
  envelope_writer.PutU32(binio::Crc32(payload));
  envelope += payload;

  // tmp + rename: a crash mid-write can only lose the NEW checkpoint.
  const std::string tmp = path + ".tmp";
  if (!WriteFileBytes(tmp, envelope)) return CheckpointStatus::kIoError;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return CheckpointStatus::kIoError;
  }
  return CheckpointStatus::kOk;
}

namespace {

// Reject-and-reset: a failed restore must never leave a half-restored
// monitor, so feed Restore an empty payload — it resets before failing.
CheckpointStatus Reject(StreamMonitor& monitor, CheckpointStatus status) {
  binio::Reader empty{std::string_view{}};
  (void)monitor.Restore(empty);
  return status;
}

}  // namespace

CheckpointStatus RestoreMonitorCheckpoint(StreamMonitor& monitor,
                                          const std::string& path) {
  const auto bytes = ReadFileBytes(path);
  if (!bytes) return Reject(monitor, CheckpointStatus::kIoError);
  const std::string_view view = *bytes;
  if (view.size() < kCheckpointMagic.size()) {
    return Reject(monitor, CheckpointStatus::kTruncated);
  }
  if (view.substr(0, kCheckpointMagic.size()) != kCheckpointMagic) {
    return Reject(monitor, CheckpointStatus::kBadMagic);
  }

  binio::Reader header(view.substr(kCheckpointMagic.size()));
  const std::uint32_t version = header.GetU32();
  const std::uint64_t payload_len = header.GetU64();
  const std::uint32_t crc = header.GetU32();
  if (!header.Ok()) return Reject(monitor, CheckpointStatus::kTruncated);
  if (version != kCheckpointVersion) {
    return Reject(monitor, CheckpointStatus::kBadVersion);
  }
  if (payload_len > header.Remaining()) {
    return Reject(monitor, CheckpointStatus::kTruncated);
  }
  if (payload_len < header.Remaining()) {
    // Trailing garbage is as suspicious as a short read.
    return Reject(monitor, CheckpointStatus::kBadPayload);
  }
  const std::string_view payload = view.substr(view.size() - payload_len);
  if (binio::Crc32(payload) != crc) {
    return Reject(monitor, CheckpointStatus::kBadCrc);
  }

  binio::Reader payload_reader(payload);
  if (!monitor.Restore(payload_reader) || !payload_reader.AtEnd()) {
    return Reject(monitor, CheckpointStatus::kBadPayload);
  }
  return CheckpointStatus::kOk;
}

}  // namespace astra::stream
