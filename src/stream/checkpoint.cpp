#include "stream/checkpoint.hpp"

#include <filesystem>

#include "util/io_faults.hpp"

namespace astra::stream {

std::string_view CheckpointStatusMessage(CheckpointStatus status) {
  switch (status) {
    case CheckpointStatus::kOk: return "ok";
    case CheckpointStatus::kIoError: return "cannot read or write the file";
    case CheckpointStatus::kBadMagic: return "not a checkpoint file";
    case CheckpointStatus::kBadVersion: return "incompatible checkpoint version";
    case CheckpointStatus::kTruncated: return "file shorter than its envelope declares";
    case CheckpointStatus::kBadCrc: return "payload checksum mismatch";
    case CheckpointStatus::kBadPayload: return "malformed monitor state";
  }
  return "unknown";
}

namespace {

std::string ParentDirOf(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

}  // namespace

CheckpointStatus SaveMonitorCheckpoint(const StreamMonitor& monitor,
                                       const std::string& path,
                                       const RetryPolicy& retry,
                                       const SleepFn& sleep) {
  std::string payload;
  binio::Writer payload_writer(payload);
  monitor.Snapshot(payload_writer);

  std::string envelope;
  envelope += kCheckpointMagic;
  binio::Writer envelope_writer(envelope);
  envelope_writer.PutU32(kCheckpointVersion);
  envelope_writer.PutU64(payload.size());
  envelope_writer.PutU32(binio::Crc32(payload));
  envelope += payload;

  // Durability protocol: write tmp, fsync tmp, rename, fsync parent dir.  A
  // crash before the rename leaves the old checkpoint untouched (plus an
  // inert tmp); a crash after leaves the new one fully in place.  Each step
  // is retried independently — a torn tmp from an earlier failed attempt is
  // simply overwritten by the next.
  io::Io& io = io::Current();
  const std::string tmp = path + ".tmp";
  const bool written = RetryWithBackoff(
      retry,
      [&] { return io.WriteFile(tmp, envelope) && io.SyncFile(tmp); }, sleep);
  if (!written) {
    (void)io.Remove(tmp);
    return CheckpointStatus::kIoError;
  }
  if (!RetryWithBackoff(retry, [&] { return io.Rename(tmp, path); }, sleep)) {
    (void)io.Remove(tmp);
    return CheckpointStatus::kIoError;
  }
  const std::string parent = ParentDirOf(path);
  if (!RetryWithBackoff(retry, [&] { return io.SyncDir(parent); }, sleep)) {
    // The checkpoint content is in place; only the rename's durability is in
    // doubt.  Surface it — callers keep the previous artifact semantics.
    return CheckpointStatus::kIoError;
  }
  return CheckpointStatus::kOk;
}

CheckpointStatus SaveMonitorCheckpoint(const StreamMonitor& monitor,
                                       const std::string& path) {
  return SaveMonitorCheckpoint(monitor, path, RetryPolicy::None());
}

namespace {

// Reject-and-reset: a failed restore must never leave a half-restored
// monitor, so feed Restore an empty payload — it resets before failing.
CheckpointStatus Reject(StreamMonitor& monitor, CheckpointStatus status) {
  binio::Reader empty{std::string_view{}};
  (void)monitor.Restore(empty);
  return status;
}

CheckpointStatus RestoreOnce(StreamMonitor& monitor, const std::string& path) {
  const auto bytes = io::Current().ReadFile(path);
  if (!bytes) return Reject(monitor, CheckpointStatus::kIoError);
  const std::string_view view = *bytes;
  if (view.size() < kCheckpointMagic.size()) {
    return Reject(monitor, CheckpointStatus::kTruncated);
  }
  if (view.substr(0, kCheckpointMagic.size()) != kCheckpointMagic) {
    return Reject(monitor, CheckpointStatus::kBadMagic);
  }

  binio::Reader header(view.substr(kCheckpointMagic.size()));
  const std::uint32_t version = header.GetU32();
  const std::uint64_t payload_len = header.GetU64();
  const std::uint32_t crc = header.GetU32();
  if (!header.Ok()) return Reject(monitor, CheckpointStatus::kTruncated);
  if (version != kCheckpointVersion) {
    return Reject(monitor, CheckpointStatus::kBadVersion);
  }
  if (payload_len > header.Remaining()) {
    return Reject(monitor, CheckpointStatus::kTruncated);
  }
  if (payload_len < header.Remaining()) {
    // Trailing garbage is as suspicious as a short read.
    return Reject(monitor, CheckpointStatus::kBadPayload);
  }
  const std::string_view payload = view.substr(view.size() - payload_len);
  if (binio::Crc32(payload) != crc) {
    return Reject(monitor, CheckpointStatus::kBadCrc);
  }

  binio::Reader payload_reader(payload);
  if (!monitor.Restore(payload_reader) || !payload_reader.AtEnd()) {
    return Reject(monitor, CheckpointStatus::kBadPayload);
  }
  return CheckpointStatus::kOk;
}

// Environmental failures a re-read can fix: the file vanished mid-swap
// (kIoError), or we raced a writer and saw a prefix / mixed bytes
// (kTruncated, kBadCrc).  Structural rejections are permanent.
bool RetryableRestore(CheckpointStatus status) noexcept {
  return status == CheckpointStatus::kIoError ||
         status == CheckpointStatus::kTruncated ||
         status == CheckpointStatus::kBadCrc;
}

}  // namespace

CheckpointStatus RestoreMonitorCheckpoint(StreamMonitor& monitor,
                                          const std::string& path,
                                          const RetryPolicy& retry,
                                          const SleepFn& sleep) {
  CheckpointStatus status = CheckpointStatus::kIoError;
  const int attempts = retry.max_attempts > 1 ? retry.max_attempts : 1;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    status = RestoreOnce(monitor, path);
    if (status == CheckpointStatus::kOk || !RetryableRestore(status)) break;
    if (attempt < attempts && sleep) sleep(BackoffDelayMs(retry, attempt));
  }
  return status;
}

CheckpointStatus RestoreMonitorCheckpoint(StreamMonitor& monitor,
                                          const std::string& path) {
  return RestoreMonitorCheckpoint(monitor, path, RetryPolicy::None());
}

bool RemoveStaleCheckpointTmp(const std::string& path) {
  io::Io& io = io::Current();
  const std::string tmp = path + ".tmp";
  if (!io.FileSize(tmp).has_value()) return true;  // absent: nothing to sweep
  return io.Remove(tmp) && !io.FileSize(tmp).has_value();
}

}  // namespace astra::stream
