#include "stream/monitor.hpp"

#include <algorithm>

namespace astra::stream {

StreamMonitor::StreamMonitor(const core::DatasetPaths& paths,
                             const MonitorConfig& config)
    : paths_(paths),
      config_(config),
      memory_reader_(paths.memory_errors, config.policy),
      het_reader_(paths.het_events, config.policy),
      predictor_(config.predictor),
      alerts_(config.alerts) {}

void StreamMonitor::ObserveMemory(const logs::MemoryErrorRecord& record) {
  coalescer_.Observe(record);
  positional_.Observe(record);
  temporal_.Observe(record);
  // The delivery index is the batch evaluator's stable-sort tie-break.
  predictor_.Observe(record, delivered_);
  alerts_.Observe(record);
  ++delivered_;
  max_node_ = std::max(max_node_, record.node);
  if (!any_) {
    any_ = true;
    lo_ = hi_ = record.timestamp;
  } else {
    lo_ = std::min(lo_, record.timestamp);
    hi_ = std::max(hi_, record.timestamp);
  }
}

bool StreamMonitor::Rejected() const {
  if (!memory_reader_.Report().AcceptedBy(config_.policy)) return true;
  return het_reader_.SeenFile() &&
         !het_reader_.Report().AcceptedBy(config_.policy);
}

bool StreamMonitor::HetMissing() const {
  return memory_reader_.Report().AcceptedBy(config_.policy) &&
         memory_reader_.SeenFile() && !het_reader_.SeenFile();
}

MonitorStatus StreamMonitor::Poll() {
  const auto memory_sink = [this](const logs::MemoryErrorRecord& r) {
    ObserveMemory(r);
  };
  const TailStatus memory_status = memory_reader_.Poll(memory_sink);
  if (memory_status == TailStatus::kMissing && !memory_reader_.SeenFile()) {
    return MonitorStatus::kMissingPrimary;
  }
  bool advanced = memory_status == TailStatus::kAdvanced ||
                  memory_status == TailStatus::kRotated;
  if (memory_reader_.Report().AcceptedBy(config_.policy)) {
    const TailStatus het_status = het_reader_.Poll(
        [this](const logs::HetRecord& r) { het_records_.push_back(r); });
    advanced = advanced || het_status == TailStatus::kAdvanced ||
               het_status == TailStatus::kRotated;
  }
  if (Rejected()) return MonitorStatus::kRejected;
  return advanced ? MonitorStatus::kAdvanced : MonitorStatus::kIdle;
}

MonitorStatus StreamMonitor::Finish() {
  memory_reader_.Finish(
      [this](const logs::MemoryErrorRecord& r) { ObserveMemory(r); });
  if (!memory_reader_.SeenFile()) return MonitorStatus::kMissingPrimary;
  if (!memory_reader_.Report().AcceptedBy(config_.policy)) {
    return MonitorStatus::kRejected;  // het stays untouched, like the batch
  }
  het_reader_.Finish(
      [this](const logs::HetRecord& r) { het_records_.push_back(r); });
  if (Rejected()) return MonitorStatus::kRejected;
  return MonitorStatus::kAdvanced;
}

core::DataQuality StreamMonitor::Quality() const {
  auto quality = core::DataQuality::FromReport(memory_reader_.Report());
  if (HetMissing()) {
    quality.stream_missing = true;
  } else if (het_reader_.SeenFile()) {
    quality.Merge(core::DataQuality::FromReport(het_reader_.Report()));
  }
  return quality;
}

core::AnalysisArtifacts StreamMonitor::Artifacts() const {
  const core::DataQuality quality = Quality();
  core::AnalysisArtifacts artifacts;
  artifacts.record_count = static_cast<std::size_t>(delivered_);
  artifacts.node_span = static_cast<int>(max_node_) + 1;

  // Span / window / het-start inference, exactly as `analyze` derives them
  // from the ingested record set.
  const TimeWindow window{lo_, hi_.AddSeconds(1)};
  SimTime het_start = hi_;
  for (const auto& r : het_records_) het_start = std::min(het_start, r.timestamp);
  const int month_count = CalendarMonthIndex(window.begin, window.end) + 1;

  artifacts.faults = coalescer_.Report(&quality);
  artifacts.positions =
      positional_.Report(artifacts.faults, artifacts.node_span, &quality);
  artifacts.series = temporal_.Report(artifacts.faults, window.begin, month_count);
  const TimeWindow recording{het_start, window.end};
  artifacts.dues = core::AnalyzeUncorrectable(
      het_records_, recording, artifacts.node_span * kDimmSlotsPerNode, &quality);
  artifacts.prediction = predictor_.Report();
  return artifacts;
}

void StreamMonitor::SaveState(binio::Writer& writer) const {
  memory_reader_.SaveState(writer);
  het_reader_.SaveState(writer);
  coalescer_.SaveState(writer);
  positional_.SaveState(writer);
  temporal_.SaveState(writer);
  predictor_.SaveState(writer);
  alerts_.SaveState(writer);
  writer.PutU64(het_records_.size());
  for (const auto& r : het_records_) writer.PutString(logs::FormatRecord(r));
  writer.PutU64(delivered_);
  writer.PutBool(any_);
  writer.PutI32(max_node_);
  writer.PutI64(lo_.Seconds());
  writer.PutI64(hi_.Seconds());
}

void StreamMonitor::Reset() {
  memory_reader_ = TailReader<logs::MemoryErrorRecord>(paths_.memory_errors,
                                                       config_.policy);
  het_reader_ = TailReader<logs::HetRecord>(paths_.het_events, config_.policy);
  coalescer_ = StreamingCoalescer{};
  positional_ = StreamingPositional{};
  temporal_ = StreamingTemporal{};
  predictor_ = StreamingPredictor{config_.predictor};
  alerts_ = StreamingAlerts{config_.alerts};
  het_records_.clear();
  delivered_ = 0;
  any_ = false;
  max_node_ = 0;
  lo_ = SimTime{};
  hi_ = SimTime{};
}

bool StreamMonitor::LoadState(binio::Reader& reader) {
  Reset();
  bool ok = memory_reader_.LoadState(reader) && het_reader_.LoadState(reader) &&
            coalescer_.LoadState(reader) && positional_.LoadState(reader) &&
            temporal_.LoadState(reader) && predictor_.LoadState(reader) &&
            alerts_.LoadState(reader);
  const std::uint64_t het_count = reader.GetU64();
  ok = ok && reader.CanReadItems(het_count, 8);
  std::string line;
  for (std::uint64_t i = 0; ok && i < het_count; ++i) {
    ok = reader.GetString(line);
    if (!ok) break;
    const auto record = logs::ParseHet(line);
    if (!record) {
      ok = false;
      break;
    }
    het_records_.push_back(*record);
  }
  delivered_ = reader.GetU64();
  any_ = reader.GetBool();
  max_node_ = reader.GetI32();
  lo_ = SimTime{reader.GetI64()};
  hi_ = SimTime{reader.GetI64()};
  if (!ok || !reader.Ok()) {
    Reset();
    return false;
  }
  return true;
}

}  // namespace astra::stream
