#include "stream/monitor.hpp"

namespace astra::stream {

core::EngineSetConfig StreamMonitor::EngineConfig() const {
  core::EngineSetConfig config;
  config.predictor = config_.predictor;
  return config;
}

StreamMonitor::StreamMonitor(const core::DatasetPaths& paths,
                             const MonitorConfig& config)
    : paths_(paths),
      config_(config),
      memory_reader_(paths.memory_errors, config.policy, config.io_retry,
                     config.io_sleep),
      het_reader_(paths.het_events, config.policy, config.io_retry,
                  config.io_sleep),
      set_(EngineConfig()),
      alerts_(config.alerts) {}

void StreamMonitor::FlushPending() {
  if (pending_.empty()) return;
  // Batched delivery to the engine set — identical state to per-record
  // ObserveMemory (core/engine.hpp), and the set still numbers the stream
  // itself, so the delivery index stays the batch evaluator's stable-sort
  // tie-break.  Alerts see records one at a time, in delivery order,
  // exactly as before.
  set_.ObserveMemoryBatch(pending_);
  for (const auto& record : pending_) alerts_.Observe(record);
  pending_.clear();
}

bool StreamMonitor::Rejected() const {
  if (!memory_reader_.Report().AcceptedBy(config_.policy)) return true;
  return het_reader_.SeenFile() &&
         !het_reader_.Report().AcceptedBy(config_.policy);
}

bool StreamMonitor::HetMissing() const {
  return memory_reader_.Report().AcceptedBy(config_.policy) &&
         memory_reader_.SeenFile() && !het_reader_.SeenFile();
}

MonitorStatus StreamMonitor::Poll() {
  const auto memory_sink = [this](const logs::MemoryErrorRecord& r) {
    pending_.push_back(r);
  };
  const TailStatus memory_status = memory_reader_.Poll(memory_sink);
  FlushPending();
  if (memory_status == TailStatus::kMissing && !memory_reader_.SeenFile()) {
    return MonitorStatus::kMissingPrimary;
  }
  bool advanced = memory_status == TailStatus::kAdvanced ||
                  memory_status == TailStatus::kRotated;
  if (memory_reader_.Report().AcceptedBy(config_.policy)) {
    const TailStatus het_status = het_reader_.Poll(
        [this](const logs::HetRecord& r) { set_.ObserveHet(r); });
    advanced = advanced || het_status == TailStatus::kAdvanced ||
               het_status == TailStatus::kRotated;
  }
  if (Rejected()) return MonitorStatus::kRejected;
  return advanced ? MonitorStatus::kAdvanced : MonitorStatus::kIdle;
}

MonitorStatus StreamMonitor::Finish() {
  memory_reader_.Finish(
      [this](const logs::MemoryErrorRecord& r) { pending_.push_back(r); });
  FlushPending();
  if (!memory_reader_.SeenFile()) return MonitorStatus::kMissingPrimary;
  if (!memory_reader_.Report().AcceptedBy(config_.policy)) {
    return MonitorStatus::kRejected;  // het stays untouched, like the batch
  }
  het_reader_.Finish([this](const logs::HetRecord& r) { set_.ObserveHet(r); });
  if (Rejected()) return MonitorStatus::kRejected;
  return MonitorStatus::kAdvanced;
}

core::DataQuality StreamMonitor::Quality() const {
  auto quality = core::DataQuality::FromReport(memory_reader_.Report());
  if (HetMissing()) {
    quality.stream_missing = true;
  } else if (het_reader_.SeenFile()) {
    quality.Merge(core::DataQuality::FromReport(het_reader_.Report()));
  }
  return quality;
}

core::AnalysisArtifacts StreamMonitor::Artifacts() const {
  const core::DataQuality quality = Quality();
  return set_.Finalize(set_.InferredContext(), &quality);
}

void StreamMonitor::Snapshot(binio::Writer& writer) const {
  memory_reader_.SaveState(writer);
  het_reader_.SaveState(writer);
  set_.Snapshot(writer);
  alerts_.Snapshot(writer);
}

void StreamMonitor::Reset() {
  memory_reader_ = TailReader<logs::MemoryErrorRecord>(
      paths_.memory_errors, config_.policy, config_.io_retry, config_.io_sleep);
  het_reader_ = TailReader<logs::HetRecord>(paths_.het_events, config_.policy,
                                            config_.io_retry, config_.io_sleep);
  set_ = core::AnalysisEngineSet{EngineConfig()};
  alerts_ = StreamingAlerts{config_.alerts};
}

bool StreamMonitor::Restore(binio::Reader& reader) {
  Reset();
  const bool ok = memory_reader_.LoadState(reader) &&
                  het_reader_.LoadState(reader) && set_.Restore(reader) &&
                  alerts_.Restore(reader);
  if (!ok || !reader.Ok()) {
    Reset();
    return false;
  }
  return true;
}

}  // namespace astra::stream
