// Tail-follow ingest: the streaming counterpart of logs::IngestLogFile.
//
// A TailReader owns the hardened-ingest state machine for ONE growing log
// file and replays it incrementally: each Poll() re-maps the file, consumes
// any newly appended COMPLETE lines (a torn final line without its '\n' is
// left for a later poll — appenders write whole records, so a partial line
// means the writer is mid-append), and delivers records through the same
// quarantine / dedup / windowed-reorder pipeline the batch reader uses.
// Finish() consumes the final (possibly unterminated) line, drains the
// re-sort buffer and closes the accounting, after which Report() is field-
// identical to what IngestLogFile would have produced over the final bytes.
//
// Rotation/truncation: a file shorter than the consumed offset means the
// producer rotated (or truncated) the log.  The reader restarts at byte 0 of
// the new file — re-running header detection, since a fresh file carries a
// fresh header — while keeping every delivered record, the accounting and
// the dedup/reorder state: the stream is the unit of analysis, files are
// just its transport.  A missing file is reported (kMissing) and retried on
// the next poll; strict-budget aborts are sticky, exactly like the batch
// reader stopping mid-file.
//
// I/O faults: every map of the file goes through the io::Io seam and is
// retried under the reader's bounded backoff policy (util/retry.hpp), so a
// transient open/mmap failure is absorbed invisibly — IoRetries() counts the
// recoveries, the report stays byte-identical to a clean run.  Only after
// the attempt budget is spent does a poll surface kMissing; persistent
// unreadability is then the caller's policy decision (the watch CLI backs
// off across polls and eventually exits with a documented code).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "logs/log_file.hpp"
#include "util/binio.hpp"
#include "util/io_faults.hpp"
#include "util/mapped_file.hpp"
#include "util/retry.hpp"

namespace astra::stream {

enum class TailStatus {
  kIdle,     // no new complete lines since the last poll
  kAdvanced, // consumed at least one new line
  kRotated,  // file shrank: restarted from byte 0 (may also have advanced)
  kAborted,  // strict policy stopped the ingest (sticky)
  kMissing,  // file absent/unreadable this poll; retried next poll
};

template <typename Record>
class TailReader {
 public:
  using Sink = std::function<void(const Record&)>;

  // `retry` bounds how many times one poll re-attempts a failed map before
  // reporting kMissing; `sleep` paces those attempts (null = immediate, the
  // poll loop itself provides pacing).  The default is fail-fast, matching
  // the pre-seam behaviour.
  TailReader(std::string path, const logs::IngestPolicy& policy,
             const RetryPolicy& retry = RetryPolicy::None(), SleepFn sleep = {})
      : path_(std::move(path)),
        policy_(policy),
        retry_(retry),
        sleep_(std::move(sleep)) {}

  // Consume newly appended complete lines.  `sink` receives records in the
  // same order the batch reader would deliver them.
  TailStatus Poll(const Sink& sink) {
    if (aborted_) return TailStatus::kAborted;
    if (finished_) return TailStatus::kIdle;
    const auto mapped = MapWithRetry();
    if (!mapped) return TailStatus::kMissing;
    seen_file_ = true;

    bool rotated = false;
    std::string_view bytes = mapped->Bytes();
    if (bytes.size() < offset_) {
      // The file shrank under us: rotation or truncation.  Restart the file
      // cursor and header detection; analyzer-visible state stays.
      offset_ = 0;
      first_line_done_ = false;
      header_map_.reset();
      file_header_line_.clear();
      ++rotations_;
      rotated = true;
    }

    std::string_view fresh = bytes.substr(offset_);
    const std::size_t last_nl = fresh.rfind('\n');
    if (last_nl == std::string_view::npos) {
      return rotated ? TailStatus::kRotated : TailStatus::kIdle;
    }
    const std::string_view complete = fresh.substr(0, last_nl + 1);
    bool advanced = false;
    ForEachLineInView(complete, [&](std::string_view line) {
      advanced = true;
      return ProcessLine(line, sink);
    });
    offset_ += complete.size();
    if (aborted_) return TailStatus::kAborted;
    if (rotated) return TailStatus::kRotated;
    return advanced ? TailStatus::kAdvanced : TailStatus::kIdle;
  }

  // Consume the final unterminated line (batch getline semantics visit it),
  // drain the re-sort buffer and close the accounting.  Idempotent.
  void Finish(const Sink& sink) {
    if (finished_) return;
    finished_ = true;
    if (!aborted_) {
      if (const auto mapped = MapWithRetry()) {
        seen_file_ = true;
        std::string_view bytes = mapped->Bytes();
        if (bytes.size() >= offset_) {
          ForEachLineInView(bytes.substr(offset_), [&](std::string_view line) {
            return ProcessLine(line, sink);
          });
          offset_ = bytes.size();
        }
      }
    }
    while (!pending_.empty()) {
      Emit(pending_.top(), sink);
      pending_.pop();
    }
    if (report_.stats.MalformedFraction() > policy_.max_malformed_fraction) {
      report_.budget_exceeded = true;
    }
    if (report_.duplicates_removed > 0) {
      report_.repairs.push_back("dropped " +
                                std::to_string(report_.duplicates_removed) +
                                " exact duplicate record(s)");
    }
    if (report_.reordered > 0) {
      report_.repairs.push_back(
          "re-sorted " + std::to_string(report_.reordered) +
          " out-of-order record(s) within the reorder window");
    }
  }

  [[nodiscard]] const logs::IngestReport& Report() const noexcept { return report_; }
  [[nodiscard]] bool SeenFile() const noexcept { return seen_file_; }
  [[nodiscard]] std::size_t Offset() const noexcept { return offset_; }
  [[nodiscard]] std::uint64_t Rotations() const noexcept { return rotations_; }
  [[nodiscard]] bool Aborted() const noexcept { return aborted_; }
  [[nodiscard]] bool Finished() const noexcept { return finished_; }
  // Transient I/O failures absorbed by in-poll retries.  Observability only:
  // a recovered fault never changes the report (and is not checkpointed).
  [[nodiscard]] std::uint64_t IoRetries() const noexcept { return io_retries_; }

  // Checkpoint the full reader state (cursor, header repair, accounting,
  // dedup hashes, re-sort buffer).  Buffered records round-trip through the
  // canonical text format — FormatRecord/ParseLine are exact inverses.
  void SaveState(binio::Writer& writer) const {
    writer.PutU64(offset_);
    writer.PutBool(first_line_done_);
    writer.PutBool(header_map_.has_value());
    writer.PutString(file_header_line_);
    writer.PutU64(rotations_);
    writer.PutBool(aborted_);
    writer.PutBool(finished_);
    writer.PutBool(seen_file_);

    writer.PutU64(report_.stats.total_lines);
    writer.PutU64(report_.stats.parsed);
    writer.PutU64(report_.stats.malformed);
    for (const auto n : report_.malformed_by_reason) writer.PutU64(n);
    writer.PutU64(report_.duplicates_removed);
    writer.PutU64(report_.out_of_order_seen);
    writer.PutU64(report_.reordered);
    writer.PutU64(report_.order_violations);
    writer.PutBool(report_.header_remapped);
    writer.PutBool(report_.budget_exceeded);
    writer.PutBool(report_.aborted);
    writer.PutU64(report_.repairs.size());
    for (const auto& repair : report_.repairs) writer.PutString(repair);

    writer.PutU64(seq_);
    writer.PutBool(max_seen_.has_value());
    writer.PutI64(max_seen_ ? max_seen_->Seconds() : 0);
    writer.PutBool(last_emitted_.has_value());
    writer.PutI64(last_emitted_ ? last_emitted_->Seconds() : 0);

    // std::hash values are only meaningful within one build — documented
    // checkpoint restriction (binio.hpp).
    std::vector<std::uint64_t> hashes;
    hashes.reserve(seen_hashes_.size());
    // astra-lint: allow(det-unordered-iter): collected then sorted below.
    for (const std::size_t h : seen_hashes_) {
      hashes.push_back(static_cast<std::uint64_t>(h));
    }
    std::sort(hashes.begin(), hashes.end());
    writer.PutU64(hashes.size());
    for (const std::uint64_t h : hashes) writer.PutU64(h);

    auto heap_copy = pending_;
    writer.PutU64(heap_copy.size());
    while (!heap_copy.empty()) {
      const Pending& p = heap_copy.top();
      writer.PutString(logs::FormatRecord(p.record));
      writer.PutU64(p.seq);
      writer.PutBool(p.was_out_of_order);
      heap_copy.pop();
    }
  }

  // Replace this reader's state.  False on a malformed payload; the reader
  // is reset to its initial state, never half-restored.
  [[nodiscard]] bool LoadState(binio::Reader& reader) {
    Reset();
    offset_ = reader.GetU64();
    first_line_done_ = reader.GetBool();
    const bool has_header_map = reader.GetBool();
    bool ok = reader.GetString(file_header_line_);
    rotations_ = reader.GetU64();
    aborted_ = reader.GetBool();
    finished_ = reader.GetBool();
    seen_file_ = reader.GetBool();
    if (ok && has_header_map) {
      // The projection is rebuilt, not serialized: the drifted header line is
      // the authoritative state and HeaderMap::Build is deterministic.
      header_map_ = logs::HeaderMap::Build(Canonical(), file_header_line_);
      ok = header_map_.has_value();
    }

    report_ = logs::IngestReport{};
    report_.stats.total_lines = reader.GetU64();
    report_.stats.parsed = reader.GetU64();
    report_.stats.malformed = reader.GetU64();
    for (auto& n : report_.malformed_by_reason) n = reader.GetU64();
    report_.duplicates_removed = reader.GetU64();
    report_.out_of_order_seen = reader.GetU64();
    report_.reordered = reader.GetU64();
    report_.order_violations = reader.GetU64();
    report_.header_remapped = reader.GetBool();
    report_.budget_exceeded = reader.GetBool();
    report_.aborted = reader.GetBool();
    const std::uint64_t repair_count = reader.GetU64();
    ok = ok && reader.CanReadItems(repair_count, 8);
    for (std::uint64_t i = 0; ok && i < repair_count; ++i) {
      std::string repair;
      ok = reader.GetString(repair);
      if (ok) report_.repairs.push_back(std::move(repair));
    }

    seq_ = reader.GetU64();
    const bool has_max = reader.GetBool();
    const SimTime max_seen{reader.GetI64()};
    if (has_max) max_seen_ = max_seen;
    const bool has_last = reader.GetBool();
    const SimTime last_emitted{reader.GetI64()};
    if (has_last) last_emitted_ = last_emitted;

    const std::uint64_t hash_count = reader.GetU64();
    ok = ok && reader.CanReadItems(hash_count, sizeof(std::uint64_t));
    seen_hashes_.reserve(static_cast<std::size_t>(hash_count));
    for (std::uint64_t i = 0; ok && i < hash_count; ++i) {
      seen_hashes_.insert(static_cast<std::size_t>(reader.GetU64()));
    }

    const std::uint64_t pending_count = reader.GetU64();
    ok = ok && reader.CanReadItems(pending_count, 16);
    std::string line;
    for (std::uint64_t i = 0; ok && i < pending_count; ++i) {
      ok = reader.GetString(line);
      if (!ok) break;
      const auto record = logs::detail::ParseLine<Record>(line);
      if (!record) {
        ok = false;
        break;
      }
      Pending p{*record, reader.GetU64(), reader.GetBool()};
      pending_.push(std::move(p));
    }

    if (!ok || !reader.Ok()) {
      Reset();
      return false;
    }
    return true;
  }

 private:
  struct Pending {
    Record record;
    std::uint64_t seq = 0;
    bool was_out_of_order = false;
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      const SimTime ta = logs::detail::TimestampOf(a.record);
      const SimTime tb = logs::detail::TimestampOf(b.record);
      return ta > tb || (ta == tb && a.seq > b.seq);
    }
  };

  [[nodiscard]] static std::string_view Canonical() noexcept {
    return logs::detail::Header<Record>();
  }

  // Map the file through the Io seam, absorbing up to retry_.max_attempts-1
  // transient failures.  Failure here means the budget is spent.
  [[nodiscard]] std::optional<MappedFile> MapWithRetry() {
    for (int attempt = 1;; ++attempt) {
      auto mapped = io::Current().MapFile(path_);
      if (mapped) {
        io_retries_ += static_cast<std::uint64_t>(attempt - 1);
        return mapped;
      }
      if (attempt >= std::max(retry_.max_attempts, 1)) return std::nullopt;
      if (sleep_) sleep_(BackoffDelayMs(retry_, attempt));
    }
  }

  void Reset() {
    offset_ = 0;
    first_line_done_ = false;
    header_map_.reset();
    file_header_line_.clear();
    rotations_ = 0;
    aborted_ = false;
    finished_ = false;
    seen_file_ = false;
    report_ = logs::IngestReport{};
    pending_ = {};
    seq_ = 0;
    max_seen_.reset();
    last_emitted_.reset();
    seen_hashes_.clear();
  }

  void Emit(const Pending& p, const Sink& sink) {
    const SimTime t = logs::detail::TimestampOf(p.record);
    if (last_emitted_ && t < *last_emitted_) {
      ++report_.order_violations;
    } else if (p.was_out_of_order) {
      ++report_.reordered;
    }
    if (!last_emitted_ || t > *last_emitted_) last_emitted_ = t;
    sink(p.record);
  }

  // One line of the stream — the exact body of IngestLogFile's visitor.
  // Returns false to stop the walk (strict budget abort).
  bool ProcessLine(std::string_view line, const Sink& sink) {
    const std::string_view canonical = Canonical();
    if (!first_line_done_) {
      first_line_done_ = true;
      if (line == canonical) return true;
      if (policy_.remap_headers && !line.empty()) {
        if (auto map = logs::HeaderMap::Build(canonical, line)) {
          header_map_ = std::move(*map);
          file_header_line_ = std::string(line);
          report_.header_remapped = true;
          report_.repairs.push_back(
              "remapped drifted header (" +
              std::string(header_map_->Identity() ? "aliases only"
                                                  : "column order") +
              ") back to canonical schema");
          return true;
        }
      }
      // Fall through: a headerless file starts with data on line 1.
    }
    if (line.empty() || line == canonical) return true;
    if (header_map_ && line == file_header_line_) return true;  // duplicated header

    ++report_.stats.total_lines;

    std::string_view effective = line;
    bool schema_repairable = true;
    if (header_map_ && !header_map_->Identity()) {
      const auto fields = SplitView(line, '\t');
      if (header_map_->ProjectLine(fields, projected_)) {
        effective = projected_;
      } else {
        schema_repairable = false;
        ++report_.stats.malformed;
        ++report_.malformed_by_reason[static_cast<std::size_t>(
            logs::MalformedReason::kFieldCount)];
      }
    }

    if (schema_repairable) {
      if (const auto record = logs::detail::ParseLine<Record>(effective)) {
        ++report_.stats.parsed;
        bool duplicate = false;
        if (policy_.dedup) {
          duplicate = !seen_hashes_.insert(hasher_(effective)).second;
        }
        if (duplicate) {
          ++report_.duplicates_removed;
        } else {
          Pending p{*record, seq_++, false};
          const SimTime t = logs::detail::TimestampOf(p.record);
          if (max_seen_ && t < *max_seen_) {
            p.was_out_of_order = true;
            ++report_.out_of_order_seen;
          }
          if (!max_seen_ || t > *max_seen_) max_seen_ = t;
          if (policy_.reorder_window_seconds > 0) {
            pending_.push(std::move(p));
            const SimTime horizon =
                max_seen_->AddSeconds(-policy_.reorder_window_seconds);
            while (!pending_.empty() &&
                   logs::detail::TimestampOf(pending_.top().record) <= horizon) {
              Emit(pending_.top(), sink);
              pending_.pop();
            }
          } else {
            Emit(p, sink);
          }
        }
      } else {
        ++report_.stats.malformed;
        ++report_.malformed_by_reason[static_cast<std::size_t>(
            logs::ClassifyMalformed(effective,
                                    SplitView(canonical, '\t').size()))];
      }
    }

    if (policy_.mode == logs::IngestPolicy::Mode::kStrict &&
        report_.stats.total_lines >= logs::IngestPolicy::kBudgetGraceLines &&
        report_.stats.MalformedFraction() > policy_.max_malformed_fraction) {
      report_.budget_exceeded = true;
      report_.aborted = true;
      aborted_ = true;
      return false;
    }
    return true;
  }

  std::string path_;
  logs::IngestPolicy policy_;
  RetryPolicy retry_;
  SleepFn sleep_;
  std::uint64_t io_retries_ = 0;

  std::size_t offset_ = 0;
  bool first_line_done_ = false;
  std::optional<logs::HeaderMap> header_map_;
  std::string file_header_line_;
  std::uint64_t rotations_ = 0;
  bool aborted_ = false;
  bool finished_ = false;
  bool seen_file_ = false;

  logs::IngestReport report_;
  std::priority_queue<Pending, std::vector<Pending>, Later> pending_;
  std::uint64_t seq_ = 0;
  std::optional<SimTime> max_seen_;
  std::optional<SimTime> last_emitted_;
  std::unordered_set<std::size_t> seen_hashes_;
  std::hash<std::string_view> hasher_;
  std::string projected_;
};

}  // namespace astra::stream
