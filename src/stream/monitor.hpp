// StreamMonitor: the live counterpart of core::IngestFailureData + the batch
// analysis pipeline.  It tail-follows a dataset directory's memory_errors and
// het_events logs, feeds every delivered memory record through the
// incremental analyzers, and can materialize core::AnalysisArtifacts at any
// moment — with the invariant that after the streams are finished the
// artifacts render byte-identically to `astra-mrt analyze` over the same
// files.  SaveState/LoadState checkpoint the whole pipeline (both reader
// cursors plus all analyzer state), so a restarted watcher resumes mid-file
// without re-reading or double-counting a single record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/report.hpp"
#include "stream/analyzers.hpp"
#include "stream/tail_reader.hpp"

namespace astra::stream {

struct MonitorConfig {
  logs::IngestPolicy policy;
  AlertConfig alerts;
  core::PredictorConfig predictor;
};

enum class MonitorStatus {
  kIdle,            // nothing new this step
  kAdvanced,        // delivered at least one new record (or consumed lines)
  kRejected,        // strict policy rejected a stream (sticky)
  kMissingPrimary,  // memory_errors has never been readable
};

class StreamMonitor {
 public:
  StreamMonitor(const core::DatasetPaths& paths, const MonitorConfig& config);

  // One incremental step: poll memory_errors, then het_events.  The het
  // stream is left untouched while the memory stream stands rejected —
  // matching the batch ingest, which never opens het_events in that case.
  MonitorStatus Poll();

  // Consume everything currently in the files and close the accounting.
  // After this the ingest reports and artifacts are final.  Idempotent.
  MonitorStatus Finish();

  // Single batch-equivalent pass: Finish() over the current file contents.
  MonitorStatus RunOnce() { return Finish(); }

  [[nodiscard]] bool Rejected() const;
  [[nodiscard]] bool MemorySeen() const { return memory_reader_.SeenFile(); }
  [[nodiscard]] bool HetSeen() const { return het_reader_.SeenFile(); }
  // True when the het stream should be reported as absent (memory stream
  // accepted but het_events never readable).  While the memory stream is
  // rejected the batch path reports an untouched (all-zero) het ingest
  // instead, and so does this.
  [[nodiscard]] bool HetMissing() const;
  [[nodiscard]] std::uint64_t Delivered() const { return delivered_; }
  [[nodiscard]] const logs::IngestReport& MemoryReport() const {
    return memory_reader_.Report();
  }
  [[nodiscard]] const logs::IngestReport& HetReport() const {
    return het_reader_.Report();
  }

  [[nodiscard]] core::DataQuality Quality() const;
  // Snapshot the analyses — window, node span and het start inferred from the
  // records delivered so far, exactly as the batch `analyze` infers them.
  [[nodiscard]] core::AnalysisArtifacts Artifacts() const;
  [[nodiscard]] std::vector<Alert> DrainAlerts() { return alerts_.Drain(); }

  void SaveState(binio::Writer& writer) const;
  // False on a malformed payload; the monitor is reset to a fresh start (as
  // if newly constructed), never half-restored.
  [[nodiscard]] bool LoadState(binio::Reader& reader);

 private:
  void ObserveMemory(const logs::MemoryErrorRecord& record);
  void Reset();

  core::DatasetPaths paths_;
  MonitorConfig config_;

  TailReader<logs::MemoryErrorRecord> memory_reader_;
  TailReader<logs::HetRecord> het_reader_;

  StreamingCoalescer coalescer_;
  StreamingPositional positional_;
  StreamingTemporal temporal_;
  StreamingPredictor predictor_;
  StreamingAlerts alerts_;

  // DUE analysis is already cheap (DUEs are rare), so het records are simply
  // buffered and handed to the batch analyzer at report time.
  std::vector<logs::HetRecord> het_records_;

  std::uint64_t delivered_ = 0;  // memory records, in delivery order
  bool any_ = false;
  NodeId max_node_ = 0;
  SimTime lo_;
  SimTime hi_;
};

}  // namespace astra::stream
