// StreamMonitor: the streaming driver over the single analysis core
// (core/engine.hpp).  It tail-follows a dataset directory's memory_errors
// and het_events logs, feeds every delivered record into the SAME engines
// the batch drivers replay, and can finalize core::AnalysisArtifacts at any
// moment — parity with `astra-mrt analyze` over the same files holds BY
// CONSTRUCTION, because there is no second analyzer implementation to
// drift.  Snapshot/Restore checkpoint the whole pipeline (both reader
// cursors plus the engine set and the alert engine), so a restarted watcher
// resumes mid-file without re-reading or double-counting a single record.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dataset.hpp"
#include "core/engine.hpp"
#include "stream/alerts.hpp"
#include "stream/tail_reader.hpp"
#include "util/retry.hpp"

namespace astra::stream {

struct MonitorConfig {
  logs::IngestPolicy policy;
  AlertConfig alerts;
  core::PredictorConfig predictor;
  // In-poll retry budget for transient map failures on either stream.  The
  // default is fail-fast (one attempt per poll) — the historical behaviour.
  RetryPolicy io_retry = RetryPolicy::None();
  // Paces in-poll retries; null = back-to-back attempts (tests, or callers
  // whose own poll cadence provides the pacing).
  SleepFn io_sleep = {};
};

enum class MonitorStatus {
  kIdle,            // nothing new this step
  kAdvanced,        // delivered at least one new record (or consumed lines)
  kRejected,        // strict policy rejected a stream (sticky)
  kMissingPrimary,  // memory_errors has never been readable
};

class StreamMonitor {
 public:
  StreamMonitor(const core::DatasetPaths& paths, const MonitorConfig& config);

  // One incremental step: poll memory_errors, then het_events.  The het
  // stream is left untouched while the memory stream stands rejected —
  // matching the batch ingest, which never opens het_events in that case.
  MonitorStatus Poll();

  // Consume everything currently in the files and close the accounting.
  // After this the ingest reports and artifacts are final.  Idempotent.
  MonitorStatus Finish();

  // Single batch-equivalent pass: Finish() over the current file contents.
  MonitorStatus RunOnce() { return Finish(); }

  [[nodiscard]] bool Rejected() const;
  [[nodiscard]] bool MemorySeen() const { return memory_reader_.SeenFile(); }
  [[nodiscard]] bool HetSeen() const { return het_reader_.SeenFile(); }
  // True when the het stream should be reported as absent (memory stream
  // accepted but het_events never readable).  While the memory stream is
  // rejected the batch path reports an untouched (all-zero) het ingest
  // instead, and so does this.
  [[nodiscard]] bool HetMissing() const;
  [[nodiscard]] std::uint64_t Delivered() const { return set_.Delivered(); }
  // Transient map failures absorbed by in-poll retries, summed over both
  // streams.  Observability only — never part of reports or checkpoints.
  [[nodiscard]] std::uint64_t IoRetries() const {
    return memory_reader_.IoRetries() + het_reader_.IoRetries();
  }
  [[nodiscard]] const logs::IngestReport& MemoryReport() const {
    return memory_reader_.Report();
  }
  [[nodiscard]] const logs::IngestReport& HetReport() const {
    return het_reader_.Report();
  }

  [[nodiscard]] core::DataQuality Quality() const;
  // Finalize the engine set — window, node span and het start inferred from
  // the records delivered so far, exactly as the batch `analyze` infers them.
  [[nodiscard]] core::AnalysisArtifacts Artifacts() const;
  [[nodiscard]] std::vector<Alert> DrainAlerts() { return alerts_.Drain(); }

  // Read-only views for aggregators (src/serve/'s merge tree copies these
  // under the owner's lock and reduces the copies via MergeFrom — the
  // monitor itself never participates in a merge).
  [[nodiscard]] const core::AnalysisEngineSet& Engines() const { return set_; }
  [[nodiscard]] const StreamingAlerts& AlertEngine() const { return alerts_; }
  [[nodiscard]] const MonitorConfig& Config() const { return config_; }

  // Engine-style checkpointing: reader cursors (TailReader::SaveState — a
  // file cursor, not an engine) followed by the engine set and the alert
  // engine through their uniform Snapshot/Restore.
  void Snapshot(binio::Writer& writer) const;
  // False on a malformed payload; the monitor is reset to a fresh start (as
  // if newly constructed), never half-restored.
  [[nodiscard]] bool Restore(binio::Reader& reader);

 private:
  void FlushPending();
  void Reset();
  [[nodiscard]] core::EngineSetConfig EngineConfig() const;

  core::DatasetPaths paths_;
  MonitorConfig config_;

  TailReader<logs::MemoryErrorRecord> memory_reader_;
  TailReader<logs::HetRecord> het_reader_;

  core::AnalysisEngineSet set_;
  StreamingAlerts alerts_;
  // Records collected by the poll sink, delivered to the engine set as one
  // batch at the end of the poll (stream/monitor.cpp FlushPending).  Always
  // empty between Poll/Finish calls, so it is never checkpointed.
  std::vector<logs::MemoryErrorRecord> pending_;
};

}  // namespace astra::stream
