#include "stream/alerts.hpp"

#include <algorithm>

#include "core/engine.hpp"

namespace astra::stream {

static_assert(core::AnalyzerEngine<StreamingAlerts>);

std::string Alert::Message() const {
  std::string message = at.ToString() + "  ALERT ";
  switch (kind) {
    case Kind::kFleetCeRate:
      message += "fleet CE rate: " + std::to_string(count) + " CEs in " +
                 std::to_string(window_seconds) + "s window";
      break;
    case Kind::kNodeCeRate:
      message += "node " + std::to_string(node) +
                 " CE rate: " + std::to_string(count) + " CEs in " +
                 std::to_string(window_seconds) + "s window";
      break;
    case Kind::kDue:
      message += "uncorrectable (DUE) on node " + std::to_string(node);
      break;
  }
  return message;
}

void StreamingAlerts::EvictBefore(std::int64_t horizon) {
  while (!window_.empty() && window_.begin()->first <= horizon) {
    const NodeId node = window_.begin()->second;
    auto it = node_counts_.find(node);
    if (it != node_counts_.end() && --it->second == 0) node_counts_.erase(it);
    window_.erase(window_.begin());
  }
  if (fleet_fired_ && config_.fleet_ce_threshold > 0 &&
      window_.size() < config_.fleet_ce_threshold) {
    fleet_fired_ = false;  // re-arm once the burst subsides
  }
  for (auto it = node_fired_.begin(); it != node_fired_.end();) {
    const auto count_it = node_counts_.find(*it);
    const std::uint64_t count =
        count_it == node_counts_.end() ? 0 : count_it->second;
    if (count < config_.node_ce_threshold) {
      it = node_fired_.erase(it);
    } else {
      ++it;
    }
  }
}

void StreamingAlerts::Observe(const logs::MemoryErrorRecord& record,
                              std::uint64_t /*seq*/) {
  if (record.type == logs::FailureType::kUncorrectable) {
    if (config_.alert_on_due) {
      Alert alert;
      alert.kind = Alert::Kind::kDue;
      alert.at = record.timestamp;
      alert.node = record.node;
      pending_.push_back(std::move(alert));
    }
    return;
  }

  const std::int64_t ts = record.timestamp.Seconds();
  if (!any_ce_ || ts > max_ts_) {
    max_ts_ = ts;
    any_ce_ = true;
  }
  const std::int64_t horizon = max_ts_ - config_.window_seconds;
  EvictBefore(horizon);
  if (ts <= horizon) return;  // delivered too far out of order to count

  window_.emplace(ts, record.node);
  const std::uint64_t node_count = ++node_counts_[record.node];

  if (config_.fleet_ce_threshold > 0 && !fleet_fired_ &&
      window_.size() >= config_.fleet_ce_threshold) {
    fleet_fired_ = true;
    Alert alert;
    alert.kind = Alert::Kind::kFleetCeRate;
    alert.at = record.timestamp;
    alert.count = window_.size();
    alert.window_seconds = config_.window_seconds;
    pending_.push_back(std::move(alert));
  }
  if (config_.node_ce_threshold > 0 && node_count >= config_.node_ce_threshold &&
      node_fired_.insert(record.node).second) {
    Alert alert;
    alert.kind = Alert::Kind::kNodeCeRate;
    alert.at = record.timestamp;
    alert.node = record.node;
    alert.count = node_count;
    alert.window_seconds = config_.window_seconds;
    pending_.push_back(std::move(alert));
  }
}

bool StreamingAlerts::MergeFrom(const StreamingAlerts& other) {
  if (&other == this) return false;
  if (!(config_ == other.config_)) return false;
  for (const auto& [ts, node] : other.window_) {
    window_.emplace(ts, node);
    ++node_counts_[node];
  }
  if (other.any_ce_) {
    max_ts_ = any_ce_ ? std::max(max_ts_, other.max_ts_) : other.max_ts_;
    any_ce_ = true;
  }
  fleet_fired_ = fleet_fired_ || other.fleet_fired_;
  node_fired_.insert(other.node_fired_.begin(), other.node_fired_.end());
  pending_.insert(pending_.end(), other.pending_.begin(), other.pending_.end());
  if (any_ce_) EvictBefore(max_ts_ - config_.window_seconds);

  // A threshold the combined window crosses that neither operand had latched
  // is a burst only the merged view can see (e.g. 40 CEs/h spread over 36
  // nodes with a fleet threshold of 100).  A serial replay of the combined
  // stream would have alerted on it, so the merge must too — timestamped at
  // the merged horizon, the instant the crossing became knowable.
  if (config_.fleet_ce_threshold > 0 && !fleet_fired_ &&
      window_.size() >= config_.fleet_ce_threshold) {
    fleet_fired_ = true;
    Alert alert;
    alert.kind = Alert::Kind::kFleetCeRate;
    alert.at = SimTime{max_ts_};
    alert.count = window_.size();
    alert.window_seconds = config_.window_seconds;
    pending_.push_back(std::move(alert));
  }
  if (config_.node_ce_threshold > 0) {
    for (const auto& [node, count] : node_counts_) {
      if (count < config_.node_ce_threshold) continue;
      if (!node_fired_.insert(node).second) continue;
      Alert alert;
      alert.kind = Alert::Kind::kNodeCeRate;
      alert.at = SimTime{max_ts_};
      alert.node = node;
      alert.count = count;
      alert.window_seconds = config_.window_seconds;
      pending_.push_back(std::move(alert));
    }
  }
  return true;
}

std::vector<Alert> StreamingAlerts::Drain() {
  std::vector<Alert> drained = std::move(pending_);
  pending_.clear();
  return drained;
}

void StreamingAlerts::Snapshot(binio::Writer& writer) const {
  writer.PutU64(window_.size());
  for (const auto& [ts, node] : window_) {
    writer.PutI64(ts);
    writer.PutI32(node);
  }
  writer.PutI64(max_ts_);
  writer.PutBool(any_ce_);
  writer.PutBool(fleet_fired_);
  writer.PutU64(node_fired_.size());
  for (const NodeId node : node_fired_) writer.PutI32(node);
  writer.PutU64(pending_.size());
  for (const Alert& alert : pending_) {
    writer.PutU8(static_cast<std::uint8_t>(alert.kind));
    writer.PutI64(alert.at.Seconds());
    writer.PutI32(alert.node);
    writer.PutU64(alert.count);
    writer.PutI64(alert.window_seconds);
  }
}

bool StreamingAlerts::Restore(binio::Reader& reader) {
  window_.clear();
  node_counts_.clear();
  node_fired_.clear();
  pending_.clear();
  fleet_fired_ = false;
  any_ce_ = false;
  max_ts_ = 0;

  const std::uint64_t window_count = reader.GetU64();
  bool ok = reader.CanReadItems(window_count, 12);
  for (std::uint64_t i = 0; ok && i < window_count; ++i) {
    const std::int64_t ts = reader.GetI64();
    const NodeId node = reader.GetI32();
    window_.emplace(ts, node);
    ++node_counts_[node];  // derived, not serialized
    ok = reader.Ok();
  }
  max_ts_ = reader.GetI64();
  any_ce_ = reader.GetBool();
  fleet_fired_ = reader.GetBool();
  const std::uint64_t fired_count = reader.GetU64();
  ok = ok && reader.CanReadItems(fired_count, sizeof(std::int32_t));
  for (std::uint64_t i = 0; ok && i < fired_count; ++i) {
    node_fired_.insert(reader.GetI32());
  }
  const std::uint64_t pending_count = reader.GetU64();
  ok = ok && reader.CanReadItems(pending_count, 25);
  for (std::uint64_t i = 0; ok && i < pending_count; ++i) {
    Alert alert;
    const std::uint8_t kind = reader.GetU8();
    if (kind > static_cast<std::uint8_t>(Alert::Kind::kDue)) {
      ok = false;
      break;
    }
    alert.kind = static_cast<Alert::Kind>(kind);
    alert.at = SimTime{reader.GetI64()};
    alert.node = reader.GetI32();
    alert.count = reader.GetU64();
    alert.window_seconds = reader.GetI64();
    pending_.push_back(std::move(alert));
    ok = reader.Ok();
  }
  if (!ok || !reader.Ok()) {
    *this = StreamingAlerts{config_};
    return false;
  }
  return true;
}

}  // namespace astra::stream
