#include "stream/analyzers.hpp"

#include <algorithm>
#include <optional>

#include "stats/descriptive.hpp"

namespace astra::stream {

// --- StreamingCoalescer -------------------------------------------------------

core::CoalesceResult StreamingCoalescer::Report(
    const core::DataQuality* quality) const {
  core::FaultCoalescer snapshot = coalescer_;  // Finalize() consumes state
  core::CoalesceResult result = snapshot.Finalize();
  core::AttachIngestCaveats(result, quality);
  return result;
}

// --- StreamingTemporal --------------------------------------------------------

namespace {

std::int64_t AbsoluteMonth(SimTime t) noexcept {
  const CivilDateTime civil = t.ToCivil();
  return static_cast<std::int64_t>(civil.date.year) * 12 + (civil.date.month - 1);
}

}  // namespace

void StreamingTemporal::Observe(const logs::MemoryErrorRecord& record) {
  if (record.type != logs::FailureType::kCorrectable) return;
  ++ce_by_month_[AbsoluteMonth(record.timestamp)];
}

core::MonthlyErrorSeries StreamingTemporal::Report(
    const core::CoalesceResult& coalesced, SimTime origin,
    int month_count) const {
  core::MonthlyErrorSeries series;
  series.origin = origin;
  series.month_count = month_count;
  series.all_errors.assign(static_cast<std::size_t>(month_count), 0);
  for (auto& mode_series : series.by_mode) {
    mode_series.assign(static_cast<std::size_t>(month_count), 0);
  }
  // CalendarMonthIndex(origin, t) is a difference of absolute month indices,
  // so the origin-free bins remap exactly onto the batch series.
  const std::int64_t origin_month = AbsoluteMonth(origin);
  for (const auto& [abs_month, count] : ce_by_month_) {
    const std::int64_t m = abs_month - origin_month;
    if (m >= 0 && m < month_count) {
      series.all_errors[static_cast<std::size_t>(m)] += count;
    }
  }
  for (const auto& fault : coalesced.faults) {
    const auto mode_idx = static_cast<std::size_t>(fault.mode);
    const std::size_t months =
        std::min(fault.monthly_errors.size(), series.by_mode[mode_idx].size());
    for (std::size_t m = 0; m < months; ++m) {
      series.by_mode[mode_idx][m] += fault.monthly_errors[m];
    }
  }
  return series;
}

void StreamingTemporal::SaveState(binio::Writer& writer) const {
  writer.PutU64(ce_by_month_.size());
  for (const auto& [month, count] : ce_by_month_) {
    writer.PutI64(month);
    writer.PutU64(count);
  }
}

bool StreamingTemporal::LoadState(binio::Reader& reader) {
  ce_by_month_.clear();
  const std::uint64_t count = reader.GetU64();
  if (!reader.CanReadItems(count, 16)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::int64_t month = reader.GetI64();
    ce_by_month_[month] = reader.GetU64();
  }
  if (!reader.Ok()) {
    ce_by_month_.clear();
    return false;
  }
  return true;
}

// --- StreamingPredictor -------------------------------------------------------

void StreamingPredictor::Observe(const logs::MemoryErrorRecord& record,
                                 std::uint64_t seq) {
  DimmState& state = dimms_[GlobalDimmIndex(record.node, record.slot)];

  if (record.type == logs::FailureType::kUncorrectable) {
    // Only the earliest DUE matters — and in a time-sorted replay the first
    // DUE seen is the one with the minimum timestamp.
    if (!state.due_seen || record.timestamp.Seconds() < state.first_due) {
      state.due_seen = true;
      state.first_due = record.timestamp.Seconds();
    }
    return;
  }

  const Moment moment{record.timestamp.Seconds(), seq};
  if (config_.ce_count_threshold > 0) {
    const std::size_t limit = config_.ce_count_threshold;
    if (state.ce_smallest.size() < limit) {
      state.ce_smallest.push_back(moment);
      std::push_heap(state.ce_smallest.begin(), state.ce_smallest.end());
    } else if (moment < state.ce_smallest.front()) {
      std::pop_heap(state.ce_smallest.begin(), state.ce_smallest.end());
      state.ce_smallest.back() = moment;
      std::push_heap(state.ce_smallest.begin(), state.ce_smallest.end());
    }
  }
  auto& bits = state.bits_by_address[record.physical_address];
  const auto [it, inserted] = bits.emplace(record.bit_position, moment);
  if (!inserted && moment < it->second) it->second = moment;
}

core::PredictionEvaluation StreamingPredictor::Report() const {
  core::PredictionEvaluation evaluation;
  std::vector<double> lead_days;
  std::vector<Moment> scratch;

  for (const auto& [dimm, state] : dimms_) {
    // Earliest firing moment of each enabled rule in a time-sorted replay.
    std::optional<Moment> multibit_at;
    if (config_.flag_multibit_word_signature) {
      for (const auto& [addr, bits] : state.bits_by_address) {
        if (bits.size() < 2) continue;
        // The address turns multi-bit when its 2nd distinct bit appears.
        Moment smallest = bits.begin()->second;
        Moment second = smallest;
        bool have_second = false;
        for (auto it = bits.begin(); it != bits.end(); ++it) {
          const Moment m = it->second;
          if (it == bits.begin()) continue;
          if (m < smallest) {
            second = smallest;
            smallest = m;
            have_second = true;
          } else if (!have_second || m < second) {
            second = m;
            have_second = true;
          }
        }
        if (!multibit_at || second < *multibit_at) multibit_at = second;
      }
    }
    std::optional<Moment> volume_at;
    if (config_.ce_count_threshold > 0 &&
        state.ce_smallest.size() >= config_.ce_count_threshold) {
      volume_at = state.ce_smallest.front();  // max of the N smallest = Nth CE
    }
    std::optional<Moment> footprint_at;
    if (config_.distinct_address_threshold > 0 &&
        state.bits_by_address.size() >= config_.distinct_address_threshold) {
      // The rule fires when the K-th distinct address first appears.
      scratch.clear();
      for (const auto& [addr, bits] : state.bits_by_address) {
        Moment first = bits.begin()->second;
        for (const auto& [bit, m] : bits) first = std::min(first, m);
        scratch.push_back(first);
      }
      const auto kth =
          scratch.begin() + (config_.distinct_address_threshold - 1);
      std::nth_element(scratch.begin(), kth, scratch.end());
      footprint_at = *kth;
    }

    std::optional<Moment> flagged_moment;
    for (const auto& candidate : {multibit_at, volume_at, footprint_at}) {
      if (candidate && (!flagged_moment || *candidate < *flagged_moment)) {
        flagged_moment = candidate;
      }
    }
    std::string reason;
    if (flagged_moment) {
      // The batch evaluator checks rules in priority order at the record
      // that first fires any of them; with equal moments the same priority
      // applies here.
      if (multibit_at && *multibit_at == *flagged_moment) {
        reason = "multi-bit word signature";
      } else if (volume_at && *volume_at == *flagged_moment) {
        reason = "CE volume >= " + std::to_string(config_.ce_count_threshold);
      } else {
        reason = "footprint >= " +
                 std::to_string(config_.distinct_address_threshold) +
                 " addresses";
      }
    }

    const bool flagged = flagged_moment.has_value();
    const SimTime flagged_at{flagged ? flagged_moment->ts : 0};
    if (flagged) {
      ++evaluation.dimms_flagged;
      core::DimmFlag flag;
      flag.node = static_cast<NodeId>(dimm / kDimmSlotsPerNode);
      flag.slot = static_cast<DimmSlot>(dimm % kDimmSlotsPerNode);
      flag.flagged_at = flagged_at;
      flag.reason = std::move(reason);
      evaluation.flags.push_back(std::move(flag));
    }
    if (state.due_seen) ++evaluation.dimms_with_due;

    if (flagged && state.due_seen) {
      const std::int64_t lead = state.first_due - flagged_at.Seconds();
      if (lead >= config_.lead_time_seconds) {
        ++evaluation.true_positives;
        lead_days.push_back(static_cast<double>(lead) /
                            static_cast<double>(SimTime::kSecondsPerDay));
      } else {
        ++evaluation.late_flags;
      }
    } else if (flagged) {
      ++evaluation.false_positives;
    } else if (state.due_seen) {
      ++evaluation.missed;
    }
  }
  evaluation.missed += evaluation.late_flags;  // late flags are also misses
  evaluation.median_lead_time_days = stats::Median(lead_days);

  std::sort(evaluation.flags.begin(), evaluation.flags.end(),
            [](const core::DimmFlag& a, const core::DimmFlag& b) {
              if (a.flagged_at != b.flagged_at) return a.flagged_at < b.flagged_at;
              if (a.node != b.node) return a.node < b.node;
              return a.slot < b.slot;
            });
  return evaluation;
}

void StreamingPredictor::SaveState(binio::Writer& writer) const {
  writer.PutU64(dimms_.size());
  for (const auto& [dimm, state] : dimms_) {
    writer.PutI64(dimm);
    writer.PutBool(state.due_seen);
    writer.PutI64(state.first_due);
    writer.PutU64(state.bits_by_address.size());
    for (const auto& [addr, bits] : state.bits_by_address) {
      writer.PutU64(addr);
      writer.PutU64(bits.size());
      for (const auto& [bit, moment] : bits) {
        writer.PutI32(bit);
        writer.PutI64(moment.ts);
        writer.PutU64(moment.seq);
      }
    }
    std::vector<Moment> heap = state.ce_smallest;
    std::sort(heap.begin(), heap.end());
    writer.PutU64(heap.size());
    for (const Moment& m : heap) {
      writer.PutI64(m.ts);
      writer.PutU64(m.seq);
    }
  }
}

bool StreamingPredictor::LoadState(binio::Reader& reader) {
  dimms_.clear();
  const std::uint64_t dimm_count = reader.GetU64();
  bool ok = reader.CanReadItems(dimm_count, 8);
  for (std::uint64_t d = 0; ok && d < dimm_count; ++d) {
    const std::int64_t dimm = reader.GetI64();
    DimmState state;
    state.due_seen = reader.GetBool();
    state.first_due = reader.GetI64();
    const std::uint64_t addr_count = reader.GetU64();
    ok = reader.CanReadItems(addr_count, 16);
    for (std::uint64_t a = 0; ok && a < addr_count; ++a) {
      const std::uint64_t addr = reader.GetU64();
      auto& bits = state.bits_by_address[addr];
      const std::uint64_t bit_count = reader.GetU64();
      ok = reader.CanReadItems(bit_count, 20);
      for (std::uint64_t b = 0; ok && b < bit_count; ++b) {
        const std::int32_t bit = reader.GetI32();
        Moment moment;
        moment.ts = reader.GetI64();
        moment.seq = reader.GetU64();
        bits[bit] = moment;
        ok = reader.Ok();
      }
    }
    const std::uint64_t heap_count = reader.GetU64();
    ok = ok && reader.CanReadItems(heap_count, 16);
    for (std::uint64_t i = 0; ok && i < heap_count; ++i) {
      Moment moment;
      moment.ts = reader.GetI64();
      moment.seq = reader.GetU64();
      state.ce_smallest.push_back(moment);
    }
    std::make_heap(state.ce_smallest.begin(), state.ce_smallest.end());
    if (ok) dimms_.emplace(dimm, std::move(state));
  }
  if (!ok || !reader.Ok()) {
    dimms_.clear();
    return false;
  }
  return true;
}

// --- StreamingAlerts ----------------------------------------------------------

std::string Alert::Message() const {
  std::string message = at.ToString() + "  ALERT ";
  switch (kind) {
    case Kind::kFleetCeRate:
      message += "fleet CE rate: " + std::to_string(count) + " CEs in " +
                 std::to_string(window_seconds) + "s window";
      break;
    case Kind::kNodeCeRate:
      message += "node " + std::to_string(node) +
                 " CE rate: " + std::to_string(count) + " CEs in " +
                 std::to_string(window_seconds) + "s window";
      break;
    case Kind::kDue:
      message += "uncorrectable (DUE) on node " + std::to_string(node);
      break;
  }
  return message;
}

void StreamingAlerts::EvictBefore(std::int64_t horizon) {
  while (!window_.empty() && window_.begin()->first <= horizon) {
    const NodeId node = window_.begin()->second;
    auto it = node_counts_.find(node);
    if (it != node_counts_.end() && --it->second == 0) node_counts_.erase(it);
    window_.erase(window_.begin());
  }
  if (fleet_fired_ && config_.fleet_ce_threshold > 0 &&
      window_.size() < config_.fleet_ce_threshold) {
    fleet_fired_ = false;  // re-arm once the burst subsides
  }
  for (auto it = node_fired_.begin(); it != node_fired_.end();) {
    const auto count_it = node_counts_.find(*it);
    const std::uint64_t count =
        count_it == node_counts_.end() ? 0 : count_it->second;
    if (count < config_.node_ce_threshold) {
      it = node_fired_.erase(it);
    } else {
      ++it;
    }
  }
}

void StreamingAlerts::Observe(const logs::MemoryErrorRecord& record) {
  if (record.type == logs::FailureType::kUncorrectable) {
    if (config_.alert_on_due) {
      Alert alert;
      alert.kind = Alert::Kind::kDue;
      alert.at = record.timestamp;
      alert.node = record.node;
      pending_.push_back(std::move(alert));
    }
    return;
  }

  const std::int64_t ts = record.timestamp.Seconds();
  if (!any_ce_ || ts > max_ts_) {
    max_ts_ = ts;
    any_ce_ = true;
  }
  const std::int64_t horizon = max_ts_ - config_.window_seconds;
  EvictBefore(horizon);
  if (ts <= horizon) return;  // delivered too far out of order to count

  window_.emplace(ts, record.node);
  const std::uint64_t node_count = ++node_counts_[record.node];

  if (config_.fleet_ce_threshold > 0 && !fleet_fired_ &&
      window_.size() >= config_.fleet_ce_threshold) {
    fleet_fired_ = true;
    Alert alert;
    alert.kind = Alert::Kind::kFleetCeRate;
    alert.at = record.timestamp;
    alert.count = window_.size();
    alert.window_seconds = config_.window_seconds;
    pending_.push_back(std::move(alert));
  }
  if (config_.node_ce_threshold > 0 && node_count >= config_.node_ce_threshold &&
      node_fired_.insert(record.node).second) {
    Alert alert;
    alert.kind = Alert::Kind::kNodeCeRate;
    alert.at = record.timestamp;
    alert.node = record.node;
    alert.count = node_count;
    alert.window_seconds = config_.window_seconds;
    pending_.push_back(std::move(alert));
  }
}

std::vector<Alert> StreamingAlerts::Drain() {
  std::vector<Alert> drained = std::move(pending_);
  pending_.clear();
  return drained;
}

void StreamingAlerts::SaveState(binio::Writer& writer) const {
  writer.PutU64(window_.size());
  for (const auto& [ts, node] : window_) {
    writer.PutI64(ts);
    writer.PutI32(node);
  }
  writer.PutI64(max_ts_);
  writer.PutBool(any_ce_);
  writer.PutBool(fleet_fired_);
  writer.PutU64(node_fired_.size());
  for (const NodeId node : node_fired_) writer.PutI32(node);
  writer.PutU64(pending_.size());
  for (const Alert& alert : pending_) {
    writer.PutU8(static_cast<std::uint8_t>(alert.kind));
    writer.PutI64(alert.at.Seconds());
    writer.PutI32(alert.node);
    writer.PutU64(alert.count);
    writer.PutI64(alert.window_seconds);
  }
}

bool StreamingAlerts::LoadState(binio::Reader& reader) {
  window_.clear();
  node_counts_.clear();
  node_fired_.clear();
  pending_.clear();
  fleet_fired_ = false;
  any_ce_ = false;
  max_ts_ = 0;

  const std::uint64_t window_count = reader.GetU64();
  bool ok = reader.CanReadItems(window_count, 12);
  for (std::uint64_t i = 0; ok && i < window_count; ++i) {
    const std::int64_t ts = reader.GetI64();
    const NodeId node = reader.GetI32();
    window_.emplace(ts, node);
    ++node_counts_[node];  // derived, not serialized
    ok = reader.Ok();
  }
  max_ts_ = reader.GetI64();
  any_ce_ = reader.GetBool();
  fleet_fired_ = reader.GetBool();
  const std::uint64_t fired_count = reader.GetU64();
  ok = ok && reader.CanReadItems(fired_count, sizeof(std::int32_t));
  for (std::uint64_t i = 0; ok && i < fired_count; ++i) {
    node_fired_.insert(reader.GetI32());
  }
  const std::uint64_t pending_count = reader.GetU64();
  ok = ok && reader.CanReadItems(pending_count, 25);
  for (std::uint64_t i = 0; ok && i < pending_count; ++i) {
    Alert alert;
    const std::uint8_t kind = reader.GetU8();
    if (kind > static_cast<std::uint8_t>(Alert::Kind::kDue)) {
      ok = false;
      break;
    }
    alert.kind = static_cast<Alert::Kind>(kind);
    alert.at = SimTime{reader.GetI64()};
    alert.node = reader.GetI32();
    alert.count = reader.GetU64();
    alert.window_seconds = reader.GetI64();
    pending_.push_back(std::move(alert));
    ok = reader.Ok();
  }
  if (!ok || !reader.Ok()) {
    *this = StreamingAlerts{config_};
    return false;
  }
  return true;
}

}  // namespace astra::stream
