// Incremental analyzer counterparts to the batch passes in core/.
//
// Each analyzer exposes Observe(record) / Report() with one invariant: after
// observing a record stream, Report() equals the corresponding batch
// analysis over the same records IN THE SAME ORDER — which the equivalence
// suite checks down to the rendered report bytes.  The designs differ from
// the batch code only where a one-pass formulation requires it:
//
//  - StreamingCoalescer runs the batch FaultCoalescer with month tracking
//    off (the calendar origin is unknown until the window is inferred at
//    report time); the monthly series comes from StreamingTemporal instead,
//    which bins by ABSOLUTE calendar month and remaps to the origin when
//    asked.  Per-fault monthly vectors are the one artifact this drops —
//    they feed only the (unrendered) by-mode series.
//  - StreamingPredictor cannot sort the stream like the batch evaluator, so
//    it tracks, per DIMM, the earliest (timestamp, arrival) MOMENT at which
//    each rule would fire in a time-sorted replay: rules are monotone (once
//    true they stay true), so the batch flag time is exactly the minimum
//    firing moment and the batch reason is the priority-ordered rule among
//    those firing at that moment.
//  - StreamingAlerts is the live-operations piece with no batch counterpart:
//    a sliding CE window with fleet/per-node burst thresholds and DUE
//    alerts, rising-edge triggered so a sustained burst alerts once.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/coalesce.hpp"
#include "core/positional.hpp"
#include "core/predictor.hpp"
#include "core/temporal.hpp"
#include "util/binio.hpp"

namespace astra::stream {

class StreamingCoalescer {
 public:
  void Observe(const logs::MemoryErrorRecord& record) { coalescer_.Add(record); }
  // Finalizes a COPY of the live state: reporting is a checkpoint of the
  // stream, not its end.
  [[nodiscard]] core::CoalesceResult Report(
      const core::DataQuality* quality = nullptr) const;
  void SaveState(binio::Writer& writer) const { coalescer_.SaveState(writer); }
  [[nodiscard]] bool LoadState(binio::Reader& reader) {
    return coalescer_.LoadState(reader);
  }

 private:
  core::FaultCoalescer coalescer_;
};

class StreamingPositional {
 public:
  void Observe(const logs::MemoryErrorRecord& record) {
    core::TallyErrorRecord(counts_, record);
  }
  [[nodiscard]] core::PositionalAnalysis Report(
      const core::CoalesceResult& coalesced, int node_span,
      const core::DataQuality* quality = nullptr) const {
    return core::FinalizePositions(counts_, coalesced, node_span, quality);
  }
  void SaveState(binio::Writer& writer) const { counts_.SaveState(writer); }
  [[nodiscard]] bool LoadState(binio::Reader& reader) {
    return counts_.LoadState(reader);
  }

 private:
  core::PositionalCounts counts_;
};

class StreamingTemporal {
 public:
  void Observe(const logs::MemoryErrorRecord& record);
  // Remap the absolute-month bins onto [origin, origin + month_count) and
  // attach the per-mode series from the coalesced faults — the same shape
  // BuildMonthlySeries returns.
  [[nodiscard]] core::MonthlyErrorSeries Report(
      const core::CoalesceResult& coalesced, SimTime origin,
      int month_count) const;
  void SaveState(binio::Writer& writer) const;
  [[nodiscard]] bool LoadState(binio::Reader& reader);

 private:
  // CE count per absolute calendar month (year * 12 + month - 1): binnable
  // without knowing the series origin, exactly remappable once it is known
  // (CalendarMonthIndex is a difference of absolute month indices).
  std::map<std::int64_t, std::uint64_t> ce_by_month_;
};

class StreamingPredictor {
 public:
  explicit StreamingPredictor(const core::PredictorConfig& config = {})
      : config_(config) {}

  // `seq` is the record's delivery index — the tie-break the batch
  // evaluator's stable sort uses for equal timestamps.
  void Observe(const logs::MemoryErrorRecord& record, std::uint64_t seq);
  [[nodiscard]] core::PredictionEvaluation Report() const;
  void SaveState(binio::Writer& writer) const;
  [[nodiscard]] bool LoadState(binio::Reader& reader);

 private:
  // A position in the time-sorted replay of the stream.
  struct Moment {
    std::int64_t ts = 0;
    std::uint64_t seq = 0;
    friend constexpr auto operator<=>(const Moment&, const Moment&) = default;
  };
  struct DimmState {
    // Earliest moment each distinct (address, bit) was seen.
    std::map<std::uint64_t, std::map<std::int32_t, Moment>> bits_by_address;
    // Max-heap of the `ce_count_threshold` smallest CE moments; its maximum
    // is the moment the volume rule fires.  Empty when the rule is disabled.
    std::vector<Moment> ce_smallest;
    bool due_seen = false;
    std::int64_t first_due = 0;
  };

  core::PredictorConfig config_;
  std::map<std::int64_t, DimmState> dimms_;  // ordered: deterministic state
};

// Live burst/alert evaluation over the delivered CE stream.
struct AlertConfig {
  std::int64_t window_seconds = 3600;
  std::uint64_t fleet_ce_threshold = 0;  // 0 = rule disabled
  std::uint64_t node_ce_threshold = 0;   // 0 = rule disabled
  bool alert_on_due = true;
};

struct Alert {
  enum class Kind : std::uint8_t { kFleetCeRate = 0, kNodeCeRate, kDue };
  Kind kind = Kind::kFleetCeRate;
  SimTime at;
  NodeId node = -1;  // -1 for fleet-wide alerts
  std::uint64_t count = 0;
  std::int64_t window_seconds = 0;

  [[nodiscard]] std::string Message() const;
};

class StreamingAlerts {
 public:
  explicit StreamingAlerts(const AlertConfig& config = {}) : config_(config) {}

  void Observe(const logs::MemoryErrorRecord& record);
  // Pending alerts in firing order; clears the queue.
  [[nodiscard]] std::vector<Alert> Drain();
  void SaveState(binio::Writer& writer) const;
  [[nodiscard]] bool LoadState(binio::Reader& reader);

 private:
  void EvictBefore(std::int64_t horizon);

  AlertConfig config_;
  // CEs currently inside the sliding window, ordered by timestamp (records
  // can be delivered slightly out of order within the reorder window).
  std::multimap<std::int64_t, NodeId> window_;
  std::map<NodeId, std::uint64_t> node_counts_;
  std::int64_t max_ts_ = 0;
  bool any_ce_ = false;
  // Rising-edge arming: a threshold alerts once, then re-arms only after
  // the count falls back below it.
  bool fleet_fired_ = false;
  std::set<NodeId> node_fired_;
  std::vector<Alert> pending_;
};

}  // namespace astra::stream
