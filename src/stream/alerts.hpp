// Live burst/alert evaluation over the delivered CE stream — the one
// analysis with no batch counterpart, and the first engine written natively
// against the core/engine.hpp contract: a sliding CE window with fleet and
// per-node burst thresholds plus DUE alerts, rising-edge triggered so a
// sustained burst alerts once and re-arms only after it subsides.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "logs/records.hpp"
#include "util/binio.hpp"
#include "util/sim_time.hpp"

namespace astra::stream {

struct AlertConfig {
  std::int64_t window_seconds = 3600;
  std::uint64_t fleet_ce_threshold = 0;  // 0 = rule disabled
  std::uint64_t node_ce_threshold = 0;   // 0 = rule disabled
  bool alert_on_due = true;

  friend bool operator==(const AlertConfig&, const AlertConfig&) = default;
};

struct Alert {
  enum class Kind : std::uint8_t { kFleetCeRate = 0, kNodeCeRate, kDue };
  Kind kind = Kind::kFleetCeRate;
  SimTime at;
  NodeId node = -1;  // -1 for fleet-wide alerts
  std::uint64_t count = 0;
  std::int64_t window_seconds = 0;

  [[nodiscard]] std::string Message() const;
};

class StreamingAlerts {
 public:
  explicit StreamingAlerts(const AlertConfig& config = {}) : config_(config) {}

  // Alerting is edge-triggered over the arrival order, so the global
  // sequence number carries no extra information; it is accepted for the
  // engine contract and unused.
  void Observe(const logs::MemoryErrorRecord& record, std::uint64_t seq = 0);

  // Conservative union: window contents combine (then re-evict against the
  // merged horizon), fired latches OR, every pending alert survives, and any
  // threshold the MERGED window crosses that no operand had latched fires a
  // fresh alert (timestamped at the merged max) — so an alert a serial
  // replay of the combined stream would have raised is never dropped.
  // Edge-triggered alerting is inherently sequential, so a merged engine may
  // hold alerts a serial replay would not have raised (never the reverse).
  // The serve merge tree (src/serve/merge_tree.hpp) reduces per-node alert
  // engines this way to detect cross-node bursts no single stream sees.
  // False on a config mismatch or self-merge.
  [[nodiscard]] bool MergeFrom(const StreamingAlerts& other);

  // Pending alerts in firing order; clears the queue.
  [[nodiscard]] std::vector<Alert> Drain();

  void Snapshot(binio::Writer& writer) const;
  // False on a malformed payload; the engine is reset to a fresh start.
  [[nodiscard]] bool Restore(binio::Reader& reader);

 private:
  void EvictBefore(std::int64_t horizon);

  AlertConfig config_;
  // CEs currently inside the sliding window, ordered by timestamp (records
  // can be delivered slightly out of order within the reorder window).
  std::multimap<std::int64_t, NodeId> window_;
  std::map<NodeId, std::uint64_t> node_counts_;
  std::int64_t max_ts_ = 0;
  bool any_ce_ = false;
  // Rising-edge arming: a threshold alerts once, then re-arms only after
  // the count falls back below it.
  bool fleet_fired_ = false;
  std::set<NodeId> node_fired_;
  std::vector<Alert> pending_;
};

}  // namespace astra::stream
