// Durable checkpoints for the streaming monitor.
//
// On-disk layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic  "ASTRACKP"
//   8       4     format version (currently 2)
//   12      8     payload length in bytes
//   20      4     CRC-32 of the payload bytes
//   24      n     payload: StreamMonitor::Snapshot bytes (reader cursors
//                 followed by each engine's Snapshot in fixed order)
//
// Version history:
//   1 — per-analyzer stream-wrapper state (pre-engine); the coalescer
//       carried no monthly bins and the predictor state lived in a separate
//       het-record side buffer.
//   2 — unified engine snapshots (core/engine.hpp): absolute-calendar-month
//       bins in the coalesce and temporal engines, het records buffered
//       inside the uncorrectable engine.  Version-1 payloads are laid out
//       differently and are rejected with kBadVersion, never half-decoded.
//
// Writes are atomic (tmp file + rename), so a crash mid-save leaves the
// previous checkpoint intact.  Restores are paranoid: a file that is
// unreadable, short, mislabelled, version-skewed, checksum-mismatched or
// semantically malformed is REJECTED with a specific status — the monitor is
// left in its freshly-constructed state and the caller decides whether to
// start over or abort.  A checkpoint is a same-build resume artifact (see
// binio.hpp); version bumps are the compatibility mechanism.
#pragma once

#include <string>
#include <string_view>

#include "stream/monitor.hpp"

namespace astra::stream {

inline constexpr std::string_view kCheckpointMagic = "ASTRACKP";
inline constexpr std::uint32_t kCheckpointVersion = 2;

enum class CheckpointStatus {
  kOk,
  kIoError,     // cannot read/write the file
  kBadMagic,    // not a checkpoint file
  kBadVersion,  // produced by an incompatible format version
  kTruncated,   // shorter than the envelope or the declared payload
  kBadCrc,      // payload bytes do not match the stored checksum
  kBadPayload,  // envelope intact but the state inside failed to decode
};

[[nodiscard]] std::string_view CheckpointStatusMessage(CheckpointStatus status);

// Serialize `monitor` to `path` atomically.
[[nodiscard]] CheckpointStatus SaveMonitorCheckpoint(const StreamMonitor& monitor,
                                                     const std::string& path);

// Replace `monitor`'s state from `path`.  On any non-kOk status the monitor
// is reset to a fresh start, never half-restored.
[[nodiscard]] CheckpointStatus RestoreMonitorCheckpoint(StreamMonitor& monitor,
                                                        const std::string& path);

}  // namespace astra::stream
