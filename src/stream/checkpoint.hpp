// Durable checkpoints for the streaming monitor.
//
// On-disk layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic  "ASTRACKP"
//   8       4     format version (currently 2)
//   12      8     payload length in bytes
//   20      4     CRC-32 of the payload bytes
//   24      n     payload: StreamMonitor::Snapshot bytes (reader cursors
//                 followed by each engine's Snapshot in fixed order)
//
// Version history:
//   1 — per-analyzer stream-wrapper state (pre-engine); the coalescer
//       carried no monthly bins and the predictor state lived in a separate
//       het-record side buffer.
//   2 — unified engine snapshots (core/engine.hpp): absolute-calendar-month
//       bins in the coalesce and temporal engines, het records buffered
//       inside the uncorrectable engine.  Version-1 payloads are laid out
//       differently and are rejected with kBadVersion, never half-decoded.
//
// Writes are atomic AND durable: the envelope is written to a `.tmp`
// sidecar, the sidecar is fsync'd, renamed over the target, and the parent
// directory is fsync'd so the rename itself survives power loss.  A crash at
// any point leaves either the previous checkpoint intact or the new one
// fully in place — never a torn target.  A torn `.tmp` left by a crash is
// inert (restores never look at it) and is swept by
// RemoveStaleCheckpointTmp on startup.
//
// Restores are paranoid: a file that is unreadable, short, mislabelled,
// version-skewed, checksum-mismatched or semantically malformed is REJECTED
// with a specific status — the monitor is left in its freshly-constructed
// state and the caller decides whether to start over or abort.  A checkpoint
// is a same-build resume artifact (see binio.hpp); version bumps are the
// compatibility mechanism.
//
// Both Save and Restore take an optional RetryPolicy: environmental
// failures (kIoError on either side, kTruncated/kBadCrc on restore — the
// signatures of reading a file mid-replacement) are retried under bounded
// backoff before the status is surfaced.  Structural rejections (bad magic,
// bad version, bad payload) are never retried — re-reading cannot fix them.
// The two-argument forms are fail-fast (single attempt), preserving the
// historical semantics for tests that probe damaged files.
#pragma once

#include <string>
#include <string_view>

#include "stream/monitor.hpp"
#include "util/retry.hpp"
#include "util/thread_annotations.hpp"

namespace astra::stream {

inline constexpr std::string_view kCheckpointMagic = "ASTRACKP";
inline constexpr std::uint32_t kCheckpointVersion = 2;

enum class CheckpointStatus {
  kOk,
  kIoError,     // cannot read/write the file
  kBadMagic,    // not a checkpoint file
  kBadVersion,  // produced by an incompatible format version
  kTruncated,   // shorter than the envelope or the declared payload
  kBadCrc,      // payload bytes do not match the stored checksum
  kBadPayload,  // envelope intact but the state inside failed to decode
};

[[nodiscard]] std::string_view CheckpointStatusMessage(CheckpointStatus status);

// Serialize `monitor` to `path` atomically and durably (tmp + fsync +
// rename + dir fsync), retrying each I/O step under `retry`.
[[nodiscard]] CheckpointStatus SaveMonitorCheckpoint(const StreamMonitor& monitor,
                                                     const std::string& path,
                                                     const RetryPolicy& retry,
                                                     const SleepFn& sleep = {})
    ASTRA_BLOCKING;

// Fail-fast save: single attempt per step, same durability protocol.
[[nodiscard]] CheckpointStatus SaveMonitorCheckpoint(const StreamMonitor& monitor,
                                                     const std::string& path)
    ASTRA_BLOCKING;

// Replace `monitor`'s state from `path`, retrying environmental failures
// (kIoError/kTruncated/kBadCrc) under `retry`.  On any non-kOk status the
// monitor is reset to a fresh start, never half-restored.
[[nodiscard]] CheckpointStatus RestoreMonitorCheckpoint(StreamMonitor& monitor,
                                                        const std::string& path,
                                                        const RetryPolicy& retry,
                                                        const SleepFn& sleep = {})
    ASTRA_BLOCKING;

// Fail-fast restore: single attempt.
[[nodiscard]] CheckpointStatus RestoreMonitorCheckpoint(StreamMonitor& monitor,
                                                        const std::string& path)
    ASTRA_BLOCKING;

// Sweep the `.tmp` sidecar a crashed save may have left next to `path`.
// Returns false only when a sidecar exists and cannot be removed; a missing
// sidecar is success.  Call once on startup before the first save.
[[nodiscard]] bool RemoveStaleCheckpointTmp(const std::string& path);

}  // namespace astra::stream
