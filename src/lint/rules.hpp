// Rule implementations for astra-lint.
//
// All rules run over the lexed token stream of one file (comments and
// string literals are separate token kinds, so a banned name inside either
// can never fire).  Path scoping uses the repo-relative path; the corpus
// overrides it via `astra-lint-test: path=...` so golden violation files
// can exercise path-scoped rules from tests/lint/corpus/.
//
// Cross-file inputs (the paired header's container/annotation facts, the
// tree-wide ASTRA_BLOCKING / ASTRA_EXCLUDES maps) arrive pre-digested in
// FileContext rather than as token streams: the v2 engine harvests them
// once per file and can replay them from the incremental cache without
// re-lexing anything.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/diagnostics.hpp"
#include "lint/lexer.hpp"

namespace astra::lint {

struct FileContext {
  // Repo-relative path with '/' separators, rooted at src/ when the file
  // lives under it (e.g. "core/report.cpp", "stream/monitor.hpp").
  std::string path;
  const LexedFile* lexed = nullptr;
  // True when the include graph reaches this file from core/report.* —
  // report-rendering scope for the determinism rules.
  bool report_linked = false;
  // For foo.cpp, facts from the lexed foo.hpp next to it: unordered
  // container members are declared in the header but iterated in the .cpp,
  // and ASTRA_GUARDED_BY annotations live on the header's field
  // declarations.
  std::vector<std::string> paired_unordered_names;
  std::map<std::string, std::string> paired_guarded;  // field -> mutex key
  // Tree-wide annotation maps (union over every scanned file); null means
  // "none known".  Owned by the engine.
  const std::set<std::string>* global_blocking = nullptr;
  const std::map<std::string, std::set<std::string>>* global_excludes = nullptr;
};

// Run every rule over one file.  Suppressions are NOT applied here; the
// engine filters afterwards so it can also flag malformed allow() comments.
[[nodiscard]] std::vector<Diagnostic> RunRules(const FileContext& context);

// Names of variables/members declared with an unordered container type in
// `code` — exported so the engine can store a header's names as facts for
// its paired .cpp instead of keeping header tokens alive.
[[nodiscard]] std::vector<std::string> UnorderedContainerNames(
    const std::vector<const Token*>& code);

}  // namespace astra::lint
