// Rule implementations for astra-lint.
//
// All rules run over the lexed token stream of one file (comments and
// string literals are separate token kinds, so a banned name inside either
// can never fire).  Path scoping uses the repo-relative path; the corpus
// overrides it via `astra-lint-test: path=...` so golden violation files
// can exercise path-scoped rules from tests/lint/corpus/.
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostics.hpp"
#include "lint/lexer.hpp"

namespace astra::lint {

struct FileContext {
  // Repo-relative path with '/' separators, rooted at src/ when the file
  // lives under it (e.g. "core/report.cpp", "stream/monitor.hpp").
  std::string path;
  const LexedFile* lexed = nullptr;
  // For foo.cpp, the lexed foo.hpp next to it (when present): member
  // containers are declared in the header but iterated in the .cpp.
  const LexedFile* paired_header = nullptr;
  // True when the include graph reaches this file from core/report.* —
  // report-rendering scope for the determinism rules.
  bool report_linked = false;
};

// Run every rule over one file.  Suppressions are NOT applied here; the
// engine filters afterwards so it can also flag malformed allow() comments.
[[nodiscard]] std::vector<Diagnostic> RunRules(const FileContext& context);

}  // namespace astra::lint
