// Comment- and string-aware C++ tokenizer for astra-lint.
//
// This is deliberately NOT a compiler front end: no preprocessing beyond
// line-splicing, no macro expansion, no type checking.  It produces exactly
// the token stream the repo's rule families need to be reliable on this
// codebase: identifiers, numbers, string/char literals (including raw
// strings with custom delimiters and encoding prefixes), comments (kept as
// tokens so suppression directives can be parsed), multi-character
// punctuators that matter for matching (`::`, `->`, `...`), and the
// preprocessor directives needed for include-graph and header-hygiene rules.
//
// Backslash-newline splices are applied first (with a byte -> original-line
// map), so a banned identifier split across a continuation still tokenizes
// as one identifier with the right line number, and a continuation inside a
// string never leaks a quote into code space.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace astra::lint {

enum class TokKind {
  kIdentifier,  // keywords included: `for`, `catch`, `using` are identifiers
  kNumber,
  kString,      // quoted text, raw or not; text excludes the delimiters
  kCharLiteral,
  kPunct,       // `::`, `->`, `...` as units; everything else single-char
  kComment,     // text excludes `//` / `/* */` markers
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;      // 1-based line in the ORIGINAL (unspliced) source
  int end_line = 0;  // last original line the token touches (block comments)
};

// One `#...` line, recorded separately from the token stream.
struct Directive {
  std::string name;      // "include", "pragma", "define", ...
  std::string argument;  // for include: the path; for pragma: "once", ...
  bool quoted_include = false;  // #include "..." (vs <...> or macro)
  int line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;         // comments included, in source order
  std::vector<Directive> directives;
  bool had_unterminated = false;  // unterminated string/comment/raw string
};

// Tokenize `source`.  Never fails: malformed input degrades to best-effort
// tokens with `had_unterminated` set, so the linter can still scan the rest
// of the file (and a truncated file never crashes the lint pass).
[[nodiscard]] LexedFile Lex(std::string_view source);

}  // namespace astra::lint
