#include "lint/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <queue>
#include <set>
#include <sstream>

#include "lint/lexer.hpp"
#include "lint/rules.hpp"
#include "lint/suppressions.hpp"

namespace astra::lint {
namespace {

namespace fs = std::filesystem;

bool EndsWith(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buffer).str();
}

struct ScannedFile {
  std::string disk_path;   // as found on disk (for messages and io errors)
  std::string scope_path;  // normalized, possibly test-overridden
  LexedFile lexed;
};

// Reachability over quoted includes from the report renderer: these files
// feed bytes into rendered reports, so the determinism rules extend to them
// even outside core/ and stream/.
std::set<std::string> ReportLinkedFiles(const std::vector<ScannedFile>& files) {
  std::map<std::string, std::vector<std::string>> includes_of;
  for (const ScannedFile& file : files) {
    auto& edges = includes_of[file.scope_path];
    for (const Directive& directive : file.lexed.directives) {
      if (directive.name == "include" && directive.quoted_include) {
        edges.push_back(directive.argument);
      }
    }
  }
  std::set<std::string> linked;
  std::queue<std::string> frontier;
  for (const char* root : {"core/report.cpp", "core/report.hpp"}) {
    if (includes_of.count(root) > 0 && linked.insert(root).second) {
      frontier.push(root);
    }
  }
  while (!frontier.empty()) {
    const std::string current = std::move(frontier.front());
    frontier.pop();
    const auto it = includes_of.find(current);
    if (it == includes_of.end()) continue;
    for (const std::string& included : it->second) {
      if (includes_of.count(included) > 0 && linked.insert(included).second) {
        frontier.push(included);
      }
    }
  }
  return linked;
}

void LintScannedFiles(std::vector<ScannedFile>& files, LintResult& result) {
  const std::set<std::string> report_linked = ReportLinkedFiles(files);

  std::map<std::string, const LexedFile*> by_scope_path;
  for (const ScannedFile& file : files) {
    by_scope_path.emplace(file.scope_path, &file.lexed);
  }

  for (const ScannedFile& file : files) {
    FileContext context;
    context.path = file.scope_path;
    context.lexed = &file.lexed;
    context.report_linked = report_linked.count(file.scope_path) > 0;
    if (EndsWith(file.scope_path, ".cpp")) {
      const std::string header =
          file.scope_path.substr(0, file.scope_path.size() - 4) + ".hpp";
      const auto it = by_scope_path.find(header);
      if (it != by_scope_path.end()) context.paired_header = it->second;
    }

    std::vector<Diagnostic> diagnostics = RunRules(context);
    const SuppressionSet suppressions = ParseSuppressions(file.lexed, context.path);
    for (Diagnostic& diagnostic : diagnostics) {
      if (!suppressions.Allows(diagnostic.rule, diagnostic.line)) {
        result.diagnostics.push_back(std::move(diagnostic));
      }
    }
    for (const Diagnostic& malformed : suppressions.malformed) {
      result.diagnostics.push_back(malformed);
    }
    ++result.files_scanned;
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return RuleId(a.rule) < RuleId(b.rule);
            });
}

void JsonEscape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::string NormalizeRepoPath(std::string_view path) {
  std::string normalized(path);
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  while (normalized.substr(0, 2) == "./") normalized.erase(0, 2);
  // Last `src/` component wins: `/root/repo/src/core/x.cpp` -> `core/x.cpp`.
  const std::string needle = "src/";
  std::size_t best = std::string::npos;
  for (std::size_t at = normalized.find(needle); at != std::string::npos;
       at = normalized.find(needle, at + 1)) {
    if (at == 0 || normalized[at - 1] == '/') best = at;
  }
  if (best != std::string::npos) normalized.erase(0, best + needle.size());
  return normalized;
}

LintResult LintTree(const std::vector<std::string>& roots,
                    const LintOptions& options) {
  LintResult result;
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
          paths.push_back(it->path().string());
        }
      }
      if (ec) result.io_errors.push_back(root + ": " + ec.message());
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
    } else {
      result.io_errors.push_back(root + ": not a file or directory");
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<ScannedFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    std::optional<std::string> source = ReadFile(path);
    if (!source) {
      result.io_errors.push_back(path + ": unreadable");
      continue;
    }
    ScannedFile file;
    file.disk_path = path;
    file.scope_path = NormalizeRepoPath(path);
    file.lexed = Lex(*source);
    if (options.honor_test_overrides) {
      if (std::optional<TestOverride> override = ParseTestOverride(file.lexed);
          override && !override->path.empty()) {
        file.scope_path = NormalizeRepoPath(override->path);
      }
    }
    files.push_back(std::move(file));
  }

  LintScannedFiles(files, result);
  return result;
}

LintResult LintSource(const std::string& path, std::string_view source,
                      const LintOptions& options) {
  LintResult result;
  ScannedFile file;
  file.disk_path = path;
  file.scope_path = NormalizeRepoPath(path);
  file.lexed = Lex(source);
  if (options.honor_test_overrides) {
    if (std::optional<TestOverride> override = ParseTestOverride(file.lexed);
        override && !override->path.empty()) {
      file.scope_path = NormalizeRepoPath(override->path);
    }
  }
  std::vector<ScannedFile> files;
  files.push_back(std::move(file));
  LintScannedFiles(files, result);
  return result;
}

void RenderText(std::ostream& out, const LintResult& result) {
  for (const Diagnostic& diagnostic : result.diagnostics) {
    out << diagnostic.file << ':' << diagnostic.line << ": error: ["
        << RuleId(diagnostic.rule) << "] " << diagnostic.message << '\n';
  }
  for (const std::string& error : result.io_errors) {
    out << "astra-lint: io error: " << error << '\n';
  }
  out << "astra-lint: " << result.diagnostics.size() << " diagnostic(s), "
      << result.files_scanned << " file(s) scanned\n";
}

void RenderJson(std::ostream& out, const LintResult& result) {
  out << "{\n  \"files_scanned\": " << result.files_scanned
      << ",\n  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& diagnostic : result.diagnostics) {
    out << (first ? "\n" : ",\n") << "    {\"file\": \"";
    JsonEscape(out, diagnostic.file);
    out << "\", \"line\": " << diagnostic.line << ", \"rule\": \""
        << RuleId(diagnostic.rule) << "\", \"message\": \"";
    JsonEscape(out, diagnostic.message);
    out << "\"}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << ",\n  \"io_errors\": [";
  first = true;
  for (const std::string& error : result.io_errors) {
    out << (first ? "\n" : ",\n") << "    \"";
    JsonEscape(out, error);
    out << '"';
    first = false;
  }
  out << (first ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace astra::lint
