#include "lint/engine.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <queue>
#include <set>
#include <sstream>

#include "lint/cache.hpp"
#include "lint/layers.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"
#include "lint/suppressions.hpp"
#include "util/parallel.hpp"

namespace astra::lint {
namespace {

namespace fs = std::filesystem;

bool EndsWith(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buffer).str();
}

// The dedup/cache key: one canonical spelling per on-disk file, so the same
// file reached through two roots (or `./`-prefixed) is lexed once.
std::string CanonicalPath(const std::string& path) {
  std::error_code ec;
  fs::path canonical = fs::weakly_canonical(path, ec);
  if (!ec && !canonical.empty()) return canonical.string();
  canonical = fs::absolute(path, ec);
  if (!ec) return canonical.lexically_normal().string();
  return path;
}

struct FileState {
  std::string disk_path;   // as found on disk (for messages and io errors)
  std::string canonical;   // dedup / cache key
  std::string scope_path;  // normalized, possibly test-overridden
  std::string source;      // raw bytes, kept until phase B may re-lex
  std::optional<LexedFile> lexed;
  FileFacts facts;
  std::uint64_t content_hash = 0;
  std::uint64_t env_hash = 0;
  const CacheEntry* cached = nullptr;  // content-hash match in the database
  std::vector<Diagnostic> diagnostics;  // per-file rules, post-suppression
};

// Reachability over quoted includes from the report renderer: these files
// feed bytes into rendered reports, so the determinism rules extend to them
// even outside core/ and stream/.
std::set<std::string> ReportLinkedFiles(const std::vector<FileState>& files) {
  std::map<std::string, const std::vector<std::pair<int, std::string>>*>
      includes_of;
  for (const FileState& file : files) {
    includes_of.emplace(file.scope_path, &file.facts.quoted_includes);
  }
  std::set<std::string> linked;
  std::queue<std::string> frontier;
  for (const char* root : {"core/report.cpp", "core/report.hpp"}) {
    if (includes_of.count(root) > 0 && linked.insert(root).second) {
      frontier.push(root);
    }
  }
  while (!frontier.empty()) {
    const std::string current = std::move(frontier.front());
    frontier.pop();
    const auto it = includes_of.find(current);
    if (it == includes_of.end()) continue;
    for (const auto& [line, included] : *it->second) {
      if (includes_of.count(included) > 0 && linked.insert(included).second) {
        frontier.push(included);
      }
    }
  }
  return linked;
}

bool FactsAllow(const FileFacts& facts, int line, std::string_view rule_id) {
  const auto it = facts.allows.find(line);
  return it != facts.allows.end() &&
         it->second.count(std::string(rule_id)) > 0;
}

void AddGlobal(std::vector<Diagnostic>& out, const std::string& file, int line,
               Rule rule, std::string message) {
  Diagnostic diagnostic;
  diagnostic.file = file;
  diagnostic.line = line;
  diagnostic.rule = rule;
  diagnostic.message = std::move(message);
  out.push_back(std::move(diagnostic));
}

// --- arch-upward-include (global, facts-only) ---------------------------------

void CheckLayering(const std::vector<FileState>& files,
                   const LayerMatrix& matrix,
                   std::vector<Diagnostic>& out) {
  for (const FileState& file : files) {
    const std::string from = LayerOf(file.scope_path);
    if (from.empty() || !matrix.Known(from)) continue;
    for (const auto& [line, included] : file.facts.quoted_includes) {
      const std::string to = LayerOf(included);
      if (to.empty() || !matrix.Known(to)) continue;
      if (matrix.Allows(from, to)) continue;
      if (FactsAllow(file.facts, line, RuleId(Rule::kArchUpwardInclude))) {
        continue;
      }
      AddGlobal(out, file.scope_path, line, Rule::kArchUpwardInclude,
                "#include \"" + included + "\" makes layer '" + from +
                    "' depend on layer '" + to +
                    "' — the layer matrix (src/lint/layers.conf) only allows "
                    "downward edges; move the shared code down or fix the "
                    "dependency direction");
    }
  }
}

// --- lock-order (global, facts-only) ------------------------------------------

struct EdgeSite {
  std::size_t file_index = 0;
  std::string file;  // scope path (ordering + diagnostics)
  int line = 0;
};

void CheckLockOrder(const std::vector<FileState>& files,
                    std::vector<Diagnostic>& out) {
  // Adjacency over qualified mutex keys; keep the earliest (file, line)
  // site per directed edge for deterministic diagnostics.
  std::map<std::string, std::map<std::string, EdgeSite>> graph;
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const LockEdge& edge : files[i].facts.lock_edges) {
      EdgeSite site{i, files[i].scope_path, edge.line};
      auto [it, inserted] = graph[edge.held].emplace(edge.acquired, site);
      graph.emplace(edge.acquired,
                    std::map<std::string, EdgeSite>());  // ensure node exists
      if (!inserted && (site.file < it->second.file ||
                        (site.file == it->second.file &&
                         site.line < it->second.line))) {
        it->second = site;
      }
    }
  }
  if (graph.empty()) return;

  // Tarjan SCC (iterative state kept in maps; the graph is tiny).
  std::map<std::string, int> index, lowlink;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> sccs;
  int next_index = 0;
  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& node) {
        index[node] = lowlink[node] = next_index++;
        stack.push_back(node);
        on_stack.insert(node);
        const auto adj = graph.find(node);
        if (adj != graph.end()) {
          for (const auto& [next, site] : adj->second) {
            if (index.count(next) == 0) {
              strongconnect(next);
              lowlink[node] = std::min(lowlink[node], lowlink[next]);
            } else if (on_stack.count(next) > 0) {
              lowlink[node] = std::min(lowlink[node], index[next]);
            }
          }
        }
        if (lowlink[node] == index[node]) {
          std::vector<std::string> scc;
          while (true) {
            const std::string top = stack.back();
            stack.pop_back();
            on_stack.erase(top);
            scc.push_back(top);
            if (top == node) break;
          }
          if (scc.size() > 1) sccs.push_back(std::move(scc));
        }
      };
  for (const auto& [node, adj] : graph) {
    if (index.count(node) == 0) strongconnect(node);
  }

  for (std::vector<std::string>& scc : sccs) {
    std::sort(scc.begin(), scc.end());
    const std::set<std::string> members(scc.begin(), scc.end());
    // Representative site: the lexicographically earliest (file, line) edge
    // inside the cycle.  An allow() on ANY edge of the cycle suppresses it —
    // the annotation lives at the site the author claims is safe, which is
    // rarely the representative one.
    const EdgeSite* best = nullptr;
    bool allowed = false;
    for (const std::string& held : scc) {
      const auto adj = graph.find(held);
      if (adj == graph.end()) continue;
      for (const auto& [acquired, site] : adj->second) {
        if (members.count(acquired) == 0) continue;
        allowed = allowed || FactsAllow(files[site.file_index].facts,
                                        site.line, RuleId(Rule::kLockOrder));
        if (best == nullptr || site.file < best->file ||
            (site.file == best->file && site.line < best->line)) {
          best = &site;
        }
      }
    }
    if (best == nullptr || allowed) continue;
    std::string nodes;
    for (const std::string& node : scc) {
      if (!nodes.empty()) nodes += ", ";
      nodes += "'" + node + "'";
    }
    AddGlobal(out, best->file, best->line, Rule::kLockOrder,
              "lock acquisition cycle among " + nodes +
                  " — this site nests them one way and another call path "
                  "nests them the other way; pick one global order (or "
                  "collapse to a single std::scoped_lock)");
  }
}

// --- the three-phase pipeline -------------------------------------------------

void AnalyzeFiles(std::vector<FileState>& files, const LintOptions& options,
                  LintCache* cache, LintResult& result) {
  const unsigned threads = astra::ResolveThreadCount(options.threads);
  std::atomic<std::size_t> lexed_count{0};
  std::atomic<std::size_t> lex_cache_hits{0};
  std::atomic<std::size_t> incremental_hits{0};

  // The honor flag changes scope paths (and thus everything downstream), so
  // it seeds the content hash: flipping it invalidates the whole database
  // rather than replaying entries parsed under the other mode.
  const std::uint64_t seed =
      options.honor_test_overrides ? kFnvOffset : kFnvOffset ^ 0x9E3779B97F4A7C15ULL;

  // Phase A: hash, then facts — from the database for unchanged files, from
  // a (single) lex for everything else.
  astra::ParallelShards(
      files.size(), threads,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          FileState& file = files[i];
          file.content_hash = HashBytes(file.source, seed);
          if (cache != nullptr) {
            const auto it = cache->entries.find(file.canonical);
            if (it != cache->entries.end() &&
                it->second.content_hash == file.content_hash) {
              file.cached = &it->second;
              file.facts = it->second.facts;
              file.scope_path = it->second.scope_path;
              continue;
            }
          }
          file.lexed = Lex(file.source);
          lexed_count.fetch_add(1, std::memory_order_relaxed);
          if (options.honor_test_overrides) {
            if (std::optional<TestOverride> override =
                    ParseTestOverride(*file.lexed);
                override && !override->path.empty()) {
              file.scope_path = NormalizeRepoPath(override->path);
            }
          }
          file.facts = HarvestFileFacts(*file.lexed);
        }
      });

  // Serial middle: cross-file structures and the facts-only global rules.
  std::map<std::string, std::size_t> scope_index;
  for (std::size_t i = 0; i < files.size(); ++i) {
    scope_index.emplace(files[i].scope_path, i);
  }
  const std::set<std::string> report_linked = ReportLinkedFiles(files);

  std::set<std::string> global_blocking;
  std::map<std::string, std::set<std::string>> global_excludes;
  for (const FileState& file : files) {
    global_blocking.insert(file.facts.annotations.blocking.begin(),
                           file.facts.annotations.blocking.end());
    for (const auto& [fn, keys] : file.facts.annotations.excludes) {
      global_excludes[fn].insert(keys.begin(), keys.end());
    }
  }

  LayerMatrix matrix = DefaultLayerMatrix();
  if (!options.layers_path.empty()) {
    const std::optional<std::string> conf = ReadFile(options.layers_path);
    std::string error;
    std::optional<LayerMatrix> parsed;
    if (conf) parsed = ParseLayerMatrix(*conf, &error);
    if (parsed) {
      matrix = std::move(*parsed);
    } else {
      result.io_errors.push_back(options.layers_path + ": " +
                                 (conf ? "bad layer matrix: " + error
                                       : "unreadable") +
                                 " (using the compiled-in matrix)");
    }
  }
  CheckLayering(files, matrix, result.diagnostics);
  CheckLockOrder(files, result.diagnostics);

  // Environment prefix shared by every file's phase-B hash.
  std::string env_prefix = "v";
  env_prefix += std::to_string(kRuleSetVersion);
  env_prefix += options.honor_test_overrides ? "|o1" : "|o0";
  env_prefix += "|b:";
  for (const std::string& fn : global_blocking) env_prefix += fn + ",";
  env_prefix += "|x:";
  for (const auto& [fn, keys] : global_excludes) {
    env_prefix += fn + "(";
    for (const std::string& key : keys) env_prefix += key + ",";
    env_prefix += ")";
  }

  // Phase B: per-file rules, replayed from the database when both hashes
  // match, computed (with at most one lazy lex) otherwise.
  astra::ParallelShards(
      files.size(), threads,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          FileState& file = files[i];
          const bool linked = report_linked.count(file.scope_path) > 0;

          const FileState* paired = nullptr;
          if (EndsWith(file.scope_path, ".cpp")) {
            const std::string header =
                file.scope_path.substr(0, file.scope_path.size() - 4) + ".hpp";
            const auto it = scope_index.find(header);
            if (it != scope_index.end() && it->second != i) {
              paired = &files[it->second];
            }
          }

          std::string env = env_prefix;
          env += linked ? "|l1" : "|l0";
          if (paired != nullptr) {
            env += "|p:";
            env += SerializeFacts(paired->facts);
          }
          file.env_hash = HashBytes(env);

          if (file.cached != nullptr && file.cached->env_hash == file.env_hash) {
            file.diagnostics = file.cached->diagnostics;
            incremental_hits.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (!file.lexed) {
            file.lexed = Lex(file.source);
            lexed_count.fetch_add(1, std::memory_order_relaxed);
          }
          FileContext context;
          context.path = file.scope_path;
          context.lexed = &*file.lexed;
          context.report_linked = linked;
          if (paired != nullptr) {
            context.paired_unordered_names = paired->facts.unordered_names;
            context.paired_guarded = paired->facts.annotations.guarded;
            lex_cache_hits.fetch_add(1, std::memory_order_relaxed);
          }
          context.global_blocking = &global_blocking;
          context.global_excludes = &global_excludes;

          std::vector<Diagnostic> diagnostics = RunRules(context);
          const SuppressionSet suppressions =
              ParseSuppressions(*file.lexed, file.scope_path);
          for (Diagnostic& diagnostic : diagnostics) {
            if (!suppressions.Allows(diagnostic.rule, diagnostic.line)) {
              file.diagnostics.push_back(std::move(diagnostic));
            }
          }
          for (const Diagnostic& malformed : suppressions.malformed) {
            file.diagnostics.push_back(malformed);
          }
        }
      });

  // Deterministic merge: file-index order, then the canonical sort.
  for (FileState& file : files) {
    result.diagnostics.insert(result.diagnostics.end(),
                              std::make_move_iterator(file.diagnostics.begin()),
                              std::make_move_iterator(file.diagnostics.end()));
    file.diagnostics.clear();
    ++result.files_scanned;
  }
  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return RuleId(a.rule) < RuleId(b.rule);
            });

  result.stats.files = files.size();
  result.stats.lexed = lexed_count.load();
  result.stats.lex_cache_hits = lex_cache_hits.load();
  result.stats.incremental_hits = incremental_hits.load();
}

void JsonEscape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::string NormalizeRepoPath(std::string_view path) {
  std::string normalized(path);
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  while (normalized.substr(0, 2) == "./") normalized.erase(0, 2);
  // Last `src/` component wins: `/root/repo/src/core/x.cpp` -> `core/x.cpp`.
  const std::string needle = "src/";
  std::size_t best = std::string::npos;
  for (std::size_t at = normalized.find(needle); at != std::string::npos;
       at = normalized.find(needle, at + 1)) {
    if (at == 0 || normalized[at - 1] == '/') best = at;
  }
  if (best != std::string::npos) normalized.erase(0, best + needle.size());
  return normalized;
}

LintResult LintTree(const std::vector<std::string>& roots,
                    const LintOptions& options) {
  LintResult result;
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
          paths.push_back(it->path().string());
        }
      }
      if (ec) result.io_errors.push_back(root + ": " + ec.message());
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
    } else {
      result.io_errors.push_back(root + ": not a file or directory");
    }
  }

  std::vector<FileState> files;
  files.reserve(paths.size());
  std::set<std::string> seen;
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  for (const std::string& path : paths) {
    std::string canonical = CanonicalPath(path);
    if (!seen.insert(canonical).second) {
      // Same on-disk file via a second spelling: one lex covers both.
      ++result.stats.lex_cache_hits;
      continue;
    }
    std::optional<std::string> source = ReadFile(path);
    if (!source) {
      result.io_errors.push_back(path + ": unreadable");
      continue;
    }
    FileState file;
    file.disk_path = path;
    file.canonical = std::move(canonical);
    file.scope_path = NormalizeRepoPath(path);
    file.source = std::move(*source);
    files.push_back(std::move(file));
  }

  LintCache cache;
  const bool use_cache = !options.cache_path.empty();
  if (use_cache) {
    LoadLintCache(options.cache_path, cache);  // absent/corrupt => empty
  }
  const std::size_t dedup_hits = result.stats.lex_cache_hits;
  AnalyzeFiles(files, options, use_cache ? &cache : nullptr, result);
  result.stats.lex_cache_hits += dedup_hits;

  if (use_cache) {
    LintCache fresh;
    for (FileState& file : files) {
      CacheEntry entry;
      entry.scope_path = file.scope_path;
      entry.content_hash = file.content_hash;
      entry.env_hash = file.env_hash;
      entry.facts = std::move(file.facts);
      // Per-file diagnostics were moved into the result; recover this
      // file's share from it (global-rule diagnostics are recomputed every
      // run and must NOT be stored).
      for (const Diagnostic& diagnostic : result.diagnostics) {
        if (diagnostic.file == file.scope_path &&
            diagnostic.rule != Rule::kArchUpwardInclude &&
            diagnostic.rule != Rule::kLockOrder) {
          entry.diagnostics.push_back(diagnostic);
        }
      }
      fresh.entries[file.canonical] = std::move(entry);
    }
    if (!SaveLintCache(options.cache_path, fresh)) {
      result.io_errors.push_back(options.cache_path + ": cache not written");
    }
  }
  return result;
}

LintResult LintSource(const std::string& path, std::string_view source,
                      const LintOptions& options) {
  LintResult result;
  FileState file;
  file.disk_path = path;
  file.canonical = path;
  file.scope_path = NormalizeRepoPath(path);
  file.source = std::string(source);
  std::vector<FileState> files;
  files.push_back(std::move(file));
  AnalyzeFiles(files, options, nullptr, result);
  return result;
}

void RenderText(std::ostream& out, const LintResult& result) {
  for (const Diagnostic& diagnostic : result.diagnostics) {
    out << diagnostic.file << ':' << diagnostic.line << ": error: ["
        << RuleId(diagnostic.rule) << "] " << diagnostic.message << '\n';
  }
  for (const std::string& error : result.io_errors) {
    out << "astra-lint: io error: " << error << '\n';
  }
  out << "astra-lint: " << result.diagnostics.size() << " diagnostic(s), "
      << result.files_scanned << " file(s) scanned\n";
}

void RenderJson(std::ostream& out, const LintResult& result) {
  out << "{\n  \"files_scanned\": " << result.files_scanned
      << ",\n  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& diagnostic : result.diagnostics) {
    out << (first ? "\n" : ",\n") << "    {\"file\": \"";
    JsonEscape(out, diagnostic.file);
    out << "\", \"line\": " << diagnostic.line << ", \"rule\": \""
        << RuleId(diagnostic.rule) << "\", \"message\": \"";
    JsonEscape(out, diagnostic.message);
    out << "\"}";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << ",\n  \"io_errors\": [";
  first = true;
  for (const std::string& error : result.io_errors) {
    out << (first ? "\n" : ",\n") << "    \"";
    JsonEscape(out, error);
    out << '"';
    first = false;
  }
  out << (first ? "]" : "\n  ]") << "\n}\n";
}

void RenderSarif(std::ostream& out, const LintResult& result) {
  out << "{\n"
         "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"astra-lint\",\n"
         "          \"informationUri\": \"DESIGN.md\",\n"
         "          \"rules\": [";
  bool first = true;
  for (const RuleInfo& info : kRules) {
    out << (first ? "\n" : ",\n") << "            {\"id\": \"" << info.id
        << "\", \"shortDescription\": {\"text\": \"";
    JsonEscape(out, info.summary);
    out << "\"}}";
    first = false;
  }
  out << "\n          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [";
  first = true;
  for (const Diagnostic& diagnostic : result.diagnostics) {
    out << (first ? "\n" : ",\n")
        << "        {\"ruleId\": \"" << RuleId(diagnostic.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \"";
    JsonEscape(out, diagnostic.message);
    out << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"src/";
    JsonEscape(out, diagnostic.file);
    out << "\"}, \"region\": {\"startLine\": "
        << (diagnostic.line > 0 ? diagnostic.line : 1) << "}}}]}";
    first = false;
  }
  out << (first ? "]" : "\n      ]") << "\n    }\n  ]\n}\n";
}

void RenderStats(std::ostream& out, const LintResult& result) {
  out << "astra-lint: stats: files=" << result.stats.files
      << " lexed=" << result.stats.lexed
      << " lex_cache_hits=" << result.stats.lex_cache_hits
      << " incremental_hits=" << result.stats.incremental_hits << '\n';
}

}  // namespace astra::lint
