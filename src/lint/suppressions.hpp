// Suppression comments: `allow(<rule>): <justification>` written directly
// after the marker (the marker is the tool name followed by a colon; see
// DESIGN.md "Static analysis" for the exact spelling — writing it literally
// here would make this comment a suppression attempt).
//
// A suppression covers the line its comment ends on and the following line,
// so both trailing-comment and comment-above placements work.  The
// justification is mandatory: an allow() with no reason (or naming an
// unknown rule) is itself a `bad-suppression` diagnostic — and that
// diagnostic cannot be suppressed.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "lint/diagnostics.hpp"
#include "lint/lexer.hpp"

namespace astra::lint {

struct SuppressionSet {
  // line -> rules allowed on that line.
  std::map<int, std::set<Rule>> allowed_by_line;
  std::vector<Diagnostic> malformed;  // bad-suppression diagnostics

  [[nodiscard]] bool Allows(Rule rule, int line) const {
    const auto it = allowed_by_line.find(line);
    return it != allowed_by_line.end() && it->second.count(rule) > 0;
  }
};

// Scan the comment tokens of `lexed` for suppression directives.
[[nodiscard]] SuppressionSet ParseSuppressions(const LexedFile& lexed,
                                               const std::string& path);

// First-comment test override — `path=` and `expect=` fields after the
// test marker — used by the golden corpus so a file under
// tests/lint/corpus/ can exercise path-scoped rules as if it lived at the
// overridden path.
struct TestOverride {
  std::string path;
  std::string expect;  // rule id the corpus file expects to fire
};
[[nodiscard]] std::optional<TestOverride> ParseTestOverride(const LexedFile& lexed);

}  // namespace astra::lint
