// RAII lock-region tracking and lock-discipline annotation harvesting for
// astra-lint's v2 concurrency rules.
//
// A "region" is the lexical extent over which a mutex is held: from a
// `std::lock_guard` / `std::scoped_lock` / `std::unique_lock` declaration to
// the close of its enclosing brace scope (or an early `guard.unlock()`).
// The scanner is token-level like the rest of the linter — no control-flow
// graph — with three deliberate refinements that make it reliable on this
// codebase:
//
//  - `if (std::scoped_lock lock(mu); cond) { ... }`: a guard declared in a
//    control-statement header covers the statement's body, not the rest of
//    the enclosing scope.
//  - Lambda bodies are NOT covered by enclosing regions (a lambda created
//    under a lock may run long after the lock is gone) — EXCEPT lambdas
//    passed to a condition-variable `wait`/`wait_for`/`wait_until`, whose
//    predicate runs with the lock held by contract.
//  - Mutexes are matched by their final identifier (`slot.mutex` ==
//    `mutex`), and additionally namespace-qualified for the cross-TU lock
//    acquisition graph so `astra::serve::mutex_` and `astra::io::mutex_`
//    stay distinct nodes.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace astra::lint {

// The comment-free token view every rule and the region scanner run over.
[[nodiscard]] std::vector<const Token*> CodeTokens(const LexedFile& lexed);

// Annotations harvested from one file's token stream (the no-op macros in
// util/thread_annotations.hpp).
struct LockAnnotations {
  // member name -> mutex key (final identifier of the ASTRA_GUARDED_BY arg)
  std::map<std::string, std::string> guarded;
  // function name -> mutex keys it must not be entered with (ASTRA_EXCLUDES)
  std::map<std::string, std::set<std::string>> excludes;
  // functions marked ASTRA_BLOCKING
  std::set<std::string> blocking;

  [[nodiscard]] bool Empty() const noexcept {
    return guarded.empty() && excludes.empty() && blocking.empty();
  }
};

[[nodiscard]] LockAnnotations HarvestLockAnnotations(
    const std::vector<const Token*>& code);

// One lexical lock region.
struct LockRegion {
  std::string mutex;      // unqualified key: final identifier of the argument
  std::string qualified;  // namespace-qualified key for the global graph
  std::size_t begin = 0;  // first covered code-token index
  std::size_t end = 0;    // one past the last covered code-token index
  int line = 0;           // acquisition line
};

// A region of `held` was open when `acquired` was locked.  Both are
// namespace-qualified keys; the global lock-order graph is their union
// across every scanned file.
struct LockEdge {
  std::string held;
  std::string acquired;
  int line = 0;
};

struct LockScan {
  std::vector<LockRegion> regions;
  std::vector<LockEdge> edges;
  // Lambda bodies outside cv-wait calls, as [begin, end) code-token ranges:
  // regions opened BEFORE such a range do not extend into it.
  std::vector<std::pair<std::size_t, std::size_t>> deferred;
};

// Scan one file: RAII guard declarations (including control-header scoped
// ones), early unlock()/re-lock(), ASTRA_REQUIRES bodies (which count as
// regions of their mutex), lambda deferral, and nested-acquisition edges.
[[nodiscard]] LockScan ScanLockRegions(const std::vector<const Token*>& code);

// True when code[index] executes with a region of `mutex_key` (unqualified)
// open — i.e. some region covers the index and no deferred lambda range
// that started after the region did contains it.
[[nodiscard]] bool InRegionOf(const LockScan& scan, std::size_t index,
                              const std::string& mutex_key);

// Unqualified keys of every region open at code[index], deduplicated and
// sorted (deterministic diagnostics).
[[nodiscard]] std::vector<std::string> OpenMutexesAt(const LockScan& scan,
                                                     std::size_t index);

}  // namespace astra::lint
