#include "lint/rules.hpp"

#include <algorithm>
#include <set>
#include <string_view>

#include "lint/lock_regions.hpp"

namespace astra::lint {
namespace {

bool StartsWith(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool IsHeader(std::string_view path) noexcept { return EndsWith(path, ".hpp"); }

bool IsIdent(const Token* token, std::string_view text) noexcept {
  return token->kind == TokKind::kIdentifier && token->text == text;
}

bool IsPunct(const Token* token, std::string_view text) noexcept {
  return token->kind == TokKind::kPunct && token->text == text;
}

const Token* At(const std::vector<const Token*>& code, std::size_t i) noexcept {
  static const Token kNull{TokKind::kPunct, "", 0, 0};
  return i < code.size() ? code[i] : &kNull;
}

void Add(std::vector<Diagnostic>& out, const FileContext& context, int line,
         Rule rule, std::string message) {
  Diagnostic diagnostic;
  diagnostic.file = context.path;
  diagnostic.line = line;
  diagnostic.rule = rule;
  diagnostic.message = std::move(message);
  out.push_back(std::move(diagnostic));
}

// --- det-random ---------------------------------------------------------------

void CheckDetRandom(const FileContext& context,
                    const std::vector<const Token*>& code,
                    std::vector<Diagnostic>& out) {
  // The simulation clock is the one sanctioned wall-clock boundary.
  if (StartsWith(context.path, "util/sim_time")) return;
  // stream/ may read wall clocks to pace tail-follow polling; everything it
  // feeds into analysis still goes through SimTime.
  const bool polling_whitelisted = StartsWith(context.path, "stream/");

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token* token = code[i];
    if (token->kind != TokKind::kIdentifier) continue;
    const Token* prev = i > 0 ? code[i - 1] : nullptr;
    const bool member = prev != nullptr && (IsPunct(prev, ".") || IsPunct(prev, "->"));

    if ((token->text == "rand" || token->text == "srand") && !member &&
        IsPunct(At(code, i + 1), "(")) {
      Add(out, context, token->line, Rule::kDetRandom,
          "call to " + token->text +
              "() — use util/rng (seeded, fork-able) so runs stay reproducible");
      continue;
    }
    if (token->text == "random_device" && !member) {
      Add(out, context, token->line, Rule::kDetRandom,
          "std::random_device is nondeterministic — seed util/rng explicitly");
      continue;
    }
    if (polling_whitelisted) continue;
    if (token->text == "time" && !member && IsPunct(At(code, i + 1), "(")) {
      const Token* arg = At(code, i + 2);
      const bool null_arg = IsIdent(arg, "nullptr") || IsIdent(arg, "NULL") ||
                            (arg->kind == TokKind::kNumber && arg->text == "0");
      if (null_arg && IsPunct(At(code, i + 3), ")")) {
        Add(out, context, token->line, Rule::kDetRandom,
            "time(" + arg->text +
                ") reads the wall clock — analysis time must come from "
                "util/sim_time");
      }
      continue;
    }
    if (token->text == "system_clock" && IsPunct(At(code, i + 1), "::") &&
        IsIdent(At(code, i + 2), "now")) {
      Add(out, context, token->line, Rule::kDetRandom,
          "system_clock::now() reads the wall clock — analysis time must come "
          "from util/sim_time");
    }
  }
}

// --- det-unordered-iter -------------------------------------------------------

constexpr std::string_view kUnorderedContainers[] = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

bool IsUnorderedContainerName(std::string_view text) noexcept {
  return std::find(std::begin(kUnorderedContainers), std::end(kUnorderedContainers),
                   text) != std::end(kUnorderedContainers);
}

// Names of variables/members declared with an unordered container type:
// `std::unordered_map<K, V> name`, reference/pointer parameters, and
// comma-chained declarators (`per_dimm, per_node;`).
void HarvestUnorderedNames(const std::vector<const Token*>& code,
                           std::set<std::string>& names) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!IsUnorderedContainerName(code[i]->text) ||
        code[i]->kind != TokKind::kIdentifier) {
      continue;
    }
    std::size_t j = i + 1;
    if (!IsPunct(At(code, j), "<")) continue;
    int depth = 0;
    for (; j < code.size(); ++j) {
      if (IsPunct(code[j], "<")) ++depth;
      if (IsPunct(code[j], ">") && --depth == 0) break;
      if (IsPunct(code[j], ";")) break;  // malformed; bail
    }
    if (depth != 0) continue;
    ++j;  // past '>'
    // Declarator chain: [const|&|*]* name [, name]* terminator.
    while (j < code.size()) {
      while (IsPunct(At(code, j), "&") || IsPunct(At(code, j), "*") ||
             IsIdent(At(code, j), "const")) {
        ++j;
      }
      const Token* name = At(code, j);
      if (name->kind != TokKind::kIdentifier) break;
      const Token* after = At(code, j + 1);
      if (IsPunct(after, ",") || IsPunct(after, ";") || IsPunct(after, "=") ||
          IsPunct(after, ")") || IsPunct(after, "{")) {
        names.insert(name->text);
        if (!IsPunct(after, ",")) break;
        j += 2;
        continue;
      }
      break;
    }
  }
}

// True when tokens [begin, end) form a pure object chain — identifiers
// joined by `.`, `->`, `::` — e.g. `state.bits_by_address`.  Returns the
// final identifier through `last`.
bool IsObjectChain(const std::vector<const Token*>& code, std::size_t begin,
                   std::size_t end, std::string& last) {
  bool expect_ident = true;
  last.clear();
  for (std::size_t i = begin; i < end; ++i) {
    const Token* token = code[i];
    if (expect_ident) {
      if (token->kind != TokKind::kIdentifier) return false;
      last = token->text;
    } else if (!IsPunct(token, ".") && !IsPunct(token, "->") &&
               !IsPunct(token, "::")) {
      return false;
    }
    expect_ident = !expect_ident;
  }
  return !expect_ident && !last.empty();
}

void CheckDetUnorderedIter(const FileContext& context,
                           const std::vector<const Token*>& code,
                           std::vector<Diagnostic>& out) {
  const bool in_scope = StartsWith(context.path, "core/") ||
                        StartsWith(context.path, "stream/") || context.report_linked;
  if (!in_scope) return;

  std::set<std::string> names;
  HarvestUnorderedNames(code, names);
  names.insert(context.paired_unordered_names.begin(),
               context.paired_unordered_names.end());
  if (names.empty()) return;

  for (std::size_t i = 0; i < code.size(); ++i) {
    // Range-for: `for ( ... : chain )` with the chain ending in a harvested
    // name.
    if (IsIdent(code[i], "for") && IsPunct(At(code, i + 1), "(")) {
      int depth = 0;
      std::size_t close = i + 1;
      std::size_t colon = 0;
      for (; close < code.size(); ++close) {
        if (IsPunct(code[close], "(")) ++depth;
        if (IsPunct(code[close], ")") && --depth == 0) break;
        if (depth == 1 && colon == 0 && IsPunct(code[close], ":")) colon = close;
      }
      if (close >= code.size() || colon == 0) continue;
      std::string last;
      if (IsObjectChain(code, colon + 1, close, last) && names.count(last) > 0) {
        Add(out, context, code[i]->line, Rule::kDetUnorderedIter,
            "range-for over unordered container '" + last +
                "' — hash order is not deterministic across builds; iterate "
                "sorted keys, or justify with astra-lint: allow(...)");
      }
      continue;
    }
    // Iterator form: `name.begin()` / `name.cbegin()`.
    if (code[i]->kind == TokKind::kIdentifier && names.count(code[i]->text) > 0 &&
        (IsPunct(At(code, i + 1), ".") || IsPunct(At(code, i + 1), "->")) &&
        (IsIdent(At(code, i + 2), "begin") || IsIdent(At(code, i + 2), "cbegin")) &&
        IsPunct(At(code, i + 3), "(")) {
      Add(out, context, code[i]->line, Rule::kDetUnorderedIter,
          "iterator over unordered container '" + code[i]->text +
              "' — hash order is not deterministic across builds");
    }
  }
}

// --- det-pointer-key ----------------------------------------------------------

void CheckDetPointerKey(const FileContext& context,
                        const std::vector<const Token*>& code,
                        std::vector<Diagnostic>& out) {
  constexpr std::string_view kOrdered[] = {"map", "set", "multimap", "multiset"};
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i]->kind != TokKind::kIdentifier ||
        std::find(std::begin(kOrdered), std::end(kOrdered), code[i]->text) ==
            std::end(kOrdered)) {
      continue;
    }
    // Require std:: qualification so locally-named maps don't trip it.
    if (i < 2 || !IsPunct(code[i - 1], "::") || !IsIdent(code[i - 2], "std")) {
      continue;
    }
    if (!IsPunct(At(code, i + 1), "<")) continue;
    // First template argument: up to a top-level ',' or the closing '>'.
    int depth = 1;
    std::size_t j = i + 2;
    const Token* last_meaningful = nullptr;
    for (; j < code.size() && depth > 0; ++j) {
      const Token* token = code[j];
      if (IsPunct(token, "<") || IsPunct(token, "(")) ++depth;
      if (IsPunct(token, ">") || IsPunct(token, ")")) --depth;
      if (depth == 0) break;
      if (depth == 1 && IsPunct(token, ",")) break;
      last_meaningful = token;
    }
    if (last_meaningful != nullptr && IsPunct(last_meaningful, "*")) {
      Add(out, context, code[i]->line, Rule::kDetPointerKey,
          "std::" + code[i]->text +
              " keyed by a raw pointer orders by address (ASLR-dependent) — "
              "key by a stable id instead");
    }
  }
}

// --- ser-raw-bytes ------------------------------------------------------------

void CheckSerRawBytes(const FileContext& context,
                      const std::vector<const Token*>& code,
                      std::vector<Diagnostic>& out) {
  const bool in_scope =
      StartsWith(context.path, "stream/") || StartsWith(context.path, "util/binio");
  if (!in_scope) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token* token = code[i];
    if (token->kind != TokKind::kIdentifier) continue;
    if (token->text == "reinterpret_cast") {
      Add(out, context, token->line, Rule::kSerRawBytes,
          "reinterpret_cast in a checkpoint path — encode through util/binio "
          "(bounded, endian-stable) instead of reinterpreting struct bytes");
      continue;
    }
    if ((token->text == "memcpy" || token->text == "fwrite") &&
        IsPunct(At(code, i + 1), "(")) {
      Add(out, context, token->line, Rule::kSerRawBytes,
          token->text +
              "() of raw bytes in a checkpoint path — use util/binio "
              "readers/writers so layout and endianness stay explicit");
    }
  }
}

// --- err-catch-all ------------------------------------------------------------

void CheckErrCatchAll(const FileContext& context,
                      const std::vector<const Token*>& code,
                      std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i + 3 < code.size(); ++i) {
    if (IsIdent(code[i], "catch") && IsPunct(code[i + 1], "(") &&
        IsPunct(code[i + 2], "...") && IsPunct(code[i + 3], ")")) {
      Add(out, context, code[i]->line, Rule::kErrCatchAll,
          "bare catch (...) swallows every failure including logic errors — "
          "catch the specific exception or let it propagate");
    }
  }
}

// --- err-exit -----------------------------------------------------------------

void CheckErrExit(const FileContext& context,
                  const std::vector<const Token*>& code,
                  std::vector<Diagnostic>& out) {
  if (StartsWith(context.path, "tools/")) return;  // mains own the process
  constexpr std::string_view kKillers[] = {"exit", "abort", "_Exit", "quick_exit"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token* token = code[i];
    if (token->kind != TokKind::kIdentifier ||
        std::find(std::begin(kKillers), std::end(kKillers), token->text) ==
            std::end(kKillers)) {
      continue;
    }
    if (!IsPunct(At(code, i + 1), "(")) continue;
    const Token* prev = i > 0 ? code[i - 1] : nullptr;
    // Member calls (`status.exit()`) and declarations (`void exit(int)`) are
    // not process kills.
    if (prev != nullptr &&
        (IsPunct(prev, ".") || IsPunct(prev, "->") ||
         prev->kind == TokKind::kIdentifier)) {
      continue;
    }
    Add(out, context, token->line, Rule::kErrExit,
        token->text +
            "() terminates the embedding process — library code must return "
            "a status and let src/tools/ decide the exit code");
  }
}

// --- err-ignored-status -------------------------------------------------------

// Ingest/checkpoint APIs whose return value IS the error channel.  They are
// all marked [[nodiscard]] in their headers; this rule keeps the guarantee
// visible to code built without warnings-as-errors.
constexpr std::string_view kStatusApis[] = {
    "IngestLogFile",   "ReadLogFile",           "IngestAllRecords",
    "ReadAllRecords",  "IngestDirectory",       "ReadLines",
    "ForEachLine",     "WriteLines",            "ReadFileBytes",
    "WriteFileBytes",  "SaveMonitorCheckpoint", "RestoreMonitorCheckpoint",
    "LoadState",       "CorruptFile",           "CorruptDirectory",
    "ParallelIngestDirectory",
    // Engine contract (core/engine.hpp): a discarded Restore is a silently
    // half-empty engine and a discarded MergeFrom is a silently dropped
    // shard.  LoadState above stays for the TailReader cursor.
    "Restore",         "MergeFrom",
    // Io seam (util/io_faults.hpp) and retry layer (util/retry.hpp): these
    // statuses ARE the fault-injection surface — discarding one turns an
    // injected failure into silent data loss, defeating the chaos suite.
    "ReadFile",        "MapFile",               "WriteFile",
    "Rename",          "SyncFile",              "SyncDir",
    "FileSize",        "Remove",                "RetryWithBackoff",
    "RemoveStaleCheckpointTmp"};

void CheckErrIgnoredStatus(const FileContext& context,
                           const std::vector<const Token*>& code,
                           std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token* token = code[i];
    if (token->kind != TokKind::kIdentifier ||
        std::find(std::begin(kStatusApis), std::end(kStatusApis), token->text) ==
            std::end(kStatusApis)) {
      continue;
    }
    if (!IsPunct(At(code, i + 1), "(")) continue;
    // The call's matching ')' must be followed directly by ';' — i.e. the
    // whole statement is the call and nothing consumes the result.
    int depth = 0;
    std::size_t close = i + 1;
    for (; close < code.size(); ++close) {
      if (IsPunct(code[close], "(")) ++depth;
      if (IsPunct(code[close], ")") && --depth == 0) break;
    }
    if (close >= code.size() || !IsPunct(At(code, close + 1), ";")) continue;
    // Walk back over the object chain (`reader.`, `logs::`, and calls in the
    // chain like `io::Current().`) to the start of the statement.
    std::size_t start = i;
    while (start >= 2 &&
           (IsPunct(code[start - 1], ".") || IsPunct(code[start - 1], "->") ||
            IsPunct(code[start - 1], "::"))) {
      if (code[start - 2]->kind == TokKind::kIdentifier) {
        start -= 2;
        continue;
      }
      if (IsPunct(code[start - 2], ")")) {
        // Step over one chained call's argument list to the callee name.
        int chain_depth = 0;
        std::size_t open = start - 2;
        while (open > 0) {
          if (IsPunct(code[open], ")")) ++chain_depth;
          if (IsPunct(code[open], "(") && --chain_depth == 0) break;
          --open;
        }
        if (chain_depth != 0 || open == 0 ||
            code[open - 1]->kind != TokKind::kIdentifier) {
          break;
        }
        start = open - 1;
        continue;
      }
      break;
    }
    const Token* before = start > 0 ? code[start - 1] : nullptr;
    const bool statement_start =
        before == nullptr || IsPunct(before, ";") || IsPunct(before, "{") ||
        IsPunct(before, "}") || IsPunct(before, ")") || IsIdent(before, "else") ||
        IsIdent(before, "do") || IsPunct(before, ":");
    if (!statement_start) continue;
    // `(void) Foo();` is an explicit, visible discard; honor it.
    if (before != nullptr && IsPunct(before, ")") && start >= 3 &&
        IsIdent(code[start - 2], "void") && IsPunct(code[start - 3], "(")) {
      continue;
    }
    Add(out, context, token->line, Rule::kErrIgnoredStatus,
        "status result of " + token->text +
            "() discarded — check it (these APIs report torn files, short "
            "writes, and rejected checkpoints through their return value)");
  }
}

// --- perf-string-by-value -----------------------------------------------------

void CheckPerfStringByValue(const FileContext& context,
                            const std::vector<const Token*>& code,
                            std::vector<Diagnostic>& out) {
  // Hot-path scope: the parse layer and the analysis engines, where these
  // signatures sit on per-record or per-line paths.  Tools, tests and the
  // report renderer are allowed to copy.
  const bool in_scope =
      StartsWith(context.path, "logs/") || StartsWith(context.path, "core/");
  if (!in_scope) return;

  for (std::size_t i = 0; i + 2 < code.size(); ++i) {
    // Match `std :: string` opening a parameter: the token before the type
    // (skipping one optional `const`) must be '(' or ','.
    if (!IsIdent(code[i], "std") || !IsPunct(At(code, i + 1), "::") ||
        !IsIdent(At(code, i + 2), "string")) {
      continue;
    }
    std::size_t before = i;
    if (before > 0 && IsIdent(code[before - 1], "const")) --before;
    const Token* opener = before > 0 ? code[before - 1] : nullptr;
    if (opener == nullptr || (!IsPunct(opener, "(") && !IsPunct(opener, ","))) {
      continue;
    }
    // By value means the parameter name follows the type directly — any
    // `&`, `&&` or `*` in between makes it a reference/pointer, and a
    // following '<' would make the type std::string's template cousin.
    const Token* name = At(code, i + 3);
    if (name->kind != TokKind::kIdentifier) continue;
    const Token* after = At(code, i + 4);
    if (!IsPunct(after, ",") && !IsPunct(after, ")") && !IsPunct(after, "=")) {
      continue;
    }
    Add(out, context, code[i]->line, Rule::kPerfStringByValue,
        "parameter '" + name->text +
            "' takes std::string by value — every call on this hot path "
            "copies the buffer; take std::string_view (non-owning) or const "
            "std::string& (owning callers)");
  }
}

// --- lock-guarded-field -------------------------------------------------------

void CheckLockGuardedField(const FileContext& context,
                           const std::vector<const Token*>& code,
                           const LockScan& scan,
                           const LockAnnotations& annotations,
                           std::vector<Diagnostic>& out) {
  // Own annotations win over the paired header's on a name collision.
  std::map<std::string, std::string> guarded = context.paired_guarded;
  for (const auto& [field, mutex] : annotations.guarded) guarded[field] = mutex;
  if (guarded.empty()) return;

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token* token = code[i];
    if (token->kind != TokKind::kIdentifier) continue;
    const auto it = guarded.find(token->text);
    if (it == guarded.end()) continue;
    // The declaration site itself: `Type name_ ASTRA_GUARDED_BY(mu) ...`.
    if (IsIdent(At(code, i + 1), "ASTRA_GUARDED_BY")) continue;
    if (InRegionOf(scan, i, it->second)) continue;
    Add(out, context, token->line, Rule::kLockGuardedField,
        "'" + token->text + "' is guarded by '" + it->second +
            "' but accessed outside any lock region of it — take the lock, "
            "or mark the enclosing function ASTRA_REQUIRES(" + it->second +
            ")");
  }
}

// --- lock-blocking-call -------------------------------------------------------

// Joined `a, b` list for diagnostics.
std::string JoinKeys(const std::vector<std::string>& keys) {
  std::string joined;
  for (const std::string& key : keys) {
    if (!joined.empty()) joined += ", ";
    joined += key;
  }
  return joined;
}

void CheckLockBlockingCall(const FileContext& context,
                           const std::vector<const Token*>& code,
                           const LockScan& scan,
                           const LockAnnotations& annotations,
                           std::vector<Diagnostic>& out) {
  // Local annotations also count: a file can mark its own helpers.
  std::set<std::string> blocking = annotations.blocking;
  if (context.global_blocking != nullptr) {
    blocking.insert(context.global_blocking->begin(),
                    context.global_blocking->end());
  }
  std::map<std::string, std::set<std::string>> excludes = annotations.excludes;
  if (context.global_excludes != nullptr) {
    for (const auto& [fn, keys] : *context.global_excludes) {
      excludes[fn].insert(keys.begin(), keys.end());
    }
  }

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token* token = code[i];
    if (token->kind != TokKind::kIdentifier || !IsPunct(At(code, i + 1), "(")) {
      continue;
    }
    const Token* prev = i > 0 ? code[i - 1] : nullptr;
    const bool member =
        prev != nullptr && (IsPunct(prev, ".") || IsPunct(prev, "->"));

    // Built-in list: sleeping under a lock is always wrong.  Member access
    // is excluded so `cv.wait_for(...)` (which RELEASES the lock) is fine
    // while `std::this_thread::sleep_for(...)` fires.
    const bool builtin_sleep =
        (token->text == "sleep_for" || token->text == "sleep_until") && !member;

    if (builtin_sleep || blocking.count(token->text) > 0) {
      const std::vector<std::string> open = OpenMutexesAt(scan, i);
      if (open.empty()) continue;
      Add(out, context, token->line, Rule::kLockBlockingCall,
          "call to " + token->text + "() while holding '" + JoinKeys(open) +
              "' — " +
              (builtin_sleep
                   ? std::string("sleeping under a lock stalls every waiter")
                   : "it is marked ASTRA_BLOCKING and can block indefinitely; "
                     "move it outside the lock region"));
      continue;
    }
    const auto excluded = excludes.find(token->text);
    if (excluded == excludes.end()) continue;
    std::vector<std::string> violated;
    for (const std::string& key : excluded->second) {
      if (InRegionOf(scan, i, key)) violated.push_back(key);
    }
    if (violated.empty()) continue;
    Add(out, context, token->line, Rule::kLockBlockingCall,
        "call to " + token->text + "() while holding '" + JoinKeys(violated) +
            "' — it is marked ASTRA_EXCLUDES(" + JoinKeys(violated) +
            ") and must not run under that lock");
  }
}

// --- header hygiene -----------------------------------------------------------

void CheckHeaderHygiene(const FileContext& context,
                        const std::vector<const Token*>& code,
                        std::vector<Diagnostic>& out) {
  if (!IsHeader(context.path)) return;

  bool has_pragma_once = false;
  for (const Directive& directive : context.lexed->directives) {
    if (directive.name == "pragma" && directive.argument == "once") {
      has_pragma_once = true;
      break;
    }
  }
  if (!has_pragma_once) {
    Add(out, context, 1, Rule::kHdrPragmaOnce,
        "header has no #pragma once — double inclusion breaks the build in "
        "surprising translation units");
  }

  // `using namespace` at header scope: flag when every enclosing brace is a
  // namespace brace (function/class bodies inside headers are local scope).
  std::vector<bool> brace_is_namespace;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token* token = code[i];
    if (IsPunct(token, "{")) {
      // Look back across `namespace [name[::name]]` to classify the brace.
      std::size_t back = i;
      while (back >= 1 && (code[back - 1]->kind == TokKind::kIdentifier ||
                           IsPunct(code[back - 1], "::"))) {
        --back;
        if (IsIdent(code[back], "namespace")) break;
      }
      brace_is_namespace.push_back(back < i && IsIdent(code[back], "namespace"));
      continue;
    }
    if (IsPunct(token, "}")) {
      if (!brace_is_namespace.empty()) brace_is_namespace.pop_back();
      continue;
    }
    if (IsIdent(token, "using") && IsIdent(At(code, i + 1), "namespace")) {
      const bool header_scope =
          std::all_of(brace_is_namespace.begin(), brace_is_namespace.end(),
                      [](bool is_namespace) { return is_namespace; });
      if (header_scope) {
        Add(out, context, token->line, Rule::kHdrUsingNamespace,
            "using namespace at header scope leaks the whole namespace into "
            "every includer — qualify names instead");
      }
    }
  }
}

}  // namespace

std::vector<std::string> UnorderedContainerNames(
    const std::vector<const Token*>& code) {
  std::set<std::string> names;
  HarvestUnorderedNames(code, names);
  return {names.begin(), names.end()};
}

std::vector<Diagnostic> RunRules(const FileContext& context) {
  std::vector<Diagnostic> out;
  const std::vector<const Token*> code = CodeTokens(*context.lexed);
  CheckDetRandom(context, code, out);
  CheckDetUnorderedIter(context, code, out);
  CheckDetPointerKey(context, code, out);
  CheckSerRawBytes(context, code, out);
  CheckErrCatchAll(context, code, out);
  CheckErrExit(context, code, out);
  CheckErrIgnoredStatus(context, code, out);
  CheckPerfStringByValue(context, code, out);
  const LockScan scan = ScanLockRegions(code);
  const LockAnnotations annotations = HarvestLockAnnotations(code);
  CheckLockGuardedField(context, code, scan, annotations, out);
  CheckLockBlockingCall(context, code, scan, annotations, out);
  CheckHeaderHygiene(context, code, out);
  return out;
}

}  // namespace astra::lint
