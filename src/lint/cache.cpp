#include "lint/cache.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "lint/rules.hpp"
#include "lint/suppressions.hpp"

namespace astra::lint {
namespace {

constexpr std::string_view kMagic = "astra-lint-cache v2";

// Percent-escape so every stored field is a single whitespace-free word.
std::string Escape(std::string_view s) {
  constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    if (byte <= ' ' || c == '%' || byte == 0x7F) {
      out += '%';
      out += kHex[byte >> 4];
      out += kHex[byte & 0xF];
    } else {
      out += c;
    }
  }
  return out.empty() ? "%" : out;  // lone '%' encodes the empty string
}

int HexVal(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::optional<std::string> Unescape(std::string_view s) {
  if (s == "%") return std::string();
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) return std::nullopt;
    const int hi = HexVal(s[i + 1]);
    const int lo = HexVal(s[i + 2]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return out;
}

std::optional<Rule> RuleFromId(std::string_view id) {
  for (const RuleInfo& info : kRules) {
    if (info.id == id) return info.rule;
  }
  return std::nullopt;
}

void WriteFacts(std::ostream& out, const FileFacts& facts) {
  for (const auto& [line, path] : facts.quoted_includes) {
    out << "i " << line << ' ' << Escape(path) << '\n';
  }
  for (const auto& [field, mutex] : facts.annotations.guarded) {
    out << "g " << Escape(field) << ' ' << Escape(mutex) << '\n';
  }
  for (const auto& [fn, keys] : facts.annotations.excludes) {
    for (const std::string& key : keys) {
      out << "x " << Escape(fn) << ' ' << Escape(key) << '\n';
    }
  }
  for (const std::string& fn : facts.annotations.blocking) {
    out << "b " << Escape(fn) << '\n';
  }
  for (const LockEdge& edge : facts.lock_edges) {
    out << "e " << Escape(edge.held) << ' ' << Escape(edge.acquired) << ' '
        << edge.line << '\n';
  }
  for (const auto& [line, ids] : facts.allows) {
    out << "a " << line;
    for (const std::string& id : ids) out << ' ' << id;
    out << '\n';
  }
  for (const std::string& name : facts.unordered_names) {
    out << "u " << Escape(name) << '\n';
  }
}

// One fact/diagnostic line inside an entry block.  Returns false on parse
// errors; "end" terminates the block via `done`.
bool ReadEntryLine(const std::string& line, CacheEntry& entry, bool& done) {
  std::istringstream fields(line);
  std::string tag;
  if (!(fields >> tag)) return true;  // blank line: tolerate
  const auto word = [&](std::string& into) {
    std::string raw;
    if (!(fields >> raw)) return false;
    std::optional<std::string> text = Unescape(raw);
    if (!text) return false;
    into = std::move(*text);
    return true;
  };
  if (tag == "end") {
    done = true;
    return true;
  }
  if (tag == "i") {
    int line_no = 0;
    std::string path;
    if (!(fields >> line_no) || !word(path)) return false;
    entry.facts.quoted_includes.emplace_back(line_no, std::move(path));
    return true;
  }
  if (tag == "g") {
    std::string field, mutex;
    if (!word(field) || !word(mutex)) return false;
    entry.facts.annotations.guarded[field] = std::move(mutex);
    return true;
  }
  if (tag == "x") {
    std::string fn, key;
    if (!word(fn) || !word(key)) return false;
    entry.facts.annotations.excludes[fn].insert(std::move(key));
    return true;
  }
  if (tag == "b") {
    std::string fn;
    if (!word(fn)) return false;
    entry.facts.annotations.blocking.insert(std::move(fn));
    return true;
  }
  if (tag == "e") {
    LockEdge edge;
    if (!word(edge.held) || !word(edge.acquired) || !(fields >> edge.line)) {
      return false;
    }
    entry.facts.lock_edges.push_back(std::move(edge));
    return true;
  }
  if (tag == "a") {
    int line_no = 0;
    if (!(fields >> line_no)) return false;
    std::string id;
    while (fields >> id) entry.facts.allows[line_no].insert(id);
    return true;
  }
  if (tag == "u") {
    std::string name;
    if (!word(name)) return false;
    entry.facts.unordered_names.push_back(std::move(name));
    return true;
  }
  if (tag == "d") {
    Diagnostic diagnostic;
    std::string id;
    if (!(fields >> diagnostic.line) || !(fields >> id) ||
        !word(diagnostic.file) || !word(diagnostic.message)) {
      return false;
    }
    const std::optional<Rule> rule = RuleFromId(id);
    if (!rule) return false;  // written by a different rule set
    diagnostic.rule = *rule;
    entry.diagnostics.push_back(std::move(diagnostic));
    return true;
  }
  return false;  // unknown tag: corrupt
}

}  // namespace

std::uint64_t HashBytes(std::string_view bytes, std::uint64_t seed) noexcept {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

FileFacts HarvestFileFacts(const LexedFile& lexed) {
  FileFacts facts;
  for (const Directive& directive : lexed.directives) {
    if (directive.name == "include" && directive.quoted_include) {
      facts.quoted_includes.emplace_back(directive.line, directive.argument);
    }
  }
  const std::vector<const Token*> code = CodeTokens(lexed);
  facts.annotations = HarvestLockAnnotations(code);
  facts.lock_edges = ScanLockRegions(code).edges;
  const SuppressionSet suppressions = ParseSuppressions(lexed, "");
  for (const auto& [line, rules] : suppressions.allowed_by_line) {
    for (const Rule rule : rules) {
      facts.allows[line].insert(std::string(RuleId(rule)));
    }
  }
  facts.unordered_names = UnorderedContainerNames(code);
  return facts;
}

std::string SerializeFacts(const FileFacts& facts) {
  std::ostringstream out;
  WriteFacts(out, facts);
  return std::move(out).str();
}

bool LoadLintCache(const std::string& path, LintCache& cache) {
  cache.entries.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return false;
  while (std::getline(in, line)) {
    std::istringstream header(line);
    std::string tag, raw_path, raw_scope;
    CacheEntry entry;
    if (!(header >> tag)) continue;  // blank between entries
    if (tag != "entry" || !(header >> raw_path >> raw_scope >>
                            entry.content_hash >> entry.env_hash)) {
      cache.entries.clear();
      return false;
    }
    std::optional<std::string> disk_path = Unescape(raw_path);
    std::optional<std::string> scope = Unescape(raw_scope);
    if (!disk_path || !scope) {
      cache.entries.clear();
      return false;
    }
    entry.scope_path = std::move(*scope);
    bool done = false;
    while (!done && std::getline(in, line)) {
      if (!ReadEntryLine(line, entry, done)) {
        cache.entries.clear();
        return false;
      }
    }
    if (!done) {  // truncated entry
      cache.entries.clear();
      return false;
    }
    cache.entries[std::move(*disk_path)] = std::move(entry);
  }
  return true;
}

bool SaveLintCache(const std::string& path, const LintCache& cache) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << kMagic << '\n';
  for (const auto& [disk_path, entry] : cache.entries) {
    out << "entry " << Escape(disk_path) << ' ' << Escape(entry.scope_path)
        << ' ' << entry.content_hash << ' ' << entry.env_hash << '\n';
    WriteFacts(out, entry.facts);
    for (const Diagnostic& diagnostic : entry.diagnostics) {
      out << "d " << diagnostic.line << ' ' << RuleId(diagnostic.rule) << ' '
          << Escape(diagnostic.file) << ' ' << Escape(diagnostic.message)
          << '\n';
    }
    out << "end\n";
  }
  out.flush();
  return out.good();
}

}  // namespace astra::lint
