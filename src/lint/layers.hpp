// Layer matrix for the `arch-upward-include` rule.
//
// Each top-level directory under src/ is a layer.  A row names the layers a
// directory's files may reach with quoted includes; anything else is an
// upward (or sideways) dependency the architecture forbids — the classic
// failure being a lower layer reaching into `serve/`.  System/`<...>`
// includes and unknown directories (tests, corpus overrides outside src/)
// are never checked.
//
// The matrix ships twice on purpose: `DefaultLayerMatrix()` is compiled in
// so LintSource and the corpus need no filesystem, and `src/lint/layers.conf`
// is the committed, reviewable copy the CLI loads for tree runs.  A unit
// test asserts the two are identical, so the conf file cannot drift.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>

namespace astra::lint {

struct LayerMatrix {
  // layer -> layers it may include.  Self-edges are implicitly allowed.
  std::map<std::string, std::set<std::string>> allowed;

  [[nodiscard]] bool Known(const std::string& layer) const {
    return allowed.count(layer) > 0;
  }
  // Only pronounces on edges between two KNOWN layers; everything else is
  // out of the matrix's jurisdiction and allowed.
  [[nodiscard]] bool Allows(const std::string& from, const std::string& to) const {
    if (from == to || !Known(from) || !Known(to)) return true;
    return allowed.at(from).count(to) > 0;
  }
  // Canonical single-line form (rows sorted, deps sorted) — used by the
  // incremental cache's environment hash and the drift-guard test.
  [[nodiscard]] std::string Serialize() const;
};

// The compiled-in matrix for this repo's src/ tree.
[[nodiscard]] LayerMatrix DefaultLayerMatrix();

// Parse the conf format: one `layer: dep dep ...` row per line, `#` starts
// a comment, blank lines ignored.  Returns std::nullopt (and fills *error)
// on a malformed line or a dep naming no declared layer row.
[[nodiscard]] std::optional<LayerMatrix> ParseLayerMatrix(std::string_view text,
                                                          std::string* error);

// Layer of a repo-relative path: "serve/daemon.cpp" -> "serve"; empty when
// the path has no directory component.
[[nodiscard]] std::string LayerOf(std::string_view path);

}  // namespace astra::lint
