#include "lint/suppressions.hpp"

#include <string_view>

namespace astra::lint {
namespace {

constexpr std::string_view kMarker = "astra-lint:";
constexpr std::string_view kTestMarker = "astra-lint-test:";

std::string_view Trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::optional<Rule> RuleFromId(std::string_view id) noexcept {
  for (const RuleInfo& info : kRules) {
    if (info.id == id) return info.rule;
  }
  return std::nullopt;
}

// Grammar after the marker: `allow(<rule>): <justification>`.
// Returns the malformed-reason, or nullopt on success.
std::optional<std::string> ParseAllow(std::string_view body, Rule& rule_out) {
  body = Trim(body);
  constexpr std::string_view kAllow = "allow(";
  if (body.substr(0, kAllow.size()) != kAllow) {
    return "expected `allow(<rule>): <justification>` after `astra-lint:`";
  }
  body.remove_prefix(kAllow.size());
  const std::size_t close = body.find(')');
  if (close == std::string_view::npos) {
    return "unclosed allow(";
  }
  const std::string_view id = Trim(body.substr(0, close));
  const std::optional<Rule> rule = RuleFromId(id);
  if (!rule) {
    return "unknown rule '" + std::string(id) + "' in allow()";
  }
  if (*rule == Rule::kBadSuppression) {
    return "bad-suppression cannot be suppressed";
  }
  std::string_view rest = Trim(body.substr(close + 1));
  if (rest.empty() || rest.front() != ':' || Trim(rest.substr(1)).empty()) {
    return "allow(" + std::string(id) +
           ") needs a justification: `allow(" + std::string(id) + "): <why>`";
  }
  rule_out = *rule;
  return std::nullopt;
}

}  // namespace

SuppressionSet ParseSuppressions(const LexedFile& lexed, const std::string& path) {
  SuppressionSet set;
  for (const Token& token : lexed.tokens) {
    if (token.kind != TokKind::kComment) continue;
    std::string_view text = token.text;
    const std::size_t at = text.find(kMarker);
    if (at == std::string_view::npos) continue;
    // `astra-lint-test:` shares the prefix; it is not a suppression.
    if (text.find(kTestMarker) != std::string_view::npos) continue;
    const std::string_view body = text.substr(at + kMarker.size());
    // Only a marker directly followed by `allow` is a suppression attempt;
    // prose that merely mentions the marker (docs, this file) is ignored.
    if (Trim(body).substr(0, 5) != "allow") continue;
    Rule rule = Rule::kBadSuppression;
    if (std::optional<std::string> error = ParseAllow(body, rule)) {
      Diagnostic diagnostic;
      diagnostic.file = path;
      diagnostic.line = token.line;
      diagnostic.rule = Rule::kBadSuppression;
      diagnostic.message = *error;
      set.malformed.push_back(std::move(diagnostic));
      continue;
    }
    set.allowed_by_line[token.end_line].insert(rule);
    set.allowed_by_line[token.end_line + 1].insert(rule);
  }
  return set;
}

std::optional<TestOverride> ParseTestOverride(const LexedFile& lexed) {
  for (const Token& token : lexed.tokens) {
    if (token.kind != TokKind::kComment) continue;
    const std::string_view text = token.text;
    const std::size_t at = text.find(kTestMarker);
    if (at == std::string_view::npos) continue;
    TestOverride override;
    std::string_view body = Trim(text.substr(at + kTestMarker.size()));
    while (!body.empty()) {
      const std::size_t space = body.find(' ');
      const std::string_view field = body.substr(0, space);
      if (field.substr(0, 5) == "path=") {
        override.path = std::string(field.substr(5));
      } else if (field.substr(0, 7) == "expect=") {
        override.expect = std::string(field.substr(7));
      }
      if (space == std::string_view::npos) break;
      body = Trim(body.substr(space + 1));
    }
    if (!override.path.empty() || !override.expect.empty()) return override;
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace astra::lint
