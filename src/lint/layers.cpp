#include "lint/layers.hpp"

#include <sstream>
#include <vector>

namespace astra::lint {

std::string LayerMatrix::Serialize() const {
  std::string out;
  for (const auto& [layer, deps] : allowed) {
    out += layer;
    out += ':';
    for (const std::string& dep : deps) {
      out += ' ';
      out += dep;
    }
    out += '\n';
  }
  return out;
}

LayerMatrix DefaultLayerMatrix() {
  // Kept in lockstep with src/lint/layers.conf (LayersConfMatchesDefault
  // asserts equality).  Rows are allowed DOWNWARD edges; the absence of an
  // edge is what arch-upward-include enforces.
  LayerMatrix matrix;
  matrix.allowed = {
      {"util", {}},
      {"geometry", {"util"}},
      {"stats", {"util"}},
      {"ecc", {"util"}},
      {"logs", {"util", "geometry"}},
      {"sensors", {"util", "geometry", "logs"}},
      {"replace", {"util", "logs"}},
      {"faultsim", {"util", "geometry", "ecc", "logs", "sensors"}},
      {"core",
       {"util", "geometry", "stats", "ecc", "logs", "sensors", "faultsim",
        "replace"}},
      {"campaign",
       {"util", "geometry", "stats", "ecc", "logs", "sensors", "faultsim",
        "core"}},
      {"stream", {"util", "logs", "stats", "core"}},
      {"serve",
       {"util", "geometry", "stats", "logs", "faultsim", "core", "stream"}},
      {"lint", {"util"}},
      {"tools",
       {"util", "geometry", "stats", "ecc", "logs", "sensors", "replace",
        "faultsim", "core", "campaign", "stream", "serve", "lint"}},
  };
  return matrix;
}

std::optional<LayerMatrix> ParseLayerMatrix(std::string_view text,
                                            std::string* error) {
  LayerMatrix matrix;
  std::vector<std::pair<std::string, std::string>> edges;  // for validation
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::string layer;
    if (!(fields >> layer)) continue;  // blank / comment-only
    if (layer.back() != ':') {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) +
                 ": expected `layer:` at the start of a row, got `" + layer + "`";
      }
      return std::nullopt;
    }
    layer.pop_back();
    if (layer.empty() || matrix.allowed.count(layer) > 0) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " +
                 (layer.empty() ? std::string("empty layer name")
                                : "duplicate row for `" + layer + "`");
      }
      return std::nullopt;
    }
    auto& deps = matrix.allowed[layer];
    std::string dep;
    while (fields >> dep) {
      deps.insert(dep);
      edges.emplace_back(layer, dep);
    }
  }
  for (const auto& [layer, dep] : edges) {
    if (matrix.allowed.count(dep) == 0) {
      if (error != nullptr) {
        *error = "row `" + layer + "` allows unknown layer `" + dep +
                 "` — every dep needs its own row";
      }
      return std::nullopt;
    }
  }
  return matrix;
}

std::string LayerOf(std::string_view path) {
  const std::size_t slash = path.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(path.substr(0, slash));
}

}  // namespace astra::lint
